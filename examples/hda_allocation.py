#!/usr/bin/env python3
"""Heterogeneous Virtual Arrays: why disk placement matters.

One system, two Virtual Arrays — hot small-write data mirrored, the
cold bulk on RAID5 — placed onto a mixed pool of stock and fast disks
by each allocation policy in turn.  First-fit walks the pool in
declaration order and never reaches the fast disks; the bandwidth
policy hands them to the hottest VA per spindle (the mirror); the
capacity policy best-fits the half-capacity mirror onto the smaller
fast disks.  The per-VA response times show what each choice buys.

Run:  python examples/hda_allocation.py [--scale 0.1]
"""

import argparse

from repro.experiments.common import get_trace
from repro.layout import POLICIES
from repro.sim import (
    DiskParams,
    DiskPoolEntry,
    Organization,
    SystemConfig,
    VAConfig,
    run_trace,
)

BPD = 221_760  # stock logical disk, Table 1 geometry
HOT_BPD = BPD // 2  # mirror-VA disks hold half a logical disk each

#: Stock Table-1 disk and a faster, smaller one (too small for a full
#: RAID5 member, roomy enough for the half-capacity mirror VA).
SLOW = DiskParams()
FAST = DiskParams(rpm=7200.0, average_seek_ms=8.5, maximal_seek_ms=18.0,
                  settle_ms=1.5, surfaces=24)

#: Stock disks declared first — which is exactly why first-fit never
#: touches the fast ones.
POOL = (DiskPoolEntry(SLOW, 16), DiskPoolEntry(FAST, 4))

VAS = (
    VAConfig(Organization.MIRROR, 2, name="hot", blocks_per_disk=HOT_BPD,
             heat=3.0),
    VAConfig(Organization.RAID5, 8, name="cold"),
)

#: Trace-2-like workload targeted at the VAs: the mirror's one logical
#: disk draws 75% of accesses, writes skewed onto it even harder.
HDA_TRACE = (
    ("ndisks", 9),
    ("va_disks", (1, 8)),
    ("va_weights", (3.0, 1.0)),
    ("va_write_skew", 2.0),
)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1,
                        help="request-stream scale (default 0.1)")
    args = parser.parse_args()

    trace = get_trace(2, args.scale, hda=HDA_TRACE)
    print(f"workload: {trace.name} ({len(trace.records):,} requests, "
          f"{trace.ndisks} logical disks)")
    print(f"pool: {POOL[0].count} stock + {POOL[1].count} fast disks\n")
    header = f"{'policy':<12} {'hot mirror':>12} {'cold RAID5':>12} {'overall':>9}  placement"
    print(header)
    print("-" * len(header))

    for policy in POLICIES:
        config = SystemConfig(
            organization=Organization.BASE,  # label only; the VAs rule
            blocks_per_disk=BPD,
            vas=VAS,
            pool=POOL,
            allocation=policy,
        )
        fast_disks = [
            sum(1 for p in placed if p == FAST)
            for placed in config.resolve_disk_params()
        ]
        result = run_trace(config, trace, keep_samples=False)
        hot, cold = result.va_response
        placement = ", ".join(
            f"{va.label}: {nf}/{va.ndisks} fast"
            for va, nf in zip(VAS, fast_disks)
        )
        print(f"{policy:<12} {hot.mean:>9.2f} ms {cold.mean:>9.2f} ms "
              f"{result.mean_response_ms:>6.2f} ms  {placement}")

    print("\nfirst-fit strands the fast disks; bandwidth and capacity")
    print("both mirror the hot VA onto them and cut its response time.")


if __name__ == "__main__":
    main()
