#!/usr/bin/env python3
"""Trace anatomy: where a request's response time actually goes.

Runs the same Trace-2-flavoured workload on RAID5 and Parity Striping
with tracing enabled, then prints the per-phase response-time
breakdown for each organization and the A/B delta between them.  The
tables make the paper's small-write argument concrete: both
organizations pay for seeks and rotation, but the parity read-modify-
write adds an extra ``rmw_rotate`` revolution (and parity-sync wait) to
every small write — and parity striping's larger stripe units
concentrate that cost differently than RAID5's striping does.

Run:  python examples/trace_anatomy.py [--scale 0.02] [--export-dir DIR]

With ``--export-dir`` the traced runs are written out as JSONL (for
``python -m repro.obs``) and Chrome trace-event JSON (open in
ui.perfetto.dev), plus the metrics registries as CSV.
"""

import argparse
from pathlib import Path

from repro.obs import render_compare, render_phases
from repro.sim import Organization, SystemConfig, run_trace
from repro.trace import generate_trace, trace2_config


def traced_run(org: Organization, workload):
    config = SystemConfig(
        organization=org,
        n=10,
        blocks_per_disk=workload.blocks_per_disk,
    )
    return run_trace(config, workload, trace=True, metrics=True)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.02,
                        help="trace-2 scale factor (default 0.02)")
    parser.add_argument("--export-dir", type=Path, default=None,
                        help="write JSONL/Chrome/CSV exports here")
    args = parser.parse_args()

    workload = generate_trace(trace2_config(scale=args.scale))
    print(f"Workload: {workload.name} — {len(workload):,} requests\n")

    results = {}
    for org in (Organization.RAID5, Organization.PARITY_STRIPING):
        results[org] = traced_run(org, workload)
        print(render_phases(results[org].trace))
        print()

    raid5, pstripe = (
        results[Organization.RAID5],
        results[Organization.PARITY_STRIPING],
    )
    print(render_compare(raid5.trace, pstripe.trace))
    print()
    print("Reading the tables: writes pay rmw_rotate (the extra revolution")
    print("between reading old data and writing new data) plus sync_wait")
    print("on the parity disk — the small-write penalty reads never incur.")

    if args.export_dir is not None:
        args.export_dir.mkdir(parents=True, exist_ok=True)
        for org, result in results.items():
            stem = args.export_dir / f"anatomy_{org.value}"
            result.trace.to_jsonl(f"{stem}.jsonl")
            result.trace.to_chrome(f"{stem}.chrome.json")
            (stem.parent / f"{stem.name}.metrics.csv").write_text(
                result.metrics.to_csv()
            )
            print(f"exported {stem}.jsonl / .chrome.json / .metrics.csv")


if __name__ == "__main__":
    main()
