#!/usr/bin/env python3
"""Compare all five organizations on the paper's Trace-2-like workload.

Reproduces the core of the paper's §4.2/§4.4 comparison on one array:
a skewed, bursty OLTP workload where RAID5's load balancing matters,
with and without a controller cache, including RAID4 with parity
caching (cached only, as in the paper).

Run:  python examples/compare_organizations.py [--scale 0.3]
"""

import argparse

from repro.sim import Organization, SystemConfig, run_trace
from repro.trace import generate_trace, trace2_config


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.3, help="trace scale")
    args = parser.parse_args()

    trace = generate_trace(trace2_config(scale=args.scale))
    print(f"Trace: {trace}")
    print(trace.stats().as_table())
    print()

    print(f"{'organization':18s} {'uncached rt':>12s} {'cached rt':>12s} "
          f"{'read HR':>8s} {'disks':>6s}")
    for org in Organization:
        row = [org.value.ljust(18)]
        cached_only = org is Organization.RAID4
        # Uncached.
        if cached_only:
            row.append(f"{'-':>12s}")
        else:
            cfg = SystemConfig(
                organization=org, n=10, blocks_per_disk=trace.blocks_per_disk
            )
            res = run_trace(cfg, trace)
            row.append(f"{res.mean_response_ms:12.2f}")
        # Cached (16 MB, Table 4 default).
        cfg = SystemConfig(
            organization=org,
            n=10,
            blocks_per_disk=trace.blocks_per_disk,
            cached=True,
            cache_mb=16.0,
        )
        res = run_trace(cfg, trace)
        row.append(f"{res.mean_response_ms:12.2f}")
        row.append(f"{res.read_hit_ratio:8.1%}")
        row.append(f"{cfg.disks_per_array:6d}")
        print(" ".join(row))

    print()
    print("Expected orderings (the paper's findings):")
    print(" - Mirror below Base (reads split over two arms).")
    print(" - RAID5 below Parity Striping (automatic load balancing).")
    print(" - Cached RAID4-PC at or below cached RAID5 for N = 10.")


if __name__ == "__main__":
    main()
