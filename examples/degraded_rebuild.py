#!/usr/bin/env python3
"""Media recovery in action: disk failure, degraded service, rebuild.

The paper's whole motivation is media recovery without mirroring's 100%
storage overhead.  This example fails a disk in a RAID5 array, serves a
workload in degraded mode, rebuilds onto a hot spare, and reports the
performance cost at every stage — the effect the paper alludes to in
§4.2.1 ("worse performance during reconstruction following a disk
failure").

Run:  python examples/degraded_rebuild.py
"""

import numpy as np

from repro.failure import DegradedParityController, RebuildProcess
from repro.channel import Channel
from repro.des import Environment
from repro.disk import Disk
from repro.sim import Organization, SystemConfig, run_trace
from repro.trace import TRACE_DTYPE, Trace

BPD = 221_760
N = 5
USED_BLOCKS = 30_000  # active slice rebuilt per disk


def workload(n=4000, seed=13):
    rng = np.random.default_rng(seed)
    records = np.empty(n, dtype=TRACE_DTYPE)
    records["time"] = np.cumsum(rng.exponential(12.0, size=n))
    records["lblock"] = rng.integers(0, N * BPD, size=n)
    records["nblocks"] = 1
    records["is_write"] = rng.random(n) < 0.2
    return Trace(records, N, BPD, name="recovery-demo")


def main():
    trace = workload()
    config = SystemConfig(
        organization=Organization.RAID5, n=N, blocks_per_disk=BPD
    )

    healthy = run_trace(config, trace, keep_samples=False)
    print(f"healthy array:      mean rt {healthy.mean_response_ms:6.2f} ms")

    # Same workload with disk 2 failed and a rebuild running.
    env = Environment()
    layout = config.make_layout()
    geometry = config.disk.geometry()
    seek = config.disk.seek_model()
    disks = [Disk(env, geometry, seek, name=f"d{i}") for i in range(layout.ndisks)]
    ctrl = DegradedParityController(
        env, layout, disks, Channel(env), config, failed_disk=2, spare=True
    )
    rebuild = RebuildProcess(ctrl, chunk_blocks=6, used_blocks=USED_BLOCKS)

    times = []

    def source(env):
        for rec in trace.records:
            t = float(rec["time"])
            if t > env.now:
                yield env.timeout(t - env.now)
            env.process(one(env, int(rec["lblock"]), bool(rec["is_write"])))

    def one(env, lb, w):
        t0 = env.now
        yield from ctrl.handle(lb, 1, w)
        times.append(env.now - t0)

    env.process(source(env))
    env.run(until=rebuild.process)
    env.run(until=env.now + 60_000)

    print(f"during rebuild:     mean rt {np.mean(times):6.2f} ms "
          f"({ctrl.degraded_reads} degraded reads, "
          f"{ctrl.degraded_writes} degraded writes)")
    print(f"rebuild duration:   {rebuild.duration_ms / 1000.0:6.1f} s "
          f"for {USED_BLOCKS} blocks/disk")
    print()
    print("Degraded reads cost a whole-group reconstruction (max over")
    print(f"{N} surviving arms); the spare absorbs traffic as the")
    print("watermark advances. Mirrors recover faster but cost 100%")
    print("extra storage — the paper's central trade-off.")


if __name__ == "__main__":
    main()
