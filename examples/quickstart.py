#!/usr/bin/env python3
"""Quickstart: simulate a small OLTP workload on two array organizations.

Builds a 10-data-disk database, generates a synthetic transaction
processing trace, and compares the Base organization against RAID5 —
first uncached (where RAID5 pays the small-write penalty), then with a
16 MB controller cache (which, as the paper shows, largely hides it).

Run:  python examples/quickstart.py
"""

from repro.sim import Organization, SystemConfig, run_trace
from repro.trace import SyntheticTraceConfig, generate_trace


def make_workload():
    """A 20k-request OLTP-flavoured trace: mostly single-block reads,
    25% writes, bursty arrivals, one hot disk."""
    cfg = SyntheticTraceConfig(
        name="quickstart",
        ndisks=10,
        blocks_per_disk=221_760,
        n_requests=20_000,
        duration_ms=1_200_000.0,  # 20 minutes
        write_fraction=0.25,
        multiblock_fraction=0.04,
        multiblock_mean_extra=8.0,
        max_request_blocks=32,
        disk_zipf=1.1,
        hot_spot_fraction=0.03,
        hot_spot_weight=0.25,
        sequential_prob=0.1,
        rehit_prob=0.35,
        rehit_window=30_000,
        stack_median=5_000.0,
        stack_sigma=1.2,
        write_after_read_prob=0.6,
        recent_read_window=2_000,
        burst_rate_multiplier=15.0,
        burst_fraction=0.35,
        burst_mean_length=80.0,
        seed=42,
    )
    return generate_trace(cfg)


def main():
    trace = make_workload()
    print("Workload:")
    print(trace.stats().as_table())
    print()

    for cached in (False, True):
        mode = "cached (16 MB)" if cached else "uncached"
        print(f"=== {mode} ===")
        for org in (Organization.BASE, Organization.RAID5):
            config = SystemConfig(
                organization=org,
                n=10,
                blocks_per_disk=trace.blocks_per_disk,
                cached=cached,
                cache_mb=16.0,
            )
            result = run_trace(config, trace)
            print(result.summary())
            print()


if __name__ == "__main__":
    main()
