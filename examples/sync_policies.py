#!/usr/bin/env python3
"""Parity synchronization policies (§3.3) head-to-head.

Shows why Simultaneous Issue wastes the parity disk (held spinning
waiting for the old data) and why Disk First with PRiority is the
paper's overall winner, on an uncached RAID5 array under a bursty
write-heavy workload.

Run:  python examples/sync_policies.py
"""

import numpy as np

from repro.sim import Organization, SystemConfig, run_trace
from repro.trace import TRACE_DTYPE, Trace

BPD = 221_760


def write_heavy_trace(n=6000, seed=9):
    """Bursty 40%-write workload over 10 logical disks."""
    rng = np.random.default_rng(seed)
    records = np.empty(n, dtype=TRACE_DTYPE)
    t = 0.0
    for i in range(n):
        t += 4.0 if i % 20 else 700.0  # bursts of 20 requests
        records["time"][i] = t
        disk = int(rng.integers(0, 10))
        records["lblock"][i] = disk * BPD + int(rng.integers(0, BPD))
    records["nblocks"] = 1
    records["is_write"] = rng.random(n) < 0.4
    return Trace(records, 10, BPD, name="write-heavy")


def main():
    trace = write_heavy_trace()
    print(f"Workload: {trace} ({np.mean(trace.is_write):.0%} writes)")
    print()
    print(f"{'policy':8s} {'mean rt':>8s} {'write rt':>9s} {'disk util':>10s}")
    for policy in ("SI", "RF", "RF/PR", "DF", "DF/PR"):
        config = SystemConfig(
            organization=Organization.RAID5,
            n=10,
            blocks_per_disk=BPD,
            sync_policy=policy,
        )
        res = run_trace(config, trace)
        print(
            f"{policy:8s} {res.mean_response_ms:8.2f} "
            f"{res.write_response.mean:9.2f} {res.mean_disk_utilization:10.2%}"
        )
    print()
    print("Expected (Fig. 4): SI worst (parity disk held spinning);")
    print("DF below RF; priority (/PR) variants best overall.")


if __name__ == "__main__":
    main()
