#!/usr/bin/env python3
"""Cache sizing study: hit ratios and response time vs cache size.

Uses the fast cache-only simulator for the hit-ratio sweep (cheap) and
the full discrete-event simulator for the response-time points,
mirroring the paper's §4.3 methodology on the Trace-1-like workload.

Run:  python examples/cache_tuning.py [--scale 0.05]
"""

import argparse

from repro.cache import simulate_hit_ratios
from repro.sim import Organization, SystemConfig, run_trace
from repro.trace import generate_trace, slice_arrays, trace1_config

BLOCKS_PER_MB = 256


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    args = parser.parse_args()

    # One 10-disk array's worth of the Trace-1-like workload.
    full = generate_trace(trace1_config(scale=args.scale))
    trace = slice_arrays(full, 0, 10)
    print(f"Workload: {trace}")
    print()

    print("Hit ratios (fast cache-only simulation, parity organization):")
    print(f"{'cache MB':>8s} {'read HR':>8s} {'write HR':>9s} {'dirty repl':>10s}")
    for mb in (8, 16, 32, 64, 128):
        stats = simulate_hit_ratios(trace, 10, mb * BLOCKS_PER_MB, "parity")
        print(
            f"{mb:8d} {stats.read_hit_ratio:8.1%} {stats.write_hit_ratio:9.1%} "
            f"{stats.dirty_replacements:10d}"
        )
    print()

    print("Response time (full simulation, cached RAID5):")
    print(f"{'cache MB':>8s} {'mean rt':>8s} {'p95 rt':>8s} {'sync wb':>8s}")
    for mb in (8, 16, 32):
        config = SystemConfig(
            organization=Organization.RAID5,
            n=10,
            blocks_per_disk=trace.blocks_per_disk,
            cached=True,
            cache_mb=float(mb),
        )
        res = run_trace(config, trace, keep_samples=True)
        wb = sum(a.sync_writebacks for a in res.arrays)
        print(
            f"{mb:8d} {res.mean_response_ms:8.2f} {res.p95_response_ms:8.2f} {wb:8d}"
        )
    print()
    print("The paper's observation: a 16 MB cache practically eliminates")
    print("the RAID5 write penalty (response ~1% above Base for Trace 1).")


if __name__ == "__main__":
    main()
