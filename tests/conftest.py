"""Repo-wide pytest configuration."""


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="Regenerate the golden snapshots under tests/golden/ from the "
        "current simulator instead of comparing against them.",
    )
