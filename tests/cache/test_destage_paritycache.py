"""Tests for destage planning and the RAID4 parity cache queue."""

import pytest

from repro.cache import LRUCache, ParityCacheQueue, plan_destage_runs
from repro.layout import BaseLayout, Raid5Layout


class TestPlanDestageRuns:
    def test_empty_when_clean(self):
        cache = LRUCache(16)
        layout = BaseLayout(4, 240)
        assert plan_destage_runs(cache, layout) == []

    def test_groups_consecutive_physical_blocks(self):
        cache = LRUCache(16)
        layout = BaseLayout(4, 240)
        for b in (10, 11, 12, 50):
            cache.write(b)
        runs = plan_destage_runs(cache, layout)
        assert len(runs) == 2
        assert runs[0].start == 10 and runs[0].nblocks == 3
        assert runs[1].start == 50 and runs[1].nblocks == 1
        assert runs[0].lblocks == [10, 11, 12]

    def test_marks_blocks_destaging(self):
        cache = LRUCache(16)
        layout = BaseLayout(4, 240)
        cache.write(5)
        plan_destage_runs(cache, layout)
        assert cache.get(5).destaging
        # A second plan skips in-flight blocks.
        assert plan_destage_runs(cache, layout) == []

    def test_respects_max_blocks(self):
        cache = LRUCache(64)
        layout = BaseLayout(4, 240)
        for b in range(20):
            cache.write(b)
        runs = plan_destage_runs(cache, layout, max_blocks=5)
        assert sum(r.nblocks for r in runs) == 5

    def test_raid5_su1_groups_per_disk(self):
        """With a 1-block striping unit, logically consecutive dirty
        blocks land on different disks -> one run per disk."""
        cache = LRUCache(16)
        layout = Raid5Layout(4, 240, striping_unit=1)
        for b in (0, 1, 2, 3):
            cache.write(b)
        runs = plan_destage_runs(cache, layout)
        assert len(runs) == 4
        assert {r.disk for r in runs} == {
            layout.map_block(b).disk for b in range(4)
        }

    def test_all_old_cached_flag(self):
        cache = LRUCache(16, track_old=True)
        layout = BaseLayout(4, 240)
        cache.insert_clean(10)
        cache.write(10)  # has old
        cache.write(11)  # write miss: no old
        runs = plan_destage_runs(cache, layout)
        assert len(runs) == 1
        assert not runs[0].all_old_cached

    def test_all_old_cached_true_case(self):
        cache = LRUCache(16, track_old=True)
        layout = BaseLayout(4, 240)
        for b in (10, 11):
            cache.insert_clean(b)
            cache.write(b)
        runs = plan_destage_runs(cache, layout)
        assert runs[0].all_old_cached


class TestParityCacheQueue:
    @pytest.fixture
    def cache(self):
        return LRUCache(8)

    @pytest.fixture
    def queue(self, cache):
        return ParityCacheQueue(cache)

    def test_add_reserves_slot(self, cache, queue):
        assert queue.add(100)
        assert cache.reserved_slots == 1
        assert len(queue) == 1
        assert 100 in queue

    def test_merge_no_extra_slot(self, cache, queue):
        queue.add(100)
        queue.add(100, full=True)
        assert cache.reserved_slots == 1
        assert len(queue) == 1
        assert queue.merged == 1

    def test_full_flag_upgrades_and_sticks(self, queue):
        queue.add(100, full=True)
        queue.add(100, full=False)
        deltas, _ = queue.pop_scan_run(0, True)
        assert deltas[0].full

    def test_rejects_when_cache_full(self, cache, queue):
        cache.reserve_slots(8)
        assert not queue.add(100)
        assert queue.rejected == 1

    def test_pop_scan_ascending(self, queue):
        for b in (50, 10, 90):
            queue.add(b)
        delta, up = queue.pop_scan(20, True)
        assert delta.pblock == 50
        assert up is True

    def test_pop_scan_reverses_at_top(self, queue):
        for b in (10, 30):
            queue.add(b)
        delta, up = queue.pop_scan(40, True)  # nothing above 40
        assert delta.pblock == 30
        assert up is False
        delta, up = queue.pop_scan(30, False)
        assert delta.pblock == 10

    def test_pop_scan_reverses_at_bottom(self, queue):
        queue.add(50)
        delta, up = queue.pop_scan(10, False)
        assert delta.pblock == 50
        assert up is True

    def test_pop_empty_returns_none(self, queue):
        assert queue.pop_scan(0, True) is None
        assert queue.pop_scan_run(0, True) is None

    def test_pop_does_not_release_slot(self, cache, queue):
        queue.add(100)
        queue.pop_scan(0, True)
        assert cache.reserved_slots == 1  # caller releases after the write

    def test_pop_scan_run_coalesces_adjacent(self, queue):
        for b in (10, 11, 12, 40):
            queue.add(b)
        deltas, up = queue.pop_scan_run(0, True)
        assert [d.pblock for d in deltas] == [10, 11, 12]
        assert len(queue) == 1

    def test_pop_scan_run_respects_full_boundary(self, queue):
        queue.add(10, full=False)
        queue.add(11, full=True)
        deltas, _ = queue.pop_scan_run(0, True)
        assert len(deltas) == 1

    def test_pop_scan_run_max_blocks(self, queue):
        for b in range(20):
            queue.add(b)
        deltas, _ = queue.pop_scan_run(0, True, max_blocks=4)
        assert len(deltas) == 4

    def test_peek_all_sorted(self, queue):
        for b in (5, 1, 9):
            queue.add(b)
        assert queue.peek_all() == [1, 5, 9]

    def test_scan_order_never_skips(self, queue):
        """Elevator property: a full ascending pass visits blocks in
        nondecreasing order until reversal."""
        import random

        rng = random.Random(3)
        blocks = rng.sample(range(1000), 50)
        for b in blocks:
            queue.add(b)
        pos, up = 0, True
        visited = []
        while len(queue):
            delta, up = queue.pop_scan(pos, up)
            visited.append(delta.pblock)
            pos = delta.pblock
        # One ascending sweep then one descending sweep.
        peak = visited.index(max(visited))
        assert visited[: peak + 1] == sorted(visited[: peak + 1])
        assert visited[peak:] == sorted(visited[peak:], reverse=True)
