"""Randomized property tests: LRUCache versus an independent reference model.

Hypothesis drives the cache with arbitrary legal operation streams and
checks, after every step, that residency, recency order, dirty state,
old-copy and reservation accounting all match a straightforward
reference implementation (a plain OrderedDict of dicts).  The reference
re-implements the §3.4 semantics from the docstrings, not from the
cache's code, so an agreement failure means the cache diverged from its
spec.
"""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.lru import BlockState, LRUCache

CAPACITY = 8
BLOCKS = 12  # > capacity, to force eviction pressure

ops_st = st.lists(st.integers(min_value=0, max_value=6 * BLOCKS - 1), max_size=200)


class Reference:
    """Independent model of the cache's documented semantics."""

    def __init__(self, capacity, track_old):
        self.capacity = capacity
        self.track_old = track_old
        self.entries = OrderedDict()  # lblock -> dict
        self.old_copies = 0
        self.reserved = 0

    @property
    def occupancy(self):
        return len(self.entries) + self.old_copies + self.reserved

    @property
    def free(self):
        return self.capacity - self.occupancy

    def read(self, b):
        if b in self.entries:
            self.entries.move_to_end(b)
            return True
        return False

    def insert_clean(self, b):
        self.entries[b] = dict(dirty=False, old=False, destaging=False, redirtied=False)

    def write(self, b):
        e = self.entries.get(b)
        if e is None:
            self.entries[b] = dict(dirty=True, old=False, destaging=False, redirtied=False)
            return
        self.entries.move_to_end(b)
        if not e["dirty"]:
            e["dirty"] = True
            if self.track_old:
                e["old"] = True
                self.old_copies += 1
        elif e["destaging"]:
            e["redirtied"] = True

    def evict(self, b):
        del self.entries[b]

    def begin_destage(self, b):
        e = self.entries[b]
        e["destaging"] = True
        e["redirtied"] = False

    def finish_destage(self, b):
        e = self.entries[b]
        e["destaging"] = False
        if e["old"]:
            e["old"] = False
            self.old_copies -= 1
        if e["redirtied"]:
            e["redirtied"] = False
            if self.track_old and self.free >= 1:
                e["old"] = True
                self.old_copies += 1
        else:
            e["dirty"] = False


def apply_op(cache, ref, code):
    """Decode one operation and apply it to both implementations."""
    kind, b = divmod(code, BLOCKS)
    if kind == 0:  # read probe
        assert cache.probe_read([b]) == ref.read(b)
    elif kind == 1:  # fill from disk
        if b not in cache and cache.free_slots >= 1:
            cache.insert_clean(b)
            ref.insert_clean(b)
    elif kind == 2:  # host write
        entry = cache.get(b)
        if entry is None:
            legal = cache.free_slots >= 1
        elif entry.state is BlockState.CLEAN and cache.track_old:
            legal = entry.has_old or cache.free_slots >= 1
        else:
            legal = True
        if legal:
            cache.write(b)
            ref.write(b)
    elif kind == 3:  # replacement
        candidate = cache.eviction_candidate()
        if candidate is not None:
            lb, entry = candidate
            if entry.state is BlockState.CLEAN:
                cache.evict(lb)
                ref.evict(lb)
    elif kind == 4:  # destage begin/finish
        dirty = cache.dirty_blocks()
        if dirty and b % 2 == 0:
            lb = min(dirty)
            cache.begin_destage(lb)
            ref.begin_destage(lb)
        else:
            in_flight = [
                lb for lb, e in cache.iter_blocks() if e.destaging
            ]
            if in_flight:
                lb = min(in_flight)
                cache.finish_destage(lb)
                ref.finish_destage(lb)
    else:  # slot reservation traffic (parity deltas)
        if b % 2 == 0:
            if cache.reserve_slots(1):
                ref.reserved += 1
        elif cache.reserved_slots:
            cache.release_slots(1)
            ref.reserved -= 1


def check_agreement(cache, ref):
    assert list(lb for lb, _ in cache.iter_blocks()) == list(ref.entries)
    assert cache.occupancy == ref.occupancy <= cache.capacity
    assert cache.old_copies == ref.old_copies
    assert cache.reserved_slots == ref.reserved
    for lb, entry in cache.iter_blocks():
        model = ref.entries[lb]
        assert (entry.state is BlockState.DIRTY) == model["dirty"], lb
        assert entry.has_old == model["old"], lb
        assert entry.destaging == model["destaging"], lb
    assert sorted(cache.dirty_blocks(include_destaging=True)) == sorted(
        lb for lb, e in ref.entries.items() if e["dirty"]
    )


class TestLRUAgainstReference:
    @given(ops=ops_st, track_old=st.booleans())
    @settings(max_examples=200, deadline=None)
    def test_random_op_streams_agree(self, ops, track_old):
        cache = LRUCache(CAPACITY, track_old=track_old)
        ref = Reference(CAPACITY, track_old)
        for code in ops:
            apply_op(cache, ref, code)
            check_agreement(cache, ref)

    @given(ops=ops_st)
    @settings(max_examples=100, deadline=None)
    def test_eviction_order_is_least_recently_used(self, ops):
        """The eviction candidate is always the least recently used
        non-destaging block of the reference ordering."""
        cache = LRUCache(CAPACITY, track_old=False)
        ref = Reference(CAPACITY, track_old=False)
        for code in ops:
            apply_op(cache, ref, code)
            candidate = cache.eviction_candidate()
            expected = next(
                (lb for lb, e in ref.entries.items() if not e["destaging"]), None
            )
            assert (candidate[0] if candidate else None) == expected
