"""Tests for the fast cache-only hit-ratio simulator."""

import numpy as np
import pytest

from repro.cache import simulate_hit_ratios
from repro.layout import Raid4Layout
from repro.trace import TRACE_DTYPE, Trace


def make_trace(rows, ndisks=4, bpd=1000):
    records = np.array(rows, dtype=TRACE_DTYPE)
    return Trace(records, ndisks, bpd)


class TestBasics:
    def test_validation(self):
        t = make_trace([(0.0, 0, 1, False)])
        with pytest.raises(ValueError, match="divisible"):
            simulate_hit_ratios(t, 3, 100)
        with pytest.raises(ValueError, match="layout"):
            simulate_hit_ratios(t, 4, 100, "raid4pc")

    def test_cold_miss_then_hit(self):
        t = make_trace([(0.0, 5, 1, False), (1.0, 5, 1, False)])
        s = simulate_hit_ratios(t, 4, 100)
        assert s.read_misses == 1
        assert s.read_hits == 1
        assert s.read_hit_ratio == 0.5

    def test_write_then_read_hits(self):
        t = make_trace([(0.0, 5, 1, True), (1.0, 5, 1, False)])
        s = simulate_hit_ratios(t, 4, 100)
        assert s.write_misses == 1
        assert s.read_hits == 1

    def test_multiblock_hit_requires_all(self):
        t = make_trace(
            [
                (0.0, 5, 1, False),
                (1.0, 5, 2, False),  # block 6 missing -> request miss
                (2.0, 5, 2, False),  # now both present -> hit
            ]
        )
        s = simulate_hit_ratios(t, 4, 100)
        assert s.read_misses == 2
        assert s.read_hits == 1

    def test_capacity_eviction(self):
        rows = [(float(i), i, 1, False) for i in range(10)]
        rows.append((10.0, 0, 1, False))  # 0 evicted by then (cache=4)
        t = make_trace(rows)
        s = simulate_hit_ratios(t, 4, 4)
        assert s.read_hits == 0

    def test_lru_policy(self):
        rows = [
            (0.0, 0, 1, False),
            (1.0, 1, 1, False),
            (2.0, 0, 1, False),  # touch 0
            (3.0, 2, 1, False),  # evicts 1 (cache=2)
            (4.0, 0, 1, False),  # hit
            (5.0, 1, 1, False),  # miss
        ]
        s = simulate_hit_ratios(make_trace(rows), 4, 2)
        assert s.read_hits == 2  # the touch at t=2 and the hit at t=4
        assert s.read_misses == 4

    def test_per_array_caches_are_independent(self):
        # Disk 0 -> array 0; disk 2 -> array 1 (N=2).
        rows = [
            (0.0, 5, 1, False),
            (1.0, 2005, 1, False),
            (2.0, 5, 1, False),
            (3.0, 2005, 1, False),
        ]
        s = simulate_hit_ratios(make_trace(rows), 2, 100)
        assert s.read_hits == 2
        assert s.read_misses == 2


class TestDestageAndOldBlocks:
    def test_parity_mode_lowers_capacity_for_reads(self):
        """Old copies in parity mode consume slots, lowering read hits
        for a tight cache (the Fig. 11 parity-vs-plain gap)."""
        rows = []
        t = 0.0
        for rep in range(40):
            for b in range(6):
                rows.append((t, b, 1, False))
                t += 1.0
                rows.append((t, b, 1, True))
                t += 1.0
        plain = simulate_hit_ratios(make_trace(rows), 4, 8, "plain", destage_period_ms=1e9)
        parity = simulate_hit_ratios(make_trace(rows), 4, 8, "parity", destage_period_ms=1e9)
        assert parity.read_hit_ratio <= plain.read_hit_ratio

    def test_destage_cleans_dirty(self):
        rows = [(0.0, 5, 1, True), (2000.0, 6, 1, False)]
        s = simulate_hit_ratios(make_trace(rows), 4, 100, destage_period_ms=1000.0)
        assert s.destage_cycles >= 1

    def test_dirty_replacement_counted(self):
        # Tiny cache, writes only, no destage -> dirty head replaced.
        rows = [(float(i), i, 1, True) for i in range(10)]
        s = simulate_hit_ratios(make_trace(rows), 4, 2, destage_period_ms=1e9)
        assert s.dirty_replacements > 0

    def test_raid4pc_mode_runs(self):
        layout = Raid4Layout(4, 1000, striping_unit=1)
        rows = [(float(i) * 100, i % 50, 1, i % 3 == 0) for i in range(200)]
        s = simulate_hit_ratios(
            make_trace(rows), 4, 64, "raid4pc", destage_period_ms=1000.0, layout=layout
        )
        assert s.read_hits + s.read_misses > 0

    def test_raid4pc_hit_ratio_not_higher_than_parity(self):
        """Buffered parity occupies slots: RAID4-PC read hit ratio must
        not exceed the plain parity organization's (Fig. 15)."""
        rng = np.random.default_rng(5)
        rows = []
        t = 0.0
        hot = rng.integers(0, 500, size=3000)
        for i, b in enumerate(hot):
            t += 50.0
            rows.append((t, int(b), 1, bool(rng.random() < 0.4)))
        layout = Raid4Layout(4, 1000, striping_unit=1)
        par = simulate_hit_ratios(make_trace(rows), 4, 128, "parity")
        pc = simulate_hit_ratios(
            make_trace(rows), 4, 128, "raid4pc", layout=layout
        )
        assert pc.read_hit_ratio <= par.read_hit_ratio + 0.01
