"""Unit and property tests for the LRU block cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import BlockState, LRUCache


class TestBasics:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_insert_and_lookup(self):
        c = LRUCache(4)
        c.insert_clean(10)
        assert 10 in c
        assert c.get(10).state is BlockState.CLEAN
        assert len(c) == 1
        assert c.occupancy == 1
        assert c.free_slots == 3

    def test_duplicate_insert_rejected(self):
        c = LRUCache(4)
        c.insert_clean(10)
        with pytest.raises(ValueError):
            c.insert_clean(10)

    def test_insert_without_room_rejected(self):
        c = LRUCache(1)
        c.insert_clean(1)
        with pytest.raises(RuntimeError):
            c.insert_clean(2)

    def test_probe_read_all_or_nothing(self):
        c = LRUCache(4)
        c.insert_clean(1)
        c.insert_clean(2)
        assert c.probe_read([1, 2])
        assert not c.probe_read([1, 2, 3])

    def test_touch(self):
        c = LRUCache(2)
        c.insert_clean(1)
        c.insert_clean(2)
        assert c.touch(1)
        assert not c.touch(99)
        # 2 is now the LRU candidate.
        assert c.lru_block()[0] == 2


class TestLRUOrder:
    def test_eviction_order_is_lru(self):
        c = LRUCache(3)
        for b in (1, 2, 3):
            c.insert_clean(b)
        c.touch(1)
        assert c.lru_block()[0] == 2
        c.evict(2)
        assert c.lru_block()[0] == 3

    def test_write_moves_to_mru(self):
        c = LRUCache(4)
        c.insert_clean(1)
        c.insert_clean(2)
        c.write(1)
        assert c.lru_block()[0] == 2

    def test_evict_requires_clean(self):
        c = LRUCache(4)
        c.insert_clean(1)
        c.write(1)  # now dirty
        with pytest.raises(RuntimeError):
            c.evict(1)

    def test_evict_missing_raises(self):
        with pytest.raises(KeyError):
            LRUCache(4).evict(1)

    def test_eviction_candidate_skips_destaging(self):
        c = LRUCache(4)
        c.insert_clean(1)
        c.insert_clean(2)
        c.write(1)
        c.begin_destage(1)
        # 1 is oldest but destaging; candidate must be 2.
        assert c.eviction_candidate()[0] == 2

    def test_eviction_candidate_none_when_all_destaging(self):
        c = LRUCache(4)
        c.write(1)
        c.begin_destage(1)
        assert c.eviction_candidate() is None


class TestDirtyAndOld:
    def test_write_miss_inserts_dirty_without_old(self):
        c = LRUCache(4, track_old=True)
        assert not c.write(5)
        e = c.get(5)
        assert e.state is BlockState.DIRTY
        assert not e.has_old
        assert c.occupancy == 1

    def test_write_hit_on_clean_keeps_old(self):
        """§3.4: old data kept to save the extra rotation at destage."""
        c = LRUCache(4, track_old=True)
        c.insert_clean(5)
        assert c.write(5)
        e = c.get(5)
        assert e.state is BlockState.DIRTY
        assert e.has_old
        assert c.old_copies == 1
        assert c.occupancy == 2  # block + old copy

    def test_no_old_tracking_for_plain_orgs(self):
        c = LRUCache(4, track_old=False)
        c.insert_clean(5)
        c.write(5)
        assert not c.get(5).has_old
        assert c.occupancy == 1

    def test_rewrite_dirty_keeps_single_old(self):
        c = LRUCache(4, track_old=True)
        c.insert_clean(5)
        c.write(5)
        c.write(5)
        assert c.old_copies == 1
        assert c.occupancy == 2

    def test_old_copy_requires_room(self):
        c = LRUCache(1, track_old=True)
        c.insert_clean(5)
        with pytest.raises(RuntimeError):
            c.write(5)

    def test_dirty_blocks_listing(self):
        c = LRUCache(8, track_old=True)
        c.write(1)
        c.write(2)
        c.insert_clean(3)
        assert sorted(c.dirty_blocks()) == [1, 2]
        assert c.dirty_count == 2


class TestDestageLifecycle:
    def test_full_cycle_frees_old_copy(self):
        c = LRUCache(4, track_old=True)
        c.insert_clean(5)
        c.write(5)
        c.begin_destage(5)
        assert c.dirty_blocks() == []  # in-flight excluded
        assert c.dirty_blocks(include_destaging=True) == [5]
        c.finish_destage(5)
        e = c.get(5)
        assert e.state is BlockState.CLEAN
        assert not e.has_old
        assert c.old_copies == 0
        assert c.occupancy == 1

    def test_begin_requires_dirty(self):
        c = LRUCache(4)
        c.insert_clean(5)
        with pytest.raises(RuntimeError):
            c.begin_destage(5)

    def test_double_begin_rejected(self):
        c = LRUCache(4)
        c.write(5)
        c.begin_destage(5)
        with pytest.raises(RuntimeError):
            c.begin_destage(5)

    def test_redirty_during_destage_stays_dirty(self):
        c = LRUCache(4, track_old=True)
        c.write(5)
        c.begin_destage(5)
        c.write(5)  # re-dirtied in flight
        c.finish_destage(5)
        e = c.get(5)
        assert e.state is BlockState.DIRTY
        # The destaged version is now on disk: it becomes the old copy.
        assert e.has_old
        assert 5 in c.dirty_blocks()

    def test_evict_mid_destage_rejected(self):
        c = LRUCache(4)
        c.write(5)
        c.begin_destage(5)
        c.finish_destage(5)
        c.write(5)
        c.begin_destage(5)
        with pytest.raises(RuntimeError):
            c.evict(5)


class TestReservations:
    def test_reserve_release(self):
        c = LRUCache(4)
        assert c.reserve_slots(3)
        assert c.occupancy == 3
        assert not c.reserve_slots(2)
        c.release_slots(3)
        assert c.occupancy == 0

    def test_reserve_validation(self):
        c = LRUCache(4)
        with pytest.raises(ValueError):
            c.reserve_slots(-1)
        with pytest.raises(ValueError):
            c.release_slots(1)

    def test_reservations_block_inserts(self):
        c = LRUCache(2)
        c.reserve_slots(2)
        with pytest.raises(RuntimeError):
            c.insert_clean(1)


class TestOccupancyInvariant:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["read", "write", "destage", "evict"]),
                st.integers(min_value=0, max_value=19),
            ),
            max_size=300,
        )
    )
    @settings(max_examples=100)
    def test_never_exceeds_capacity(self, ops):
        """Occupancy stays within capacity under arbitrary operation
        sequences that respect the make-room-first contract."""
        c = LRUCache(8, track_old=True)
        for op, block in ops:
            if op == "read":
                if c.get(block) is None:
                    if c.free_slots < 1:
                        continue
                    c.insert_clean(block)
                else:
                    c.touch(block)
            elif op == "write":
                e = c.get(block)
                need = 1 if e is None else (1 if e.state is BlockState.CLEAN and not e.has_old else 0)
                if c.free_slots < need:
                    continue
                c.write(block)
            elif op == "destage":
                for b in c.dirty_blocks():
                    c.begin_destage(b)
                    c.finish_destage(b)
            elif op == "evict":
                cand = c.eviction_candidate()
                if cand is not None and cand[1].state is BlockState.CLEAN:
                    c.evict(cand[0])
            assert 0 <= c.occupancy <= c.capacity
            assert c.old_copies >= 0
            # dirty set is consistent with entry states
            for b in c.dirty_blocks(include_destaging=True):
                assert c.get(b).state is BlockState.DIRTY
