"""Metamorphic cross-organization tests.

No oracle gives the absolute response time of a disk array, but the
paper's analysis fixes how the organizations must relate to each other.
Each test runs the same workload through two configurations whose
relationship is known and checks the relation, not the number:

* RAID5 with the striping unit grown to the whole disk stops rotating
  parity within the addressed range — like parity striping, each
  request touches one data disk plus a concentrated parity region, so
  the two must land close (§2.3);
* a mirrored pair routes each read to the member with the shorter seek
  and can never be slower than Base on a read-only workload;
* losing a disk makes reads reconstruct from all surviving members —
  degraded reads cannot beat fault-free reads.
"""

import numpy as np
import pytest

from repro.failure import DegradedParityController
from repro.array.uncached import UncachedParityController
from repro.channel import Channel
from repro.des import Environment
from repro.disk import Disk
from repro.sim import run_trace
from tests.validate.workload import BPD, config, make_trace


class TestWholeDiskStripingApproachesParityStriping:
    def test_raid5_whole_disk_su_close_to_parity_striping(self):
        # Light load: the comparison is about access anatomy (data RMW +
        # parity RMW), not queueing — a striping-unit change also shifts
        # queue contention, which would drown the relation.
        trace = make_trace(seed=5, n=150, rate_ms=40.0, write_frac=0.5)
        raid5 = run_trace(
            config(org="raid5", striping_unit=BPD), trace, warmup_fraction=0.1
        )
        pstripe = run_trace(
            config(org="parity_striping"), trace, warmup_fraction=0.1
        )
        assert raid5.mean_response_ms == pytest.approx(
            pstripe.mean_response_ms, rel=0.25
        )

    def test_small_striping_unit_differs_from_parity_striping(self):
        """Sanity check of the metamorphic premise: with fine striping
        the organizations do NOT coincide on multiblock traffic (RAID5
        spreads a run over several disks; parity striping does not)."""
        trace = make_trace(seed=5, n=150, rate_ms=40.0, write_frac=0.0)
        fine = run_trace(config(org="raid5", striping_unit=1), trace, warmup_fraction=0.1)
        pstripe = run_trace(config(org="parity_striping"), trace, warmup_fraction=0.1)
        assert fine.mean_response_ms != pytest.approx(
            pstripe.mean_response_ms, rel=0.02
        )


class TestMirrorReadRouting:
    def test_mirror_never_slower_than_base_on_reads(self):
        trace = make_trace(seed=9, n=250, write_frac=0.0, rate_ms=5.0)
        base = run_trace(config(org="base"), trace, warmup_fraction=0.1)
        mirror = run_trace(config(org="mirror"), trace, warmup_fraction=0.1)
        # Shortest-seek routing over two arms strictly dominates a single
        # arm; allow float-level slack only.
        assert mirror.mean_response_ms <= base.mean_response_ms * 1.01

    def test_mirror_read_gain_grows_with_load(self):
        """With deeper queues the second arm matters more (the paper's
        Fig. 4 trend: mirroring helps read-heavy loads)."""
        light = make_trace(seed=9, n=150, write_frac=0.0, rate_ms=40.0)
        heavy = make_trace(seed=9, n=300, write_frac=0.0, rate_ms=3.0)

        def gain(trace):
            base = run_trace(config(org="base"), trace, warmup_fraction=0.1)
            mirror = run_trace(config(org="mirror"), trace, warmup_fraction=0.1)
            return base.mean_response_ms / mirror.mean_response_ms

        assert gain(heavy) >= gain(light) * 0.95  # never collapses under load


def _build(degraded, n=4, bpd=240, failed=1, phase_seed=None):
    env = Environment()
    cfg = config(org="raid5", n=n, blocks_per_disk=bpd, spindle_sync=True)
    layout = cfg.make_layout()
    geo = cfg.disk.geometry()
    sm = cfg.disk.seek_model()
    if phase_seed is None:
        phases = [0.0] * layout.ndisks  # synchronized spindles
    else:
        phases = np.random.default_rng(phase_seed).random(layout.ndisks)
    disks = [
        Disk(env, geo, sm, name=f"d{i}", phase=phases[i])
        for i in range(layout.ndisks)
    ]
    channel = Channel(env)
    if degraded:
        ctrl = DegradedParityController(
            env, layout, disks, channel, cfg, failed_disk=failed, spare=False
        )
    else:
        ctrl = UncachedParityController(env, layout, disks, channel, cfg)
    return env, ctrl, layout


def _serve_one(env, ctrl, lb, k, is_write=False):
    out = {}

    def proc(env):
        t0 = env.now
        yield from ctrl.handle(lb, k, is_write)
        out["rt"] = env.now - t0

    p = env.process(proc(env))
    env.run(until=p)
    return out["rt"]


class TestDegradedReadsAreSlower:
    def test_reads_of_failed_blocks_cost_at_least_fault_free(self):
        """Reconstruction reads every surviving member: on an otherwise
        idle array a degraded read can never beat the fault-free read."""
        _, _, layout = _build(degraded=False)
        failed = 1
        # Logical blocks living on the failed disk.
        lbs = [
            lb
            for lb in range(layout.logical_blocks)
            if layout.map_block(lb).disk == failed
        ][:8]
        assert lbs, "test needs blocks on the failed disk"
        for lb in lbs:
            env_h, healthy, _ = _build(degraded=False)
            env_d, degraded, _ = _build(degraded=True, failed=failed)
            rt_healthy = _serve_one(env_h, healthy, lb, 1)
            rt_degraded = _serve_one(env_d, degraded, lb, 1)
            assert rt_degraded >= rt_healthy * (1 - 1e-9), lb

    def test_mean_degraded_penalty_is_positive(self):
        """With unsynchronized spindles, reconstructing from every
        surviving member waits for the *slowest* rotational latency —
        on average strictly worse than one disk's latency."""
        _, _, layout = _build(degraded=False)
        failed = 1
        lbs = [
            lb
            for lb in range(layout.logical_blocks)
            if layout.map_block(lb).disk == failed
        ][:12]
        healthy_rts, degraded_rts = [], []
        for lb in lbs:
            env_h, healthy, _ = _build(degraded=False, phase_seed=42)
            env_d, degraded, _ = _build(degraded=True, failed=failed, phase_seed=42)
            healthy_rts.append(_serve_one(env_h, healthy, lb, 1))
            degraded_rts.append(_serve_one(env_d, degraded, lb, 1))
        assert np.mean(degraded_rts) > np.mean(healthy_rts)

    def test_degraded_read_fans_out_to_all_survivors(self):
        """The structural half of the relation: a degraded read of a
        failed block touches every surviving disk, a healthy read one."""
        failed = 1
        _, _, layout = _build(degraded=False)
        lb = next(
            b for b in range(layout.logical_blocks)
            if layout.map_block(b).disk == failed
        )
        env_h, healthy, _ = _build(degraded=False)
        env_d, degraded, _ = _build(degraded=True, failed=failed)
        _serve_one(env_h, healthy, lb, 1)
        _serve_one(env_d, degraded, lb, 1)
        assert sum(d.completed for d in healthy.disks) == 1
        assert sum(d.completed for d in degraded.disks) == layout.ndisks - 1
