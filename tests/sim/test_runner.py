"""End-to-end tests of the trace-driven runner."""

import numpy as np
import pytest

from repro.sim import Organization, SystemConfig, run_trace
from repro.trace import TRACE_DTYPE, Trace

BPD = 2640


def make_trace(rows, ndisks=10, bpd=BPD):
    records = np.array(rows, dtype=TRACE_DTYPE)
    return Trace(records, ndisks, bpd, name="unit")


def config(org="base", **kw):
    kw.setdefault("blocks_per_disk", BPD)
    return SystemConfig(organization=Organization.parse(org), **kw)


class TestBasics:
    def test_single_read(self):
        trace = make_trace([(0.0, 0, 1, False)])
        res = run_trace(config(), trace, warmup_fraction=0.0)
        assert res.response.count == 1
        assert res.read_response.count == 1
        assert res.write_response.count == 0
        assert res.mean_response_ms > 0

    def test_mismatched_bpd_rejected(self):
        trace = make_trace([(0.0, 0, 1, False)], bpd=100)
        with pytest.raises(ValueError, match="blocks/disk"):
            run_trace(config(), trace)

    @pytest.mark.parametrize(
        "bad", [1.0, 1.5, -0.1, float("nan"), float("inf"), -float("inf")]
    )
    def test_bad_warmup(self, bad):
        # NaN fails both sides of the range check (comparisons with NaN
        # are false), so it must be rejected rather than slip through.
        trace = make_trace([(0.0, 0, 1, False)])
        with pytest.raises(ValueError, match="warmup_fraction"):
            run_trace(config(), trace, warmup_fraction=bad)

    def test_warmup_boundaries_accepted(self):
        trace = make_trace([(0.0, 0, 1, False)])
        assert run_trace(config(), trace, warmup_fraction=0.0).response.count == 1

    def test_checkers_require_validate(self):
        trace = make_trace([(0.0, 0, 1, False)])
        with pytest.raises(ValueError, match="validate"):
            run_trace(config(), trace, checkers=[])

    def test_validate_smoke(self):
        trace = make_trace([(0.0, 0, 1, False), (1.0, 4, 2, True)])
        res = run_trace(config("raid5"), trace, warmup_fraction=0.0, validate=True)
        assert res.response.count == 2


class TestTraceShapeValidation:
    """Malformed traces must be rejected at construction, not mid-run."""

    def test_nan_time_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            make_trace([(0.0, 0, 1, False), (float("nan"), 1, 1, False)])

    def test_inf_time_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            make_trace([(float("inf"), 0, 1, False)])

    def test_unsorted_times_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            make_trace([(5.0, 0, 1, False), (1.0, 1, 1, False)])

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            make_trace([(-1.0, 0, 1, False)])

    def test_zero_nblocks_rejected(self):
        with pytest.raises(ValueError, match="nblocks"):
            make_trace([(0.0, 0, 0, False)])

    def test_out_of_range_block_rejected(self):
        with pytest.raises(ValueError, match="address space"):
            make_trace([(0.0, 10 * BPD - 1, 2, False)])  # spills past the end
        with pytest.raises(ValueError, match="address space"):
            make_trace([(0.0, -1, 1, False)])

    def test_indivisible_disks_rejected(self):
        trace = make_trace([(0.0, 0, 1, False)], ndisks=7)
        with pytest.raises(ValueError):
            run_trace(config(), trace)

    def test_warmup_excludes_early_requests(self):
        rows = [(float(i) * 100.0, i, 1, False) for i in range(10)]
        trace = make_trace(rows)
        res = run_trace(config(), trace, warmup_fraction=0.5)
        assert res.response.count < 10
        assert res.requests == 10

    def test_arrival_times_respected(self):
        rows = [(1000.0, 0, 1, False)]
        res = run_trace(config(), make_trace(rows), warmup_fraction=0.0)
        assert res.simulated_ms >= 1000.0

    def test_multiple_arrays(self):
        rows = [
            (0.0, 0, 1, False),
            (1.0, 5 * BPD + 3, 1, False),  # second array (N=5)
        ]
        res = run_trace(config(n=5), make_trace(rows), warmup_fraction=0.0)
        assert res.narrays == 2
        assert res.response.count == 2
        assert len(res.arrays) == 2
        # Each array saw exactly one access.
        assert res.arrays[0].disk_accesses.sum() == 1
        assert res.arrays[1].disk_accesses.sum() == 1

    def test_request_spanning_arrays(self):
        rows = [(0.0, 5 * BPD - 1, 2, False)]  # one block in each array
        res = run_trace(config(n=5), make_trace(rows), warmup_fraction=0.0)
        assert res.response.count == 1
        assert res.arrays[0].disk_accesses.sum() == 1
        assert res.arrays[1].disk_accesses.sum() == 1

    def test_deterministic(self):
        rows = [(float(i) * 5.0, (i * 37) % (10 * BPD), 1, i % 4 == 0) for i in range(200)]
        r1 = run_trace(config("raid5"), make_trace(rows))
        r2 = run_trace(config("raid5"), make_trace(rows))
        assert r1.mean_response_ms == r2.mean_response_ms

    def test_keep_samples_false(self):
        rows = [(0.0, 0, 1, False)]
        res = run_trace(config(), make_trace(rows), keep_samples=False)
        with pytest.raises(ValueError):
            res.p95_response_ms


class TestEmptyRun:
    """A zero-request trace runs end to end and reports NaN headlines
    instead of raising."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_trace(config(), make_trace([]))

    def test_counts(self, result):
        assert result.requests == 0
        assert result.response.count == 0
        assert result.simulated_ms == 0.0

    def test_headline_properties_are_nan(self, result):
        import math

        for value in (
            result.mean_response_ms,
            result.p95_response_ms,
            result.read_hit_ratio,
            result.write_hit_ratio,
            result.io_rate_per_s,
        ):
            assert math.isnan(value)
        assert result.mean_disk_utilization == 0.0

    def test_summary_renders(self, result):
        text = result.summary()
        assert "requests measured" in text

    def test_empty_run_with_observability(self):
        res = run_trace(config(), make_trace([]), trace=True, metrics=True)
        assert res.trace is not None
        assert res.trace.roots() == []
        assert res.metrics.get("requests_total").value == 0.0


class TestMetrics:
    @pytest.fixture(scope="class")
    def result(self):
        rng = np.random.default_rng(11)
        rows = []
        t = 0.0
        for _ in range(500):
            t += float(rng.exponential(10.0))
            rows.append((t, int(rng.integers(0, 10 * BPD)), 1, bool(rng.random() < 0.3)))
        return run_trace(config("raid5", cached=True, cache_mb=1), make_trace(rows))

    def test_summary_renders(self, result):
        text = result.summary()
        assert "mean response" in text
        assert "hit ratios" in text

    def test_hit_ratios_in_range(self, result):
        assert 0.0 <= result.read_hit_ratio <= 1.0
        assert 0.0 <= result.write_hit_ratio <= 1.0

    def test_per_disk_accesses_shape(self, result):
        assert len(result.per_disk_accesses) == 11  # N+1 disks

    def test_utilizations_in_range(self, result):
        assert 0.0 <= result.mean_disk_utilization <= 1.0
        assert result.max_disk_utilization >= result.mean_disk_utilization

    def test_io_rate_positive(self, result):
        assert result.io_rate_per_s > 0


class TestCrossOrganizationSanity:
    """Small end-to-end runs must reproduce the paper's core orderings."""

    @pytest.fixture(scope="class")
    def skewed_bursty_trace(self):
        rng = np.random.default_rng(7)
        rows = []
        t = 0.0
        disks = [0] * 6 + [1, 2, 3, 4]  # disk 0 gets ~60% of the load
        for i in range(3000):
            # Bursts of 25 requests at 3 ms spacing, ~1.2 s apart: the
            # hot disk saturates during bursts in the Base organization.
            t += 3.0 if i % 25 else 1200.0
            disk = int(rng.choice(disks))
            block = disk * BPD + int(rng.integers(0, BPD))
            rows.append((t, block, 1, bool(rng.random() < 0.15)))
        return make_trace(rows, ndisks=5)

    @pytest.fixture(scope="class")
    def results(self, skewed_bursty_trace):
        out = {}
        for org in ("base", "mirror", "raid5", "parity_striping"):
            out[org] = run_trace(config(org, n=5), skewed_bursty_trace)
        return out

    def test_mirror_beats_base(self, results):
        assert results["mirror"].mean_response_ms < results["base"].mean_response_ms

    def test_raid5_balances_skewed_load(self, results):
        """Under heavy skew with queueing, RAID5 must beat Base (§4.2)."""
        assert results["raid5"].mean_response_ms < results["base"].mean_response_ms

    def test_raid5_beats_parity_striping(self, results):
        """The paper's headline: RAID5 outperforms Parity Striping in
        all cases because of load balancing."""
        assert (
            results["raid5"].mean_response_ms
            < results["parity_striping"].mean_response_ms
        )

    def test_raid5_access_counts_balanced(self, results):
        counts = results["raid5"].per_disk_accesses
        base_counts = results["base"].per_disk_accesses
        assert counts.std() / counts.mean() < base_counts.std() / base_counts.mean()

    def test_write_penalty_visible(self, results):
        """Parity organizations pay the RMW penalty on writes."""
        assert (
            results["raid5"].write_response.mean
            > results["base"].write_response.mean
        )
