"""Tests for the extension configuration knobs: spindle phases, disk
scheduler selection, parity grain wiring."""

import numpy as np
import pytest

from repro.des import Environment
from repro.disk import Disk, DiskGeometry, SeekModel
from repro.disk.scheduler import FCFSScheduler, SSTFScheduler
from repro.sim import Organization, SystemConfig, build_system

BPD = 2640


class TestSpindlePhases:
    def test_phase_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Disk(env, DiskGeometry(), SeekModel.fit(), phase=1.0)
        with pytest.raises(ValueError):
            Disk(env, DiskGeometry(), SeekModel.fit(), phase=-0.1)

    def test_phase_shifts_angle(self):
        env = Environment()
        geo = DiskGeometry()
        d0 = Disk(env, geo, SeekModel.fit(), phase=0.0)
        d5 = Disk(env, geo, SeekModel.fit(), phase=0.5)
        assert d0.angle_at(0.0) == 0.0
        assert d5.angle_at(0.0) == 0.5
        # Latency to block 0 differs by half a revolution.
        assert abs(
            d0.rotational_latency(0.0, 0) - d5.rotational_latency(0.0, 0)
        ) == pytest.approx(geo.revolution_time / 2)

    def test_unsynced_default_randomises(self):
        cfg = SystemConfig(organization=Organization.RAID5, blocks_per_disk=BPD)
        system = build_system(Environment(), cfg, 1)
        phases = {d.phase for d in system.controllers[0].disks}
        assert len(phases) > 1

    def test_spindle_sync_zeroes_phases(self):
        cfg = SystemConfig(
            organization=Organization.RAID5, blocks_per_disk=BPD, spindle_sync=True
        )
        system = build_system(Environment(), cfg, 1)
        assert {d.phase for d in system.controllers[0].disks} == {0.0}

    def test_phases_deterministic_by_seed(self):
        cfg = SystemConfig(organization=Organization.BASE, blocks_per_disk=BPD)
        a = build_system(Environment(), cfg, 1)
        b = build_system(Environment(), cfg, 1)
        assert [d.phase for d in a.controllers[0].disks] == [
            d.phase for d in b.controllers[0].disks
        ]
        c = build_system(Environment(), cfg.with_(phase_seed=5), 1)
        assert [d.phase for d in a.controllers[0].disks] != [
            d.phase for d in c.controllers[0].disks
        ]


class TestSchedulerSelection:
    def test_default_fcfs(self):
        cfg = SystemConfig(blocks_per_disk=BPD)
        system = build_system(Environment(), cfg, 1)
        assert isinstance(system.controllers[0].disks[0].scheduler, FCFSScheduler)

    def test_sstf_selected(self):
        cfg = SystemConfig(blocks_per_disk=BPD, disk_scheduler="sstf")
        system = build_system(Environment(), cfg, 1)
        assert isinstance(system.controllers[0].disks[0].scheduler, SSTFScheduler)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(disk_scheduler="elevator")


class TestParityGrainWiring:
    def test_layout_receives_grain(self):
        cfg = SystemConfig(
            organization=Organization.PARITY_STRIPING,
            blocks_per_disk=BPD,
            parity_grain=8,
        )
        layout = cfg.make_layout()
        assert layout.parity_grain == 8

    def test_grain_none_classic(self):
        cfg = SystemConfig(
            organization=Organization.PARITY_STRIPING, blocks_per_disk=BPD
        )
        assert cfg.make_layout().parity_grain is None

    def test_end_to_end_run_with_grain(self):
        from repro.sim import run_trace
        from repro.trace import TRACE_DTYPE, Trace

        rng = np.random.default_rng(2)
        records = np.empty(200, dtype=TRACE_DTYPE)
        records["time"] = np.cumsum(rng.exponential(10.0, 200))
        records["lblock"] = rng.integers(0, 10 * BPD, 200)
        records["nblocks"] = 1
        records["is_write"] = rng.random(200) < 0.3
        trace = Trace(records, 10, BPD)
        cfg = SystemConfig(
            organization=Organization.PARITY_STRIPING,
            blocks_per_disk=BPD,
            parity_grain=4,
        )
        res = run_trace(cfg, trace)
        assert res.mean_response_ms > 0
