"""Tests for SystemConfig, DiskParams and system building."""

import pytest

from repro.des import Environment
from repro.layout import (
    BaseLayout,
    MirrorLayout,
    ParityStripingLayout,
    Raid4Layout,
    Raid5Layout,
)
from repro.sim import DiskParams, Organization, SystemConfig, build_system


class TestOrganizationParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("base", Organization.BASE),
            ("Mirror", Organization.MIRROR),
            ("RAID5", Organization.RAID5),
            ("raid4", Organization.RAID4),
            ("parity_striping", Organization.PARITY_STRIPING),
            ("parity-striping", Organization.PARITY_STRIPING),
            ("parstripe", Organization.PARITY_STRIPING),
        ],
    )
    def test_parse(self, text, expected):
        assert Organization.parse(text) is expected

    def test_unknown(self):
        with pytest.raises(ValueError):
            Organization.parse("raid6")


class TestDiskParams:
    def test_table1_defaults(self):
        p = DiskParams()
        assert p.rpm == 5400.0
        assert p.average_seek_ms == 11.2
        assert p.maximal_seek_ms == 28.0
        assert p.cylinders == 1260
        assert p.sectors_per_track == 48
        assert p.bytes_per_sector == 512

    def test_geometry_factory(self):
        geo = DiskParams().geometry()
        assert geo.total_blocks == 226_800

    def test_seek_model_factory(self):
        sm = DiskParams().seek_model()
        assert sm.average_seek_time() == pytest.approx(11.2)


class TestSystemConfig:
    def test_table4_defaults(self):
        cfg = SystemConfig()
        assert cfg.n == 10
        assert cfg.block_bytes == 4096
        assert cfg.striping_unit == 1
        assert cfg.sync_policy == "DF"
        assert cfg.cache_mb == 16.0
        assert cfg.parity_placement.value == "middle"

    def test_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(n=0)
        with pytest.raises(ValueError):
            SystemConfig(cache_mb=0)
        with pytest.raises(ValueError):
            SystemConfig(sync_policy="bogus")
        with pytest.raises(ValueError):
            SystemConfig(rmw_threshold=0.0)
        with pytest.raises(ValueError):
            SystemConfig(destage_period_ms=0)

    def test_cache_blocks(self):
        assert SystemConfig(cache_mb=16).cache_blocks == 4096

    @pytest.mark.parametrize(
        "org,disks",
        [
            (Organization.BASE, 10),
            (Organization.MIRROR, 20),
            (Organization.RAID5, 11),
            (Organization.RAID4, 11),
            (Organization.PARITY_STRIPING, 11),
        ],
    )
    def test_disks_per_array(self, org, disks):
        assert SystemConfig(organization=org).disks_per_array == disks

    @pytest.mark.parametrize(
        "org,cls",
        [
            (Organization.BASE, BaseLayout),
            (Organization.MIRROR, MirrorLayout),
            (Organization.RAID5, Raid5Layout),
            (Organization.RAID4, Raid4Layout),
            (Organization.PARITY_STRIPING, ParityStripingLayout),
        ],
    )
    def test_make_layout(self, org, cls):
        cfg = SystemConfig(organization=org, n=10, blocks_per_disk=2640)
        assert isinstance(cfg.make_layout(), cls)

    def test_arrays_for(self):
        cfg = SystemConfig(n=10)
        assert cfg.arrays_for(130) == 13
        with pytest.raises(ValueError):
            cfg.arrays_for(7)

    def test_with_(self):
        cfg = SystemConfig(n=10)
        cfg2 = cfg.with_(n=5, cache_mb=8)
        assert cfg2.n == 5
        assert cfg2.cache_mb == 8
        assert cfg.n == 10  # original unchanged


class TestBuildSystem:
    def test_total_disks_equal_capacity_rule(self):
        """§3.2's cost accounting: Trace 1 at N=5 -> 26 arrays x 6 disks
        = 156 disks; at N=10 -> 13 arrays x 11 = 143 disks."""
        env = Environment()
        cfg5 = SystemConfig(organization=Organization.RAID5, n=5, blocks_per_disk=2640)
        sys5 = build_system(env, cfg5, cfg5.arrays_for(130))
        assert sys5.total_disks == 156
        cfg10 = SystemConfig(organization=Organization.RAID5, n=10, blocks_per_disk=2640)
        sys10 = build_system(Environment(), cfg10, cfg10.arrays_for(130))
        assert sys10.total_disks == 143

    def test_database_must_fit_disk(self):
        cfg = SystemConfig(blocks_per_disk=300_000)
        with pytest.raises(ValueError, match="exceeds"):
            build_system(Environment(), cfg, 1)

    def test_needs_one_array(self):
        with pytest.raises(ValueError):
            build_system(Environment(), SystemConfig(blocks_per_disk=2640), 0)

    def test_controller_routing(self):
        env = Environment()
        cfg = SystemConfig(organization=Organization.BASE, n=2, blocks_per_disk=2640)
        system = build_system(env, cfg, 3)
        idx, ctrl, local = system.controller_for(2 * 2640 + 17)
        assert idx == 1
        assert ctrl is system.controllers[1]
        assert local == 17

    def test_each_array_independent(self):
        env = Environment()
        cfg = SystemConfig(organization=Organization.RAID5, n=4, blocks_per_disk=2640)
        system = build_system(env, cfg, 2)
        a, b = system.controllers
        assert a.channel is not b.channel
        assert not set(id(d) for d in a.disks) & set(id(d) for d in b.disks)
