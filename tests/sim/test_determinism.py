"""Determinism guarantees of the kernel and the end-to-end simulator.

The reproducibility contract rests on the ``(time, sequence)`` event
heap: same-time events fire in scheduling order, so a seeded simulation
is a pure function of its inputs.  These tests pin that contract at the
kernel level and end-to-end across organizations.
"""

import numpy as np
import pytest

from repro.des import Environment
from repro.sim import run_trace
from tests.validate.workload import config, make_trace


class TestKernelOrdering:
    def test_same_time_events_fire_in_scheduling_order(self):
        env = Environment()
        order = []

        def proc(env, tag):
            yield env.timeout(5.0)  # all mature at exactly t=5
            order.append(tag)

        for tag in range(10):
            env.process(proc(env, tag))
        env.run()
        assert order == list(range(10))

    def test_interleaved_delays_keep_scheduling_order_within_ties(self):
        env = Environment()
        order = []

        def proc(env, tag, delay):
            yield env.timeout(delay)
            order.append((env.now, tag))

        # Tags 0..5 with delays engineered to collide at t=6.
        for tag, delay in enumerate([6.0, 3.0, 6.0, 2.0, 6.0, 6.0]):
            env.process(proc(env, tag, delay))
        env.run()
        ties = [tag for t, tag in order if t == 6.0]
        assert ties == [0, 2, 4, 5]

    def test_event_hooks_observe_nondecreasing_times(self):
        env = Environment()
        times = []
        env.on_event(lambda t, e: times.append(t))

        def proc(env):
            for d in (3.0, 0.0, 1.5, 0.0):
                yield env.timeout(d)

        env.process(proc(env))
        env.run()
        assert times == sorted(times)


ORGS = [
    dict(org="base"),
    dict(org="mirror"),
    dict(org="raid5"),
    dict(org="raid4", cached=True, cache_mb=4, parity_caching=True),
    dict(org="parity_striping", cached=True, cache_mb=4),
]


class TestEndToEndDeterminism:
    @pytest.mark.parametrize("kw", ORGS, ids=lambda kw: kw["org"])
    def test_identical_runs_are_bit_identical(self, kw):
        cfg = config(**kw)
        trace = make_trace(seed=3, n=120)
        a = run_trace(cfg, trace, warmup_fraction=0.1)
        b = run_trace(cfg, trace, warmup_fraction=0.1)

        assert a.simulated_ms == b.simulated_ms
        assert a.requests == b.requests
        # Every response-time sample, in order, bit for bit.
        assert np.array_equal(a.response.samples, b.response.samples)
        assert np.array_equal(a.read_response.samples, b.read_response.samples)
        assert np.array_equal(a.write_response.samples, b.write_response.samples)
        # Every per-array counter.
        for ma, mb in zip(a.arrays, b.arrays):
            assert np.array_equal(ma.disk_accesses, mb.disk_accesses)
            assert np.array_equal(ma.disk_utilization, mb.disk_utilization)
            assert ma.channel_utilization == mb.channel_utilization
            assert (ma.read_hits, ma.read_misses) == (mb.read_hits, mb.read_misses)
            assert (ma.write_hits, ma.write_misses) == (mb.write_hits, mb.write_misses)
            assert ma.destaged_blocks == mb.destaged_blocks

    def test_different_phase_seeds_differ(self):
        """The seed is load-bearing: unsynchronized spindle phases are
        drawn from it, so changing it must change the run."""
        trace = make_trace(seed=3, n=120)
        a = run_trace(config(org="raid5", phase_seed=1), trace, warmup_fraction=0.1)
        b = run_trace(config(org="raid5", phase_seed=2), trace, warmup_fraction=0.1)
        assert not np.array_equal(a.response.samples, b.response.samples)
