"""Streaming workloads through the simulator.

The contract: a :class:`TraceStream` and its ``materialize()``-d trace
drive a bit-identical simulation (the runner treats a materialized
trace as a single chunk), provided the warm-up cutoff is pinned with
``warmup_ms`` — a stream's ``duration_ms`` is the nominal target while
a trace's is the realized last arrival, so a *fractional* warm-up
resolves differently.  Also pinned here: observability instrumentation
(span tracer, metrics registry) composes with the request-plan cache
without perturbing results.
"""

import numpy as np
import pytest

from repro.sim import Organization, SystemConfig, run_trace
from repro.trace.synthetic import TraceStream, trace2_config

GEN = trace2_config(scale=0.01)  # ~700 requests over 10 data disks

ORGS = [
    dict(org=Organization.BASE),
    dict(org=Organization.MIRROR),
    dict(org=Organization.RAID5),
    dict(org=Organization.RAID4, cached=True, cache_mb=4, parity_caching=True),
    dict(org=Organization.PARITY_STRIPING, cached=True, cache_mb=4),
]


def _config(org, **kw):
    return SystemConfig(
        organization=org, blocks_per_disk=GEN.blocks_per_disk, n=10, **kw
    )


def _assert_identical(a, b, events=True):
    assert a.simulated_ms == b.simulated_ms
    assert a.requests == b.requests
    if events:
        # Instrumented runs schedule extra kernel events (the metrics
        # timeline sampler), so callers comparing across instrumentation
        # skip the event count — it is telemetry, not an outcome.
        assert a.events == b.events
    assert np.array_equal(a.response.samples, b.response.samples)
    assert np.array_equal(a.read_response.samples, b.read_response.samples)
    assert np.array_equal(a.write_response.samples, b.write_response.samples)
    for ma, mb in zip(a.arrays, b.arrays):
        assert np.array_equal(ma.disk_accesses, mb.disk_accesses)
        assert np.array_equal(ma.disk_utilization, mb.disk_utilization)
        assert ma.channel_utilization == mb.channel_utilization


class TestStreamVsMaterialized:
    @pytest.mark.parametrize("kw", ORGS, ids=lambda kw: kw["org"].value)
    def test_bit_identical_run(self, kw):
        kw = dict(kw)
        cfg = _config(kw.pop("org"), **kw)
        stream = TraceStream(GEN, chunk_requests=128)
        trace = stream.materialize()
        warmup_ms = trace.duration_ms * 0.1
        from_trace = run_trace(cfg, trace, warmup_ms=warmup_ms)
        from_stream = run_trace(cfg, stream, warmup_ms=warmup_ms)
        _assert_identical(from_trace, from_stream)

    def test_stream_runs_are_repeatable(self):
        cfg = _config(Organization.RAID5)
        stream = TraceStream(GEN, chunk_requests=128)
        a = run_trace(cfg, stream, warmup_ms=0.0)
        b = run_trace(cfg, stream, warmup_ms=0.0)
        _assert_identical(a, b)


class TestStreamGuards:
    def test_analytic_backend_rejects_streams(self):
        stream = TraceStream(GEN, chunk_requests=128)
        with pytest.raises(ValueError, match="materialize"):
            run_trace(_config(Organization.BASE), stream, backend="analytic")

    def test_negative_warmup_rejected(self):
        stream = TraceStream(GEN, chunk_requests=128)
        with pytest.raises(ValueError):
            run_trace(_config(Organization.BASE), stream, warmup_ms=-1.0)


class TestObsComposesWithPlanCache:
    """Event hooks (tracer/metrics) and the plan cache must not perturb
    each other: instrumented results equal plain results, cache on or
    off, and the cache still serves hits under instrumentation."""

    def test_instrumented_run_matches_plain(self):
        cfg = _config(Organization.RAID5)
        stream = TraceStream(GEN, chunk_requests=128)
        plain = run_trace(cfg, stream, warmup_ms=0.0)
        instrumented = run_trace(
            cfg, stream, warmup_ms=0.0, trace=True, metrics=True
        )
        _assert_identical(plain, instrumented, events=False)
        assert instrumented.trace is not None
        assert instrumented.metrics is not None
        assert sum(m.plan_hits for m in instrumented.arrays) > 0

    def test_cache_off_matches_instrumented_cache_on(self):
        stream = TraceStream(GEN, chunk_requests=128)
        on = run_trace(
            _config(Organization.RAID5), stream, warmup_ms=0.0, metrics=True
        )
        off = run_trace(
            _config(Organization.RAID5, plan_cache=False), stream, warmup_ms=0.0
        )
        _assert_identical(on, off, events=False)
