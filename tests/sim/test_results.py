"""Edge-case tests for the results module."""

import math

import numpy as np
import pytest

from repro.sim.results import ArrayMetrics, RunResult


def metrics(accesses, utils, chan=0.1, **kw):
    return ArrayMetrics(
        disk_accesses=np.asarray(accesses, dtype=np.int64),
        disk_utilization=np.asarray(utils, dtype=np.float64),
        channel_utilization=chan,
        **kw,
    )


class TestRunResultEdges:
    def test_empty_result(self):
        r = RunResult(
            name="x", organization="base", n=4, narrays=0,
            simulated_ms=0.0, requests=0, warmup_ms=0.0,
        )
        assert math.isnan(r.mean_response_ms)
        assert math.isnan(r.read_hit_ratio)
        assert math.isnan(r.mean_disk_utilization)
        assert len(r.per_disk_accesses) == 0
        assert math.isnan(r.io_rate_per_s) or r.io_rate_per_s == 0

    def test_aggregation_across_arrays(self):
        r = RunResult(
            name="x", organization="raid5", n=4, narrays=2,
            simulated_ms=2000.0, requests=10, warmup_ms=0.0,
        )
        r.arrays.append(metrics([1, 2], [0.1, 0.2], read_hits=3, read_misses=1))
        r.arrays.append(metrics([3, 4], [0.3, 0.4], read_hits=1, read_misses=3))
        assert list(r.per_disk_accesses) == [1, 2, 3, 4]
        assert r.mean_disk_utilization == pytest.approx(0.25)
        assert r.max_disk_utilization == pytest.approx(0.4)
        assert r.read_hit_ratio == pytest.approx(0.5)

    def test_io_rate(self):
        r = RunResult(
            name="x", organization="base", n=4, narrays=1,
            simulated_ms=2000.0, requests=10, warmup_ms=1000.0,
        )
        assert r.io_rate_per_s == pytest.approx(10.0)

    def test_summary_without_cache_stats(self):
        r = RunResult(
            name="x", organization="base", n=4, narrays=1,
            simulated_ms=100.0, requests=1, warmup_ms=0.0,
        )
        r.response.observe(5.0)
        r.read_response.observe(5.0)
        r.write_response.observe(1.0)
        r.arrays.append(metrics([1], [0.5]))
        text = r.summary()
        assert "hit ratios" not in text  # no cached counters recorded
        assert "mean response" in text

    def test_write_hit_ratio_nan_when_no_writes(self):
        r = RunResult(
            name="x", organization="base", n=4, narrays=1,
            simulated_ms=1.0, requests=0, warmup_ms=0.0,
        )
        r.arrays.append(metrics([1], [0.1]))
        assert math.isnan(r.write_hit_ratio)
