"""Property-based end-to-end tests of the full simulator.

Random small workloads against random configurations must always
complete, conserve requests, produce physically sensible times, and be
bit-for-bit reproducible.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.disk import DiskGeometry, SeekModel
from repro.models.gray import ZeroLoadModel
from repro.sim import Organization, SystemConfig, run_trace
from repro.trace import TRACE_DTYPE, Trace

BPD = 2640
CHAN_MS = 4096 / 10000.0

workload_st = st.lists(
    st.tuples(
        st.floats(min_value=0.1, max_value=50.0),  # interarrival
        st.integers(min_value=0, max_value=4 * BPD - 8),  # lblock
        st.integers(min_value=1, max_value=8),  # nblocks
        st.booleans(),  # write?
    ),
    min_size=1,
    max_size=60,
)

org_st = st.sampled_from(["base", "mirror", "raid5", "raid4", "parity_striping"])


def build_trace(rows):
    records = np.empty(len(rows), dtype=TRACE_DTYPE)
    t = 0.0
    for i, (gap, lb, k, w) in enumerate(rows):
        t += gap
        records["time"][i] = t
        records["lblock"][i] = min(lb, 4 * BPD - k)
        records["nblocks"][i] = k
        records["is_write"][i] = w
    return Trace(records, 4, BPD)


class TestEndToEndProperties:
    @given(workload_st, org_st, st.booleans())
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_all_requests_complete_with_sane_times(self, rows, org, cached):
        trace = build_trace(rows)
        cfg = SystemConfig(
            organization=Organization.parse(org),
            n=4,
            blocks_per_disk=BPD,
            cached=cached,
            cache_mb=1.0,
            destage_period_ms=200.0,
        )
        res = run_trace(cfg, trace, warmup_fraction=0.0)
        # Conservation: every request measured exactly once.
        assert res.response.count == len(trace)
        # Response times are bounded below by the channel transfer and
        # are finite.
        assert res.response.min >= CHAN_MS * 0.99
        assert np.isfinite(res.mean_response_ms)

    @given(workload_st, org_st)
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_deterministic_repetition(self, rows, org):
        trace = build_trace(rows)
        cfg = SystemConfig(
            organization=Organization.parse(org), n=4, blocks_per_disk=BPD
        )
        a = run_trace(cfg, trace)
        b = run_trace(cfg, trace)
        assert a.mean_response_ms == b.mean_response_ms
        assert list(a.per_disk_accesses) == list(b.per_disk_accesses)

    @given(workload_st)
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_uncached_reads_bounded_below_by_physics(self, rows):
        """No read finishes faster than its transfer + channel time."""
        trace = build_trace([(g, lb, 1, False) for g, lb, _, _ in rows])
        cfg = SystemConfig(
            organization=Organization.BASE, n=4, blocks_per_disk=BPD
        )
        res = run_trace(cfg, trace, warmup_fraction=0.0)
        xfer = DiskGeometry().block_transfer_time
        assert res.response.min >= (xfer + CHAN_MS) * 0.99

    @given(workload_st)
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_parity_write_penalty_lower_bound(self, rows):
        """Uncached RAID5 single-block updates take at least a full
        revolution beyond the channel time (the RMW penalty)."""
        writes = [(g, lb, 1, True) for g, lb, _, _ in rows]
        trace = build_trace(writes)
        cfg = SystemConfig(
            organization=Organization.RAID5, n=4, blocks_per_disk=BPD
        )
        res = run_trace(cfg, trace, warmup_fraction=0.0)
        rev = DiskGeometry().revolution_time
        assert res.write_response.min >= rev * 0.99

    @given(workload_st, st.integers(min_value=0, max_value=100))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_phase_seed_changes_only_timing(self, rows, seed):
        """Spindle phases perturb response times but never lose
        requests or change access placement."""
        trace = build_trace(rows)
        cfg = SystemConfig(
            organization=Organization.RAID5,
            n=4,
            blocks_per_disk=BPD,
            phase_seed=seed,
        )
        res = run_trace(cfg, trace, warmup_fraction=0.0)
        base = run_trace(
            cfg.with_(phase_seed=seed + 1), trace, warmup_fraction=0.0
        )
        assert res.response.count == base.response.count
        assert list(res.per_disk_accesses) == list(base.per_disk_accesses)


class TestCrossCheckAgainstModels:
    def test_idle_array_read_matches_zero_load_model(self):
        """Widely spaced random reads on the Base organization average
        to the Gray zero-load read time."""
        rng = np.random.default_rng(8)
        n = 300
        records = np.empty(n, dtype=TRACE_DTYPE)
        records["time"] = np.cumsum(rng.uniform(80.0, 120.0, n))
        records["lblock"] = rng.integers(0, 4 * BPD, n)
        records["nblocks"] = 1
        records["is_write"] = False
        trace = Trace(records, 4, BPD)
        cfg = SystemConfig(organization=Organization.BASE, n=4, blocks_per_disk=BPD)
        res = run_trace(cfg, trace, warmup_fraction=0.0)
        geo = DiskGeometry()
        sm = SeekModel.fit()
        model = ZeroLoadModel(geo, sm)
        # The database spans ~15 cylinders per disk: seek distances are
        # tiny but the settle time still applies to every arm move.
        cyls = BPD // geo.blocks_per_cylinder + 1
        dists = np.abs(
            np.subtract.outer(np.arange(cyls), np.arange(cyls))
        ).ravel()
        mean_seek = float(np.mean(sm.seek_times(dists)))
        expected = (
            mean_seek
            + model.expected_latency
            + geo.block_transfer_time
            + CHAN_MS
        )
        assert res.mean_response_ms == pytest.approx(expected, rel=0.1)
