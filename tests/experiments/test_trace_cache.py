"""The two-layer (memory LRU + on-disk npz) trace cache."""

import numpy as np
import pytest

from repro.experiments import trace_cache
from repro.experiments.trace_cache import (
    cache_dir,
    cached_generate,
    clear_memory_cache,
    config_key,
    memory_cache_size,
)
from repro.trace.synthetic import generate_trace, trace2_config


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Every test gets an empty disk cache and an empty memory LRU."""
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    clear_memory_cache()
    yield
    clear_memory_cache()


def small_cfg(scale=0.01, seed=None):
    cfg = trace2_config(scale=scale)
    if seed is not None:
        import dataclasses

        cfg = dataclasses.replace(cfg, seed=seed)
    return cfg


def test_cached_generate_matches_direct_generation():
    cfg = small_cfg()
    direct = generate_trace(cfg)
    cached = cached_generate(cfg)
    assert np.array_equal(cached.records, direct.records)
    assert (cached.ndisks, cached.blocks_per_disk, cached.name) == (
        direct.ndisks,
        direct.blocks_per_disk,
        direct.name,
    )


def test_disk_round_trip_survives_memory_clear():
    cfg = small_cfg()
    first = cached_generate(cfg)
    files = list(cache_dir().glob("*.npz"))
    assert len(files) == 1

    clear_memory_cache()
    second = cached_generate(cfg)  # must come from disk, not regeneration
    assert np.array_equal(first.records, second.records)
    # Same file, untouched (no rewrite on a disk hit).
    assert list(cache_dir().glob("*.npz")) == files


def test_memory_hit_returns_same_object():
    cfg = small_cfg()
    assert cached_generate(cfg) is cached_generate(cfg)


def test_config_key_covers_every_knob():
    base = small_cfg()
    assert config_key(base) == config_key(small_cfg())
    assert config_key(base) != config_key(small_cfg(seed=999))
    assert config_key(base) != config_key(small_cfg(scale=0.02))


def test_disabled_disk_cache_writes_nothing(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
    assert cache_dir() is None
    cfg = small_cfg()
    trace = cached_generate(cfg)
    assert np.array_equal(trace.records, generate_trace(cfg).records)


def test_corrupt_cache_file_regenerates():
    cfg = small_cfg()
    cached_generate(cfg)
    (path,) = cache_dir().glob("*.npz")
    path.write_bytes(b"not an npz archive")
    clear_memory_cache()
    trace = cached_generate(cfg)
    assert np.array_equal(trace.records, generate_trace(cfg).records)


def test_memory_lru_is_bounded(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_MEMCACHE", "2")
    assert memory_cache_size() == 2
    for seed in (1, 2, 3):
        cached_generate(small_cfg(seed=seed))
    assert len(trace_cache._memory) == 2


def test_memory_cache_can_be_disabled(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_MEMCACHE", "0")
    cached_generate(small_cfg())
    assert len(trace_cache._memory) == 0


def test_readonly_cache_dir_does_not_fail_the_run(monkeypatch, tmp_path):
    blocked = tmp_path / "blocked"
    blocked.mkdir()
    blocked.chmod(0o500)  # no write permission
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(blocked / "traces"))
    try:
        trace = cached_generate(small_cfg())
        assert len(trace) > 0
    finally:
        blocked.chmod(0o700)


class TestStats:
    """Hit/miss/eviction counters surfaced via stats()."""

    @pytest.fixture(autouse=True)
    def fresh_counters(self):
        trace_cache.reset_stats()
        yield
        trace_cache.reset_stats()

    def test_cold_lookup_counts_miss_generate_store(self):
        cached_generate(small_cfg())
        s = trace_cache.stats()
        assert s.disk_misses == 1
        assert s.generated == 1
        assert s.disk_stores == 1
        assert s.memory_hits == 0

    def test_memory_hit_counted(self):
        cfg = small_cfg()
        cached_generate(cfg)
        cached_generate(cfg)
        s = trace_cache.stats()
        assert s.memory_hits == 1
        assert s.generated == 1

    def test_disk_hit_counted_after_memory_clear(self):
        cfg = small_cfg()
        cached_generate(cfg)
        clear_memory_cache()
        cached_generate(cfg)
        s = trace_cache.stats()
        assert s.disk_hits == 1
        assert s.generated == 1  # no regeneration

    def test_eviction_counted(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_MEMCACHE", "1")
        cached_generate(small_cfg(seed=1))
        cached_generate(small_cfg(seed=2))
        assert trace_cache.stats().memory_evictions == 1

    def test_stats_snapshot_and_delta(self):
        before = trace_cache.stats()
        cached_generate(small_cfg())
        after = trace_cache.stats()
        assert before.generated == 0  # snapshot, not a live view
        d = after.delta(before)
        assert d.generated == 1 and d.disk_misses == 1

    def test_derived_ratios_and_dict(self):
        cfg = small_cfg()
        cached_generate(cfg)
        cached_generate(cfg)
        s = trace_cache.stats()
        assert s.lookups == 2
        assert s.hit_ratio == pytest.approx(0.5)
        d = s.as_dict()
        assert d["memory_hits"] == 1 and d["generated"] == 1

    def test_reset_stats_zeroes_everything(self):
        cached_generate(small_cfg())
        trace_cache.reset_stats()
        s = trace_cache.stats()
        assert s.lookups == 0 and s.generated == 0
