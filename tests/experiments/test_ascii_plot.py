"""Tests for the ASCII chart renderer."""

import pytest

from repro.experiments.ascii_plot import render_chart
from repro.experiments.common import ExperimentResult, Series


def result_with(series, xlabel="N", **kw):
    return ExperimentResult(
        exp_id="figX", title="demo", xlabel=xlabel, ylabel="ms", series=series, **kw
    )


class TestRenderChart:
    def test_basic_render(self):
        r = result_with([Series("a", [1, 2, 3], [10.0, 20.0, 15.0])])
        text = render_chart(r)
        assert "figX" in text
        assert "o a" in text  # legend with marker
        assert text.count("|") >= 32  # plot borders

    def test_markers_differ_per_series(self):
        r = result_with(
            [
                Series("a", [1, 2], [1.0, 2.0]),
                Series("b", [1, 2], [3.0, 4.0]),
            ]
        )
        text = render_chart(r)
        assert "o a" in text and "x b" in text
        body = text.split("\n")[1:-3]
        joined = "\n".join(body)
        assert "o" in joined and "x" in joined

    def test_log_x_for_wide_ranges(self):
        r = result_with([Series("a", [1, 8, 64], [1.0, 2.0, 3.0])], xlabel="su")
        assert "(log x)" in render_chart(r)

    def test_linear_x_for_narrow_ranges(self):
        r = result_with([Series("a", [5, 10, 15], [1.0, 2.0, 3.0])])
        assert "(log x)" not in render_chart(r)

    def test_categorical_x(self):
        r = result_with([Series("a", ["fcfs", "sstf"], [10.0, 8.0])])
        text = render_chart(r)
        assert "fcfs" in text and "sstf" in text

    def test_constant_series_renders(self):
        r = result_with([Series("a", [1, 2], [5.0, 5.0])])
        assert "figX" in render_chart(r)

    def test_nan_points_skipped(self):
        r = result_with([Series("a", [1, 2, 3], [1.0, float("nan"), 3.0])])
        assert "figX" in render_chart(r)

    def test_empty_series_list(self):
        r = result_with([])
        assert "(no series)" in render_chart(r)

    def test_too_small_rejected(self):
        r = result_with([Series("a", [1], [1.0])])
        with pytest.raises(ValueError):
            render_chart(r, width=4)
        with pytest.raises(ValueError):
            render_chart(r, height=2)

    def test_axis_labels_present(self):
        r = result_with([Series("a", [1, 2], [1.0, 2.0])])
        text = render_chart(r)
        assert "x: N" in text
        assert "y: ms" in text

    def test_cli_plot_flag(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table4", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "x: parameter" in out
