"""Content-keyed point-result store: keys, round-trips, resume."""

import json
import math

import pytest

from repro.experiments.points import PointValue
from repro.experiments.registry import get_experiment
from repro.experiments.result_store import (
    load_value,
    point_key,
    store_dir,
    store_value,
)

SCALE = 0.01


@pytest.fixture(autouse=True)
def isolated_stores(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path / "results"))
    from repro.experiments.trace_cache import clear_memory_cache

    clear_memory_cache()
    yield
    clear_memory_cache()


def some_points(exp_id="fig8"):
    return get_experiment(exp_id).points(SCALE)


class TestKey:
    def test_key_is_stable_across_calls(self):
        p = some_points()[0]
        assert point_key(p) == point_key(p)
        assert len(point_key(p)) == 32

    def test_distinct_points_get_distinct_keys(self):
        points = some_points()
        keys = {point_key(p) for p in points}
        assert len(keys) == len(points)

    def test_key_ignores_figure_identity(self):
        """The same (trace, org, overrides) cell shares one stored value
        even when two figures both sweep it."""
        import dataclasses

        p = some_points()[0]
        relabeled = dataclasses.replace(p, exp_id="other_fig", key=("z", 99))
        assert point_key(relabeled) == point_key(p)

    def test_key_sees_override_changes(self):
        import dataclasses

        p = some_points()[0]
        changed = dataclasses.replace(
            p, overrides=tuple(p.overrides) + (("backend", "analytic"),)
        )
        assert point_key(changed) != point_key(p)


class TestRoundTrip:
    def test_round_trip(self):
        value = PointValue(
            mean_response_ms=12.5, extras=(("events", 1234.0), ("util", 0.5))
        )
        store_value("k" * 32, value)
        back = load_value("k" * 32)
        assert back == value

    def test_nan_survives(self):
        value = PointValue(mean_response_ms=float("nan"))
        store_value("n" * 32, value)
        back = load_value("n" * 32)
        assert math.isnan(back.mean_response_ms)

    def test_missing_key_returns_none(self):
        assert load_value("m" * 32) is None

    def test_corrupt_entry_returns_none(self):
        store_value("c" * 32, PointValue(mean_response_ms=1.0))
        path = next(store_dir().glob("*.json"))
        path.write_text("{truncated")
        assert load_value("c" * 32) is None

    def test_stale_format_version_ignored(self):
        store_value("f" * 32, PointValue(mean_response_ms=1.0))
        path = next(store_dir().glob("*.json"))
        doc = json.loads(path.read_text())
        doc["format"] = 999
        path.write_text(json.dumps(doc))
        assert load_value("f" * 32) is None

    def test_disabled_store_is_inert(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_STORE", "off")
        store_value("d" * 32, PointValue(mean_response_ms=1.0))
        assert load_value("d" * 32) is None
        assert store_dir() is None


class TestResume:
    def test_resume_recomputes_zero_points(self, tmp_path):
        """Acceptance criterion: a warm-store re-run computes nothing."""
        from repro.experiments.parallel import run_campaign
        from repro.experiments.telemetry import CampaignRecorder, read_manifest

        ids = ["fig8"]
        rec1 = CampaignRecorder(tmp_path / "cold.jsonl")
        cold = run_campaign(ids, SCALE, jobs=1, recorder=rec1, resume=True)
        rec1.finalize()
        _, cold_points = read_manifest(rec1.manifest_path)
        assert all(p["provenance"] == "computed" for p in cold_points)

        rec2 = CampaignRecorder(tmp_path / "warm.jsonl")
        warm = run_campaign(ids, SCALE, jobs=1, recorder=rec2, resume=True)
        summary = rec2.finalize()
        _, warm_points = read_manifest(rec2.manifest_path)
        assert all(p["provenance"] == "stored" for p in warm_points)
        assert summary["computed"] == 0
        assert summary["stored"] == len(cold_points)

        as_dicts = lambda c: {e: [r.to_dict() for r in rs] for e, rs in c.items()}
        assert as_dicts(cold) == as_dicts(warm)

    def test_parallel_resume_recomputes_zero_points(self, tmp_path):
        from repro.experiments.parallel import run_campaign
        from repro.experiments.telemetry import CampaignRecorder, read_manifest

        ids = ["fig8"]
        cold = run_campaign(ids, SCALE, jobs=2, resume=True)

        rec = CampaignRecorder(tmp_path / "warm.jsonl")
        warm = run_campaign(ids, SCALE, jobs=2, recorder=rec, resume=True)
        rec.finalize()
        _, points = read_manifest(rec.manifest_path)
        assert points and all(p["provenance"] == "stored" for p in points)

        as_dicts = lambda c: {e: [r.to_dict() for r in rs] for e, rs in c.items()}
        assert as_dicts(cold) == as_dicts(warm)

    def test_without_resume_store_is_not_consulted(self, tmp_path):
        from repro.experiments.parallel import run_campaign
        from repro.experiments.telemetry import CampaignRecorder, read_manifest

        run_campaign(["fig8"], SCALE, jobs=1, resume=True)  # warm the store
        rec = CampaignRecorder(tmp_path / "m.jsonl")
        run_campaign(["fig8"], SCALE, jobs=1, recorder=rec, resume=False)
        rec.finalize()
        _, points = read_manifest(rec.manifest_path)
        assert all(p["provenance"] == "computed" for p in points)
