"""Serial/parallel campaign equivalence and failure handling."""

import json

import pytest

from repro.experiments.parallel import (
    CampaignError,
    default_jobs,
    run_campaign,
    run_points_parallel,
)
from repro.experiments.points import Point, TraceSpec, run_points
from repro.experiments.registry import EXPERIMENTS, get_experiment

#: Small enough to keep the suite fast, large enough that the sweeps
#: produce distinct values per cell.
SCALE = 0.01
#: One decomposed experiment (fig8: striping-unit sweep) and one
#: whole-unit experiment (fig6: pure trace statistics) — covers both
#: scheduling paths of the engine.
IDS = ["fig8", "fig6"]


def campaign_dicts(campaign):
    return {e: [r.to_dict() for r in results] for e, results in campaign.items()}


def test_parallel_campaign_matches_serial():
    serial = run_campaign(IDS, SCALE, jobs=1)
    parallel = run_campaign(IDS, SCALE, jobs=2)
    assert campaign_dicts(parallel) == campaign_dicts(serial)


def test_parallel_campaign_json_byte_identical(tmp_path):
    """The CLI's --json dump is byte-for-byte identical across modes."""
    serial = run_campaign(IDS, SCALE, jobs=1)
    parallel = run_campaign(IDS, SCALE, jobs=2)
    as_bytes = lambda c: json.dumps(campaign_dicts(c), indent=2).encode()
    assert as_bytes(serial) == as_bytes(parallel)


def test_run_points_parallel_matches_serial():
    points = get_experiment("fig8").points(SCALE)
    parallel = run_points_parallel(points, jobs=2)
    serial = run_points(points)
    assert parallel.keys() == serial.keys()
    # repr-compare: the hit-ratio fields are NaN for pure-sim points,
    # and NaN != NaN under dataclass equality.
    for key in serial:
        assert repr(parallel[key]) == repr(serial[key])


def test_progress_hook_sees_every_unit():
    calls = []
    run_campaign(
        IDS, SCALE, jobs=2, progress=lambda done, total, label: calls.append((done, total))
    )
    total = len(get_experiment("fig8").points(SCALE)) + 1  # + fig6 whole unit
    assert [c[0] for c in calls] == list(range(1, total + 1))
    assert all(c[1] == total for c in calls)


def test_failed_point_raises_campaign_error_not_hang():
    bad = Point.sim("bogus", ("only",), TraceSpec(2, 0.02), "no_such_org")
    with pytest.raises(CampaignError, match="bogus"):
        run_points_parallel([bad], jobs=2)


def test_duplicate_point_keys_rejected():
    spec = TraceSpec(2, 0.02)
    dupes = [Point.sim("x", ("same",), spec, "base"), Point.sim("x", ("same",), spec, "raid5")]
    with pytest.raises(ValueError, match="duplicate"):
        run_points_parallel(dupes, jobs=2)


def test_default_jobs_positive():
    assert default_jobs() >= 1


def test_run_contract_holds_for_every_decomposed_experiment():
    """points/assemble must be provided together (registry invariant)."""
    for exp in EXPERIMENTS.values():
        assert (exp.points is None) == (exp.assemble is None)


def test_decomposed_run_equals_assembled_points():
    """run(scale) == assemble(scale, run_points(points(scale))) for a
    representative decomposed experiment."""
    exp = get_experiment("fig8")
    direct = [r.to_dict() for r in exp.run(SCALE)]
    assembled = [
        r.to_dict() for r in exp.assemble(SCALE, run_points(exp.points(SCALE)))
    ]
    assert direct == assembled
