"""Campaign manifest well-formedness and serial/parallel equivalence."""

import json

import pytest

from repro.experiments.parallel import run_campaign
from repro.experiments.registry import get_experiment
from repro.experiments.telemetry import (
    MANIFEST_SCHEMA,
    CampaignRecorder,
    evaluate_point,
    read_manifest,
)

SCALE = 0.01
IDS = ["fig8", "fig6"]  # one decomposed, one whole-unit experiment


@pytest.fixture(autouse=True)
def isolated_caches(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    monkeypatch.setenv("REPRO_RESULT_STORE", "off")
    from repro.experiments.trace_cache import clear_memory_cache

    clear_memory_cache()
    yield
    clear_memory_cache()


def run_with_manifest(tmp_path, name, jobs):
    recorder = CampaignRecorder(tmp_path / f"{name}.jsonl")
    campaign = run_campaign(IDS, SCALE, jobs=jobs, recorder=recorder)
    summary = recorder.finalize(
        experiments=IDS, scale=SCALE, jobs=jobs, backend="des"
    )
    return campaign, recorder, summary


def test_manifest_covers_every_point(tmp_path):
    _, recorder, summary = run_with_manifest(tmp_path, "m", jobs=1)
    header, points = read_manifest(recorder.manifest_path)
    expected = len(get_experiment("fig8").points(SCALE)) + 1  # + fig6 whole
    assert header["schema"] == MANIFEST_SCHEMA
    assert header["points"] == expected
    assert len(points) == expected
    assert summary["points"] == expected
    # Every decomposed point of fig8 appears exactly once.
    keys = {tuple(p["key"]) for p in points if p["exp_id"] == "fig8"}
    assert keys == {p.key for p in get_experiment("fig8").points(SCALE)}


def test_records_are_well_formed(tmp_path):
    _, recorder, _ = run_with_manifest(tmp_path, "m", jobs=1)
    _, points = read_manifest(recorder.manifest_path)
    for p in points:
        assert p["provenance"] == "computed"
        assert p["wall_s"] >= 0
        assert p["worker_pid"] > 0
        assert p["backend"] in ("des", "analytic", "fastsim")
        if p["kind"] == "sim":
            assert p["events"] > 0
            assert p["events_per_s"] > 0
            assert len(p["config_hash"]) == 32
            assert isinstance(p["trace_cache"], dict)


def test_manifest_is_strict_jsonl(tmp_path):
    _, recorder, _ = run_with_manifest(tmp_path, "m", jobs=1)
    text = recorder.manifest_path.read_text()
    for line in text.strip().splitlines():
        doc = json.loads(line)  # would raise on NaN/Infinity
        assert doc["record"] in ("campaign", "point")
    # json.loads with parse_constant guard: the file must not use the
    # Python-only NaN literal.
    assert "NaN" not in text


#: Per-record fields that legitimately differ between runs/processes.
VOLATILE = ("wall_s", "events_per_s", "worker_pid", "trace_cache")


def stable(points):
    return [{k: v for k, v in p.items() if k not in VOLATILE} for p in points]


def test_serial_and_parallel_manifests_equivalent(tmp_path):
    serial_campaign, serial_rec, _ = run_with_manifest(tmp_path, "serial", jobs=1)
    parallel_campaign, parallel_rec, _ = run_with_manifest(tmp_path, "par", jobs=2)

    _, serial_points = read_manifest(serial_rec.manifest_path)
    _, parallel_points = read_manifest(parallel_rec.manifest_path)
    # Identical modulo worker pids and timing: same points, same order,
    # same hashes, same event counts, same values.
    assert stable(serial_points) == stable(parallel_points)

    # And telemetry never perturbs the campaign output itself.
    as_dicts = lambda c: {e: [r.to_dict() for r in rs] for e, rs in c.items()}
    assert as_dicts(serial_campaign) == as_dicts(parallel_campaign)


def test_campaign_with_recorder_matches_plain_run(tmp_path):
    plain = run_campaign(IDS, SCALE, jobs=1)
    recorded, _, _ = run_with_manifest(tmp_path, "m", jobs=1)
    as_dicts = lambda c: {e: [r.to_dict() for r in rs] for e, rs in c.items()}
    assert as_dicts(plain) == as_dicts(recorded)


def test_summary_totals_and_latency(tmp_path):
    _, recorder, summary = run_with_manifest(tmp_path, "m", jobs=1)
    assert summary["computed"] == summary["points"]
    assert summary["stored"] == 0
    assert summary["events"] > 0
    assert summary["events_per_s"] > 0
    assert "des" in summary["point_latency"]
    latency = summary["point_latency"]["des"]
    # fig8's decomposed points and fig6's whole-unit record all run on
    # the des backend, so every record lands in the same histogram.
    assert latency["count"] == summary["points"]
    assert latency["p95_s"] >= latency["p50_s"] > 0
    assert latency["buckets"]
    # The summary file on disk is valid JSON and matches.
    on_disk = json.loads(recorder.summary_path.read_text())
    assert on_disk["points"] == summary["points"]
    assert on_disk["schema"] == summary["schema"]


def test_read_manifest_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n")
    with pytest.raises(ValueError, match="not JSON"):
        read_manifest(bad)

    headerless = tmp_path / "headerless.jsonl"
    headerless.write_text(
        json.dumps(
            {
                "record": "point",
                "exp_id": "x",
                "key": [1],
                "provenance": "computed",
                "wall_s": 0.1,
                "backend": "des",
            }
        )
        + "\n"
    )
    with pytest.raises(ValueError, match="no campaign header"):
        read_manifest(headerless)

    incomplete = tmp_path / "incomplete.jsonl"
    incomplete.write_text(
        json.dumps({"record": "campaign", "schema": MANIFEST_SCHEMA})
        + "\n"
        + json.dumps({"record": "point", "exp_id": "x"})
        + "\n"
    )
    with pytest.raises(ValueError, match="missing"):
        read_manifest(incomplete)


def test_evaluate_point_matches_run_point():
    from repro.experiments.points import run_point

    point = get_experiment("fig8").points(SCALE)[0]
    value, record = evaluate_point(point)
    assert repr(value) == repr(run_point(point))
    assert record.exp_id == point.exp_id
    assert list(point.key) == record.key
    assert record.provenance == "computed"
    assert record.events == int(dict(value.extras)["events"])


def test_bench_show_renders_manifest(tmp_path, capsys):
    _, recorder, _ = run_with_manifest(tmp_path, "m", jobs=1)
    from repro.bench.__main__ import main

    assert main(["show", str(recorder.manifest_path)]) == 0
    out = capsys.readouterr().out
    assert "fig8" in out and "fig6" in out
    assert "slowest" in out
