"""ProgressPrinter: throttling, ETA, and TTY vs plain-line output."""

import io

from repro.experiments.parallel import ProgressPrinter, _format_eta, stderr_progress


class FakeTTY(io.StringIO):
    def isatty(self):
        return True


class TestFormatEta:
    def test_seconds(self):
        assert _format_eta(3.7) == "3s"
        assert _format_eta(0) == "0s"

    def test_minutes(self):
        assert _format_eta(125) == "2m05s"

    def test_hours(self):
        assert _format_eta(3720) == "1h02m"

    def test_negative_clamped(self):
        assert _format_eta(-5) == "0s"


class TestPlainLines:
    def test_first_and_last_always_print(self):
        stream = io.StringIO()
        printer = ProgressPrinter(interval_s=3600, stream=stream)
        for i in range(1, 11):
            printer(i, 10, f"unit-{i}")
        lines = stream.getvalue().strip().splitlines()
        # Everything between first and last falls inside the throttle
        # window, so exactly two lines survive.
        assert len(lines) == 2
        assert lines[0].startswith("[1/10]")
        assert lines[-1].startswith("[10/10]")

    def test_zero_interval_prints_every_unit(self):
        stream = io.StringIO()
        printer = ProgressPrinter(interval_s=0.0, stream=stream)
        for i in range(1, 6):
            printer(i, 5, "u")
        assert len(stream.getvalue().strip().splitlines()) == 5

    def test_line_contents(self):
        stream = io.StringIO()
        printer = ProgressPrinter(interval_s=0.0, stream=stream)
        printer(1, 4, "fig8:point-a")
        first = stream.getvalue().strip()
        assert "[1/4]" in first
        assert "fig8:point-a" in first
        # ETA needs a nonzero elapsed baseline, so it appears from the
        # second update onward.
        printer(2, 4, "fig8:point-b")
        second = stream.getvalue().strip().splitlines()[-1]
        assert "eta" in second

    def test_final_line_has_no_eta(self):
        stream = io.StringIO()
        printer = ProgressPrinter(interval_s=0.0, stream=stream)
        printer(1, 2, "a")
        printer(2, 2, "b")
        assert "eta" not in stream.getvalue().strip().splitlines()[-1]

    def test_new_campaign_resets_clock(self):
        stream = io.StringIO()
        printer = ProgressPrinter(interval_s=3600, stream=stream)
        printer(1, 2, "a")
        printer(2, 2, "b")
        printer(1, 2, "c")  # done went backwards: a fresh campaign
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 3
        assert lines[-1].startswith("[1/2]")


class TestTty:
    def test_rewrites_in_place_with_carriage_return(self):
        stream = FakeTTY()
        printer = ProgressPrinter(interval_s=0.0, stream=stream)
        printer(1, 3, "a")
        printer(2, 3, "b")
        out = stream.getvalue()
        assert out.count("\r") == 2
        assert out.count("\n") == 0  # line stays open until final

    def test_final_update_closes_the_line(self):
        stream = FakeTTY()
        printer = ProgressPrinter(interval_s=0.0, stream=stream)
        printer(1, 2, "a")
        printer(2, 2, "b")
        assert stream.getvalue().endswith("\n")

    def test_shorter_line_is_padded_clean(self):
        stream = FakeTTY()
        printer = ProgressPrinter(interval_s=0.0, stream=stream)
        printer(1, 3, "a-very-long-label-indeed")
        printer(2, 3, "x")
        # The second (shorter) line must blank out the first one's tail.
        last = stream.getvalue().rsplit("\r", 1)[-1]
        assert last.endswith(" ")


def test_module_level_hook_is_a_printer():
    """Backwards-compat: the old function name is now a shared instance."""
    assert isinstance(stderr_progress, ProgressPrinter)
    assert callable(stderr_progress)
