"""Tests for the experiment registry, CLI and shared machinery."""

import json

import pytest

from repro.experiments import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments.common import (
    ExperimentResult,
    Series,
    get_trace,
    make_config,
)
from repro.experiments.__main__ import main


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {"table1", "table2", "table3", "table4"} | {
            f"fig{i}" for i in range(4, 20)
        }
        extensions = {
            "ext-rebuild",
            "ext-destage",
            "ext-parity-grain",
            "ext-spindle",
            "ext-scheduler",
            "ext-reliability",
            "ext-rebuild-rate",
            "ext-scrub",
            "ext-hda",
        }
        assert set(EXPERIMENTS) == expected | extensions

    def test_lookup_with_zero_padding(self):
        assert get_experiment("fig05").exp_id == "fig5"
        assert get_experiment("FIG5").exp_id == "fig5"

    def test_unknown_id(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("fig99")

    def test_run_experiment_dispatch(self):
        results = run_experiment("table4")
        assert results[0].exp_id == "table4"


class TestSeriesAndResult:
    def test_series_validation(self):
        with pytest.raises(ValueError):
            Series("x", [1, 2], [1.0])

    def test_table_str_renders(self):
        r = ExperimentResult(
            exp_id="figX",
            title="demo",
            xlabel="N",
            ylabel="ms",
            series=[Series("a", [1, 2], [3.0, 4.0]), Series("b", [1, 2], [5.0, 6.0])],
            notes="hello",
        )
        text = r.table_str()
        assert "figX" in text
        assert "a" in text and "b" in text
        assert "hello" in text
        assert "3.00" in text

    def test_series_by_label(self):
        r = ExperimentResult("x", "t", "x", "y", [Series("a", [1], [2.0])])
        assert r.series_by_label("a").ys == [2.0]
        with pytest.raises(KeyError):
            r.series_by_label("missing")

    def test_to_dict_roundtrips_through_json(self):
        r = ExperimentResult("x", "t", "x", "y", [Series("a", [1], [2.0])])
        blob = json.dumps(r.to_dict())
        assert json.loads(blob)["series"][0]["label"] == "a"


class TestGetTrace:
    def test_trace1_sliced(self):
        trace = get_trace(1, scale=0.1)
        assert trace.ndisks == 60

    def test_trace2_plain(self):
        trace = get_trace(2, scale=0.1)
        assert trace.ndisks == 10

    def test_trace2_padded_for_large_n(self):
        trace = get_trace(2, scale=0.1, n=20)
        assert trace.ndisks == 20
        # Traffic still confined to the first 10 disks' addresses.
        assert trace.lblocks.max() < 10 * trace.blocks_per_disk

    def test_speed_scaling(self):
        normal = get_trace(2, scale=0.1)
        fast = get_trace(2, scale=0.1, speed=2.0)
        assert fast.duration_ms == pytest.approx(normal.duration_ms / 2)

    def test_invalid_trace_id(self):
        with pytest.raises(ValueError):
            get_trace(3)

    def test_caching_returns_same_object(self):
        assert get_trace(2, scale=0.1) is not None
        # lru_cache: same parameters -> same underlying records object.
        a = get_trace(2, scale=0.1)
        b = get_trace(2, scale=0.1)
        assert a.records is b.records

    def test_make_config(self):
        trace = get_trace(2, scale=0.1)
        cfg = make_config("raid5", trace, striping_unit=4)
        assert cfg.blocks_per_disk == trace.blocks_per_disk
        assert cfg.striping_unit == 4


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "table1" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig19" in capsys.readouterr().out

    def test_run_and_json(self, tmp_path, capsys):
        out_json = tmp_path / "r.json"
        assert main(["table4", "--json", str(out_json)]) == 0
        text = capsys.readouterr().out
        assert "table4" in text
        data = json.loads(out_json.read_text())
        assert data[0]["id"] == "table4"


class TestDriverShapes:
    """Tiny-scale structural checks of every figure driver."""

    SCALE = 0.02

    def test_fig6_fig7(self):
        from repro.experiments.fig06_07_skew import run_fig6, run_fig7

        f6 = run_fig6(self.SCALE)[0]
        f7 = run_fig7(self.SCALE)[0]
        assert len(f6.series[0].xs) == 130
        assert len(f7.series[0].xs) == 143

    def test_fig11_shape(self):
        from repro.experiments.fig11_hit_ratios import run

        results = run(self.SCALE)
        assert len(results) == 2
        assert len(results[0].series) == 4

    def test_fig8_shape(self):
        from repro.experiments.fig08_striping_unit import run

        results = run(self.SCALE)
        assert [s.label for s in results[0].series] == ["RAID5"]
        assert results[0].series[0].xs == [1, 2, 4, 8, 16, 32, 64]

    def test_fig16_shape(self):
        from repro.experiments.fig15_16_parity_cache import run_fig16

        results = run_fig16(self.SCALE)
        assert len(results) == 2
        assert {s.label for s in results[0].series} == {"RAID5", "RAID4-PC"}
