"""Tests for the reliability model (paper introduction arithmetic)."""

import pytest

from repro.models import ReliabilityModel, storage_overhead


class TestPaperIntroFigure:
    def test_150_disks_mttf_below_28_days(self):
        """The intro: >150 disks at 100,000 h MTTF -> subsystem MTTF
        under 28 days."""
        model = ReliabilityModel(disk_mttf_hours=100_000.0)
        days = model.paper_intro_check(150)
        assert days < 28.0
        assert days == pytest.approx(100_000 / 150 / 24, rel=1e-9)

    def test_fewer_disks_longer(self):
        model = ReliabilityModel()
        assert model.paper_intro_check(10) > model.paper_intro_check(150)


class TestFormulas:
    @pytest.fixture
    def model(self):
        return ReliabilityModel(disk_mttf_hours=100_000.0, mttr_hours=24.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReliabilityModel(disk_mttf_hours=0)
        with pytest.raises(ValueError):
            ReliabilityModel(mttr_hours=0)
        with pytest.raises(ValueError):
            ReliabilityModel(disk_mttf_hours=10.0, mttr_hours=10.0)

    def test_mirrored_pair(self, model):
        assert model.mirrored_pair_mttdl() == pytest.approx(1e10 / 48)

    def test_parity_group(self, model):
        assert model.parity_group_mttdl(11) == pytest.approx(1e10 / (11 * 10 * 24))

    def test_group_size_validation(self, model):
        with pytest.raises(ValueError):
            model.parity_group_mttdl(1)
        with pytest.raises(ValueError):
            model.any_disk_failure_mttf(0)

    def test_redundancy_beats_base_by_orders_of_magnitude(self, model):
        base = model.system_mttdl("base", 130, 10)
        raid5 = model.system_mttdl("raid5", 130, 10)
        mirror = model.system_mttdl("mirror", 130, 10)
        assert raid5 > 100 * base
        assert mirror > raid5  # fewer disks per redundancy group

    def test_larger_groups_less_reliable(self, model):
        """§4.2.1: 'large arrays are less reliable'."""
        small = model.system_mttdl("raid5", 120, 5)
        large = model.system_mttdl("raid5", 120, 20)
        assert small > large

    def test_system_scaling(self, model):
        one = model.system_mttdl("raid5", 10, 10)
        thirteen = model.system_mttdl("raid5", 130, 10)
        assert one == pytest.approx(13 * thirteen)

    def test_all_parity_orgs_equal(self, model):
        r5 = model.system_mttdl("raid5", 100, 10)
        assert model.system_mttdl("raid4", 100, 10) == r5
        assert model.system_mttdl("parity_striping", 100, 10) == r5

    def test_invalid_inputs(self, model):
        with pytest.raises(ValueError):
            model.system_mttdl("raid6", 100, 10)
        with pytest.raises(ValueError):
            model.system_mttdl("raid5", 105, 10)


class TestStorageOverhead:
    def test_paper_tradeoff(self):
        """Mirrors: 'prohibitive' 100%; arrays: 1/N."""
        assert storage_overhead("mirror", 10) == 1.0
        assert storage_overhead("raid5", 10) == pytest.approx(0.1)
        assert storage_overhead("parity_striping", 5) == pytest.approx(0.2)
        assert storage_overhead("base", 10) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            storage_overhead("raid5", 0)
        with pytest.raises(ValueError):
            storage_overhead("raid9", 10)
