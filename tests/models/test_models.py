"""Tests for the analytical models, including cross-checks against the
discrete-event simulator."""

import math

import numpy as np
import pytest

from repro.des import Environment
from repro.disk import AccessKind, Disk, DiskGeometry, DiskRequest, SeekModel
from repro.layout import BaseLayout, ParityPlacement, Raid5Layout
from repro.models import (
    empirical_seek_profile,
    mg1_response_time,
    mg1_waiting_time,
    preferred_placement,
    zero_load_response,
)
from repro.models.gray import ZeroLoadModel
from repro.models.parity_placement import (
    data_area_access_rate,
    parity_area_access_rate,
)
from repro.models.queueing import mm1_response_time
from repro.trace import TRACE_DTYPE, Trace


class TestParityPlacementRule:
    def test_rates(self):
        assert data_area_access_rate(10) == pytest.approx(0.01)
        assert parity_area_access_rate(10, 0.1) == pytest.approx(0.01)

    def test_paper_cutoff_for_trace1(self):
        """w = 0.1: middle placement for N > 10, end for N < 10."""
        assert preferred_placement(20, 0.1) is ParityPlacement.MIDDLE
        assert preferred_placement(15, 0.1) is ParityPlacement.MIDDLE
        assert preferred_placement(5, 0.1) is ParityPlacement.END

    def test_high_write_fraction_prefers_middle(self):
        assert preferred_placement(5, 0.5) is ParityPlacement.MIDDLE

    def test_validation(self):
        with pytest.raises(ValueError):
            data_area_access_rate(0)
        with pytest.raises(ValueError):
            parity_area_access_rate(10, 1.5)


class TestZeroLoadModel:
    @pytest.fixture(scope="class")
    def model(self):
        return ZeroLoadModel(DiskGeometry(), SeekModel.fit())

    def test_read_components(self, model):
        assert model.read(1) == pytest.approx(11.2 + 11.111 / 2 + 1.852, abs=0.01)

    def test_rmw_adds_revolution(self, model):
        assert model.rmw_update(1) - model.write(1) == pytest.approx(
            model.geometry.revolution_time
        )

    def test_mirrored_write_slower_than_plain(self, model):
        assert model.mirrored_write(1) > model.write(1)

    def test_wrapper_dispatch(self):
        assert zero_load_response("base", False) == zero_load_response("raid5", False)
        assert zero_load_response("raid5", True) > zero_load_response("base", True)
        with pytest.raises(ValueError):
            zero_load_response("raid6", True)

    def test_simulation_matches_read_model(self, model):
        """Empirical check: mean idle-disk read response over random
        blocks converges to the model."""
        env = Environment()
        geo, sm = DiskGeometry(), SeekModel.fit()
        disk = Disk(env, geo, sm)
        rng = np.random.default_rng(3)
        times = []

        def proc(env):
            for _ in range(400):
                # Re-randomise arm position and rotation phase.
                disk.cylinder = int(rng.integers(0, geo.cylinders))
                yield env.timeout(float(rng.uniform(0, 50)))
                t0 = env.now
                req = disk.submit(DiskRequest(AccessKind.READ, int(rng.integers(0, geo.total_blocks))))
                yield req.done
                times.append(env.now - t0)

        env.process(proc(env))
        env.run()
        assert np.mean(times) == pytest.approx(model.read(1), rel=0.05)

    def test_simulation_matches_rmw_model(self, model):
        env = Environment()
        geo, sm = DiskGeometry(), SeekModel.fit()
        disk = Disk(env, geo, sm)
        rng = np.random.default_rng(4)
        times = []

        def proc(env):
            for _ in range(400):
                disk.cylinder = int(rng.integers(0, geo.cylinders))
                yield env.timeout(float(rng.uniform(0, 50)))
                t0 = env.now
                req = disk.submit(DiskRequest(AccessKind.RMW, int(rng.integers(0, geo.total_blocks))))
                yield req.done
                times.append(env.now - t0)

        env.process(proc(env))
        env.run()
        assert np.mean(times) == pytest.approx(model.rmw_update(1), rel=0.05)


class TestQueueingModels:
    def test_mg1_reduces_to_mm1(self):
        lam, mean = 0.02, 20.0
        second = 2 * mean * mean  # exponential: E[S^2] = 2 E[S]^2
        assert mg1_response_time(lam, mean, second) == pytest.approx(
            mm1_response_time(lam, mean)
        )

    def test_deterministic_service_halves_waiting(self):
        lam, mean = 0.02, 20.0
        w_det = mg1_waiting_time(lam, mean, mean * mean)
        w_exp = mg1_waiting_time(lam, mean, 2 * mean * mean)
        assert w_det == pytest.approx(w_exp / 2)

    def test_zero_arrival_rate_waits_exactly_zero(self):
        """Regression: an empty arrival stream must wait exactly 0 —
        the P–K numerator (λ E[S²]) must not leak a spurious epsilon or
        0·inf through the zero-load branch."""
        assert mg1_waiting_time(0.0, 20.0, 800.0) == 0.0
        assert mg1_response_time(0.0, 20.0, 800.0) == 20.0

    def test_unstable_rejected(self):
        with pytest.raises(ValueError):
            mg1_waiting_time(0.06, 20.0, 800.0)
        with pytest.raises(ValueError):
            mm1_response_time(0.06, 20.0)

    def test_impossible_moments_rejected(self):
        with pytest.raises(ValueError):
            mg1_waiting_time(0.01, 20.0, 100.0)

    def test_simulator_approaches_mg1(self):
        """A single simulated disk under Poisson single-block reads has
        a response time within ~15% of the M/G/1 prediction."""
        env = Environment()
        geo, sm = DiskGeometry(), SeekModel.fit()
        disk = Disk(env, geo, sm)
        rng = np.random.default_rng(5)
        lam = 1 / 40.0  # one request every 40 ms -> utilization ~0.6
        times = []

        def source(env):
            for _ in range(4000):
                yield env.timeout(float(rng.exponential(1 / lam)))
                env.process(one(env))

        def one(env):
            t0 = env.now
            req = disk.submit(
                DiskRequest(AccessKind.READ, int(rng.integers(0, geo.total_blocks)))
            )
            yield req.done
            times.append(env.now - t0)

        env.process(source(env))
        env.run()
        service = np.array(times)  # includes queueing; need service moments
        model = ZeroLoadModel(geo, sm)
        s_mean = model.read(1)
        # Approximate E[S^2] from the component distributions: seek +
        # latency + constant transfer, treated as independent.
        d = np.arange(1, geo.cylinders, dtype=float)
        w = 2.0 * (geo.cylinders - d)
        w /= w.sum()
        seek_var = float(np.sum(w * sm.seek_times(d) ** 2) - sm.average_seek_time() ** 2)
        lat_var = geo.revolution_time**2 / 12.0
        s_second = s_mean**2 + seek_var + lat_var
        predicted = mg1_response_time(lam, s_mean, s_second)
        assert np.mean(times) == pytest.approx(predicted, rel=0.15)


class TestSeekAffinity:
    BPD = 26_400  # ~147 cylinders per logical disk

    def _hot_region_trace(self, n=4000, ndisks=4, seed=2):
        """Each logical disk has its own hot region; accesses interleave
        across disks.  The Base layout keeps each arm inside its region;
        striping makes every arm visit the images of all regions."""
        rng = np.random.default_rng(seed)
        bpd = self.BPD
        region = bpd // 20
        origins = [d * bpd + d * (bpd // 5) for d in range(ndisks)]
        records = np.empty(n, dtype=TRACE_DTYPE)
        records["time"] = np.arange(n, dtype=float)
        disks = rng.integers(0, ndisks, size=n)
        offsets = rng.integers(0, region, size=n)
        records["lblock"] = [origins[d] + int(o) for d, o in zip(disks, offsets)]
        records["nblocks"] = 1
        records["is_write"] = False
        return Trace(records, ndisks, bpd)

    def test_striping_decreases_seek_affinity(self):
        """§4.2: data striping increases average seek distance for a
        workload with spatial locality."""
        trace = self._hot_region_trace()
        base = empirical_seek_profile(trace, BaseLayout(4, self.BPD))
        raid5 = empirical_seek_profile(trace, Raid5Layout(4, self.BPD, striping_unit=1))
        assert base.mean_seek_distance < raid5.mean_seek_distance

    def test_larger_striping_unit_restores_affinity(self):
        trace = self._hot_region_trace()
        su1 = empirical_seek_profile(trace, Raid5Layout(4, self.BPD, striping_unit=1))
        su16 = empirical_seek_profile(trace, Raid5Layout(4, self.BPD, striping_unit=16))
        assert su16.mean_seek_distance <= su1.mean_seek_distance

    def test_profile_fields(self):
        trace = self._hot_region_trace(n=100)
        p = empirical_seek_profile(trace, BaseLayout(4, self.BPD))
        assert p.per_disk_accesses.sum() == 100
        assert 0 <= p.zero_seek_fraction <= 1
        assert p.median_seek_distance >= 0
