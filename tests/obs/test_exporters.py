"""Round-trip tests for every export format: metrics CSV and Prometheus
text, trace JSONL, and the Chrome trace-event structure."""

import json
import math

import pytest

from repro.obs import (
    MetricsRegistry,
    Span,
    TraceData,
    parse_prometheus,
    registry_from_csv,
)


def sample_registry():
    reg = MetricsRegistry()
    reg.counter("disk_completed", disk="a0.d0").inc(41)
    reg.gauge("utilization", disk="a0.d0").set(0.625)
    h = reg.histogram("response_ms", lo=0.1, hi=1000.0, buckets_per_decade=4)
    for x in (0.05, 1.0, 2.5, 40.0, 5000.0):
        h.observe(x)
    s = reg.series("queue_depth", disk="a0.d0")
    s.record(10.0, 1.0)
    s.record(20.0, 3.0)
    return reg


def sample_trace():
    spans = [
        Span(sid=0, kind="request", name="read", t0=1.0, t1=9.0, rid=0,
             attrs={"lstart": 4, "nblocks": 1, "is_write": False}),
        Span(sid=1, kind="disk", name="a0.d1", t0=1.0, t1=8.0, rid=0, parent=0,
             attrs={"disk": "a0.d1"}),
        Span(sid=2, kind="phase", name="seek", t0=1.0, t1=5.0, rid=0, parent=1,
             attrs={"disk": "a0.d1"}),
        Span(sid=3, kind="mark", name="mirror_route", t0=1.0, t1=1.0, rid=0,
             parent=0),
    ]
    return TraceData({"name": "unit", "simulated_ms": 10.0}, spans)


class TestMetricsCsv:
    def test_round_trip(self):
        reg = sample_registry()
        back = registry_from_csv(reg.to_csv())
        assert len(back) == len(reg)
        assert back.get("disk_completed", disk="a0.d0").value == 41
        assert back.get("utilization", disk="a0.d0").value == 0.625
        h0 = reg.get("response_ms")
        h1 = back.get("response_ms")
        assert h1.counts == h0.counts
        assert h1.count == h0.count
        assert h1.total == h0.total
        assert (h1.min, h1.max) == (h0.min, h0.max)
        s = back.get("queue_depth", disk="a0.d0")
        assert s.times == [10.0, 20.0] and s.values == [1.0, 3.0]

    def test_round_trip_twice_is_identical_text(self):
        text = sample_registry().to_csv()
        assert registry_from_csv(text).to_csv() == text

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError, match="header"):
            registry_from_csv("a,b,c\n")


class TestPrometheus:
    def test_families_and_values(self):
        reg = sample_registry()
        text = reg.to_prometheus()
        parsed = parse_prometheus(text)
        assert parsed['repro_disk_completed{disk="a0.d0"}'] == 41.0
        assert parsed['repro_utilization{disk="a0.d0"}'] == 0.625
        # Series export their last sample as a gauge.
        assert parsed['repro_queue_depth{disk="a0.d0"}'] == 3.0
        assert parsed["repro_response_ms_count"] == 5.0
        assert parsed["repro_response_ms_sum"] == pytest.approx(5043.55)
        assert "# TYPE repro_response_ms histogram" in text

    def test_histogram_buckets_cumulative_ending_at_count(self):
        text = sample_registry().to_prometheus()
        buckets = [
            (line.rpartition(" ")[0], float(line.rpartition(" ")[2]))
            for line in text.splitlines()
            if line.startswith("repro_response_ms_bucket")
        ]
        values = [v for _, v in buckets]
        assert values == sorted(values)
        assert buckets[-1][0].endswith('le="+Inf"}')
        assert values[-1] == 5.0

    def test_nan_round_trips(self):
        reg = MetricsRegistry()
        reg.gauge("g")  # never set
        parsed = parse_prometheus(reg.to_prometheus())
        assert math.isnan(parsed["repro_g"])


class TestTraceJsonl:
    def test_round_trip(self, tmp_path):
        data = sample_trace()
        path = tmp_path / "trace.jsonl"
        data.to_jsonl(str(path))
        back = TraceData.from_jsonl(str(path))
        assert back.meta == data.meta
        assert len(back.spans) == len(data.spans)
        for a, b in zip(data.spans, back.spans):
            assert a == b

    def test_first_line_is_meta(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sample_trace().to_jsonl(str(path))
        first = json.loads(path.read_text().splitlines()[0])
        assert first["type"] == "meta"
        assert first["name"] == "unit"


class TestChrome:
    def test_structure(self, tmp_path):
        path = tmp_path / "trace.json"
        sample_trace().to_chrome(str(path))
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        begins = [e for e in events if e.get("ph") == "b"]
        ends = [e for e in events if e.get("ph") == "e"]
        # One begin/end pair per closed span.
        assert len(begins) == len(ends) == 4
        by_id = {e["id"]: e for e in begins}
        # Disk and phase spans land on the disks process, others on requests.
        assert by_id[1]["pid"] == 2 and by_id[2]["pid"] == 2
        assert by_id[0]["pid"] == 1
        # Timestamps are microseconds.
        assert by_id[0]["ts"] == 1000.0
        names = {e["name"] for e in events if e.get("ph") == "M"}
        assert {"process_name", "thread_name"} <= names
