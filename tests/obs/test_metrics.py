"""Unit tests for the metrics primitives: counters, gauges, log-bucket
histograms (including Hypothesis merge laws) and the registry."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, TimeSeries

values = st.floats(
    min_value=0.0, max_value=1e7, allow_nan=False, allow_infinity=False
)
value_lists = st.lists(values, max_size=60)


def hist_of(xs, **kw):
    h = Histogram(**kw)
    for x in xs:
        h.observe(x)
    return h


class TestCounterGauge:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge(self):
        g = Gauge()
        assert math.isnan(g.value)
        g.set(7)
        assert g.value == 7.0


class TestHistogram:
    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            Histogram(lo=0.0, hi=1.0)
        with pytest.raises(ValueError):
            Histogram(lo=10.0, hi=1.0)
        with pytest.raises(ValueError):
            Histogram(buckets_per_decade=0)

    def test_underflow_and_overflow(self):
        h = Histogram(lo=1.0, hi=100.0, buckets_per_decade=4)
        h.observe(0.0)
        h.observe(0.5)
        h.observe(1e9)
        assert h.counts[0] == 2
        assert h.counts[-1] == 1
        assert h.count == 3

    def test_mean_and_empty_percentile(self):
        h = Histogram()
        assert math.isnan(h.mean)
        assert math.isnan(h.percentile(50))
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean == 3.0

    def test_percentile_clamped_to_observed_range(self):
        h = Histogram(lo=1.0, hi=1000.0)
        for x in (5.0, 5.5, 6.0):
            h.observe(x)
        assert 5.0 <= h.percentile(50) <= 6.0
        assert h.percentile(0) >= 5.0
        assert h.percentile(100) <= 6.0

    def test_percentile_rejects_bad_q(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101)

    def test_incompatible_merge_rejected(self):
        with pytest.raises(ValueError):
            Histogram(lo=0.1).merge(Histogram(lo=1.0))

    @given(value_lists, value_lists)
    @settings(max_examples=50, deadline=None)
    def test_merge_commutative(self, xs, ys):
        ab = hist_of(xs).merge(hist_of(ys))
        ba = hist_of(ys).merge(hist_of(xs))
        assert ab.counts == ba.counts
        assert ab.count == ba.count

    @given(value_lists, value_lists, value_lists)
    @settings(max_examples=50, deadline=None)
    def test_merge_associative(self, xs, ys, zs):
        a, b, c = hist_of(xs), hist_of(ys), hist_of(zs)
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        # Bucket and observation counts are integers: exactly equal.
        assert left.counts == right.counts
        assert left.count == right.count == len(xs) + len(ys) + len(zs)
        assert left.min == right.min and left.max == right.max
        # Totals are float sums: equal to rounding.
        assert left.total == pytest.approx(right.total, rel=1e-12, abs=1e-9)

    @given(value_lists, value_lists)
    @settings(max_examples=50, deadline=None)
    def test_merge_equals_pooled(self, xs, ys):
        merged = hist_of(xs).merge(hist_of(ys))
        pooled = hist_of(xs + ys)
        assert merged.counts == pooled.counts


class TestTimeSeries:
    def test_record(self):
        s = TimeSeries()
        assert math.isnan(s.last)
        s.record(1.0, 0.5)
        s.record(2.0, 0.7)
        assert len(s) == 2
        assert s.last == 0.7


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("x", disk="d0")
        b = reg.counter("x", disk="d0")
        assert a is b
        assert reg.counter("x", disk="d1") is not a

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_get_missing_is_none(self):
        assert MetricsRegistry().get("nope") is None

    def test_iteration_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a", z="1")
        reg.counter("a", a="1")
        names = [(n, labels) for n, labels, _ in reg]
        assert names == sorted(names)
