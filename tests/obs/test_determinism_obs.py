"""Non-perturbation and determinism guarantees of the observability
layer: instrumented runs fingerprint identically to plain runs, and a
traced run exports byte-identical artifacts when repeated."""

import io

import pytest

from repro.sim import run_trace
from repro.validate.replay import result_fingerprint

from .conftest import make_cached_config, make_config, make_workload, traced_run


@pytest.mark.parametrize("org", ["base", "mirror", "raid5", "parity_striping"])
def test_tracing_does_not_perturb_results(org):
    workload = make_workload(n_requests=80)
    config = make_config(org)
    plain = run_trace(config, workload, warmup_fraction=0.0)
    traced = run_trace(
        config, workload, warmup_fraction=0.0, trace=True, metrics=True
    )
    assert result_fingerprint(traced) == result_fingerprint(plain)


def test_tracing_does_not_perturb_cached_results():
    workload = make_workload(n_requests=80)
    config = make_cached_config("raid5")
    plain = run_trace(config, workload, warmup_fraction=0.0)
    traced = run_trace(
        config, workload, warmup_fraction=0.0, trace=True, metrics=True
    )
    assert result_fingerprint(traced) == result_fingerprint(plain)


def test_validation_and_tracing_compose():
    workload = make_workload(n_requests=60)
    config = make_config("raid5")
    plain = run_trace(config, workload, warmup_fraction=0.0)
    both = run_trace(
        config, workload, warmup_fraction=0.0, validate=True, trace=True
    )
    assert result_fingerprint(both) == result_fingerprint(plain)
    assert both.trace is not None and len(both.trace.spans) > 0


def test_repeated_traced_runs_export_identically():
    def export():
        result = traced_run("raid5")
        jsonl = io.StringIO()
        result.trace.to_jsonl(jsonl)
        return jsonl.getvalue(), result.metrics.to_csv()

    (jsonl_a, csv_a), (jsonl_b, csv_b) = export(), export()
    assert jsonl_a == jsonl_b
    assert csv_a == csv_b
