"""Shared fixtures for the observability tests: one small traced run
per organization, reused across test modules (tracing a run is the
expensive part; assertions on the resulting span tree are cheap)."""

import numpy as np
import pytest

from repro.sim import Organization, SystemConfig, run_trace
from repro.trace import TRACE_DTYPE, Trace

BPD = 2640
NDISKS = 10


def make_workload(n_requests=150, write_fraction=0.3, seed=5, mean_gap_ms=4.0):
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.exponential(mean_gap_ms, n_requests))
    total = NDISKS * BPD
    rows = [
        (
            float(times[i]),
            int(rng.integers(0, total - 8)),
            int(rng.integers(1, 5)),
            bool(rng.random() < write_fraction),
        )
        for i in range(n_requests)
    ]
    return Trace(np.array(rows, dtype=TRACE_DTYPE), NDISKS, BPD, name="obs-unit")


def make_config(org="raid5", **kw):
    kw.setdefault("blocks_per_disk", BPD)
    return SystemConfig(organization=Organization.parse(org), **kw)


def make_cached_config(org="raid5", **kw):
    kw.setdefault("cached", True)
    return make_config(org, **kw)


def traced_run(org="raid5", warmup_fraction=0.0, cached=False, **kw):
    config = make_cached_config(org) if cached else make_config(org)
    return run_trace(
        config,
        make_workload(),
        warmup_fraction=warmup_fraction,
        trace=True,
        metrics=True,
        **kw,
    )


@pytest.fixture(scope="session")
def raid5_result():
    return traced_run("raid5")


@pytest.fixture(scope="session")
def mirror_result():
    return traced_run("mirror")


@pytest.fixture(scope="session")
def cached_result():
    # Short destage period so the background destage path (and its
    # trace marks) actually fires within the few-hundred-ms run.
    return run_trace(
        make_cached_config("raid5", destage_period_ms=50.0),
        make_workload(),
        warmup_fraction=0.0,
        trace=True,
        metrics=True,
    )
