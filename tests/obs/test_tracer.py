"""End-to-end tracing tests: span trees from real runs are well formed,
reconstruct the measured response times, and decompose into phases that
sum to the response exactly."""

import math

import pytest

from repro.obs import decompose, phase_table, well_formedness_problems
from repro.obs.analyze import decompose_request
from repro.obs.span import Span

from .conftest import traced_run


def roots_by_rid(data):
    return {s.rid: s for s in data.roots()}


class TestWellFormedness:
    @pytest.mark.parametrize("fixture", ["raid5_result", "mirror_result", "cached_result"])
    def test_no_problems(self, fixture, request):
        result = request.getfixturevalue(fixture)
        assert well_formedness_problems(result.trace) == []

    def test_roots_cover_all_requests(self, raid5_result):
        roots = roots_by_rid(raid5_result.trace)
        assert len(roots) == raid5_result.requests
        assert set(roots) == set(range(raid5_result.requests))


class TestResponseReconstruction:
    @pytest.mark.parametrize("fixture", ["raid5_result", "mirror_result", "cached_result"])
    def test_root_durations_match_tally(self, fixture, request):
        result = request.getfixturevalue(fixture)
        durations = sorted(s.duration for s in result.trace.roots())
        measured = sorted(result.response.samples)
        assert len(durations) == len(measured)
        for a, b in zip(durations, measured):
            assert a == pytest.approx(b, abs=1e-9)


class TestPhaseSums:
    @pytest.mark.parametrize("fixture", ["raid5_result", "mirror_result", "cached_result"])
    def test_breakdowns_partition_response(self, fixture, request):
        result = request.getfixturevalue(fixture)
        rows = decompose(result.trace)
        assert len(rows) == result.requests
        for root, breakdown in rows:
            assert sum(breakdown.values()) == pytest.approx(
                root.duration, abs=1e-6
            )
            assert all(v >= -1e-9 for v in breakdown.values())

    def test_raid5_writes_pay_rmw(self, raid5_result):
        table = phase_table(raid5_result.trace)
        assert table["write"]["phases"].get("rmw_rotate", 0.0) > 0.0
        assert table["read"]["phases"].get("rmw_rotate", 0.0) == 0.0

    def test_mechanical_phases_present(self, raid5_result):
        phases = phase_table(raid5_result.trace)["all"]["phases"]
        for name in ("seek", "rotation", "transfer", "disk_queue"):
            assert phases.get(name, 0.0) > 0.0

    def test_aggregate_means_sum_to_mean_response(self, raid5_result):
        for agg in phase_table(raid5_result.trace).values():
            assert sum(agg["phases"].values()) == pytest.approx(
                agg["mean_ms"], abs=1e-6
            )


class TestDecomposeRequest:
    def root(self, t0=0.0, t1=10.0):
        return Span(sid=0, kind="request", name="read", t0=t0, t1=t1, rid=0)

    def phase(self, name, t0, t1, sid=1):
        return Span(sid=sid, kind="phase", name=name, t0=t0, t1=t1, rid=0, parent=0)

    def test_gap_becomes_other(self):
        out = decompose_request(self.root(), [self.phase("seek", 2.0, 5.0)])
        assert out["seek"] == pytest.approx(3.0)
        assert out["other"] == pytest.approx(7.0)

    def test_overlap_resolved_by_precedence(self):
        # Queueing under an active seek is attributed to the seek.
        out = decompose_request(
            self.root(),
            [self.phase("disk_queue", 0.0, 10.0), self.phase("seek", 3.0, 6.0, sid=2)],
        )
        assert out["seek"] == pytest.approx(3.0)
        assert out["disk_queue"] == pytest.approx(7.0)
        assert "other" not in out or out["other"] == pytest.approx(0.0)

    def test_phases_clipped_to_root(self):
        out = decompose_request(self.root(), [self.phase("transfer", -5.0, 50.0)])
        assert out == {"transfer": pytest.approx(10.0)}

    def test_empty_root_interval(self):
        assert decompose_request(self.root(t1=0.0), []) == {}


class TestAnnotations:
    def test_mirror_route_marks(self, mirror_result):
        marks = [
            s for s in mirror_result.trace.spans
            if s.kind == "mark" and s.name == "mirror_route"
        ]
        assert marks
        for m in marks:
            assert m.attrs["chosen"] != m.attrs["alternate"]
            assert m.attrs["seek_chosen"] <= m.attrs["seek_alternate"] or (
                m.attrs["seek_chosen"] == m.attrs["seek_alternate"]
            )

    def test_cached_run_records_destage_and_cache_ops(self, cached_result):
        data = cached_result.trace
        assert any(s.kind == "mark" and s.name == "destage" for s in data.spans)
        assert data.meta.get("cache_ops")

    def test_meta_carries_run_identity(self, raid5_result):
        meta = raid5_result.trace.meta
        assert meta["organization"] == "raid5"
        assert meta["simulated_ms"] == raid5_result.simulated_ms


class TestMetricsSideOfRun:
    def test_histogram_count_matches_tally(self, raid5_result):
        h = raid5_result.metrics.get("response_ms")
        assert h.count == raid5_result.response.count
        assert h.mean == pytest.approx(raid5_result.response.mean)

    def test_read_write_split(self, raid5_result):
        reads = raid5_result.metrics.get("read_response_ms")
        writes = raid5_result.metrics.get("write_response_ms")
        assert reads.count == raid5_result.read_response.count
        assert writes.count == raid5_result.write_response.count

    def test_disk_counters_match_result(self, raid5_result):
        total = sum(
            m.value
            for name, labels, m in raid5_result.metrics
            if name == "disk_completed"
        )
        assert total == raid5_result.per_disk_accesses.sum()

    def test_utilization_series_sampled(self, raid5_result):
        series = [
            m for name, labels, m in raid5_result.metrics
            if name == "disk_utilization"
        ]
        assert series
        for s in series:
            assert len(s) > 0
            assert all(0.0 <= v <= 1.0 for v in s.values)

    def test_simulated_gauges(self, raid5_result):
        assert (
            raid5_result.metrics.get("simulated_ms").value
            == raid5_result.simulated_ms
        )
        assert math.isfinite(raid5_result.metrics.get("mean_response_ms").value)

    def test_prebuilt_objects_are_used(self):
        # A pre-built (empty, hence falsy) registry and tracer must be
        # honoured, not silently replaced or dropped.
        from repro.obs import MetricsRegistry, Tracer

        from .conftest import make_config, make_workload
        from repro.sim import run_trace

        reg = MetricsRegistry()
        tracer = Tracer()
        result = run_trace(
            make_config("base"),
            make_workload(n_requests=20),
            warmup_fraction=0.0,
            trace=tracer,
            metrics=reg,
        )
        assert result.metrics is reg and len(reg) > 0
        assert result.trace is not None
        # TraceData copies the list; same span objects, built by our tracer.
        assert result.trace.spans == tracer.spans and len(tracer.spans) > 0
