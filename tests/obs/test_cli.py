"""Tests for the ``python -m repro.obs`` analysis CLI."""

import pytest

from repro.obs.__main__ import main

from .conftest import traced_run


@pytest.fixture(scope="module")
def exported(tmp_path_factory):
    base = tmp_path_factory.mktemp("traces")
    a = base / "raid5.jsonl"
    b = base / "mirror.jsonl"
    traced_run("raid5").trace.to_jsonl(str(a))
    traced_run("mirror").trace.to_jsonl(str(b))
    return str(a), str(b)


def test_summarize(exported, capsys):
    assert main(["summarize", exported[0]]) == 0
    out = capsys.readouterr().out
    assert "requests" in out
    assert "p95" in out
    assert "raid5" in out


def test_phases_columns_sum_to_response(exported, capsys):
    assert main(["phases", exported[0]]) == 0
    out = capsys.readouterr().out
    lines = [l for l in out.splitlines() if l.strip()]
    phase_rows = {}
    response_row = None
    for line in lines:
        parts = line.split()
        if not parts:
            continue
        if parts[0] == "response":
            response_row = [float(x) for x in parts[1:]]
        elif parts[0] in (
            "seek", "rotation", "transfer", "rmw_rotate", "sync_wait",
            "disk_queue", "channel_transfer", "channel_wait", "other",
        ):
            phase_rows[parts[0]] = [float(x) for x in parts[1:]]
    assert response_row is not None and phase_rows
    for col, total in enumerate(response_row):
        col_sum = sum(vals[col] for vals in phase_rows.values())
        # Table cells are rounded to 4 decimals; sums match to that grain.
        assert col_sum == pytest.approx(total, abs=1e-3 * len(phase_rows))


def test_compare(exported, capsys):
    assert main(["compare", exported[0], exported[1]]) == 0
    out = capsys.readouterr().out
    assert "Δ" in out or "response" in out
    assert "raid5" in out and "mirror" in out


def test_malformed_trace_warns_but_runs(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text(
        '{"type": "meta", "name": "bad"}\n'
        '{"type": "span", "sid": 0, "kind": "request", "name": "read", '
        '"t0": 0.0, "t1": null, "rid": 0}\n'
    )
    assert main(["summarize", str(bad)]) == 0
    err = capsys.readouterr().err
    assert "well-formedness" in err


def test_overhead_check(capsys):
    # Tiny run: one repeat of each mode is enough to exercise the
    # report/guard path; the real budget enforcement runs in CI and
    # benchmarks with more requests.
    rc = main(["overhead", "--requests", "120", "--repeats", "1", "--check"])
    out = capsys.readouterr()
    assert "fingerprints equal: True" in out.out
    assert rc == 0, out.err


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
