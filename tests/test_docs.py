"""Documentation consistency checks.

The docs promise specific artifacts; these tests keep them honest:
every registered experiment is documented, every listed example
exists, and the DESIGN inventory matches the package layout.
"""

from pathlib import Path

import pytest

from repro.experiments import EXPERIMENTS

ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def design():
    return (ROOT / "DESIGN.md").read_text()


@pytest.fixture(scope="module")
def experiments_md():
    return (ROOT / "EXPERIMENTS.md").read_text()


@pytest.fixture(scope="module")
def readme():
    return (ROOT / "README.md").read_text()


class TestDesignDoc:
    def test_every_experiment_in_design(self, design):
        for exp_id in EXPERIMENTS:
            assert exp_id in design, f"{exp_id} missing from DESIGN.md"

    def test_paper_identity_confirmed(self, design):
        assert "Mourad" in design
        assert "ICPP 1993" in design

    def test_substitution_table_present(self, design):
        assert "Substitutions" in design
        assert "synthetic" in design.lower()

    def test_module_map_matches_packages(self, design):
        src = ROOT / "src" / "repro"
        for pkg in ("des", "disk", "channel", "layout", "array", "cache",
                    "trace", "sim", "models", "experiments"):
            assert (src / pkg / "__init__.py").exists(), pkg
            assert pkg + "/" in design or f"  {pkg}" in design or pkg in design


class TestExperimentsDoc:
    def test_every_paper_figure_recorded(self, experiments_md):
        for i in range(4, 20):
            assert f"Figure {i}" in experiments_md or f"Fig {i}" in experiments_md, i

    def test_tables_recorded(self, experiments_md):
        for i in (1, 2):
            assert f"Table {i}" in experiments_md

    def test_extensions_recorded(self, experiments_md):
        for ext in ("ext-rebuild", "ext-destage", "ext-parity-grain",
                    "ext-spindle", "ext-scheduler", "ext-reliability"):
            assert ext in experiments_md

    def test_deviations_flagged_honestly(self, experiments_md):
        assert "Deviation" in experiments_md

    def test_campaign_results_exist(self):
        assert (ROOT / "results" / "campaign.txt").exists()
        assert (ROOT / "results" / "campaign.json").exists()


class TestReadme:
    def test_listed_examples_exist(self, readme):
        for line in readme.splitlines():
            if line.startswith("| `") and line.rstrip().endswith("|") and ".py" in line:
                name = line.split("`")[1]
                assert (ROOT / "examples" / name).exists(), name

    def test_install_commands_present(self, readme):
        assert "pip install -e ." in readme
        assert "pytest tests/" in readme
        assert "--benchmark-only" in readme

    def test_quickstart_code_runs(self, readme):
        """The README quickstart snippet is valid, runnable code."""
        import re

        blocks = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)
        assert blocks, "no python snippet in README"
        snippet = blocks[0].replace("scale=0.3", "scale=0.01")
        exec(compile(snippet, "<readme>", "exec"), {})
