"""Slotted hot-path classes and simulation fingerprint stability.

The PR that added ``__slots__`` to the kernel's per-event classes and
batch conversions to the trace feeds must not perturb a single
simulation value; these tests pin both the memory layout and the
behavior.
"""

import numpy as np
import pytest

from repro.des import Environment, Event, Timeout
from repro.des.monitor import Tally, TimeWeighted
from repro.des.process import Process
from repro.disk.request import AccessKind, DiskRequest
from repro.sim import run_trace

from tests.validate.workload import config, make_trace


def _noop(env):
    yield env.timeout(1.0)


@pytest.mark.parametrize(
    "instance",
    [
        lambda env: Event(env),
        lambda env: Timeout(env, 1.0),
        lambda env: Process(env, _noop(env)),
        lambda env: DiskRequest(AccessKind.READ, 0),
        lambda env: Tally(),
        lambda env: TimeWeighted(),
    ],
    ids=["Event", "Timeout", "Process", "DiskRequest", "Tally", "TimeWeighted"],
)
def test_hot_path_classes_have_no_instance_dict(instance):
    obj = instance(Environment())
    assert not hasattr(obj, "__dict__"), type(obj).__name__


def test_diskrequest_rejects_unknown_attributes():
    req = DiskRequest(AccessKind.WRITE, 10, 2)
    with pytest.raises(AttributeError):
        req.unknown_field = 1


def test_diskrequest_lifecycle_still_works():
    env = Environment()
    req = DiskRequest(AccessKind.RMW, 5, nblocks=3, tag="t")
    req.attach(env)
    assert req.started is not None and req.done is not None
    assert req.end_block == 8
    old_seq = req.seq
    req.renumber()
    assert req.seq > old_seq


def test_tally_merge_and_samples_still_work():
    a, b = Tally(), Tally()
    for v in (1.0, 2.0, 3.0):
        a.observe(v)
    b.observe(10.0)
    merged = a.merge(b)
    assert merged.count == 4
    assert merged.mean == pytest.approx(4.0)
    assert sorted(merged.samples.tolist()) == [1.0, 2.0, 3.0, 10.0]


def test_tally_keep_samples_toggle():
    t = Tally(keep_samples=False)
    t.observe(1.0)
    with pytest.raises(ValueError):
        t.percentile(50)
    t._samples = []  # the runner re-points the store; must stay legal
    t.observe(2.0)
    assert t.samples.tolist() == [2.0]


@pytest.mark.parametrize("org", ["base", "mirror", "raid5", "parity_striping"])
def test_simulation_fingerprint_is_deterministic(org):
    """Two runs of the same seeded workload are bit-identical."""
    results = []
    for _ in range(2):
        trace = make_trace(seed=11, n=200)
        res = run_trace(config(org), trace, keep_samples=True)
        results.append(res)
    first, second = results
    assert first.response.samples.tolist() == second.response.samples.tolist()
    assert first.simulated_ms == second.simulated_ms
    for a, b in zip(first.arrays, second.arrays):
        assert np.array_equal(a.disk_accesses, b.disk_accesses)
        assert np.array_equal(a.disk_utilization, b.disk_utilization)
