"""Unit tests for the Tally and TimeWeighted statistics collectors."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.des import Tally, TimeWeighted


class TestTally:
    def test_empty(self):
        t = Tally()
        assert t.count == 0
        assert math.isnan(t.mean)
        assert math.isnan(t.variance)
        assert math.isnan(t.percentile(50))

    def test_single_observation(self):
        t = Tally()
        t.observe(5.0)
        assert t.count == 1
        assert t.mean == 5.0
        assert t.min == 5.0
        assert t.max == 5.0
        assert math.isnan(t.variance)

    def test_known_statistics(self):
        t = Tally()
        data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        for x in data:
            t.observe(x)
        assert t.mean == pytest.approx(5.0)
        assert t.variance == pytest.approx(np.var(data, ddof=1))
        assert t.std == pytest.approx(np.std(data, ddof=1))
        assert t.min == 2.0
        assert t.max == 9.0
        assert t.percentile(50) == pytest.approx(np.percentile(data, 50))

    def test_no_samples_mode(self):
        t = Tally(keep_samples=False)
        t.observe(1.0)
        t.observe(3.0)
        assert t.mean == 2.0
        with pytest.raises(ValueError, match="keep_samples=True"):
            t.percentile(50)
        with pytest.raises(ValueError, match="keep_samples=False"):
            _ = t.samples

    def test_percentile_error_names_the_alternative(self):
        # The message should steer users toward the histogram that works
        # without a sample store.
        t = Tally(keep_samples=False)
        t.observe(1.0)
        with pytest.raises(ValueError, match="repro.obs.Histogram"):
            t.percentile(95)

    def test_percentile_empty_with_samples_is_nan(self):
        t = Tally(keep_samples=True)
        assert math.isnan(t.percentile(50))

    def test_percentile_with_samples(self):
        t = Tally(keep_samples=True)
        for x in (1.0, 2.0, 3.0, 4.0):
            t.observe(x)
        assert t.percentile(0) == 1.0
        assert t.percentile(100) == 4.0
        assert t.percentile(50) == 2.5

    def test_samples_array(self):
        t = Tally()
        for x in (1.0, 2.0, 3.0):
            t.observe(x)
        np.testing.assert_array_equal(t.samples, [1.0, 2.0, 3.0])

    def test_merge(self):
        a, b = Tally(), Tally()
        xs = [1.0, 5.0, 2.0]
        ys = [10.0, -3.0, 0.5, 7.0]
        for x in xs:
            a.observe(x)
        for y in ys:
            b.observe(y)
        m = a.merge(b)
        all_data = xs + ys
        assert m.count == 7
        assert m.mean == pytest.approx(np.mean(all_data))
        assert m.variance == pytest.approx(np.var(all_data, ddof=1))
        assert m.min == min(all_data)
        assert m.max == max(all_data)

    def test_merge_with_empty(self):
        a = Tally()
        a.observe(4.0)
        m = a.merge(Tally())
        assert m.count == 1
        assert m.mean == 4.0

    def test_merge_two_empty(self):
        m = Tally().merge(Tally())
        assert m.count == 0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=100))
    def test_matches_numpy(self, data):
        t = Tally()
        for x in data:
            t.observe(x)
        assert t.mean == pytest.approx(np.mean(data), rel=1e-9, abs=1e-9)
        assert t.variance == pytest.approx(np.var(data, ddof=1), rel=1e-6, abs=1e-6)

    @given(
        st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=1, max_size=50),
        st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=1, max_size=50),
    )
    def test_merge_equals_sequential(self, xs, ys):
        a, b, ref = Tally(), Tally(), Tally()
        for x in xs:
            a.observe(x)
            ref.observe(x)
        for y in ys:
            b.observe(y)
            ref.observe(y)
        m = a.merge(b)
        assert m.count == ref.count
        assert m.mean == pytest.approx(ref.mean, rel=1e-9, abs=1e-9)
        assert m.variance == pytest.approx(ref.variance, rel=1e-6, abs=1e-6)


class TestTimeWeighted:
    def test_constant_signal(self):
        tw = TimeWeighted(0.0, 3.0)
        assert tw.mean(10.0) == pytest.approx(3.0)

    def test_step_signal(self):
        tw = TimeWeighted(0.0, 0.0)
        tw.update(5.0, 10.0)  # 0 for 5 units, then 10 for 5 units
        assert tw.mean(10.0) == pytest.approx(5.0)

    def test_add(self):
        tw = TimeWeighted(0.0, 1.0)
        tw.add(2.0, +1)  # 2.0 from t=2
        tw.add(4.0, -2)  # 0.0 from t=4
        # area = 1*2 + 2*2 + 0*2 = 6 over 6
        assert tw.mean(6.0) == pytest.approx(1.0)
        assert tw.value == 0.0

    def test_min_max_tracking(self):
        tw = TimeWeighted(0.0, 5.0)
        tw.update(1.0, 9.0)
        tw.update(2.0, -1.0)
        assert tw.max == 9.0
        assert tw.min == -1.0

    def test_time_backwards_rejected(self):
        tw = TimeWeighted(10.0, 0.0)
        with pytest.raises(ValueError):
            tw.update(5.0, 1.0)

    def test_mean_of_empty_span_is_nan(self):
        tw = TimeWeighted(0.0, 1.0)
        assert math.isnan(tw.mean(0.0))

    def test_utilization_pattern(self):
        """Busy/idle indicator integrates to utilization."""
        tw = TimeWeighted(0.0, 0.0)
        # busy [1, 4), idle [4, 6), busy [6, 10)
        tw.update(1.0, 1.0)
        tw.update(4.0, 0.0)
        tw.update(6.0, 1.0)
        assert tw.mean(10.0) == pytest.approx(0.7)
