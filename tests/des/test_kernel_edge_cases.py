"""Edge-case and stress tests for the DES kernel."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import AllOf, AnyOf, Environment, Event, PriorityStore, Resource


@pytest.fixture
def env():
    return Environment()


class TestEventOrderingStress:
    @given(st.lists(st.floats(min_value=0, max_value=1000), min_size=1, max_size=300))
    @settings(max_examples=50)
    def test_processing_order_matches_sorted_times(self, delays):
        env = Environment()
        seen = []

        def waiter(env, d, i):
            yield env.timeout(d)
            seen.append((env.now, i))

        for i, d in enumerate(delays):
            env.process(waiter(env, d, i))
        env.run()
        times = [t for t, _ in seen]
        assert times == sorted(times)
        # Ties broken by schedule order.
        by_time = {}
        for t, i in seen:
            by_time.setdefault(t, []).append(i)
        for group in by_time.values():
            assert group == sorted(group)

    def test_many_processes_on_one_event(self, env):
        ev = Event(env)
        resumed = []
        for i in range(500):

            def proc(env, i=i):
                yield ev
                resumed.append(i)

            env.process(proc(env))

        def trigger(env):
            yield env.timeout(1)
            ev.succeed()

        env.process(trigger(env))
        env.run()
        assert resumed == list(range(500))


class TestConditionEdgeCases:
    def test_nested_conditions(self, env):
        def proc(env):
            inner = env.timeout(1) & env.timeout(2)
            outer = inner | env.timeout(10)
            yield outer
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 2.0

    def test_condition_over_processes_and_timeouts(self, env):
        def child(env):
            yield env.timeout(3)
            return "c"

        def proc(env):
            result = yield AllOf(env, [env.process(child(env)), env.timeout(1, "t")])
            return len(result)

        p = env.process(proc(env))
        env.run()
        assert p.value == 2

    def test_anyof_remaining_events_still_fire(self, env):
        late_fired = []

        def proc(env):
            fast = env.timeout(1)
            slow = env.timeout(5)
            slow.callbacks.append(lambda e: late_fired.append(env.now))
            yield AnyOf(env, [fast, slow])
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 1.0
        assert late_fired == [5.0]

    def test_condition_with_failing_event_defused(self, env):
        def bad(env):
            yield env.timeout(1)
            raise ValueError("bad")

        def proc(env):
            try:
                yield AnyOf(env, [env.process(bad(env)), env.timeout(10)])
            except ValueError:
                return "caught"

        p = env.process(proc(env))
        env.run()
        assert p.value == "caught"


class TestResourceStress:
    def test_random_acquire_release_conserves_capacity(self, env):
        res = Resource(env, capacity=3)
        rng = random.Random(1)
        max_seen = []

        def user(env, hold):
            with res.request() as req:
                yield req
                max_seen.append(res.count)
                yield env.timeout(hold)

        for _ in range(200):
            env.process(user(env, rng.uniform(0.1, 5.0)))
        env.run()
        assert max(max_seen) <= 3
        assert res.count == 0
        assert res.queue_length == 0

    def test_priority_store_drains_in_order_under_load(self, env):
        store = PriorityStore(env)
        got = []

        def consumer(env):
            for _ in range(100):
                item = yield store.get()
                got.append(item)
                yield env.timeout(1)

        def producer(env):
            rng = random.Random(2)
            yield env.timeout(0.5)
            for i in range(100):
                store.put((rng.randint(0, 3), i), priority=0)

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        # FIFO within equal priority: second elements ascending.
        assert [i for _, i in got] == sorted(i for _, i in got)


class TestProcessLifecycles:
    def test_chain_of_spawns(self, env):
        """Deep chains of processes waiting on children terminate."""

        def nested(env, depth):
            if depth == 0:
                yield env.timeout(1)
                return 0
            v = yield env.process(nested(env, depth - 1))
            return v + 1

        p = env.process(nested(env, 50))
        env.run()
        assert p.value == 50
        assert env.now == 1.0

    def test_process_waiting_on_terminated_process(self, env):
        def quick(env):
            yield env.timeout(1)
            return "done"

        def late(env, target):
            yield env.timeout(5)
            v = yield target
            return v

        q = env.process(quick(env))
        p = env.process(late(env, q))
        env.run()
        assert p.value == "done"

    def test_exception_type_preserved_through_chain(self, env):
        class Custom(Exception):
            pass

        def a(env):
            yield env.timeout(1)
            raise Custom("x")

        def b(env):
            try:
                yield env.process(a(env))
            except Custom:
                return "custom"

        p = env.process(b(env))
        env.run()
        assert p.value == "custom"
