"""Unit tests for Process semantics and the Environment run loop."""

import pytest

from repro.des import Environment, Event, Interrupt, Process
from repro.des.environment import EmptySchedule


@pytest.fixture
def env():
    return Environment()


class TestProcess:
    def test_rejects_non_generator(self, env):
        with pytest.raises(TypeError):
            Process(env, lambda: None)

    def test_process_return_value(self, env):
        def proc(env):
            yield env.timeout(2)
            return "result"

        p = env.process(proc(env))
        env.run()
        assert p.value == "result"

    def test_process_is_alive(self, env):
        def proc(env):
            yield env.timeout(5)

        p = env.process(proc(env))
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_wait_for_process(self, env):
        def child(env):
            yield env.timeout(3)
            return 7

        def parent(env):
            value = yield env.process(child(env))
            return (env.now, value)

        p = env.process(parent(env))
        env.run()
        assert p.value == (3.0, 7)

    def test_exception_propagates_to_waiter(self, env):
        def child(env):
            yield env.timeout(1)
            raise KeyError("oops")

        def parent(env):
            try:
                yield env.process(child(env))
            except KeyError:
                return "caught"
            return "missed"

        p = env.process(parent(env))
        env.run()
        assert p.value == "caught"

    def test_unhandled_process_exception_escapes_run(self, env):
        def proc(env):
            yield env.timeout(1)
            raise RuntimeError("crash")

        env.process(proc(env))
        with pytest.raises(RuntimeError, match="crash"):
            env.run()

    def test_yield_non_event_fails(self, env):
        def proc(env):
            yield 42

        env.process(proc(env))
        with pytest.raises(RuntimeError, match="non-event"):
            env.run()

    def test_immediate_return(self, env):
        def proc(env):
            return "done"
            yield  # pragma: no cover

        p = env.process(proc(env))
        env.run()
        assert p.value == "done"

    def test_yield_already_processed_event_continues_synchronously(self, env):
        def proc(env):
            t = env.timeout(1, "v")
            yield env.timeout(2)
            got = yield t  # t was processed at time 1
            assert got == "v"
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 2.0

    def test_waiting_on_pending_event(self, env):
        ev = Event(env)

        def trigger(env):
            yield env.timeout(4)
            ev.succeed("go")

        def waiter(env):
            value = yield ev
            return (env.now, value)

        env.process(trigger(env))
        p = env.process(waiter(env))
        env.run()
        assert p.value == (4.0, "go")

    def test_two_waiters_on_one_event(self, env):
        ev = Event(env)
        results = []

        def waiter(env, tag):
            yield ev
            results.append((tag, env.now))

        env.process(waiter(env, "a"))
        env.process(waiter(env, "b"))

        def trigger(env):
            yield env.timeout(2)
            ev.succeed()

        env.process(trigger(env))
        env.run()
        assert results == [("a", 2.0), ("b", 2.0)]


class TestInterrupt:
    def test_interrupt_delivers_cause(self, env):
        def victim(env):
            try:
                yield env.timeout(100)
            except Interrupt as i:
                return ("interrupted", i.cause, env.now)

        def attacker(env, p):
            yield env.timeout(5)
            p.interrupt("because")

        p = env.process(victim(env))
        env.process(attacker(env, p))
        env.run()
        assert p.value == ("interrupted", "because", 5.0)

    def test_interrupt_terminated_process_raises(self, env):
        def victim(env):
            yield env.timeout(1)

        p = env.process(victim(env))
        env.run()
        with pytest.raises(RuntimeError):
            p.interrupt()

    def test_self_interrupt_rejected(self, env):
        def proc(env):
            with pytest.raises(RuntimeError):
                env.active_process.interrupt()
            yield env.timeout(1)

        env.process(proc(env))
        env.run()

    def test_resume_waiting_after_interrupt(self, env):
        """A process can re-wait on its original target after interrupt."""

        def victim(env):
            target = env.timeout(10)
            try:
                yield target
            except Interrupt:
                pass
            yield target  # keep waiting
            return env.now

        def attacker(env, p):
            yield env.timeout(3)
            p.interrupt()

        p = env.process(victim(env))
        env.process(attacker(env, p))
        env.run()
        assert p.value == 10.0


class TestEnvironmentRun:
    def test_run_until_time(self, env):
        ticks = []

        def clock(env):
            while True:
                ticks.append(env.now)
                yield env.timeout(1)

        env.process(clock(env))
        env.run(until=3.5)
        assert ticks == [0, 1, 2, 3]
        assert env.now == 3.5

    def test_run_until_past_raises(self, env):
        env.run(until=5)
        with pytest.raises(ValueError):
            env.run(until=1)

    def test_run_until_event_returns_value(self, env):
        def proc(env):
            yield env.timeout(2)
            return "finished"

        p = env.process(proc(env))
        assert env.run(until=p) == "finished"

    def test_run_until_already_processed_event(self, env):
        t = env.timeout(1, "v")
        env.run(until=5)
        assert env.run(until=t) == "v"

    def test_run_until_never_triggered_event_raises(self, env):
        ev = Event(env)
        with pytest.raises(RuntimeError, match="never triggered"):
            env.run(until=ev)

    def test_step_on_empty_schedule_raises(self, env):
        with pytest.raises(EmptySchedule):
            env.step()

    def test_peek(self, env):
        assert env.peek() == float("inf")
        env.timeout(7)
        assert env.peek() == 7.0

    def test_clock_monotonic(self, env):
        seen = []

        def proc(env, d):
            yield env.timeout(d)
            seen.append(env.now)

        import random

        rng = random.Random(42)
        for _ in range(200):
            env.process(proc(env, rng.uniform(0, 100)))
        env.run()
        assert seen == sorted(seen)
        assert len(seen) == 200

    def test_initial_time(self):
        env = Environment(initial_time=100.0)
        assert env.now == 100.0

        def proc(env):
            yield env.timeout(5)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 105.0

    def test_nested_process_spawning(self, env):
        """Processes spawning processes, fork/join style."""

        def leaf(env, d):
            yield env.timeout(d)
            return d

        def root(env):
            children = [env.process(leaf(env, d)) for d in (3, 1, 2)]
            results = []
            for c in children:
                results.append((yield c))
            return results

        p = env.process(root(env))
        env.run()
        assert p.value == [3, 1, 2]
        assert env.now == 3.0
