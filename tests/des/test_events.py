"""Unit tests for DES event primitives."""

import pytest

from repro.des import AllOf, AnyOf, Environment, Event, Timeout
from repro.des.events import PENDING


@pytest.fixture
def env():
    return Environment()


class TestEvent:
    def test_initial_state(self, env):
        ev = Event(env)
        assert not ev.triggered
        assert not ev.processed
        assert ev.callbacks == []

    def test_value_unavailable_before_trigger(self, env):
        ev = Event(env)
        with pytest.raises(AttributeError):
            _ = ev.value

    def test_succeed_sets_value(self, env):
        ev = Event(env)
        ev.succeed(42)
        assert ev.triggered
        assert ev.value == 42

    def test_succeed_default_value_is_none(self, env):
        ev = Event(env)
        ev.succeed()
        assert ev.value is None

    def test_succeed_twice_raises(self, env):
        ev = Event(env)
        ev.succeed(1)
        with pytest.raises(RuntimeError):
            ev.succeed(2)

    def test_fail_then_succeed_raises(self, env):
        ev = Event(env)
        ev.fail(ValueError("x"))
        ev._defused = True
        with pytest.raises(RuntimeError):
            ev.succeed()

    def test_fail_requires_exception(self, env):
        ev = Event(env)
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_fail_value_is_the_exception(self, env):
        ev = Event(env)
        exc = ValueError("boom")
        ev.fail(exc)
        ev._defused = True
        assert ev.value is exc
        assert not ev.ok

    def test_unhandled_failure_raises_in_step(self, env):
        ev = Event(env)
        ev.fail(RuntimeError("unhandled"))
        with pytest.raises(RuntimeError, match="unhandled"):
            env.run()

    def test_callbacks_invoked_in_order(self, env):
        ev = Event(env)
        seen = []
        ev.callbacks.append(lambda e: seen.append(1))
        ev.callbacks.append(lambda e: seen.append(2))
        ev.succeed()
        env.run()
        assert seen == [1, 2]
        assert ev.processed

    def test_trigger_copies_outcome(self, env):
        src = Event(env)
        dst = Event(env)
        src.succeed("payload")
        dst.trigger(src)
        env.run()
        assert dst.value == "payload"

    def test_pending_sentinel_repr(self):
        assert "PENDING" in repr(PENDING)


class TestTimeout:
    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            Timeout(env, -1)

    def test_timeout_fires_at_delay(self, env):
        times = []

        def proc(env):
            yield env.timeout(5.5)
            times.append(env.now)

        env.process(proc(env))
        env.run()
        assert times == [5.5]

    def test_timeout_carries_value(self, env):
        got = []

        def proc(env):
            v = yield env.timeout(1, value="hello")
            got.append(v)

        env.process(proc(env))
        env.run()
        assert got == ["hello"]

    def test_zero_delay_allowed(self, env):
        def proc(env):
            yield env.timeout(0)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 0.0

    def test_timeouts_ordered_by_delay(self, env):
        order = []

        def waiter(env, d, tag):
            yield env.timeout(d)
            order.append(tag)

        env.process(waiter(env, 3, "c"))
        env.process(waiter(env, 1, "a"))
        env.process(waiter(env, 2, "b"))
        env.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self, env):
        """Events at the same instant are processed in schedule order."""
        order = []

        def waiter(env, tag):
            yield env.timeout(1)
            order.append(tag)

        for tag in "abcdef":
            env.process(waiter(env, tag))
        env.run()
        assert order == list("abcdef")


class TestConditions:
    def test_all_of_waits_for_slowest(self, env):
        def proc(env):
            t1 = env.timeout(1, "x")
            t2 = env.timeout(4, "y")
            result = yield AllOf(env, [t1, t2])
            return (env.now, result[t1], result[t2])

        p = env.process(proc(env))
        env.run()
        assert p.value == (4.0, "x", "y")

    def test_any_of_returns_at_fastest(self, env):
        def proc(env):
            t1 = env.timeout(1, "fast")
            t2 = env.timeout(9, "slow")
            result = yield AnyOf(env, [t1, t2])
            assert t1 in result
            assert t2 not in result
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 1.0

    def test_and_operator(self, env):
        def proc(env):
            yield env.timeout(1) & env.timeout(2)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 2.0

    def test_or_operator(self, env):
        def proc(env):
            yield env.timeout(1) | env.timeout(2)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 1.0

    def test_empty_allof_triggers_immediately(self, env):
        def proc(env):
            yield AllOf(env, [])
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 0.0

    def test_condition_value_mapping(self, env):
        def proc(env):
            t1 = env.timeout(1, "v1")
            t2 = env.timeout(1, "v2")
            result = yield t1 & t2
            d = result.todict()
            assert d == {t1: "v1", t2: "v2"}
            assert len(result) == 2
            assert list(result) == [t1, t2]
            with pytest.raises(KeyError):
                result[Event(env)]

        env.process(proc(env))
        env.run()

    def test_allof_with_already_processed_events(self, env):
        def proc(env):
            t1 = env.timeout(1, "early")
            yield env.timeout(5)
            # t1 processed long ago
            result = yield AllOf(env, [t1, env.timeout(1, "late")])
            return (env.now, result[t1])

        p = env.process(proc(env))
        env.run()
        assert p.value == (6.0, "early")

    def test_failing_subevent_fails_condition(self, env):
        def failer(env):
            yield env.timeout(1)
            raise ValueError("inner failure")

        def proc(env):
            p = env.process(failer(env))
            with pytest.raises(ValueError, match="inner failure"):
                yield AllOf(env, [p, env.timeout(10)])
            return "handled"

        p = env.process(proc(env))
        env.run()
        assert p.value == "handled"

    def test_mixed_environments_rejected(self, env):
        other = Environment()
        with pytest.raises(ValueError):
            AllOf(env, [Event(env), Event(other)])
