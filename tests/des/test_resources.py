"""Unit tests for Resource, Store and PriorityStore."""

import pytest

from repro.des import Environment, PriorityStore, Resource, Store


@pytest.fixture
def env():
    return Environment()


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_immediate_grant_when_free(self, env):
        res = Resource(env, capacity=2)

        def proc(env):
            req = res.request()
            yield req
            assert env.now == 0.0
            assert res.count == 1
            res.release(req)

        env.process(proc(env))
        env.run()
        assert res.count == 0

    def test_mutual_exclusion(self, env):
        res = Resource(env)
        log = []

        def user(env, name, hold):
            with res.request() as req:
                yield req
                log.append((env.now, name, "in"))
                yield env.timeout(hold)
            log.append((env.now, name, "out"))

        env.process(user(env, "a", 4))
        env.process(user(env, "b", 2))
        env.run()
        assert log == [
            (0.0, "a", "in"),
            (4.0, "a", "out"),
            (4.0, "b", "in"),
            (6.0, "b", "out"),
        ]

    def test_priority_order(self, env):
        res = Resource(env)
        order = []

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(10)

        def user(env, prio, tag):
            yield env.timeout(1)  # queue behind holder
            with res.request(priority=prio) as req:
                yield req
                order.append(tag)
                yield env.timeout(1)

        env.process(holder(env))
        env.process(user(env, 5, "low"))
        env.process(user(env, -1, "high"))
        env.process(user(env, 0, "mid"))
        env.run()
        assert order == ["high", "mid", "low"]

    def test_fifo_within_priority(self, env):
        res = Resource(env)
        order = []

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(10)

        def user(env, tag):
            yield env.timeout(1)
            with res.request() as req:
                yield req
                order.append(tag)

        env.process(holder(env))
        for tag in "abc":
            env.process(user(env, tag))
        env.run()
        assert order == ["a", "b", "c"]

    def test_release_foreign_request_raises(self, env):
        res = Resource(env)

        def proc(env):
            req = res.request()
            yield req
            res.release(req)
            with pytest.raises(RuntimeError):
                res.release(req)

        env.process(proc(env))
        env.run()

    def test_queue_length(self, env):
        res = Resource(env)

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(5)

        def waiter(env):
            with res.request() as req:
                yield req

        env.process(holder(env))
        env.process(waiter(env))
        env.process(waiter(env))
        env.run(until=1)
        assert res.queue_length == 2
        env.run()
        assert res.queue_length == 0

    def test_cancel_waiting_request(self, env):
        res = Resource(env)

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(5)

        def fickle(env):
            req = res.request()
            yield env.timeout(1)
            req.cancel()

        granted = []

        def patient(env):
            yield env.timeout(0.5)
            with res.request() as req:
                yield req
                granted.append(env.now)

        env.process(holder(env))
        env.process(fickle(env))
        env.process(patient(env))
        env.run()
        # The cancelled request must not block the patient waiter.
        assert granted == [5.0]

    def test_capacity_n_parallelism(self, env):
        res = Resource(env, capacity=3)
        done = []

        def user(env, tag):
            with res.request() as req:
                yield req
                yield env.timeout(2)
                done.append((env.now, tag))

        for tag in range(6):
            env.process(user(env, tag))
        env.run()
        # Two batches of 3.
        assert [t for t, _ in done] == [2.0] * 3 + [4.0] * 3


class TestStore:
    def test_fifo_order(self, env):
        store = Store(env)
        got = []

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        def producer(env):
            yield env.timeout(1)
            for x in ("a", "b", "c"):
                store.put(x)

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == ["a", "b", "c"]

    def test_get_blocks_until_put(self, env):
        store = Store(env)

        def consumer(env):
            item = yield store.get()
            return (env.now, item)

        def producer(env):
            yield env.timeout(7)
            store.put("x")

        p = env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert p.value == (7.0, "x")

    def test_len_and_items(self, env):
        store = Store(env)
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.items == [1, 2]

    def test_multiple_consumers_fifo(self, env):
        store = Store(env)
        got = []

        def consumer(env, tag):
            item = yield store.get()
            got.append((tag, item))

        env.process(consumer(env, "c1"))
        env.process(consumer(env, "c2"))

        def producer(env):
            yield env.timeout(1)
            store.put("x")
            store.put("y")

        env.process(producer(env))
        env.run()
        assert got == [("c1", "x"), ("c2", "y")]


class TestPriorityStore:
    def test_priority_retrieval(self, env):
        store = PriorityStore(env)
        store.put("low", priority=10)
        store.put("high", priority=-5)
        store.put("mid", priority=0)
        got = []

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(consumer(env))
        env.run()
        assert got == ["high", "mid", "low"]

    def test_fifo_within_priority(self, env):
        store = PriorityStore(env)
        for tag in "abc":
            store.put(tag, priority=1)
        got = []

        def consumer(env):
            for _ in range(3):
                got.append((yield store.get()))

        env.process(consumer(env))
        env.run()
        assert got == ["a", "b", "c"]

    def test_items_sorted(self, env):
        store = PriorityStore(env)
        store.put("z", 3)
        store.put("a", 1)
        assert store.items == ["a", "z"]
        assert len(store) == 2

    def test_idle_consumer_takes_first_arrival(self, env):
        """An already-waiting getter receives the first put regardless of
        priority — matching an idle disk starting service immediately."""
        store = PriorityStore(env)
        got = []

        def consumer(env):
            while len(got) < 2:
                got.append((yield store.get()))

        def producer(env):
            yield env.timeout(1)
            store.put("first", priority=100)
            store.put("urgent", priority=-100)

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == ["first", "urgent"]
