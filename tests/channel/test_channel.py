"""Tests for the channel and track-buffer models."""

import pytest

from repro.channel import Channel, TrackBufferPool
from repro.des import Environment


@pytest.fixture
def env():
    return Environment()


class TestChannel:
    def test_rate_validation(self, env):
        with pytest.raises(ValueError):
            Channel(env, rate_mb_per_s=0)

    def test_transfer_time_4kb_at_10mbs(self, env):
        ch = Channel(env)  # 10 MB/s
        assert ch.transfer_time(4096) == pytest.approx(0.4096)

    def test_transfer_time_validation(self, env):
        ch = Channel(env)
        with pytest.raises(ValueError):
            ch.transfer_time(0)

    def test_single_transfer(self, env):
        ch = Channel(env)

        def proc(env):
            yield from ch.transfer(4096)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == pytest.approx(0.4096)
        assert ch.bytes_transferred == 4096
        assert ch.transfers == 1

    def test_contention_serialises(self, env):
        ch = Channel(env)
        ends = []

        def proc(env):
            yield from ch.transfer(4096)
            ends.append(env.now)

        env.process(proc(env))
        env.process(proc(env))
        env.run()
        assert ends[0] == pytest.approx(0.4096)
        assert ends[1] == pytest.approx(0.8192)

    def test_priority_transfers(self, env):
        ch = Channel(env)
        order = []

        def xfer(env, prio, tag, delay=0.0):
            if delay:
                yield env.timeout(delay)
            yield from ch.transfer(40960, priority=prio)
            order.append(tag)

        env.process(xfer(env, 0, "first"))
        env.process(xfer(env, 1, "low", delay=0.1))
        env.process(xfer(env, -1, "high", delay=0.1))
        env.run()
        assert order == ["first", "high", "low"]

    def test_utilization(self, env):
        ch = Channel(env)

        def proc(env):
            yield from ch.transfer(10_000 * 5)  # 5 ms of wire time

        env.process(proc(env))
        env.run(until=10.0)
        assert ch.utilization() == pytest.approx(0.5)

    def test_utilization_zero_time(self, env):
        assert Channel(env).utilization() == 0.0


class TestTrackBufferPool:
    def test_validation(self, env):
        with pytest.raises(ValueError):
            TrackBufferPool(env, ndisks=0)
        with pytest.raises(ValueError):
            TrackBufferPool(env, ndisks=1, buffers_per_disk=0)

    def test_capacity_is_five_per_disk(self, env):
        pool = TrackBufferPool(env, ndisks=10)
        assert pool.capacity == 50

    def test_acquire_release(self, env):
        pool = TrackBufferPool(env, ndisks=1, buffers_per_disk=2)

        def proc(env):
            yield from pool.acquire(1)
            assert pool.in_use == 1
            pool.release(1)
            assert pool.in_use == 0

        env.process(proc(env))
        env.run()
        assert pool.acquisitions == 1
        assert pool.peak_in_use == 1

    def test_blocks_when_exhausted(self, env):
        pool = TrackBufferPool(env, ndisks=1, buffers_per_disk=1)
        times = []

        def holder(env):
            yield from pool.acquire(1)
            yield env.timeout(5)
            pool.release(1)

        def waiter(env):
            yield env.timeout(1)
            yield from pool.acquire(1)
            times.append(env.now)
            pool.release(1)

        env.process(holder(env))
        env.process(waiter(env))
        env.run()
        assert times == [5.0]

    def test_waiting_count(self, env):
        pool = TrackBufferPool(env, ndisks=1, buffers_per_disk=1)

        def holder(env):
            yield from pool.acquire(1)
            yield env.timeout(5)
            pool.release(1)

        def waiter(env):
            yield from pool.acquire(1)
            pool.release(1)

        env.process(holder(env))
        env.process(waiter(env))
        env.run(until=1)
        assert pool.waiting == 1

    def test_multi_acquire_atomic(self, env):
        """A k-acquire takes all k at once or none (no hold-and-wait)."""
        pool = TrackBufferPool(env, ndisks=1, buffers_per_disk=4)
        log = []

        def big(env):
            yield from pool.acquire(3)
            log.append(("big", env.now))
            yield env.timeout(5)
            pool.release(3)

        def small(env):
            yield env.timeout(1)
            yield from pool.acquire(2)  # only 1 free -> must wait
            log.append(("small", env.now))
            pool.release(2)

        env.process(big(env))
        env.process(small(env))
        env.run()
        assert log == [("big", 0.0), ("small", 5.0)]

    def test_fifo_no_starvation(self, env):
        """A queued large request is not starved by later small ones."""
        pool = TrackBufferPool(env, ndisks=1, buffers_per_disk=4)
        order = []

        def user(env, k, tag, delay):
            yield env.timeout(delay)
            yield from pool.acquire(k)
            order.append(tag)
            yield env.timeout(10)
            pool.release(k)

        env.process(user(env, 4, "first", 0.0))
        env.process(user(env, 4, "large", 1.0))
        env.process(user(env, 1, "small", 2.0))
        env.run()
        assert order == ["first", "large", "small"]

    def test_acquire_validation(self, env):
        pool = TrackBufferPool(env, ndisks=1, buffers_per_disk=2)

        def proc(env):
            with pytest.raises(ValueError):
                yield from pool.acquire(0)
            with pytest.raises(ValueError):
                yield from pool.acquire(3)

        env.process(proc(env))
        env.run()

    def test_release_validation(self, env):
        pool = TrackBufferPool(env, ndisks=1, buffers_per_disk=2)
        with pytest.raises(ValueError):
            pool.release(1)  # nothing held
