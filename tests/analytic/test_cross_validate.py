"""DES vs analytic cross-validation harness.

Every organization is checked on a grid of Poisson arrival rates below
the saturation knee: the discrete-event simulator and the M/G/1
analytic backend must agree on mean response time within the
per-organization tolerance bands documented in
:mod:`repro.analytic.validation`.

A small subset (one mid-load point per organization) runs in tier-1;
the full grid is marked ``slow``.  If a band trips after a model
change, the fix is in the model — see TESTING.md before touching the
band constants.
"""

import pytest

from repro.analytic import AnalyticSaturationError, tolerance_for
from repro.sim import run_trace
from tests.analytic.workload import both_backends, config, poisson_trace

# One trace per (rate, block-size mix); built lazily, reused across
# organizations so every org sees the identical workload.
_traces = {}


def _trace(rate, nblocks=(1,)):
    key = (rate, nblocks)
    if key not in _traces:
        _traces[key] = poisson_trace(rate, nblocks=nblocks)
    return _traces[key]


def _assert_within_band(org, rate, cached=False, nblocks=(1,)):
    trace = _trace(rate, nblocks)
    kw = dict(cached=True, cache_mb=2) if cached else {}
    des, analytic = both_backends(org, trace, **kw)
    tol = tolerance_for(org, cached=cached)
    err = (analytic.mean_response_ms - des.mean_response_ms) / des.mean_response_ms
    assert abs(err) <= tol, (
        f"{org}{' cached' if cached else ''} @ rate={rate}/ms: "
        f"DES {des.mean_response_ms:.2f} ms vs analytic "
        f"{analytic.mean_response_ms:.2f} ms ({err:+.1%}, band ±{tol:.0%})"
    )


# -- tier-1 subset: one mid-load point per uncached organization -------------


class TestFastSubset:
    @pytest.mark.parametrize("org,rate", [
        ("base", 0.10),
        ("mirror", 0.10),
        ("raid5", 0.08),
        ("parity_striping", 0.08),
    ])
    def test_uncached_mid_load(self, org, rate):
        _assert_within_band(org, rate)

    def test_cached_mid_load(self):
        _assert_within_band("raid5", 0.08, cached=True)


# -- full grid (slow): rates below the knee, cached orgs, mixed sizes --------


class TestFullGrid:
    UNCACHED = [
        ("base", 0.04), ("base", 0.16),
        ("mirror", 0.04), ("mirror", 0.16),
        ("raid5", 0.04), ("raid5", 0.12),
        ("parity_striping", 0.04), ("parity_striping", 0.12),
        # RAID4's dedicated parity disk saturates first; the paper only
        # studies RAID4 with parity caching, so the uncached check stays
        # well below the parity-disk knee.
        ("raid4", 0.04), ("raid4", 0.06),
    ]

    CACHED = [
        ("base", 0.06), ("base", 0.10),
        ("raid5", 0.06), ("raid5", 0.10),
        ("raid4", 0.06), ("raid4", 0.10),
    ]

    @pytest.mark.slow
    @pytest.mark.parametrize("org,rate", UNCACHED)
    def test_uncached(self, org, rate):
        _assert_within_band(org, rate)

    @pytest.mark.slow
    @pytest.mark.parametrize("org,rate", CACHED)
    def test_cached(self, org, rate):
        _assert_within_band(org, rate, cached=True)

    @pytest.mark.slow
    @pytest.mark.parametrize("org", ["base", "mirror", "raid5", "parity_striping"])
    def test_mixed_request_sizes(self, org):
        """Multi-block requests exercise striping spans and fork-join."""
        _assert_within_band(org, 0.06, nblocks=(1, 1, 1, 1, 4, 8))


# -- saturation behaviour ----------------------------------------------------


class TestSaturation:
    def test_overload_raises_named_error(self):
        """Above the knee the solver refuses rather than extrapolating."""
        trace = _trace(0.60)
        with pytest.raises(AnalyticSaturationError):
            run_trace(config("raid5"), trace, backend="analytic")

    def test_saturation_error_is_a_value_error(self):
        assert issubclass(AnalyticSaturationError, ValueError)
