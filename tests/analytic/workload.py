"""Shared workload builders for the analytic cross-validation tests.

The cross-validation traces are *Poisson* by construction — uniform
block addresses, exponential interarrivals — because that is the
arrival process the M/G/1 backend assumes.  Validating against a
bursty trace would conflate the queueing approximation error with the
(documented, expected) Poisson-assumption error; the campaign-level
tolerance in :mod:`repro.analytic.validation` covers the latter.
"""

import numpy as np

from repro.sim import Organization, SystemConfig, run_trace
from repro.trace import TRACE_DTYPE, Trace

#: Disks per array in the cross-validation rig.  Small enough that a
#: DES run takes well under a second, large enough to exercise striping
#: and parity rotation.
NDISKS = 4
#: Blocks per logical disk; divisible by NDISKS + 1 so every parity
#: organization lays out evenly.
BPD = 1980


def poisson_trace(rate_per_ms, seed=42, ndisks=NDISKS, bpd=BPD,
                  write_frac=0.3, n=4000, nblocks=(1,)):
    """A seeded Poisson workload: uniform addresses, exponential gaps."""
    rng = np.random.default_rng(seed)
    records = np.zeros(n, dtype=TRACE_DTYPE)
    records["time"] = np.cumsum(rng.exponential(1.0 / rate_per_ms, size=n))
    records["lblock"] = rng.integers(0, ndisks * bpd - max(nblocks), size=n)
    records["nblocks"] = rng.choice(nblocks, size=n)
    records["is_write"] = rng.random(n) < write_frac
    return Trace(records, ndisks, bpd, name=f"poisson-{rate_per_ms}-{seed}")


def config(org, **kw):
    kw.setdefault("blocks_per_disk", BPD)
    kw.setdefault("n", NDISKS)
    return SystemConfig(organization=Organization.parse(org), **kw)


def both_backends(org, trace, **cfg_kw):
    """Mean response of the same (org, trace) point on DES and analytic."""
    cfg = config(org, **cfg_kw)
    des = run_trace(cfg, trace, warmup_fraction=0.1)
    analytic = run_trace(cfg, trace, warmup_fraction=0.1, backend="analytic")
    return des, analytic
