"""Property-based tests for the analytic queueing building blocks.

Hypothesis generates loads and service-time moments; the properties
pin the structural facts every M/G/1 implementation must satisfy —
monotonicity in load, the zero-load limit, saturation refusal, and
agreement with the M/M/1 closed form for exponential service — plus
the fork-join invariants the solver composes on top.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.queueing import (
    _EXACT_MAX_BRANCHES,
    _max_exponential_quadrature,
    fork_join_max_exponential,
    fork_join_response,
    mg1_priority_waiting_times,
    mg1_response_time,
    mg1_waiting_time,
    mm1_response_time,
)

# Service means in ms (disk accesses are ~5-40 ms); squared-coefficient
#-of-variation in [0, 3] keeps the second moment physically plausible.
means = st.floats(min_value=1.0, max_value=50.0)
scvs = st.floats(min_value=0.0, max_value=3.0)
# Utilizations strictly below saturation.
rhos = st.floats(min_value=0.01, max_value=0.95)


def second_moment(mean, scv):
    return mean * mean * (1.0 + scv)


class TestMG1Properties:
    @given(mean=means, scv=scvs, rho1=rhos, rho2=rhos)
    @settings(max_examples=60, deadline=None)
    def test_waiting_monotone_in_arrival_rate(self, mean, scv, rho1, rho2):
        lo, hi = sorted((rho1, rho2))
        m2 = second_moment(mean, scv)
        assert mg1_waiting_time(lo / mean, mean, m2) <= mg1_waiting_time(
            hi / mean, mean, m2
        )

    @given(mean=means, scv=scvs)
    @settings(max_examples=60, deadline=None)
    def test_zero_load_response_is_service_time(self, mean, scv):
        m2 = second_moment(mean, scv)
        assert mg1_response_time(0.0, mean, m2) == mean
        # And the limit is continuous: vanishing load adds vanishing wait.
        assert mg1_response_time(1e-9 / mean, mean, m2) == pytest.approx(mean)

    @given(mean=means, scv=scvs, excess=st.floats(min_value=1e-6, max_value=2.0))
    @settings(max_examples=60, deadline=None)
    def test_saturation_raises(self, mean, scv, excess):
        # The margin keeps lam * mean >= 1 through float rounding; the
        # exact-boundary case is pinned deterministically below.
        lam = (1.0 + excess) / mean
        with pytest.raises(ValueError):
            mg1_waiting_time(lam, mean, second_moment(mean, scv))
        with pytest.raises(ValueError):
            mg1_priority_waiting_times([(lam, mean, second_moment(mean, scv))])

    def test_saturation_boundary_exact(self):
        """Utilization of exactly 1 (representable: 16 * 1/16) refuses."""
        with pytest.raises(ValueError):
            mg1_waiting_time(0.0625, 16.0, 512.0)
        with pytest.raises(ValueError):
            mm1_response_time(0.0625, 16.0)

    @given(mean=means, rho=rhos)
    @settings(max_examples=60, deadline=None)
    def test_exponential_service_matches_mm1(self, mean, rho):
        """With E[S²] = 2E[S]² the P–K formula *is* the M/M/1 answer."""
        lam = rho / mean
        assert mg1_response_time(lam, mean, 2.0 * mean * mean) == pytest.approx(
            mm1_response_time(lam, mean)
        )

    @given(mean=means, scv=scvs, rho=rhos)
    @settings(max_examples=60, deadline=None)
    def test_single_priority_class_is_plain_mg1(self, mean, scv, rho):
        lam = rho / mean
        m2 = second_moment(mean, scv)
        (wait,) = mg1_priority_waiting_times([(lam, mean, m2)])
        assert wait == pytest.approx(mg1_waiting_time(lam, mean, m2))

    @given(mean=means, scv=scvs, rho=rhos, bg_scale=st.floats(0.1, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_background_class_waits_longer(self, mean, scv, rho, bg_scale):
        lam = 0.5 * rho / mean
        m2 = second_moment(mean, scv)
        waits = mg1_priority_waiting_times(
            [(lam, mean, m2), (lam * bg_scale, mean, m2)]
        )
        assert waits[0] <= waits[1]


class TestForkJoinProperties:
    branch_lists = st.lists(means, min_size=1, max_size=8)

    @given(branch_lists)
    @settings(max_examples=60, deadline=None)
    def test_max_at_least_slowest_branch(self, branches):
        assert fork_join_max_exponential(branches) >= max(branches) * (1 - 1e-12)

    @given(mean=means)
    @settings(max_examples=30, deadline=None)
    def test_single_branch_identity(self, mean):
        assert fork_join_max_exponential([mean]) == pytest.approx(mean)
        assert fork_join_response([mean], utilization=0.5) == mean

    @given(branch_lists, st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_response_bounded_by_independence(self, branches, rho):
        """Synchronized arrivals can only *reduce* E[max], never below
        the slowest branch."""
        resp = fork_join_response(branches, utilization=rho)
        assert max(branches) <= resp <= fork_join_max_exponential(branches) + 1e-9

    @given(st.lists(means, min_size=2, max_size=_EXACT_MAX_BRANCHES))
    @settings(max_examples=40, deadline=None)
    def test_quadrature_matches_inclusion_exclusion(self, branches):
        """The wide-fan-out integration path agrees with the exact sum
        on every width where the exact sum is affordable."""
        exact = fork_join_max_exponential(branches)
        quad = _max_exponential_quadrature(branches)
        assert quad == pytest.approx(exact, rel=1e-6)

    def test_two_homogeneous_branches_reproduce_nelson_tantawi(self):
        """R₂ = (12 − ρ)/8 · R for two identical M/M/1 branches."""
        r, rho = 20.0, 0.6
        assert fork_join_response([r, r], utilization=rho) == pytest.approx(
            (12.0 - rho) / 8.0 * r
        )
