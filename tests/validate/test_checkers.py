"""The invariant checkers: clean runs pass, injected faults fire.

Two halves, and both matter:

* every organization runs clean under ``validate=True`` — the checkers
  accept correct physics;
* each checker fires under a fault injected against exactly the
  invariant it guards — the checkers are *live*, not vacuous.
"""

import pytest

from repro.sim import run_trace
from repro.validate import InvariantViolation, faults
from tests.validate.workload import config, make_trace

TRACE = make_trace()

CONFIGS = {
    "base": dict(org="base"),
    "mirror": dict(org="mirror"),
    "raid5": dict(org="raid5"),
    "raid4": dict(org="raid4"),
    "parity_striping": dict(org="parity_striping"),
    "base-cached": dict(org="base", cached=True, cache_mb=4),
    "mirror-cached": dict(org="mirror", cached=True, cache_mb=4),
    "raid5-cached": dict(org="raid5", cached=True, cache_mb=4),
    "raid5-decoupled": dict(
        org="raid5", cached=True, cache_mb=4, destage_policy="decoupled"
    ),
    "raid4-paritycache": dict(
        org="raid4", cached=True, cache_mb=4, parity_caching=True
    ),
    "parity_striping-cached": dict(
        org="parity_striping", cached=True, cache_mb=4
    ),
}


class TestCleanRuns:
    @pytest.mark.parametrize("label", sorted(CONFIGS))
    def test_validated_run_is_clean(self, label):
        cfg = config(**CONFIGS[label])
        res = run_trace(cfg, TRACE, warmup_fraction=0.1, validate=True)
        assert res.response.count > 0
        assert res.mean_response_ms > 0

    def test_validation_does_not_change_the_result(self):
        """A monitored run is observationally identical to a bare one."""
        from repro.validate import result_fingerprint

        cfg = config(org="raid5", cached=True, cache_mb=4)
        bare = run_trace(cfg, TRACE, warmup_fraction=0.1)
        checked = run_trace(cfg, TRACE, warmup_fraction=0.1, validate=True)
        assert result_fingerprint(bare) == result_fingerprint(checked)


class TestMutationSmoke:
    """Each fault breaks one invariant; its checker must catch it."""

    def _expect(self, fault, cfg, match):
        with fault:
            with pytest.raises(InvariantViolation, match=match):
                run_trace(cfg, TRACE, warmup_fraction=0.1, validate=True)

    def test_dropped_parity_uncached(self):
        self._expect(
            faults.drop_parity_updates(),
            config(org="raid5"),
            "parity-consistency",
        )

    def test_dropped_parity_cached(self):
        self._expect(
            faults.drop_parity_updates(),
            config(org="raid5", cached=True, cache_mb=4),
            "parity-consistency",
        )

    def test_dropped_parity_raid4_parity_caching(self):
        self._expect(
            faults.drop_parity_updates(),
            config(org="raid4", cached=True, cache_mb=4, parity_caching=True),
            "parity-consistency",
        )

    def test_dropped_parity_parity_striping(self):
        self._expect(
            faults.drop_parity_updates(),
            config(org="parity_striping"),
            "parity-consistency",
        )

    def test_lost_completions(self):
        self._expect(
            faults.lose_completions(every=2),
            config(org="base"),
            "request-conservation",
        )

    def test_unreported_cache_mutation(self):
        self._expect(
            faults.suppress_cache_probe(every=3),
            config(org="raid5", cached=True, cache_mb=4),
            "cache-accounting",
        )

    def test_inflated_cache_hits(self):
        self._expect(
            faults.inflate_cache_hits(),
            config(org="base", cached=True, cache_mb=4),
            "cache-accounting",
        )

    def test_inflated_channel_busy_time(self):
        self._expect(
            faults.inflate_channel_busy(),
            config(org="base"),
            "resource-sanity",
        )

    def test_leaked_track_buffer(self):
        self._expect(
            faults.leak_track_buffer(),
            config(org="mirror"),
            "resource-sanity",
        )

    @pytest.mark.parametrize(
        "fault",
        [
            faults.drop_parity_updates,
            faults.lose_completions,
            faults.suppress_cache_probe,
            faults.inflate_cache_hits,
            faults.inflate_channel_busy,
            faults.leak_track_buffer,
        ],
    )
    def test_faults_restore_on_exit(self, fault):
        """After the injector's scope, the simulator is intact again."""
        with fault():
            pass
        cfg = config(org="raid5", cached=True, cache_mb=4)
        run_trace(cfg, TRACE, warmup_fraction=0.1, validate=True)


class TestDegradedExemption:
    """A degraded array legitimately skips redundancy for the failed
    disk; the parity checker must not cry wolf there."""

    def _build(self, org="raid5", failed=1):
        from repro.failure import DegradedParityController
        from repro.channel import Channel
        from repro.des import Environment
        from repro.disk import Disk

        cfg = config(org=org, n=4, blocks_per_disk=240, spindle_sync=True)
        env = Environment()
        layout = cfg.make_layout()
        geo = cfg.disk.geometry()
        sm = cfg.disk.seek_model()
        disks = [Disk(env, geo, sm, name=f"d{i}") for i in range(layout.ndisks)]
        channel = Channel(env)
        ctrl = DegradedParityController(
            env, layout, disks, channel, cfg, failed_disk=failed, spare=False
        )
        return env, ctrl

    def test_degraded_writes_pass_validation(self):
        from repro.validate import ValidationMonitor

        env, ctrl = self._build()
        monitor = ValidationMonitor().attach(env, [ctrl])
        done = []

        def proc(env, lb, k, w):
            yield from ctrl.handle(lb, k, w)
            done.append(lb)

        # Mix of reads and writes, including blocks on the failed disk.
        for i, (lb, k, w) in enumerate(
            [(0, 1, True), (240, 1, True), (480, 2, False), (240, 1, False)]
        ):
            env.process(proc(env, lb, k, w))
        env.run()
        assert len(done) == 4
        monitor.finalize()  # must not raise

    def test_exemption_is_watermark_aware(self):
        """A rebuild-in-progress array is exempt only *above* the
        watermark: blocks the rebuild already reconstructed onto the
        spare are held to the full parity contract again."""
        from repro.validate.parity import ParityConsistencyChecker

        env, ctrl = self._build(failed=1)
        ctrl.attach_spare()
        ctrl.rebuilt_upto = 100
        gone = ParityConsistencyChecker._gone
        assert not gone(ctrl, 1, 50)  # rebuilt: drive is live again
        assert gone(ctrl, 1, 100)  # above the watermark: still gone
        assert not gone(ctrl, 0, 100)  # other disks never gone

    def test_degraded_writes_pass_validation_mid_rebuild(self):
        from repro.validate import ValidationMonitor

        env, ctrl = self._build(failed=1)
        ctrl.attach_spare()
        ctrl.rebuilt_upto = 120  # half the 240-block disk is back
        monitor = ValidationMonitor().attach(env, [ctrl])
        done = []

        def proc(env, lb, k, w):
            yield from ctrl.handle(lb, k, w)
            done.append(lb)

        # Writes landing below and above the watermark on the spare.
        for lb, k, w in [(0, 1, True), (241, 1, True), (700, 2, True), (241, 1, False)]:
            env.process(proc(env, lb, k, w))
        env.run()
        assert len(done) == 4
        monitor.finalize()  # must not raise
