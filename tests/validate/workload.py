"""Shared workload builders for the validation tests."""

import numpy as np

from repro.sim import Organization, SystemConfig
from repro.trace import TRACE_DTYPE, Trace

BPD = 2640


def make_trace(seed=7, n=300, ndisks=10, bpd=BPD, write_frac=0.5, rate_ms=6.0):
    """A seeded mixed read/write trace exercising every code path."""
    rng = np.random.default_rng(seed)
    records = np.zeros(n, dtype=TRACE_DTYPE)
    records["time"] = np.cumsum(rng.exponential(rate_ms, size=n))
    records["lblock"] = rng.integers(0, ndisks * bpd - 8, size=n)
    records["nblocks"] = rng.choice([1, 1, 1, 4, 8], size=n)
    records["is_write"] = rng.random(n) < write_frac
    return Trace(records, ndisks, bpd, name=f"seeded-{seed}")


def config(org="base", **kw):
    kw.setdefault("blocks_per_disk", BPD)
    return SystemConfig(organization=Organization.parse(org), **kw)
