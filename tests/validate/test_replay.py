"""Deterministic replay: same seed and config ⇒ bit-identical results."""

import pytest

import repro.sim.runner as runner_mod
from repro.sim import run_trace
from repro.validate import ReplayMismatch, result_fingerprint, verify_replay
from tests.validate.workload import config, make_trace


class TestFingerprint:
    def test_identical_runs_share_a_fingerprint(self):
        cfg = config(org="raid5")
        trace = make_trace(n=80)
        a = run_trace(cfg, trace, warmup_fraction=0.1)
        b = run_trace(cfg, trace, warmup_fraction=0.1)
        assert result_fingerprint(a) == result_fingerprint(b)

    def test_different_workloads_differ(self):
        cfg = config(org="raid5")
        a = run_trace(cfg, make_trace(seed=1, n=80), warmup_fraction=0.1)
        b = run_trace(cfg, make_trace(seed=2, n=80), warmup_fraction=0.1)
        assert result_fingerprint(a) != result_fingerprint(b)

    def test_fingerprint_sees_individual_samples(self):
        """Two results with equal aggregates but a reordered sample pair
        still differ (samples are part of the fingerprint)."""
        cfg = config(org="base")
        trace = make_trace(n=40)
        a = run_trace(cfg, trace, warmup_fraction=0.0)
        b = run_trace(cfg, trace, warmup_fraction=0.0)
        assert b.response._samples is not None and len(b.response._samples) >= 2
        b.response._samples[0], b.response._samples[-1] = (
            b.response._samples[-1],
            b.response._samples[0],
        )
        if b.response._samples[0] != b.response._samples[-1]:
            assert result_fingerprint(a) != result_fingerprint(b)


class TestVerifyReplay:
    @pytest.mark.parametrize(
        "kw",
        [
            dict(org="base"),
            dict(org="mirror"),
            dict(org="raid5", cached=True, cache_mb=4),
        ],
    )
    def test_organizations_replay_deterministically(self, kw):
        fp = verify_replay(config(**kw), make_trace(n=60), warmup_fraction=0.1)
        assert isinstance(fp, str) and len(fp) == 64

    def test_three_way_replay(self):
        verify_replay(config(org="base"), make_trace(n=30), runs=3)

    def test_too_few_runs_rejected(self):
        with pytest.raises(ValueError, match="two runs"):
            verify_replay(config(org="base"), make_trace(n=10), runs=1)

    def test_nondeterminism_is_reported(self, monkeypatch):
        """A simulator whose results drift between runs must be caught."""
        real = runner_mod.run_trace
        state = {"n": 0}

        def drifting(cfg, trace, **kw):
            result = real(cfg, trace, **kw)
            result.response.observe(1000.0 + state["n"])  # extra sample
            state["n"] += 1
            return result

        monkeypatch.setattr(runner_mod, "run_trace", drifting)
        with pytest.raises(ReplayMismatch, match="not deterministic"):
            verify_replay(config(org="base"), make_trace(n=20))
