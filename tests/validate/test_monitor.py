"""Monitor lifecycle, probe installation and the kernel event hook."""

import pytest

from repro.des import Environment, Event
from repro.sim import run_trace
from repro.sim.system import build_system
from repro.validate import (
    InvariantChecker,
    InvariantViolation,
    ValidationMonitor,
    default_checkers,
)
from tests.validate.workload import config, make_trace


class TestLifecycle:
    def _system(self, **kw):
        cfg = config(org="raid5", cached=True, cache_mb=4, **kw)
        env = Environment()
        system = build_system(env, cfg, narrays=1)
        return env, system

    def test_attach_installs_probes_everywhere(self):
        env, system = self._system()
        monitor = ValidationMonitor().attach(env, system.controllers)
        for ctrl in system.controllers:
            assert ctrl.probe is monitor
            assert ctrl.channel.probe is monitor
            assert ctrl.cache.probe is monitor
            for disk in ctrl.disks:
                assert disk.probe is monitor

    def test_finalize_detaches_all_probes(self):
        env, system = self._system()
        monitor = ValidationMonitor().attach(env, system.controllers)
        monitor.finalize()
        for ctrl in system.controllers:
            assert ctrl.probe is None
            assert ctrl.channel.probe is None
            assert ctrl.cache.probe is None
            for disk in ctrl.disks:
                assert disk.probe is None
        assert env._event_hooks is None

    def test_double_attach_rejected(self):
        env, system = self._system()
        monitor = ValidationMonitor().attach(env, system.controllers)
        with pytest.raises(RuntimeError, match="already attached"):
            monitor.attach(env, system.controllers)

    def test_default_checker_set(self):
        names = {c.name for c in default_checkers()}
        assert names == {
            "request-conservation",
            "parity-consistency",
            "cache-accounting",
            "resource-sanity",
        }

    def test_custom_checkers_are_used(self):
        seen = []

        class Recorder(InvariantChecker):
            name = "recorder"

            def on_disk_submit(self, ctx, disk, request):
                seen.append(request.start_block)

        cfg = config(org="base")
        trace = make_trace(n=20)
        run_trace(
            cfg, trace, warmup_fraction=0.0, validate=True, checkers=[Recorder()]
        )
        assert len(seen) > 0


class TestKernelEventHook:
    def test_backwards_clock_is_caught(self):
        """Scheduling into the past breaks the (time, sequence) contract;
        the monitor's kernel hook must catch the non-monotone pop."""
        env = Environment()
        ValidationMonitor(checkers=[]).attach(env, [])
        env.timeout(10.0)
        env.run()  # clock is now at 10
        env.schedule(Event(env), delay=-5.0)  # an event in the past
        with pytest.raises(InvariantViolation, match="event-order"):
            env.run()

    def test_hooks_can_be_stacked_and_removed(self):
        env = Environment()
        order = []
        h1 = env.on_event(lambda t, e: order.append(("a", t)))
        h2 = env.on_event(lambda t, e: order.append(("b", t)))
        env.timeout(1.0)
        env.run()
        assert order == [("a", 1.0), ("b", 1.0)]
        env.off_event(h1)
        env.timeout(1.0)
        env.run()
        assert order[-1] == ("b", 2.0)
        env.off_event(h2)
        assert env._event_hooks is None
        with pytest.raises(ValueError):
            env.off_event(h2)

    def test_observers_never_mutate_the_run(self):
        """The same workload with and without an event hook takes the
        identical number of kernel steps."""
        def run_counting(with_hook):
            env = Environment()
            steps = []
            if with_hook:
                env.on_event(lambda t, e: steps.append(t))
            done = []

            def proc(env):
                for _ in range(5):
                    yield env.timeout(1.0)
                done.append(env.now)

            env.process(proc(env))
            env.run()
            return done[0]

        assert run_counting(False) == run_counting(True)
