"""Tests for the seek-time model calibration."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.disk import SeekModel


@pytest.fixture(scope="module")
def model():
    return SeekModel.fit()


class TestCalibration:
    def test_reproduces_table1_average(self, model):
        assert model.average_seek_time() == pytest.approx(11.2, rel=1e-9)

    def test_reproduces_table1_maximum(self, model):
        assert model.max_seek_time() == pytest.approx(28.0, rel=1e-9)

    def test_zero_distance_is_free(self, model):
        assert model.seek_time(0) == 0.0

    def test_single_cylinder_is_settle(self, model):
        assert model.seek_time(1) == pytest.approx(model.c)

    def test_coefficients_positive(self, model):
        assert model.a > 0
        assert model.b > 0
        assert model.c > 0

    def test_monotone_increasing(self, model):
        d = np.arange(0, 1260)
        t = model.seek_times(d)
        assert np.all(np.diff(t) >= 0)

    def test_concave_then_linear_shape(self, model):
        """Short seeks dominated by sqrt term, long by linear term."""
        # Marginal cost of a cylinder should fall with distance (concave-ish).
        short_marginal = model.seek_time(10) - model.seek_time(9)
        long_marginal = model.seek_time(1000) - model.seek_time(999)
        assert short_marginal > long_marginal

    def test_negative_distance_rejected(self, model):
        with pytest.raises(ValueError):
            model.seek_time(-1)
        with pytest.raises(ValueError):
            model.seek_times(np.array([-1.0]))

    def test_vectorised_matches_scalar(self, model):
        d = np.array([0, 1, 2, 17, 500, 1259])
        vec = model.seek_times(d)
        scal = [model.seek_time(int(x)) for x in d]
        np.testing.assert_allclose(vec, scal)

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            SeekModel.fit(cylinders=2)
        with pytest.raises(ValueError):
            SeekModel.fit(average_ms=30.0)  # average > maximal
        with pytest.raises(ValueError):
            SeekModel.fit(settle_ms=0.0)

    @given(
        st.floats(min_value=0.5, max_value=4.0),
        st.floats(min_value=8.0, max_value=15.0),
    )
    def test_fit_is_exact_or_refused(self, settle, average):
        """The fit either reproduces the spec exactly or refuses with a
        clear error when the parameters imply a non-monotonic curve."""
        maximal = average * 2.5
        try:
            m = SeekModel.fit(average_ms=average, maximal_ms=maximal, settle_ms=settle)
        except ValueError as err:
            assert "non-monotonic" in str(err)
            return
        assert m.average_seek_time() == pytest.approx(average, rel=1e-6)
        assert m.max_seek_time() == pytest.approx(maximal, rel=1e-6)
        assert m.a >= 0 and m.b >= 0

    def test_custom_cylinder_count(self):
        m = SeekModel.fit(cylinders=2000)
        assert m.max_seek_time() == pytest.approx(28.0)
        assert m.seek_time(1999) == pytest.approx(28.0)
