"""Unit and property tests for DiskGeometry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.disk import DiskGeometry


@pytest.fixture(scope="module")
def geo():
    return DiskGeometry()


class TestTable1Defaults:
    """The default geometry must reproduce Table 1 of the paper."""

    def test_parameters(self, geo):
        assert geo.cylinders == 1260
        assert geo.sectors_per_track == 48
        assert geo.bytes_per_sector == 512
        assert geo.rpm == 5400.0
        assert geo.surfaces == 30  # 15 platters

    def test_capacity_about_0_9_gb(self, geo):
        assert 0.85e9 < geo.capacity_bytes < 0.95e9

    def test_revolution_time(self, geo):
        assert geo.revolution_time == pytest.approx(60000.0 / 5400.0)

    def test_blocks_per_track(self, geo):
        # 48 sectors * 512 B = 24 KB per track = 6 blocks of 4 KB.
        assert geo.sectors_per_block == 8
        assert geo.blocks_per_track == 6
        assert geo.blocks_per_cylinder == 180

    def test_total_blocks(self, geo):
        assert geo.total_blocks == 1260 * 180

    def test_block_transfer_time(self, geo):
        # 8 of 48 sectors -> 1/6 revolution.
        assert geo.block_transfer_time == pytest.approx(geo.revolution_time / 6)


class TestValidation:
    def test_block_not_multiple_of_sector(self):
        with pytest.raises(ValueError):
            DiskGeometry(block_bytes=1000)

    def test_track_not_multiple_of_block(self):
        with pytest.raises(ValueError):
            DiskGeometry(sectors_per_track=12, block_bytes=8192)

    @pytest.mark.parametrize("field", ["cylinders", "surfaces", "sectors_per_track"])
    def test_nonpositive_rejected(self, field):
        with pytest.raises(ValueError):
            DiskGeometry(**{field: 0})

    def test_nonpositive_rpm(self):
        with pytest.raises(ValueError):
            DiskGeometry(rpm=0)

    def test_block_out_of_range(self, geo):
        with pytest.raises(ValueError):
            geo.cylinder_of(geo.total_blocks)
        with pytest.raises(ValueError):
            geo.cylinder_of(-1)

    def test_transfer_time_requires_positive(self, geo):
        with pytest.raises(ValueError):
            geo.transfer_time(0)


class TestAddressing:
    def test_first_block(self, geo):
        assert geo.decompose(0) == (0, 0, 0)
        assert geo.cylinder_of(0) == 0
        assert geo.start_sector_of(0) == 0

    def test_last_block(self, geo):
        last = geo.total_blocks - 1
        cyl, surf, in_track = geo.decompose(last)
        assert cyl == geo.cylinders - 1
        assert surf == geo.surfaces - 1
        assert in_track == geo.blocks_per_track - 1

    def test_track_boundary(self, geo):
        # Block 6 is the first block of surface 1 on cylinder 0.
        assert geo.decompose(geo.blocks_per_track) == (0, 1, 0)

    def test_cylinder_boundary(self, geo):
        assert geo.decompose(geo.blocks_per_cylinder) == (1, 0, 0)

    def test_start_angle_range(self, geo):
        for b in (0, 1, 5, 6, 179, 180):
            assert 0 <= geo.start_angle_of(b) < 1

    def test_start_angle_of_second_block(self, geo):
        assert geo.start_angle_of(1) == pytest.approx(8 / 48)

    def test_compose_validation(self, geo):
        with pytest.raises(ValueError):
            geo.compose(geo.cylinders, 0, 0)
        with pytest.raises(ValueError):
            geo.compose(0, geo.surfaces, 0)
        with pytest.raises(ValueError):
            geo.compose(0, 0, geo.blocks_per_track)

    @given(st.integers(min_value=0, max_value=1260 * 180 - 1))
    def test_decompose_compose_roundtrip(self, block):
        geo = DiskGeometry()
        assert geo.compose(*geo.decompose(block)) == block

    @given(
        st.integers(min_value=0, max_value=1259),
        st.integers(min_value=0, max_value=29),
        st.integers(min_value=0, max_value=5),
    )
    def test_compose_decompose_roundtrip(self, cyl, surf, bit):
        geo = DiskGeometry()
        assert geo.decompose(geo.compose(cyl, surf, bit)) == (cyl, surf, bit)

    def test_consecutive_blocks_same_or_next_cylinder(self, geo):
        """Sequential layout: cylinder number is nondecreasing in block."""
        prev = 0
        for b in range(0, geo.total_blocks, 997):
            cyl = geo.cylinder_of(b)
            assert cyl >= prev
            prev = cyl
