"""Tests for the Disk service process: exact timing of the paper's model."""

import pytest

from repro.des import Environment, Event
from repro.disk import AccessKind, Disk, DiskGeometry, DiskRequest, SeekModel
from repro.disk.request import Priority
from repro.disk.scheduler import FCFSScheduler, SSTFScheduler


@pytest.fixture
def geo():
    return DiskGeometry()


@pytest.fixture
def sm():
    return SeekModel.fit()


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def disk(env, geo, sm):
    return Disk(env, geo, sm)


XFER = DiskGeometry().block_transfer_time  # 1.8518.. ms
REV = DiskGeometry().revolution_time  # 11.111.. ms


class TestRequestValidation:
    def test_nonpositive_nblocks(self):
        with pytest.raises(ValueError):
            DiskRequest(AccessKind.READ, 0, nblocks=0)

    def test_negative_start(self):
        with pytest.raises(ValueError):
            DiskRequest(AccessKind.READ, -1)

    def test_end_block(self):
        r = DiskRequest(AccessKind.READ, 10, nblocks=4)
        assert r.end_block == 14


class TestBasicTiming:
    def test_read_block0_is_pure_transfer(self, env, disk):
        """Head starts at cyl 0 angle 0; block 0 needs no seek/latency."""
        r = disk.submit(DiskRequest(AccessKind.READ, 0))
        env.run(r.done)
        assert env.now == pytest.approx(XFER)

    def test_write_same_cost_as_read(self, env, disk):
        r = disk.submit(DiskRequest(AccessKind.WRITE, 0))
        env.run(r.done)
        assert env.now == pytest.approx(XFER)

    def test_rmw_costs_exactly_one_extra_revolution(self, env, disk):
        r = disk.submit(DiskRequest(AccessKind.RMW, 0))
        env.run(r.done)
        assert env.now == pytest.approx(REV + XFER)

    def test_rmw_read_complete_fires_after_read_phase(self, env, disk):
        r = disk.submit(DiskRequest(AccessKind.RMW, 0))
        env.run(r.read_complete)
        assert env.now == pytest.approx(XFER)

    def test_rotational_latency_for_second_block(self, env, disk, geo):
        """Block 1 starts at sector 8 -> latency of 8 sector times."""
        r = disk.submit(DiskRequest(AccessKind.READ, 1))
        env.run(r.done)
        expected = 8 * geo.sector_time + XFER
        assert env.now == pytest.approx(expected)

    def test_multiblock_transfer(self, env, disk, geo):
        r = disk.submit(DiskRequest(AccessKind.READ, 0, nblocks=6))
        env.run(r.done)
        assert env.now == pytest.approx(geo.transfer_time(6))

    def test_seek_included(self, env, disk, geo, sm):
        block = geo.compose(100, 0, 0)
        r = disk.submit(DiskRequest(AccessKind.READ, block))
        env.run(r.done)
        seek = sm.seek_time(100)
        arrive = seek
        lat = disk.rotational_latency(arrive, block)
        assert env.now == pytest.approx(seek + lat + XFER)

    def test_arm_moves_to_target(self, env, disk, geo):
        block = geo.compose(500, 3, 2)
        r = disk.submit(DiskRequest(AccessKind.READ, block))
        env.run(r.done)
        assert disk.cylinder == 500

    def test_arm_parks_at_end_of_run(self, env, disk, geo):
        # A run crossing a cylinder boundary parks at the last cylinder.
        start = geo.blocks_per_cylinder - 1
        r = disk.submit(DiskRequest(AccessKind.READ, start, nblocks=2))
        env.run(r.done)
        assert disk.cylinder == 1


class TestDependencies:
    def test_rmw_spins_until_data_ready(self, env, disk):
        dep = Event(env)

        def trigger(env):
            yield env.timeout(30.0)
            dep.succeed()

        env.process(trigger(env))
        r = disk.submit(DiskRequest(AccessKind.RMW, 0, data_ready=dep))
        env.run(r.done)
        # read ends at XFER; first slot at REV; dep at 30 -> 2 extra spins
        # -> write starts at 3*REV, ends 3*REV + XFER.
        assert env.now == pytest.approx(3 * REV + XFER)
        assert r.spin_revolutions == 2

    def test_rmw_no_spin_if_ready_before_slot(self, env, disk):
        dep = Event(env)

        def trigger(env):
            yield env.timeout(5.0)  # before the REV slot
            dep.succeed()

        env.process(trigger(env))
        r = disk.submit(DiskRequest(AccessKind.RMW, 0, data_ready=dep))
        env.run(r.done)
        assert env.now == pytest.approx(REV + XFER)
        assert r.spin_revolutions == 0

    def test_dependent_write_waits(self, env, disk):
        dep = Event(env)

        def trigger(env):
            yield env.timeout(20.0)
            dep.succeed()

        env.process(trigger(env))
        r = disk.submit(DiskRequest(AccessKind.WRITE, 0, data_ready=dep))
        env.run(r.done)
        # After dep at t=20, wait for sector 0: angle(20) = .8 -> latency
        lat = disk.rotational_latency(20.0, 0)
        assert env.now == pytest.approx(20.0 + lat + XFER)

    def test_pretriggered_dependency_costs_nothing(self, env, disk):
        dep = Event(env)
        dep.succeed()
        r = disk.submit(DiskRequest(AccessKind.WRITE, 0, data_ready=dep))
        env.run(r.done)
        assert env.now == pytest.approx(XFER)


class TestQueueing:
    def test_fifo_service(self, env, disk):
        r1 = disk.submit(DiskRequest(AccessKind.READ, 0))
        r2 = disk.submit(DiskRequest(AccessKind.READ, 0))
        env.run(r2.done)
        assert r1.done.value < r2.done.value

    def test_priority_served_first(self, env, disk, geo):
        # Occupy the disk, then queue a normal and an urgent request.
        r0 = disk.submit(DiskRequest(AccessKind.READ, 0))
        env.run(r0.started)
        normal = disk.submit(DiskRequest(AccessKind.READ, 6, priority=Priority.NORMAL))
        urgent = disk.submit(
            DiskRequest(AccessKind.READ, 12, priority=Priority.PARITY_URGENT)
        )
        env.run()
        assert urgent.done.value < normal.done.value
        assert r0.done.value < urgent.done.value  # no preemption

    def test_destage_priority_yields_to_reads(self, env, disk):
        r0 = disk.submit(DiskRequest(AccessKind.READ, 0))
        destage = disk.submit(DiskRequest(AccessKind.WRITE, 6, priority=Priority.DESTAGE))
        read = disk.submit(DiskRequest(AccessKind.READ, 12))
        env.run()
        assert read.done.value < destage.done.value

    def test_started_event(self, env, disk):
        r1 = disk.submit(DiskRequest(AccessKind.READ, 0))
        r2 = disk.submit(DiskRequest(AccessKind.READ, 6))
        env.run(r2.started)
        # r2 starts service exactly when r1 completes.
        assert env.now == pytest.approx(r1.done.value)

    def test_pending_counts(self, env, disk):
        disk.submit(DiskRequest(AccessKind.READ, 0))
        disk.submit(DiskRequest(AccessKind.READ, 6))
        disk.submit(DiskRequest(AccessKind.READ, 12))
        # Nothing processed yet: service hasn't started.
        env.run(until=1e-9)
        assert disk.pending == 2  # one in service
        assert disk.in_service is not None
        env.run()
        assert disk.pending == 0
        assert disk.in_service is None

    def test_statistics(self, env, disk):
        disk.submit(DiskRequest(AccessKind.READ, 0))
        disk.submit(DiskRequest(AccessKind.WRITE, 6))
        disk.submit(DiskRequest(AccessKind.RMW, 12))
        env.run()
        assert disk.completed == 3
        assert disk.reads == 1
        assert disk.writes == 1
        assert disk.rmws == 1
        assert disk.blocks_transferred == 3
        assert disk.busy_time > 0
        assert 0 < disk.utilization() <= 1

    def test_idle_disk_starts_immediately(self, env, disk):
        def late(env):
            yield env.timeout(100.0)
            r = disk.submit(DiskRequest(AccessKind.READ, 0))
            yield r.started
            return env.now

        p = env.process(late(env))
        env.run()
        assert p.value == pytest.approx(100.0)


class TestSSTFScheduler:
    def test_picks_nearest_cylinder(self, env, geo, sm):
        disk = Disk(env, geo, sm, scheduler=SSTFScheduler(geo))
        # Occupy with a long op, then queue far and near requests.
        disk.submit(DiskRequest(AccessKind.RMW, 0))
        far = disk.submit(DiskRequest(AccessKind.READ, geo.compose(1000, 0, 0)))
        near = disk.submit(DiskRequest(AccessKind.READ, geo.compose(10, 0, 0)))
        env.run()
        assert near.done.value < far.done.value

    def test_priority_beats_distance(self, env, geo, sm):
        disk = Disk(env, geo, sm, scheduler=SSTFScheduler(geo))
        disk.submit(DiskRequest(AccessKind.RMW, 0))
        near_low = disk.submit(
            DiskRequest(AccessKind.WRITE, geo.compose(1, 0, 0), priority=Priority.DESTAGE)
        )
        far_normal = disk.submit(DiskRequest(AccessKind.READ, geo.compose(1200, 0, 0)))
        env.run()
        assert far_normal.done.value < near_low.done.value

    def test_empty_pop_raises(self, geo):
        with pytest.raises(IndexError):
            SSTFScheduler(geo).pop(0)
        with pytest.raises(IndexError):
            FCFSScheduler().pop(0)

    def test_len_and_iter(self, geo):
        s = SSTFScheduler(geo)
        r = DiskRequest(AccessKind.READ, 0)
        s.put(r)
        assert len(s) == 1
        assert list(s) == [r]
        assert s.peek_priority() == Priority.NORMAL
        f = FCFSScheduler()
        assert f.peek_priority() is None
