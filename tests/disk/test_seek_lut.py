"""The seek-time LUT must be indistinguishable from the closed form."""

import random

import numpy as np
import pytest

from repro.disk.seek import SeekModel


@pytest.fixture(scope="module")
def model():
    return SeekModel.fit()


def test_lut_matches_closed_form_for_every_distance(model):
    """Exhaustive: every integer distance, bit-for-bit equal."""
    for d in range(model.cylinders):
        assert model.seek_time(d) == model._curve(d)


def test_lut_covers_whole_stroke(model):
    assert len(model._lut) == model.cylinders
    assert model._lut[0] == 0.0
    assert model.seek_time(model.cylinders - 1) == model.max_seek_time()


def test_float_distances_fall_back_to_formula(model):
    assert model.seek_time(0.0) == 0.0
    rng = random.Random(42)
    for _ in range(200):
        x = rng.uniform(1.0, model.cylinders + 50.0)
        expected = model.a * np.sqrt(x - 1.0) + model.b * (x - 1.0) + model.c
        assert model.seek_time(x) == pytest.approx(float(expected), rel=1e-12)


def test_out_of_range_int_falls_back(model):
    big = model.cylinders + 10
    assert model.seek_time(big) == model._curve(big)


def test_negative_distance_rejected(model):
    with pytest.raises(ValueError):
        model.seek_time(-1)
    with pytest.raises(ValueError):
        model.seek_time(-0.5)


def test_numpy_integers_match_python_ints(model):
    """The fast path keys on exact int type; numpy ints must still
    return the same values through the fallback."""
    for d in (0, 1, 17, model.cylinders - 1):
        assert model.seek_time(np.int64(d)) == model.seek_time(d)


def test_vectorised_seek_times_consistent_with_scalar(model):
    d = np.arange(model.cylinders)
    vec = model.seek_times(d)
    scalar = np.array([model.seek_time(int(x)) for x in d])
    np.testing.assert_allclose(vec, scalar, rtol=1e-12, atol=0.0)


def test_monotone_nondecreasing(model):
    lut = model._lut
    assert all(lut[i] <= lut[i + 1] for i in range(len(lut) - 1))
