"""Regression tests for cross-disk circular-wait hazards.

Two deadlock classes were found under concurrent parity updates:

1. **SI holding**: a parity RMW holding disk A spinning for old data
   queued on disk B, while disk B's in-service parity RMW spins for old
   data queued on disk A.  Broken by the bounded hold
   (``si_max_hold_revolutions``) with requeue.
2. **Priority reconstruct parity**: an RF/PR or DF/PR reconstruct
   parity write jumping (priority) ahead of another update's stripe
   reads on its disk while its own reads queue behind a symmetric
   parity write.  Broken by submitting reconstruct parity only after
   its reads complete.
"""

import numpy as np
import pytest

from repro.des import Environment
from repro.sim import Organization, SystemConfig
from repro.sim.system import build_system

BPD = 2640


def flood(org, sync, writes, n=4, nblocks=1, seed=0):
    """Issue many concurrent updates and require all to finish."""
    env = Environment()
    cfg = SystemConfig(
        organization=Organization.parse(org),
        n=n,
        blocks_per_disk=BPD,
        sync_policy=sync,
    )
    system = build_system(env, cfg, 1)
    ctrl = system.controllers[0]
    rng = np.random.default_rng(seed)
    finished = []

    def writer(env, lb, k):
        yield from ctrl.handle(lb, k, True)
        finished.append(lb)

    for _ in range(writes):
        lb = int(rng.integers(0, n * BPD - nblocks))
        env.process(writer(env, lb, nblocks))
    env.run(until=600_000)
    return finished, writes, ctrl


class TestSIHoldBound:
    def test_si_concurrent_single_block_updates_all_finish(self):
        finished, total, _ = flood("raid5", "SI", writes=150)
        assert len(finished) == total

    def test_si_parity_striping_all_finish(self):
        finished, total, _ = flood("parity_striping", "SI", writes=150)
        assert len(finished) == total

    def test_si_hold_retries_counted_under_contention(self):
        """The bounded hold is actually exercised: under a write flood
        some parity accesses give up and requeue."""
        from repro.disk.request import DiskRequest  # noqa: F401

        finished, total, ctrl = flood("raid5", "SI", writes=300, seed=3)
        assert len(finished) == total
        # Spins happen under SI (the policy's signature cost).
        assert all(d.completed > 0 for d in ctrl.disks)

    def test_si_hold_bound_config_validation(self):
        cfg = SystemConfig(si_max_hold_revolutions=2)
        assert cfg.si_max_hold_revolutions == 2


class TestPriorityReconstructParity:
    @pytest.mark.parametrize("sync", ["RF/PR", "DF/PR"])
    def test_concurrent_reconstruct_writes_all_finish(self, sync):
        # 3-of-4-unit writes -> reconstruct path, many in flight.
        finished, total, _ = flood("raid5", sync, writes=120, nblocks=3, seed=1)
        assert len(finished) == total

    @pytest.mark.parametrize("sync", ["SI", "RF", "RF/PR", "DF", "DF/PR"])
    def test_mixed_sizes_all_policies(self, sync):
        env = Environment()
        cfg = SystemConfig(
            organization=Organization.RAID5,
            n=4,
            blocks_per_disk=BPD,
            sync_policy=sync,
        )
        system = build_system(env, cfg, 1)
        ctrl = system.controllers[0]
        rng = np.random.default_rng(7)
        finished = []

        def writer(env, lb, k):
            yield from ctrl.handle(lb, k, True)
            finished.append(lb)

        total = 0
        for _ in range(120):
            k = int(rng.choice([1, 1, 1, 2, 3, 4, 8]))
            lb = int(rng.integers(0, 4 * BPD - k))
            env.process(writer(env, lb, k))
            total += 1
        env.run(until=600_000)
        assert len(finished) == total
