"""Tests for degraded-mode operation and rebuild."""

import numpy as np
import pytest

from repro.failure.degraded import (
    DegradedMirrorController,
    DegradedParityController,
    RebuildProcess,
    reconstruction_sources,
)
from repro.channel import Channel
from repro.des import Environment
from repro.disk import Disk
from repro.layout import (
    BaseLayout,
    MirrorLayout,
    ParityStripingLayout,
    Raid4Layout,
    Raid5Layout,
)
from repro.sim import Organization, SystemConfig

BPD = 240


class TestReconstructionSources:
    @pytest.mark.parametrize("su", [1, 2, 8])
    def test_raid5_sources_are_other_disks_same_block(self, su):
        layout = Raid5Layout(4, BPD, striping_unit=su)
        sources = reconstruction_sources(layout, 2, 17)
        assert len(sources) == 4
        assert all(src.block == 17 for src in sources)
        assert {src.disk for src in sources} == {0, 1, 3, 4}

    def test_raid4_sources(self):
        layout = Raid4Layout(4, BPD)
        sources = reconstruction_sources(layout, 0, 5)
        assert {src.disk for src in sources} == {1, 2, 3, 4}

    def test_mirror_source_is_partner(self):
        layout = MirrorLayout(4, BPD)
        assert reconstruction_sources(layout, 3, 9) == [
            type(reconstruction_sources(layout, 3, 9)[0])(2, 9)
        ]

    def test_parstripe_data_block_sources(self):
        layout = ParityStripingLayout(4, BPD)
        # Data block on disk 0, area 0, offset 7.
        pblock = layout.map_block(7).block
        sources = reconstruction_sources(layout, 0, pblock)
        assert len(sources) == 4  # parity + 3 other members
        assert 0 not in {src.disk for src in sources}
        # Exactly one source is a parity block.
        parity_sources = [
            s for s in sources if layout.is_parity_block(s.disk, s.block)
        ]
        assert len(parity_sources) == 1

    def test_parstripe_parity_block_sources(self):
        layout = ParityStripingLayout(4, BPD)
        parity_pblock = layout.parity_area_index * layout.area_blocks + 3
        sources = reconstruction_sources(layout, 2, parity_pblock)
        assert len(sources) == 4
        assert all(not layout.is_parity_block(s.disk, s.block) for s in sources)

    def test_xor_consistency_raid5(self):
        """The sources of a data block are exactly its row-mates: their
        logical contents plus parity XOR to the target (checked via the
        layout's row structure)."""
        layout = Raid5Layout(4, BPD, striping_unit=2)
        for lb in (0, 5, 13):
            addr = layout.map_block(lb)
            sources = reconstruction_sources(layout, addr.disk, addr.block)
            # One source must be the parity of lb.
            parity = layout.parity_of(lb)
            assert parity in sources

    def test_base_has_no_redundancy(self):
        with pytest.raises(TypeError):
            reconstruction_sources(BaseLayout(4, BPD), 0, 0)


def build_degraded(org, failed=1, spare=False, n=4, **kw):
    env = Environment()
    cfg = SystemConfig(
        organization=Organization.parse(org),
        n=n,
        blocks_per_disk=BPD,
        spindle_sync=True,
        **kw,
    )
    layout = cfg.make_layout()
    geo = cfg.disk.geometry()
    sm = cfg.disk.seek_model()
    disks = [Disk(env, geo, sm, name=f"d{i}") for i in range(layout.ndisks)]
    channel = Channel(env)
    cls = DegradedMirrorController if org == "mirror" else DegradedParityController
    ctrl = cls(env, layout, disks, channel, cfg, failed_disk=failed, spare=spare)
    return env, ctrl


def run_one(env, ctrl, lb, k, is_write):
    out = {}

    def proc(env):
        t0 = env.now
        yield from ctrl.handle(lb, k, is_write)
        out["rt"] = env.now - t0

    p = env.process(proc(env))
    env.run(until=p)
    return out["rt"]


class TestDegradedParity:
    def test_validation(self):
        with pytest.raises(ValueError):
            build_degraded("raid5", failed=9)

    def test_read_of_healthy_disk_unaffected(self):
        env, ctrl = build_degraded("raid5", failed=1)
        lb = next(
            b for b in range(20) if ctrl.layout.map_block(b).disk not in (1,)
        )
        rt = run_one(env, ctrl, lb, 1, False)
        assert rt < 10  # plain single read, idle array
        assert ctrl.degraded_reads == 0

    def test_read_of_failed_disk_reconstructs(self):
        env, ctrl = build_degraded("raid5", failed=1)
        lb = next(b for b in range(20) if ctrl.layout.map_block(b).disk == 1)
        rt = run_one(env, ctrl, lb, 1, False)
        assert ctrl.degraded_reads == 1
        # All four surviving disks were read.
        reads = [d.reads for i, d in enumerate(ctrl.disks) if i != 1]
        assert reads == [1, 1, 1, 1]
        assert ctrl.disks[1].reads == 0

    def test_degraded_read_waits_for_slowest_source(self):
        """Reconstruction is the max over all surviving sources: a far
        arm on any source disk delays the whole degraded read."""
        env, ctrl = build_degraded("raid5", failed=1)
        lb = next(b for b in range(20) if ctrl.layout.map_block(b).disk == 1)
        ctrl.disks[3].cylinder = 1200  # one source parked far away
        rt = run_one(env, ctrl, lb, 1, False)
        seek = ctrl.disks[3].seek_model.seek_time(1200)
        assert rt > seek

    def test_write_to_failed_disk_updates_parity_only(self):
        env, ctrl = build_degraded("raid5", failed=1)
        lb = next(b for b in range(20) if ctrl.layout.map_block(b).disk == 1)
        run_one(env, ctrl, lb, 1, True)
        assert ctrl.degraded_writes == 1
        assert ctrl.disks[1].completed == 0  # failed disk untouched
        parity = ctrl.layout.parity_of(lb)
        assert ctrl.disks[parity.disk].rmws == 1

    def test_write_with_failed_parity_disk_is_plain(self):
        env, ctrl = build_degraded("raid5", failed=1)
        lb = next(b for b in range(60) if ctrl.layout.parity_of(b).disk == 1)
        daddr = ctrl.layout.map_block(lb)
        run_one(env, ctrl, lb, 1, True)
        assert ctrl.degraded_writes == 1
        # Data disk still updated (RMW), failed parity skipped.
        assert ctrl.disks[daddr.disk].completed == 1
        assert ctrl.disks[1].completed == 0

    def test_parity_striping_degraded_read(self):
        env, ctrl = build_degraded("parity_striping", failed=2)
        lb = next(
            b
            for b in range(ctrl.layout.logical_blocks)
            if ctrl.layout.map_block(b).disk == 2
        )
        run_one(env, ctrl, lb, 1, False)
        assert ctrl.degraded_reads == 1


class TestDegradedMirror:
    def test_read_goes_to_survivor(self):
        env, ctrl = build_degraded("mirror", failed=0)
        run_one(env, ctrl, 0, 1, False)  # block on pair (0, 1)
        assert ctrl.disks[1].reads == 1
        assert ctrl.disks[0].reads == 0

    def test_write_only_to_survivor(self):
        env, ctrl = build_degraded("mirror", failed=0)
        run_one(env, ctrl, 0, 1, True)
        assert ctrl.disks[1].writes == 1
        assert ctrl.disks[0].writes == 0
        assert ctrl.degraded_writes == 1

    def test_other_pairs_unaffected(self):
        env, ctrl = build_degraded("mirror", failed=0)
        run_one(env, ctrl, BPD + 1, 1, True)  # pair (2, 3)
        assert ctrl.disks[2].writes == 1
        assert ctrl.disks[3].writes == 1


class TestRebuild:
    def test_requires_spare(self):
        env, ctrl = build_degraded("raid5", failed=1, spare=False)
        with pytest.raises(ValueError):
            RebuildProcess(ctrl)

    def test_rebuild_completes_and_advances_watermark(self):
        env, ctrl = build_degraded("raid5", failed=1, spare=True)
        rebuild = RebuildProcess(ctrl, chunk_blocks=12)
        env.run(until=rebuild.process)
        assert rebuild.done
        assert ctrl.rebuilt_upto == BPD
        assert rebuild.duration_ms > 0
        spare = ctrl.disks[1]
        assert spare.blocks_transferred == BPD

    def test_reads_after_rebuild_use_spare(self):
        env, ctrl = build_degraded("raid5", failed=1, spare=True)
        rebuild = RebuildProcess(ctrl, chunk_blocks=60)
        env.run(until=rebuild.process)
        lb = next(b for b in range(20) if ctrl.layout.map_block(b).disk == 1)
        before = ctrl.degraded_reads
        run_one(env, ctrl, lb, 1, False)
        assert ctrl.degraded_reads == before  # served by the spare
        assert ctrl.disks[1].reads >= 1

    def test_rebuild_with_foreground_traffic(self):
        """Rebuild makes progress while requests keep arriving, and all
        requests complete."""
        env, ctrl = build_degraded("raid5", failed=1, spare=True)
        rebuild = RebuildProcess(ctrl, chunk_blocks=12)
        rng = np.random.default_rng(5)
        finished = []

        def client(env):
            for _ in range(100):
                yield env.timeout(float(rng.exponential(20.0)))
                lb = int(rng.integers(0, 4 * BPD))
                yield env.process(
                    _request(env, ctrl, lb, bool(rng.random() < 0.3))
                )
                finished.append(lb)

        def _request(env, ctrl, lb, w):
            yield from ctrl.handle(lb, 1, w)

        env.process(client(env))
        env.run(until=rebuild.process)
        env.run(until=60_000)
        assert rebuild.done
        assert len(finished) == 100

    def test_throttled_rebuild_slower(self):
        env1, c1 = build_degraded("raid5", failed=1, spare=True)
        r1 = RebuildProcess(c1, chunk_blocks=12, delay_ms=0.0)
        env1.run(until=r1.process)
        env2, c2 = build_degraded("raid5", failed=1, spare=True)
        r2 = RebuildProcess(c2, chunk_blocks=12, delay_ms=50.0)
        env2.run(until=r2.process)
        assert r2.duration_ms > r1.duration_ms

    def test_mirror_rebuild(self):
        env, ctrl = build_degraded("mirror", failed=0, spare=True)
        rebuild = RebuildProcess(ctrl, chunk_blocks=24)
        env.run(until=rebuild.process)
        assert rebuild.done
        # Rebuilt from the partner.
        assert ctrl.disks[1].reads > 0
