"""Integration tests for the uncached controllers with exact timings."""

import pytest

from repro.des import Environment
from repro.disk import DiskGeometry
from repro.models.gray import ZeroLoadModel
from repro.sim import Organization, SystemConfig
from repro.sim.system import build_system

REV = DiskGeometry().revolution_time
XFER = DiskGeometry().block_transfer_time
CHAN = 4096 / 10000.0  # 4 KB at 10 MB/s in ms

BPD = 240


def make_controller(org, n=4, su=1, sync="DF", **kw):
    env = Environment()
    kw.setdefault("spindle_sync", True)  # exact-timing tests assume phase 0
    cfg = SystemConfig(
        organization=Organization.parse(org),
        n=n,
        blocks_per_disk=BPD,
        striping_unit=su,
        sync_policy=sync,
        cached=False,
        **kw,
    )
    system = build_system(env, cfg, 1)
    return env, system.controllers[0]


def run_one(env, ctrl, lstart, nblocks, is_write):
    done = {}

    def proc(env):
        yield from ctrl.handle(lstart, nblocks, is_write)
        done["t"] = env.now

    env.process(proc(env))
    env.run()
    return done["t"]


class TestBaseTiming:
    def test_read_block0(self):
        env, ctrl = make_controller("base")
        t = run_one(env, ctrl, 0, 1, False)
        assert t == pytest.approx(XFER + CHAN)

    def test_write_block0(self):
        env, ctrl = make_controller("base")
        t = run_one(env, ctrl, 0, 1, True)
        # The channel transfer finishes at CHAN; by then the platter has
        # rotated past sector 0, so the write waits almost a revolution.
        latency = ctrl.disks[0].rotational_latency(CHAN, 0)
        assert t == pytest.approx(CHAN + latency + XFER)

    def test_multiblock_read_single_disk(self):
        env, ctrl = make_controller("base")
        t = run_one(env, ctrl, 0, 4, False)
        assert t == pytest.approx(4 * XFER + 4 * CHAN)


class TestMirrorTiming:
    def test_write_goes_to_both(self):
        env, ctrl = make_controller("mirror")
        run_one(env, ctrl, 0, 1, True)
        assert ctrl.disks[0].writes == 1
        assert ctrl.disks[1].writes == 1

    def test_read_uses_one_arm(self):
        env, ctrl = make_controller("mirror")
        run_one(env, ctrl, 0, 1, False)
        assert ctrl.disks[0].reads + ctrl.disks[1].reads == 1

    def test_read_routed_to_nearest_arm(self):
        env, ctrl = make_controller("mirror")
        geo = ctrl.disks[0].geometry
        # Park disk 0's arm far away.
        far_block = geo.blocks_per_cylinder * 200
        ctrl.disks[0].cylinder = 200
        run_one(env, ctrl, 0, 1, False)
        # Disk 1 (at cylinder 0) must take the read of block 0.
        assert ctrl.disks[1].reads == 1
        assert ctrl.disks[0].reads == 0

    def test_write_response_is_max_of_pair(self):
        env, ctrl = make_controller("mirror")
        ctrl.disks[1].cylinder = 500  # one arm far away
        t = run_one(env, ctrl, 0, 1, True)
        sm = ctrl.disks[1].seek_model
        assert t > CHAN + sm.seek_time(500)  # waits for the far arm


class TestParityUpdateTiming:
    def test_raid5_single_block_write_ops(self):
        env, ctrl = make_controller("raid5")
        run_one(env, ctrl, 0, 1, True)
        rmws = sum(d.rmws for d in ctrl.disks)
        assert rmws == 2  # data disk + parity disk

    def test_raid5_update_costs_extra_revolution(self):
        env, ctrl = make_controller("raid5")
        t = run_one(env, ctrl, 0, 1, True)
        # Zero-load RMW on an idle array: channel + (seek=0) + latency
        # from the post-transfer rotational position + read + one full
        # revolution to rewrite in place.
        latency = ctrl.disks[0].rotational_latency(CHAN, 0)
        assert t == pytest.approx(CHAN + latency + XFER + REV)

    def test_raid5_read_has_no_penalty(self):
        env, ctrl = make_controller("raid5")
        t = run_one(env, ctrl, 0, 1, False)
        assert t == pytest.approx(XFER + CHAN)

    def test_full_stripe_write_no_rmw(self):
        env, ctrl = make_controller("raid5", su=2)
        run_one(env, ctrl, 0, 8, True)  # exactly one full row
        assert sum(d.rmws for d in ctrl.disks) == 0
        assert sum(d.writes for d in ctrl.disks) == 5  # 4 data + parity

    def test_reconstruct_write_reads_complement(self):
        env, ctrl = make_controller("raid5")
        run_one(env, ctrl, 0, 3, True)  # 3 of 4 units
        assert sum(d.reads for d in ctrl.disks) == 1
        assert sum(d.rmws for d in ctrl.disks) == 0

    def test_parity_striping_update_ops(self):
        env, ctrl = make_controller("parity_striping")
        run_one(env, ctrl, 0, 1, True)
        assert sum(d.rmws for d in ctrl.disks) == 2

    def test_raid4_parity_on_last_disk(self):
        env, ctrl = make_controller("raid4")
        run_one(env, ctrl, 0, 1, True)
        assert ctrl.disks[4].rmws == 1  # dedicated parity disk


class TestSyncPolicyBehaviour:
    def _update_with_busy_data_disk(self, sync):
        """Queue a read ahead of the update's data access and measure the
        parity disk's wasted revolutions."""
        env, ctrl = make_controller("raid5", sync=sync)
        layout = ctrl.layout
        # Find the data/parity disks for block 17.
        daddr = layout.map_block(17)
        # Keep the data disk busy with queued reads.
        from repro.disk import AccessKind, DiskRequest

        for _ in range(3):
            ctrl.disks[daddr.disk].submit(
                DiskRequest(AccessKind.READ, (daddr.block + 37) % BPD)
            )
        t = run_one(env, ctrl, 17, 1, True)
        spins = sum(
            getattr(req, "spin_revolutions", 0)
            for d in ctrl.disks
            for req in []
        )
        parity_disk = ctrl.disks[layout.parity_of(17).disk]
        return t, parity_disk

    def test_si_wastes_parity_disk_time(self):
        t_si, pdisk_si = self._update_with_busy_data_disk("SI")
        t_rf, pdisk_rf = self._update_with_busy_data_disk("RF")
        # SI holds the parity disk spinning; RF does not.
        assert pdisk_si.busy_time > pdisk_rf.busy_time

    def test_rf_slower_response_than_df(self):
        t_rf, _ = self._update_with_busy_data_disk("RF")
        t_df, _ = self._update_with_busy_data_disk("DF")
        assert t_df <= t_rf + 1e-9

    def test_pr_priority_jumps_queue(self):
        env, ctrl = make_controller("raid5", sync="DF/PR")
        layout = ctrl.layout
        paddr = layout.parity_of(0)
        from repro.disk import AccessKind, DiskRequest

        # Busy the parity disk, then queue competing reads behind.
        blocker = ctrl.disks[paddr.disk].submit(
            DiskRequest(AccessKind.RMW, (paddr.block + 60) % BPD)
        )
        competitors = [
            ctrl.disks[paddr.disk].submit(
                DiskRequest(AccessKind.READ, (paddr.block + 90 + i) % BPD)
            )
            for i in range(3)
        ]
        run_one(env, ctrl, 0, 1, True)
        parity_req_done = max(
            r.done.value for r in [blocker] if r.done.triggered
        )
        # The update's parity access beat at least the queued readers.
        assert any(
            not c.done.triggered or c.done.value > blocker.done.value
            for c in competitors
        )


class TestAgainstAnalyticalModel:
    """Idle-array response times must match the Gray-style zero-load
    model when seek and latency are controlled."""

    def test_rmw_formula(self):
        env, ctrl = make_controller("raid5")
        geo = ctrl.disks[0].geometry
        model = ZeroLoadModel(geo, ctrl.disks[0].seek_model)
        t = run_one(env, ctrl, 0, 1, True)
        # Block 0 on an idle disk: no seek; latency determined by the
        # rotational position when the channel transfer completes.
        latency = ctrl.disks[0].rotational_latency(CHAN, 0)
        expected = CHAN + latency + (
            model.rmw_update(1) - model.expected_seek - model.expected_latency
        )
        assert t == pytest.approx(expected)

    def test_read_formula(self):
        env, ctrl = make_controller("base")
        t = run_one(env, ctrl, 0, 1, False)
        assert t == pytest.approx(XFER + CHAN)


class TestBufferAccounting:
    def test_buffers_returned_after_requests(self):
        env, ctrl = make_controller("raid5")
        for i, (lb, w) in enumerate([(0, True), (5, False), (9, True), (30, True)]):
            run_one(env, ctrl, lb, 1, w)
        assert ctrl.buffers.in_use == 0

    def test_pool_sized_five_per_disk(self):
        env, ctrl = make_controller("raid5", n=4)
        assert ctrl.buffers.capacity == 25  # 5 disks x 5

    def test_no_deadlock_under_write_burst(self):
        """Regression: concurrent parity updates must not deadlock on
        the buffer pool (hold-and-wait)."""
        env, ctrl = make_controller("raid5", n=4)
        finished = []

        def writer(env, lb):
            yield from ctrl.handle(lb, 1, True)
            finished.append(lb)

        for lb in range(0, 200, 3):
            env.process(writer(env, lb))
        env.run(until=60_000)
        assert len(finished) == len(range(0, 200, 3))
        assert ctrl.buffers.in_use == 0
