"""Request-plan cache: layout equivalence, template sharing, and
failure-epoch invalidation.

The cache's correctness contract is the ``plan_period()`` symmetry each
layout declares: a plan computed at a request's period residue, shifted
by whole periods, must equal the plan computed at the absolute address.
These tests check that equivalence exhaustively over seeded random
request mixes, then pin the lifecycle: shared templates on the
zero-shift path, fresh objects otherwise, and a full drop on every
failure-domain transition.
"""

import numpy as np
import pytest

from repro.array.plancache import PlanCache
from repro.channel import Channel
from repro.des import Environment
from repro.disk import Disk
from repro.failure import DiskFailure, FailureSchedule, SpareArrival
from repro.failure.degraded import DegradedParityController
from repro.layout import (
    BaseLayout,
    MirrorLayout,
    ParityStripingLayout,
    Raid4Layout,
    Raid5Layout,
)
from repro.sim import run_trace
from tests.validate.workload import BPD, config, make_trace

LAYOUTS = {
    "base": lambda: BaseLayout(10, BPD),
    "mirror": lambda: MirrorLayout(10, BPD),
    "raid5": lambda: Raid5Layout(10, BPD, striping_unit=4),
    "raid5-su8": lambda: Raid5Layout(4, BPD, striping_unit=8),
    "raid4": lambda: Raid4Layout(10, BPD, striping_unit=4),
    "parity_striping": lambda: ParityStripingLayout(10, BPD),
}


@pytest.mark.parametrize("make_layout", LAYOUTS.values(), ids=LAYOUTS.keys())
class TestLayoutEquivalence:
    """Cached answers must equal direct layout answers everywhere."""

    def _addresses(self, layout, trials=400, seed=11):
        rng = np.random.default_rng(seed)
        max_req = 16
        lstarts = rng.integers(0, layout.logical_blocks - max_req, size=trials)
        nblocks = rng.integers(1, max_req + 1, size=trials)
        return zip(lstarts.tolist(), nblocks.tolist())

    def test_read_runs(self, make_layout):
        layout = make_layout()
        cache = PlanCache(layout, rmw_threshold=0.5)
        for lstart, nb in self._addresses(layout):
            assert cache.read_runs(lstart, nb) == layout.read_runs(lstart, nb)

    def test_write_plan(self, make_layout):
        layout = make_layout()
        cache = PlanCache(layout, rmw_threshold=0.5)
        for lstart, nb in self._addresses(layout):
            assert cache.write_plan(lstart, nb) == layout.write_plan(
                lstart, nb, 0.5
            )

    def test_map_and_parity(self, make_layout):
        layout = make_layout()
        cache = PlanCache(layout, rmw_threshold=0.5)
        for lstart, _ in self._addresses(layout):
            assert cache.map_block(lstart) == layout.map_block(lstart)
            assert cache.parity_of(lstart) == layout.parity_of(lstart)

    def test_period_symmetry_holds(self, make_layout):
        """The declared (period, disk_step, pblock_step) really carries
        map_block across periods — the property the cache relies on."""
        layout = make_layout()
        period, dstep, pstep = layout.plan_period()
        for residue in (0, 1, period // 2, period - 1):
            base = layout.map_block(residue)
            for q in (1, 2, 7):
                lb = residue + q * period
                if lb >= layout.logical_blocks:
                    continue
                shifted = layout.map_block(lb)
                assert shifted.disk == (base.disk + q * dstep) % layout.ndisks
                assert shifted.block == base.block + q * pstep


class TestCacheLifecycle:
    def test_hit_returns_shared_template_at_zero_shift(self):
        cache = PlanCache(Raid5Layout(10, BPD, striping_unit=4), 0.5)
        first = cache.read_runs(3, 2)
        again = cache.read_runs(3, 2)
        assert again is first  # lstart < period, so q == 0
        assert (cache.hits, cache.misses) == (1, 1)

    def test_shifted_periods_get_fresh_equal_objects(self):
        layout = Raid5Layout(10, BPD, striping_unit=4)
        cache = PlanCache(layout, 0.5)
        period, _, _ = layout.plan_period()
        template = cache.read_runs(3, 2)
        shifted = cache.read_runs(3 + period, 2)
        assert shifted == layout.read_runs(3 + period, 2)
        assert shifted is not template
        assert cache.hits == 1  # same residue: served from the template

    def test_invalidate_drops_entries_and_bumps_epoch(self):
        cache = PlanCache(Raid5Layout(10, BPD, striping_unit=4), 0.5)
        cache.read_runs(0, 1)
        cache.write_plan(0, 1)
        cache.map_block(5)
        cache.parity_of(5)
        assert cache.stats()["entries"] == 4
        cache.invalidate()
        assert cache.epoch == 1
        assert cache.stats()["entries"] == 0
        # Next access recomputes (a miss), not a stale hit.
        misses = cache.misses
        cache.read_runs(0, 1)
        assert cache.misses == misses + 1

    def test_disabled_cache_is_transparent(self):
        layout = Raid5Layout(10, BPD, striping_unit=4)
        cache = PlanCache(layout, 0.5, enabled=False)
        assert not cache.enabled
        assert cache.read_runs(7, 3) == layout.read_runs(7, 3)
        assert cache.write_plan(7, 3) == layout.write_plan(7, 3, 0.5)
        assert (cache.hits, cache.misses) == (0, 0)


class TestFailureInvalidation:
    def _controller(self):
        cfg = config(org="raid5", n=10)
        env = Environment()
        layout = cfg.make_layout()
        geometry = cfg.disk.geometry(cfg.block_bytes)
        seek = cfg.disk.seek_model()
        disks = [
            Disk(env, geometry, seek, name=f"d{i}") for i in range(layout.ndisks)
        ]
        return DegradedParityController(
            env, layout=layout, disks=disks, channel=Channel(env), config=cfg
        )

    def test_transitions_bump_the_plan_epoch(self):
        ctrl = self._controller()
        ctrl.plans.read_runs(0, 4)
        assert ctrl.plans.stats()["entries"] == 1
        ctrl.fail_disk(3)
        assert ctrl.plans.epoch == 1
        assert ctrl.plans.stats()["entries"] == 0
        ctrl.plans.read_runs(0, 4)
        ctrl.attach_spare()
        assert ctrl.plans.epoch == 2
        assert ctrl.plans.stats()["entries"] == 0

    @pytest.mark.parametrize("org", ["raid5", "mirror"])
    def test_degraded_runs_identical_with_and_without_cache(self, org):
        """A failure + rebuild scenario must be bit-identical whether
        plans come from the cache or straight from the layout."""
        trace = make_trace(seed=5, n=150)
        schedule = FailureSchedule(
            events=(
                DiskFailure(at_ms=80.0, disk=2),
                SpareArrival(at_ms=300.0, rebuild_chunk_blocks=12),
            )
        )
        a = run_trace(config(org=org), trace, failures=schedule)
        b = run_trace(config(org=org, plan_cache=False), trace, failures=schedule)
        assert a.simulated_ms == b.simulated_ms
        assert np.array_equal(a.response.samples, b.response.samples)
        for ma, mb in zip(a.arrays, b.arrays):
            assert np.array_equal(ma.disk_accesses, mb.disk_accesses)
        # The cache saw the transitions: two epoch bumps on the failed
        # array's controller, visible as plan counters on the result.
        assert sum(m.plan_hits + m.plan_misses for m in a.arrays) > 0
        assert all(m.plan_hits == m.plan_misses == 0 for m in b.arrays)
