"""Integration tests for the cached controllers (§3.4 behaviour)."""

import pytest

from repro.des import Environment
from repro.disk import DiskGeometry
from repro.sim import Organization, SystemConfig
from repro.sim.system import build_system

REV = DiskGeometry().revolution_time
XFER = DiskGeometry().block_transfer_time
CHAN = 4096 / 10000.0

BPD = 240


def make(org, n=4, cache_mb=None, cache_blocks=64, **kw):
    env = Environment()
    kw.setdefault("spindle_sync", True)  # exact-timing tests assume phase 0
    # cache_mb expressed via blocks for small test caches.
    mb = cache_blocks * 4096 / (1024 * 1024) if cache_mb is None else cache_mb
    cfg = SystemConfig(
        organization=Organization.parse(org),
        n=n,
        blocks_per_disk=BPD,
        cached=True,
        cache_mb=mb,
        **kw,
    )
    system = build_system(env, cfg, 1)
    return env, system.controllers[0]


def run_one(env, ctrl, lstart, nblocks, is_write, at=None):
    done = {}

    def proc(env):
        if at is not None and at > env.now:
            yield env.timeout(at - env.now)
        t0 = env.now
        yield from ctrl.handle(lstart, nblocks, is_write)
        done["rt"] = env.now - t0

    p = env.process(proc(env))
    env.run(until=p)
    return done["rt"]


class TestReadPath:
    def test_miss_then_hit(self):
        env, ctrl = make("base")
        miss_rt = run_one(env, ctrl, 5, 1, False)
        hit_rt = run_one(env, ctrl, 5, 1, False)
        assert miss_rt > hit_rt
        assert hit_rt == pytest.approx(CHAN)
        assert ctrl.cache.read_hits == 1
        assert ctrl.cache.read_misses == 1

    def test_hit_touches_no_disk(self):
        env, ctrl = make("base")
        run_one(env, ctrl, 5, 1, False)
        reads_before = sum(d.reads for d in ctrl.disks)
        run_one(env, ctrl, 5, 1, False)
        assert sum(d.reads for d in ctrl.disks) == reads_before

    def test_multiblock_hit_requires_all_blocks(self):
        env, ctrl = make("base")
        run_one(env, ctrl, 5, 1, False)
        run_one(env, ctrl, 5, 2, False)  # block 6 missing
        assert ctrl.cache.read_misses == 2
        assert ctrl.cache.read_hits == 0

    def test_partial_miss_fetches_only_missing(self):
        env, ctrl = make("base")
        run_one(env, ctrl, 5, 1, False)
        blocks_before = sum(d.blocks_transferred for d in ctrl.disks)
        run_one(env, ctrl, 5, 2, False)
        assert sum(d.blocks_transferred for d in ctrl.disks) == blocks_before + 1


class TestWritePath:
    def test_write_response_is_channel_time(self):
        """§3.4: writes complete into the NV cache."""
        env, ctrl = make("raid5")
        rt = run_one(env, ctrl, 5, 1, True)
        assert rt == pytest.approx(CHAN)

    def test_write_dirties_block(self):
        env, ctrl = make("raid5")
        run_one(env, ctrl, 5, 1, True)
        assert 5 in ctrl.cache.dirty_blocks()

    def test_write_hit_keeps_old_copy_parity_org(self):
        env, ctrl = make("raid5")
        run_one(env, ctrl, 5, 1, False)  # read it in (clean)
        run_one(env, ctrl, 5, 1, True)
        assert ctrl.cache.get(5).has_old

    def test_write_no_old_copy_for_base(self):
        env, ctrl = make("base")
        run_one(env, ctrl, 5, 1, False)
        run_one(env, ctrl, 5, 1, True)
        assert not ctrl.cache.get(5).has_old

    def test_write_hit_counting_per_request(self):
        env, ctrl = make("base")
        run_one(env, ctrl, 5, 2, True)  # miss
        run_one(env, ctrl, 5, 2, True)  # hit (both blocks now present)
        assert ctrl.cache.write_misses == 1
        assert ctrl.cache.write_hits == 1


class TestDestage:
    def test_dirty_blocks_written_back(self):
        env, ctrl = make("base", destage_period_ms=100.0)
        run_one(env, ctrl, 5, 1, True)
        env.run(until=env.now + 500.0)
        assert ctrl.cache.dirty_blocks(include_destaging=True) == []
        assert sum(d.writes for d in ctrl.disks) >= 1
        assert ctrl.destaged_blocks >= 1

    def test_mirror_destage_writes_both(self):
        env, ctrl = make("mirror", destage_period_ms=100.0)
        run_one(env, ctrl, 0, 1, True)
        env.run(until=env.now + 500.0)
        assert ctrl.disks[0].writes == 1
        assert ctrl.disks[1].writes == 1

    def test_parity_destage_with_old_data_avoids_rmw_on_data_disk(self):
        env, ctrl = make("raid5", destage_period_ms=100.0)
        run_one(env, ctrl, 5, 1, False)  # read first: old data cached
        run_one(env, ctrl, 5, 1, True)
        env.run(until=env.now + 1000.0)
        daddr = ctrl.layout.map_block(5)
        paddr = ctrl.layout.parity_of(5)
        assert ctrl.disks[daddr.disk].writes == 1  # plain write
        assert ctrl.disks[daddr.disk].rmws == 0
        assert ctrl.disks[paddr.disk].rmws == 1  # parity still RMW

    def test_parity_destage_without_old_data_uses_rmw(self):
        env, ctrl = make("raid5", destage_period_ms=100.0)
        run_one(env, ctrl, 5, 1, True)  # write miss: no old data
        env.run(until=env.now + 1000.0)
        daddr = ctrl.layout.map_block(5)
        assert ctrl.disks[daddr.disk].rmws == 1

    def test_destage_groups_consecutive_blocks(self):
        env, ctrl = make("base", destage_period_ms=200.0)
        for b in (10, 11, 12):
            run_one(env, ctrl, b, 1, True)
        env.run(until=env.now + 1000.0)
        # One grouped write of 3 blocks, not three writes.
        assert ctrl.disks[0].writes == 1
        assert ctrl.disks[0].blocks_transferred == 3

    def test_old_copies_freed_after_destage(self):
        env, ctrl = make("raid5", destage_period_ms=100.0)
        run_one(env, ctrl, 5, 1, False)
        run_one(env, ctrl, 5, 1, True)
        assert ctrl.cache.old_copies == 1
        env.run(until=env.now + 1000.0)
        assert ctrl.cache.old_copies == 0


class TestEvictionPressure:
    def test_lru_eviction_on_full_cache(self):
        env, ctrl = make("base", cache_blocks=8, destage_period_ms=50.0)
        for b in range(12):
            run_one(env, ctrl, b, 1, False)
        assert ctrl.cache.occupancy <= 8
        # Oldest blocks were evicted.
        assert ctrl.cache.get(0) is None

    def test_sync_writeback_when_dirty_head(self):
        """With destage effectively off, a full cache of dirty blocks
        forces synchronous writebacks on replacement."""
        env, ctrl = make("raid5", cache_blocks=8, destage_period_ms=1e9)
        for b in range(0, 12, 1):
            run_one(env, ctrl, b, 1, True)
        assert ctrl.sync_writebacks > 0
        assert ctrl.cache.occupancy <= 8

    def test_no_deadlock_small_cache_many_writes(self):
        env, ctrl = make("raid5", cache_blocks=8, destage_period_ms=100.0)
        finished = []

        def writer(env, lb):
            yield from ctrl.handle(lb, 1, True)
            finished.append(lb)

        for lb in range(100):
            env.process(writer(env, lb % 50))
        env.run(until=120_000)
        assert len(finished) == 100


class TestRaid4ParityCaching:
    def test_parity_goes_to_dedicated_disk_async(self):
        env, ctrl = make("raid4", destage_period_ms=100.0)
        rt = run_one(env, ctrl, 5, 1, True)
        assert rt == pytest.approx(CHAN)
        env.run(until=env.now + 2000.0)
        parity_disk = ctrl.disks[ctrl.layout.parity_disk]
        assert parity_disk.completed >= 1
        # Data disks never see parity traffic.
        daddr = ctrl.layout.map_block(5)
        assert ctrl.disks[daddr.disk].completed == 1

    def test_parity_delta_needs_old_parity_read(self):
        """Single-block update: the spooler holds an XOR delta, so the
        parity disk does a read-modify-write."""
        env, ctrl = make("raid4", destage_period_ms=100.0)
        run_one(env, ctrl, 5, 1, True)
        env.run(until=env.now + 2000.0)
        assert ctrl.disks[ctrl.layout.parity_disk].rmws >= 1

    def test_full_stripe_parity_written_directly(self):
        """All data blocks of a row dirty -> real parity cached -> plain
        write on the parity disk (§3.4)."""
        env, ctrl = make("raid4", n=4, destage_period_ms=100.0)
        run_one(env, ctrl, 0, 4, True)  # full row with su=1
        env.run(until=env.now + 2000.0)
        pdisk = ctrl.disks[ctrl.layout.parity_disk]
        assert pdisk.writes >= 1
        assert pdisk.rmws == 0

    def test_pending_parity_occupies_cache(self):
        env, ctrl = make("raid4", destage_period_ms=100.0)
        run_one(env, ctrl, 5, 1, True)
        # Let the destage run but intercept before the spooler finishes:
        # right after destage the delta reserves a slot.
        env.run(until=110.0)
        # Either still pending (reserved) or already spooled (released).
        assert ctrl.cache.reserved_slots in (0, 1)

    def test_spool_backpressure_does_not_deadlock(self):
        env, ctrl = make("raid4", cache_blocks=8, destage_period_ms=50.0)
        finished = []

        def writer(env, lb):
            yield from ctrl.handle(lb, 1, True)
            finished.append(lb)

        for lb in range(0, 200, 2):
            env.process(writer(env, lb % BPD))
        env.run(until=300_000)
        assert len(finished) == 100
        env.run(until=env.now + 60_000)
        assert len(ctrl.parity_queue) == 0  # spooler caught up

    def test_scan_spooling_in_order(self):
        env, ctrl = make("raid4", n=4, destage_period_ms=500.0)
        # Dirty scattered blocks on one data disk.
        for lb in (0, 40, 80, 120, 160):
            run_one(env, ctrl, lb, 1, True)
        env.run(until=env.now + 5000.0)
        assert len(ctrl.parity_queue) == 0


class TestMirrorCachedRouting:
    def test_fetch_uses_nearest_arm(self):
        env, ctrl = make("mirror")
        ctrl.disks[0].cylinder = 300
        run_one(env, ctrl, 0, 1, False)
        assert ctrl.disks[1].reads == 1
        assert ctrl.disks[0].reads == 0
