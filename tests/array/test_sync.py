"""Tests for the parity synchronization policies (§3.3)."""

import pytest

from repro.array.sync import SyncPolicy, parity_issue_gate, parity_priority
from repro.des import Environment
from repro.disk import AccessKind, Disk, DiskGeometry, DiskRequest, SeekModel
from repro.disk.request import Priority

REV = DiskGeometry().revolution_time
XFER = DiskGeometry().block_transfer_time


class TestSyncPolicyParsing:
    @pytest.mark.parametrize("text", ["SI", "RF", "RF/PR", "DF", "DF/PR"])
    def test_paper_spellings(self, text):
        assert SyncPolicy.parse(text).value == text

    def test_case_insensitive(self):
        assert SyncPolicy.parse("df/pr") is SyncPolicy.DF_PR

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            SyncPolicy.parse("XX")


class TestPriorities:
    def test_pr_variants_urgent(self):
        assert parity_priority(SyncPolicy.RF_PR) == Priority.PARITY_URGENT
        assert parity_priority(SyncPolicy.DF_PR) == Priority.PARITY_URGENT

    def test_others_normal(self):
        for p in (SyncPolicy.SI, SyncPolicy.RF, SyncPolicy.DF):
            assert parity_priority(p) == Priority.NORMAL


class TestIssueGates:
    @pytest.fixture
    def env(self):
        return Environment()

    @pytest.fixture
    def disk(self, env):
        return Disk(env, DiskGeometry(), SeekModel.fit())

    def test_si_has_no_gate(self, env, disk):
        req = disk.submit(DiskRequest(AccessKind.RMW, 0))
        assert parity_issue_gate(SyncPolicy.SI, env, [req]) is None

    def test_rf_gate_is_read_completion(self, env, disk):
        """RF: the gate opens when the old data has been read."""
        req = disk.submit(DiskRequest(AccessKind.RMW, 0))
        gate = parity_issue_gate(SyncPolicy.RF, env, [req])
        env.run(gate)
        assert env.now == pytest.approx(XFER)  # read phase only

    def test_df_gate_is_service_start(self, env, disk):
        """DF: the gate opens when the data access acquires the disk."""
        blocker = disk.submit(DiskRequest(AccessKind.READ, 0))
        req = disk.submit(DiskRequest(AccessKind.RMW, 6))
        gate = parity_issue_gate(SyncPolicy.DF, env, [req])
        env.run(gate)
        assert env.now == pytest.approx(blocker.done.value)

    def test_df_before_rf(self, env, disk):
        """DF's gate opens no later than RF's for the same access."""
        req = disk.submit(DiskRequest(AccessKind.RMW, 0))
        df = parity_issue_gate(SyncPolicy.DF, env, [req])
        t_df = env.run(until=df) or env.now
        env2 = Environment()
        disk2 = Disk(env2, DiskGeometry(), SeekModel.fit())
        req2 = disk2.submit(DiskRequest(AccessKind.RMW, 0))
        rf = parity_issue_gate(SyncPolicy.RF, env2, [req2])
        env2.run(rf)
        assert env.now <= env2.now

    def test_gate_waits_for_all_accesses(self, env):
        geo, sm = DiskGeometry(), SeekModel.fit()
        d1, d2 = Disk(env, geo, sm), Disk(env, geo, sm)
        r1 = d1.submit(DiskRequest(AccessKind.RMW, 0))
        d2.submit(DiskRequest(AccessKind.READ, 0))  # delay d2
        r2 = d2.submit(DiskRequest(AccessKind.RMW, 0))
        gate = parity_issue_gate(SyncPolicy.RF, env, [r1, r2])
        env.run(gate)
        # Must wait for the slower (queued) access's read phase.
        assert env.now >= r2.read_complete.value
