"""Tests for the destage write-back policies (§3.4 and its open issue)."""

import numpy as np
import pytest

from repro.des import Environment
from repro.sim import Organization, SystemConfig
from repro.sim.system import build_system

BPD = 2640


def make(policy, org="raid5", cache_blocks=64, period=200.0, **kw):
    env = Environment()
    cfg = SystemConfig(
        organization=Organization.parse(org),
        n=4,
        blocks_per_disk=BPD,
        cached=True,
        cache_mb=cache_blocks * 4096 / (1024 * 1024),
        destage_period_ms=period,
        destage_policy=policy,
        spindle_sync=True,
        **kw,
    )
    system = build_system(env, cfg, 1)
    return env, system.controllers[0]


def write(env, ctrl, lb):
    def proc(env):
        yield from ctrl.handle(lb, 1, True)

    p = env.process(proc(env))
    env.run(until=p)


class TestPolicyValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(destage_policy="bogus")

    def test_decoupled_parameters_validated(self):
        with pytest.raises(ValueError):
            SystemConfig(destage_policy="decoupled", decoupled_batch_blocks=0)


class TestLruDemandPolicy:
    def test_no_background_writebacks(self):
        """Under lru_demand, dirty blocks sit in the cache until
        replacement forces a synchronous writeback."""
        env, ctrl = make("lru_demand")
        write(env, ctrl, 5)
        env.run(until=env.now + 5000.0)
        assert 5 in ctrl.cache.dirty_blocks()
        assert ctrl.destaged_blocks == 0

    def test_replacement_triggers_writeback(self):
        env, ctrl = make("lru_demand", cache_blocks=8)
        for lb in range(8):
            write(env, ctrl, lb)
        # Cache now full of dirty blocks; the next misses force
        # synchronous writebacks.
        for lb in range(100, 108):
            write(env, ctrl, lb)
        assert ctrl.sync_writebacks > 0

    def test_periodic_beats_lru_demand(self):
        """The paper: 'the periodic destage policy always performs
        better' — under write pressure, misses behind dirty heads pay."""

        def run_policy(policy):
            env, ctrl = make(policy, cache_blocks=16, period=150.0)
            rng = np.random.default_rng(4)
            times = []

            def client(env):
                for i in range(300):
                    yield env.timeout(float(rng.exponential(8.0)))
                    lb = int(rng.integers(0, 400))
                    t0 = env.now
                    yield env.process(_one(env, lb, bool(rng.random() < 0.5)))
                    times.append(env.now - t0)

            def _one(env, lb, w):
                yield from ctrl.handle(lb, 1, w)

            env.process(client(env))
            env.run(until=60_000)
            return float(np.mean(times))

        assert run_policy("periodic") <= run_policy("lru_demand")


class TestDecoupledPolicy:
    def test_small_batches_written_between_flushes(self):
        env, ctrl = make("decoupled", period=1000.0)
        write(env, ctrl, 5)
        # A decoupled batch fires every period/4 = 250 ms.
        env.run(until=env.now + 400.0)
        assert ctrl.destaged_blocks >= 1

    def test_flush_frees_old_copies(self):
        env, ctrl = make("decoupled", period=500.0)

        def proc(env):
            yield from ctrl.handle(5, 1, False)  # read (clean)
            yield from ctrl.handle(5, 1, True)  # dirty with old copy

        p = env.process(proc(env))
        env.run(until=p)
        assert ctrl.cache.old_copies == 1
        env.run(until=env.now + 2000.0)
        assert ctrl.cache.old_copies == 0

    def test_all_policies_drain_dirty_blocks(self):
        for policy in ("periodic", "decoupled"):
            env, ctrl = make(policy, period=200.0)
            for lb in (3, 9, 100, 101):
                write(env, ctrl, lb)
            env.run(until=env.now + 5000.0)
            assert ctrl.cache.dirty_blocks(include_destaging=True) == [], policy


class TestOldestDirty:
    def test_returns_lru_order(self):
        from repro.cache import LRUCache

        c = LRUCache(16, track_old=False)
        for b in (1, 2, 3):
            c.write(b)
        c.write(1)  # moves 1 to MRU
        assert c.oldest_dirty(2) == [2, 3]

    def test_skips_destaging(self):
        from repro.cache import LRUCache

        c = LRUCache(16)
        c.write(1)
        c.write(2)
        c.begin_destage(1)
        assert c.oldest_dirty(5) == [2]

    def test_validation(self):
        from repro.cache import LRUCache

        with pytest.raises(ValueError):
            LRUCache(4).oldest_dirty(0)
