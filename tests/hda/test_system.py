"""VA-first routing and the heterogeneous system builder.

The load-bearing guarantee: a single-organization config expressed as
one (or several identical) VAs is *bit-identical* to the legacy path —
same disk names, same spindle-phase draws, same event interleaving,
same response samples.  Plus the span-based routing arithmetic and the
builder's capacity validation.
"""

import pytest

from repro.des import Environment
from repro.sim import (
    Organization,
    SystemConfig,
    VAConfig,
    build_system,
    run_trace,
)

from tests.hda.util import BPD, HOT_BPD, hda_config, poisson_trace


class TestRouting:
    def _system(self):
        env = Environment()
        return build_system(env, hda_config(), 2)

    def test_controller_for_respects_spans(self):
        system = self._system()
        mirror_span = 2 * HOT_BPD
        for lblock, expected in [
            (0, 0),
            (mirror_span - 1, 0),
            (mirror_span, 1),
            (4 * BPD - 1, 1),
        ]:
            idx, _, local = system.controller_for(lblock)
            assert idx == expected
            if expected == 1:
                assert local == lblock - mirror_span

    def test_split_within_one_va(self):
        system = self._system()
        parts = system.split(10, 4)
        assert len(parts) == 1
        idx, _, local, take = parts[0]
        assert (idx, local, take) == (0, 10, 4)

    def test_split_across_va_boundary(self):
        system = self._system()
        mirror_span = 2 * HOT_BPD
        parts = system.split(mirror_span - 2, 5)
        assert [(p[0], p[2], p[3]) for p in parts] == [
            (0, mirror_span - 2, 2),
            (1, 0, 3),
        ]

    def test_legacy_divmod_unchanged(self):
        env = Environment()
        cfg = SystemConfig(organization=Organization.RAID5, n=3,
                           blocks_per_disk=BPD)
        system = build_system(env, cfg, 2)
        idx, _, local = system.controller_for(3 * BPD + 7)
        assert (idx, local) == (1, 7)


class TestBuilder:
    def test_va_disk_names_match_legacy(self):
        env = Environment()
        system = build_system(env, hda_config(), 2)
        names = [d.name for c in system.controllers for d in c.disks]
        assert names[:4] == ["a0.d0", "a0.d1", "a0.d2", "a0.d3"]
        assert names[4:] == ["a1.d0", "a1.d1", "a1.d2", "a1.d3"]

    def test_narrays_must_match_va_count(self):
        env = Environment()
        with pytest.raises(ValueError):
            build_system(env, hda_config(), 3)

    def test_va_too_big_for_its_disks_raises(self):
        env = Environment()
        cfg = hda_config(vas=(
            VAConfig(Organization.MIRROR, 2, blocks_per_disk=300_000),
            VAConfig(Organization.RAID5, 3),
        ))
        with pytest.raises(ValueError, match="VA"):
            build_system(env, cfg, 2)


class TestDegenerateByteIdentity:
    """One VA (or k identical VAs) == the legacy homogeneous path."""

    def _run(self, cfg, trace):
        return run_trace(cfg, trace, warmup_fraction=0.1, keep_samples=True)

    def test_single_va_mirror_bit_identical(self):
        trace = poisson_trace(0.03, ndisks=2, bpd=HOT_BPD, n=2500)
        legacy = self._run(
            SystemConfig(organization=Organization.MIRROR, n=2,
                         blocks_per_disk=HOT_BPD),
            trace,
        )
        hda = self._run(
            SystemConfig(
                organization=Organization.BASE,
                blocks_per_disk=HOT_BPD,
                vas=(VAConfig(Organization.MIRROR, 2, blocks_per_disk=HOT_BPD),),
            ),
            trace,
        )
        assert hda.response._samples == legacy.response._samples
        assert hda.events == legacy.events
        assert hda.n == legacy.n

    def test_two_identical_vas_match_two_legacy_arrays(self):
        trace = poisson_trace(0.04, ndisks=6, bpd=HOT_BPD, n=2500)
        legacy = self._run(
            SystemConfig(organization=Organization.RAID5, n=3,
                         blocks_per_disk=HOT_BPD),
            trace,
        )
        hda = self._run(
            SystemConfig(
                organization=Organization.BASE,
                blocks_per_disk=HOT_BPD,
                vas=(
                    VAConfig(Organization.RAID5, 3, blocks_per_disk=HOT_BPD),
                    VAConfig(Organization.RAID5, 3, blocks_per_disk=HOT_BPD),
                ),
            ),
            trace,
        )
        assert hda.response._samples == legacy.response._samples
        assert hda.events == legacy.events

    def test_hda_populates_per_va_tallies(self):
        trace = poisson_trace(0.02, n=2000)
        res = self._run(hda_config(), trace)
        assert len(res.va_response) == 2
        assert res.va_response[0].count + res.va_response[1].count \
            == res.response.count
        assert res.organization == "hda(mirror+raid5)"
        assert len(res.arrays) == 2
        assert len(res.arrays[0].disk_accesses) == 4  # 2 mirrored pairs
        assert len(res.arrays[1].disk_accesses) == 4  # 3 data + parity

    def test_trace_must_cover_the_combined_space(self):
        trace = poisson_trace(0.02, ndisks=3, n=500)  # one disk short
        with pytest.raises(ValueError):
            self._run(hda_config(), trace)
