"""The ``ext-hda`` campaign and its points-engine plumbing.

Checks the three contracts the experiment rides on: the run ==
assemble(run_points(points)) decomposition (what makes ``--jobs N``
byte-identical), the result-store hash extension (HDA points get their
own hashes, legacy points keep their historical ones), and the trace
plumbing (``TraceSpec.hda`` reaches the generator; trace 1 rejects it).
"""

import math

import pytest

from repro.experiments import ext_hda
from repro.experiments.common import get_trace
from repro.experiments.points import Point, TraceSpec, run_points
from repro.experiments.registry import get_experiment
from repro.experiments.result_store import point_key
from repro.layout import POLICIES

SCALE = 0.02


class TestCampaign:
    def test_points_cover_the_sweep(self):
        pts = ext_hda.points(SCALE)
        keys = [p.key for p in pts]
        assert len(keys) == len(set(keys)) == len(ext_hda.MIXES) * len(POLICIES)
        for p in pts:
            assert p.spec.hda  # every point is an HDA point
            assert dict(p.overrides)["keep_samples"] is True

    def test_run_equals_assemble_of_run_points(self):
        exp = get_experiment("ext-hda")
        serial = [r.to_dict() for r in exp.run(SCALE)]
        decomposed = [
            r.to_dict()
            for r in exp.assemble(SCALE, run_points(exp.points(SCALE)))
        ]
        assert serial == decomposed

    def test_per_va_extras_are_reported(self):
        values = run_points(ext_hda.points(SCALE))
        for value in values.values():
            extras = dict(value.extras)
            for name in ("va0_p95_ms", "va0_mean_ms", "va0_util",
                         "va1_p95_ms", "va1_mean_ms", "va1_util"):
                assert name in extras
                assert not math.isnan(extras[name])

    def test_first_fit_strands_the_fast_disks(self):
        results = ext_hda.run(SCALE)
        util = next(r for r in results if "utilization" in r.title)
        for mix in ext_hda.MIXES:
            fast = util.series_by_label(f"{mix.key} fast")
            assert fast.ys[list(POLICIES).index("first_fit")] == 0.0
            assert fast.ys[list(POLICIES).index("bandwidth")] > 0.0


class TestStoreKeys:
    def test_legacy_hashes_preserved(self):
        # Pinned pre-HDA hashes: the spec payload must not change for
        # points with no hda overrides, or every stored campaign value
        # (and --resume) silently invalidates.
        p = Point.sim("fig5", ("raid5", 10), TraceSpec(2, 1.0), "raid5", n=10)
        assert point_key(p) == "9d0b4c5222ffb3d46ee74589cac37f0c"
        p2 = Point.sim("t", ("x",), TraceSpec(1, 0.5, speed=2.0, n=5),
                       "mirror", striping_unit=4)
        assert point_key(p2) == "3d06eedca643a559a8888ccdbe51c253"

    def test_hda_points_hash_differently(self):
        plain = Point.sim("e", ("k",), TraceSpec(2, 1.0), "base")
        hda = Point.sim("e", ("k",),
                        TraceSpec(2, 1.0, hda=(("ndisks", 9),)), "base")
        assert point_key(plain) != point_key(hda)

    def test_distinct_hda_overrides_hash_differently(self):
        a = Point.sim("e", ("k",), TraceSpec(2, 1.0, hda=(("ndisks", 9),)), "base")
        b = Point.sim("e", ("k",), TraceSpec(2, 1.0, hda=(("ndisks", 8),)), "base")
        assert point_key(a) != point_key(b)


class TestTracePlumbing:
    def test_hda_overrides_reach_the_generator(self):
        mix = ext_hda.MIXES[0]
        trace = get_trace(2, SCALE, hda=mix.hda)
        assert trace.ndisks == sum(mix.trace_disks)

    def test_trace1_rejects_hda(self):
        with pytest.raises(ValueError, match="trace 2"):
            get_trace(1, SCALE, hda=(("ndisks", 9),))

    def test_spec_materialize_round_trips(self):
        mix = ext_hda.MIXES[1]
        spec = TraceSpec(2, SCALE, hda=mix.hda)
        assert spec.materialize().ndisks == sum(mix.trace_disks)
