"""Properties of the pool-allocation kernel (:mod:`repro.layout.allocation`).

The Hypothesis sweep asserts what every placement must satisfy
regardless of policy — determinism, disjointness, per-VA disk counts,
capacity feasibility — and the unit tests pin each policy's documented
tie-breaking (declaration/pool order, hottest-per-spindle first,
best-fit by capacity).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout import AllocationError, POLICIES, PoolSlot, VADemand, allocate

demands_st = st.lists(
    st.builds(
        VADemand,
        ndisks=st.integers(1, 4),
        capacity_blocks=st.integers(50, 200),
        heat=st.floats(0.1, 5.0, allow_nan=False),
    ),
    min_size=1,
    max_size=4,
)
slots_st = st.lists(
    st.builds(
        PoolSlot,
        capacity_blocks=st.integers(40, 250),
        bandwidth=st.floats(0.5, 2.0, allow_nan=False),
    ),
    min_size=1,
    max_size=16,
)


@settings(max_examples=200, deadline=None)
@given(policy=st.sampled_from(POLICIES), demands=demands_st, slots=slots_st)
def test_placements_are_sound(policy, demands, slots):
    try:
        placements = allocate(policy, demands, slots)
    except AllocationError:
        return  # infeasibility is exercised by the unit tests below
    # Deterministic: same inputs, same placement, always.
    assert allocate(policy, demands, slots) == placements
    # One placement per demand, each with exactly the demanded disks,
    # reported in canonical (sorted) order.
    assert len(placements) == len(demands)
    for demand, placed in zip(demands, placements):
        assert len(placed) == demand.ndisks
        assert placed == tuple(sorted(placed))
        for si in placed:
            assert slots[si].capacity_blocks >= demand.capacity_blocks
    # No pool slot is handed to two VAs.
    used = [si for placed in placements for si in placed]
    assert len(used) == len(set(used))
    assert all(0 <= si < len(slots) for si in used)


class TestPolicies:
    def test_first_fit_takes_pool_order_regardless_of_bandwidth(self):
        slots = [PoolSlot(100, 1.0), PoolSlot(100, 9.0), PoolSlot(100, 5.0)]
        [placed] = allocate("first_fit", [VADemand(2, 100)], slots)
        assert placed == (0, 1)

    def test_bandwidth_prefers_fast_slots(self):
        slots = [PoolSlot(100, 1.0), PoolSlot(100, 5.0), PoolSlot(100, 2.0)]
        [placed] = allocate("bandwidth", [VADemand(2, 100)], slots)
        assert placed == (1, 2)

    def test_bandwidth_places_hottest_per_spindle_first(self):
        # Heat per spindle: hot = 4/2 = 2.0, cold = 1/2 = 0.5.
        cold = VADemand(2, 100, heat=1.0)
        hot = VADemand(2, 100, heat=4.0)
        slots = [PoolSlot(100, 1.0)] * 2 + [PoolSlot(100, 9.0)] * 2
        placements = allocate("bandwidth", [cold, hot], slots)
        assert placements[1] == (2, 3)  # hot VA gets the fast slots
        assert placements[0] == (0, 1)

    def test_capacity_best_fits_smallest_slot(self):
        big = VADemand(1, 200)
        small = VADemand(1, 50)
        slots = [PoolSlot(250, 1.0), PoolSlot(60, 1.0), PoolSlot(210, 1.0)]
        placements = allocate("capacity", [small, big], slots)
        assert placements[1] == (2,)  # big demand first, tightest fit
        assert placements[0] == (1,)  # small demand best-fits the 60

    def test_declaration_order_is_preserved_in_the_result(self):
        # Whatever internal order a policy visits VAs in, the result
        # lines up with the demands list.
        demands = [VADemand(1, 50, heat=1.0), VADemand(1, 200, heat=9.0)]
        slots = [PoolSlot(60, 2.0), PoolSlot(250, 1.0)]
        for policy in POLICIES:
            placements = allocate(policy, demands, slots)
            assert slots[placements[1][0]].capacity_blocks >= 200

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            allocate("magic", [VADemand(1, 50)], [PoolSlot(100, 1.0)])


class TestInfeasible:
    def test_too_few_slots(self):
        with pytest.raises(AllocationError):
            allocate("first_fit", [VADemand(3, 50)], [PoolSlot(100, 1.0)] * 2)

    def test_capacity_unsatisfiable(self):
        with pytest.raises(AllocationError, match="slots fit"):
            allocate("first_fit", [VADemand(1, 500)], [PoolSlot(100, 1.0)] * 4)

    def test_feasible_only_jointly_infeasible(self):
        # Each VA fits alone; together they exceed the pool.
        demands = [VADemand(2, 50), VADemand(2, 50)]
        with pytest.raises(AllocationError):
            allocate("first_fit", demands, [PoolSlot(100, 1.0)] * 3)

    def test_demand_validation(self):
        with pytest.raises(ValueError):
            VADemand(0, 50)
        with pytest.raises(ValueError):
            VADemand(1, 0)
        with pytest.raises(ValueError):
            VADemand(1, 50, heat=0.0)
