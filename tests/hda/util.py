"""Shared builders for the heterogeneous-array (HDA) tests.

The standard rig is the smallest interesting HDA: a hot mirrored VA on
half-capacity disks plus a cold RAID5 VA, sized so the combined logical
space is exactly 4 stock logical disks (so one Poisson trace drives
both VAs and the whole DES run stays well under a second).
"""

import numpy as np

from repro.sim import Organization, SystemConfig, VAConfig
from repro.trace import TRACE_DTYPE, Trace

#: Stock blocks per logical disk in the rig (divisible by every VA n+1).
BPD = 1980
#: Mirror-VA blocks per disk: half a stock disk, so ``n`` mirrored
#: pairs carry ``n`` halves = ``n/2`` logical disks of data.
HOT_BPD = 990


def hda_vas(mirror_n=2, raid5_n=3, heat=3.0):
    """(hot mirror, cold RAID5) — spans 1980 + 5940 = 4 x BPD blocks."""
    return (
        VAConfig(Organization.MIRROR, mirror_n, name="hot",
                 blocks_per_disk=HOT_BPD, heat=heat),
        VAConfig(Organization.RAID5, raid5_n, name="cold"),
    )


def hda_config(**kw):
    kw.setdefault("vas", hda_vas())
    kw.setdefault("blocks_per_disk", BPD)
    kw.setdefault("organization", Organization.BASE)
    return SystemConfig(**kw)


def poisson_trace(rate_per_ms, ndisks=4, bpd=BPD, seed=42, write_frac=0.3,
                  n=4000, nblocks=(1,)):
    """Seeded Poisson workload (uniform addresses, exponential gaps)."""
    rng = np.random.default_rng(seed)
    records = np.zeros(n, dtype=TRACE_DTYPE)
    records["time"] = np.cumsum(rng.exponential(1.0 / rate_per_ms, size=n))
    records["lblock"] = rng.integers(0, ndisks * bpd - max(nblocks), size=n)
    records["nblocks"] = rng.choice(nblocks, size=n)
    records["is_write"] = rng.random(n) < write_frac
    return Trace(records, ndisks, bpd, name=f"hda-poisson-{rate_per_ms}-{seed}")
