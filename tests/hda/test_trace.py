"""Per-VA address-space targeting in the synthetic generator.

The HDA knobs partition the logical disks into consecutive VA ranges,
steer the configured access share at each range, and concentrate
writes harder on the hottest (mirrored) VA via ``va_write_skew``.
An empty ``va_disks`` must leave the generator byte-identical (the
golden trace fixtures enforce that repo-wide; here we only check the
validation surface and the targeting itself).
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.trace.synthetic import generate_trace, trace2_config


def _hda_cfg(**kw):
    base = trace2_config(scale=0.05)
    kw.setdefault("ndisks", 4)
    kw.setdefault("va_disks", (1, 3))
    kw.setdefault("va_weights", (3.0, 1.0))
    kw.setdefault("va_write_skew", 2.0)
    return replace(base, **kw)


class TestValidation:
    def test_va_disks_must_sum_to_ndisks(self):
        with pytest.raises(ValueError):
            _hda_cfg(va_disks=(1, 2))

    def test_va_disks_entries_positive(self):
        with pytest.raises(ValueError):
            _hda_cfg(va_disks=(0, 4))

    def test_weights_length_and_sign(self):
        with pytest.raises(ValueError):
            _hda_cfg(va_weights=(1.0,))
        with pytest.raises(ValueError):
            _hda_cfg(va_weights=(1.0, -2.0))

    def test_weights_require_va_disks(self):
        with pytest.raises(ValueError):
            _hda_cfg(va_disks=(), va_weights=(1.0, 2.0))

    def test_skew_positive(self):
        with pytest.raises(ValueError):
            _hda_cfg(va_write_skew=0.0)


class TestTargeting:
    def test_access_share_follows_weights(self):
        trace = generate_trace(_hda_cfg())
        boundary = 1 * trace.blocks_per_disk  # VA 0 = first logical disk
        hot_share = float(np.mean(trace.records["lblock"] < boundary))
        # The hot VA is configured for 75% of accesses (3:1) on 25% of
        # the address space; sequential/re-reference locality smears a
        # little traffic across, hence the generous bracket.
        assert 0.55 < hot_share < 0.9

    def test_write_skew_concentrates_writes(self):
        trace = generate_trace(_hda_cfg())
        boundary = trace.blocks_per_disk
        hot = trace.records["lblock"] < boundary
        is_write = trace.records["is_write"].astype(bool)
        hot_write_share = float(np.mean(hot[is_write]))
        hot_read_share = float(np.mean(hot[~is_write]))
        assert hot_write_share > hot_read_share

    def test_skew_one_means_writes_follow_reads(self):
        skewed = generate_trace(_hda_cfg(va_write_skew=2.0))
        flat = generate_trace(_hda_cfg(va_write_skew=1.0))
        b = flat.blocks_per_disk
        w_skewed = skewed.records["is_write"].astype(bool)
        w_flat = flat.records["is_write"].astype(bool)
        share_skewed = float(np.mean(skewed.records["lblock"][w_skewed] < b))
        share_flat = float(np.mean(flat.records["lblock"][w_flat] < b))
        assert share_skewed > share_flat

    def test_generation_is_deterministic(self):
        a = generate_trace(_hda_cfg())
        b = generate_trace(_hda_cfg())
        assert np.array_equal(a.records, b.records)

    def test_every_va_sees_traffic(self):
        trace = generate_trace(_hda_cfg())
        b = trace.blocks_per_disk
        assert np.any(trace.records["lblock"] < b)
        assert np.any(trace.records["lblock"] >= b)
