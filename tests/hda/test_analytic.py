"""DES vs analytic cross-validation for a heterogeneous system.

The acceptance bar for the analytic HDA extension: on the reference
mirror+RAID5 two-VA configuration under a Poisson workload, the
analytic backend's mean response — overall and per VA — must sit inside
the same tolerance bands the homogeneous harness enforces
(:mod:`repro.analytic.validation`), and its reconstructed p95 inside
the documented looser HDA band.
"""

import pytest

from repro.analytic import HDA_P95_TOLERANCE, hda_tolerance, tolerance_for
from repro.sim import run_trace

from tests.hda.util import hda_config, poisson_trace

#: Mid-load reference point: ~4 k requests over the 4-logical-disk rig.
RATE_PER_MS = 0.02


@pytest.fixture(scope="module")
def both():
    cfg = hda_config()
    trace = poisson_trace(RATE_PER_MS)
    des = run_trace(cfg, trace, warmup_fraction=0.1, keep_samples=True)
    ana = run_trace(cfg, trace, warmup_fraction=0.1, backend="analytic")
    return des, ana


def _rel_err(analytic: float, des: float) -> float:
    return abs(analytic - des) / des


def test_overall_mean_within_band(both):
    des, ana = both
    tol = hda_tolerance(("mirror", "raid5"))
    assert _rel_err(ana.mean_response_ms, des.mean_response_ms) <= tol


@pytest.mark.parametrize("vi,org", [(0, "mirror"), (1, "raid5")])
def test_per_va_mean_within_member_band(both, vi, org):
    des, ana = both
    assert des.va_response[vi].count > 100
    assert ana.va_response[vi].count == des.va_response[vi].count
    err = _rel_err(ana.va_response[vi].mean, des.va_response[vi].mean)
    assert err <= tolerance_for(org)


def test_p95_within_hda_band(both):
    des, ana = both
    assert _rel_err(ana.p95_response_ms, des.p95_response_ms) <= HDA_P95_TOLERANCE


def test_per_disk_class_shapes_match(both):
    des, ana = both
    assert [len(a.disk_utilization) for a in ana.arrays] \
        == [len(a.disk_utilization) for a in des.arrays]
    assert ana.organization == des.organization == "hda(mirror+raid5)"
