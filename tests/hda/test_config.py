"""VAConfig / heterogeneous SystemConfig semantics.

Covers the config-layer half of the HDA refactor: VA validation, the
legacy-shaped ``va_view`` projection, span arithmetic, pool resolution
through the allocation policies, and the ``with_`` regression — a
piecemeal update must be validated exactly like a fresh construction.
"""

import importlib
import sys

import pytest

from repro.layout import AllocationError
from repro.sim import (
    DiskParams,
    DiskPoolEntry,
    Organization,
    SystemConfig,
    VAConfig,
)

from tests.hda.util import BPD, HOT_BPD, hda_config, hda_vas

FAST = DiskParams(rpm=7200.0, average_seek_ms=8.5, maximal_seek_ms=18.0,
                  settle_ms=1.5, surfaces=24)


class TestVAConfig:
    def test_ndisks_by_organization(self):
        assert VAConfig(Organization.BASE, 4).ndisks == 4
        assert VAConfig(Organization.MIRROR, 4).ndisks == 8
        assert VAConfig(Organization.RAID5, 4).ndisks == 5
        assert VAConfig(Organization.PARITY_STRIPING, 4).ndisks == 5

    def test_label_defaults_to_organization(self):
        assert VAConfig(Organization.RAID5, 4).label == "raid5"
        assert VAConfig(Organization.RAID5, 4, name="cold").label == "cold"

    @pytest.mark.parametrize(
        "kw",
        [
            dict(n=0),
            dict(striping_unit=0),
            dict(blocks_per_disk=0),
            dict(heat=0.0),
            dict(heat=-1.0),
            dict(parity_grain=0),
            dict(cache_mb=0.0),
        ],
    )
    def test_validation(self, kw):
        base = dict(organization=Organization.RAID5, n=4)
        base.update(kw)
        with pytest.raises(ValueError):
            VAConfig(**base)


class TestHeterogeneousConfig:
    def test_spans_and_totals(self):
        cfg = hda_config()
        assert cfg.heterogeneous
        assert cfg.va_spans == (2 * HOT_BPD, 3 * BPD)
        assert cfg.total_logical_blocks == 4 * BPD
        assert cfg.organization_label == "hda(mirror+raid5)"

    def test_va_view_is_legacy_shaped(self):
        cfg = hda_config()
        hot = cfg.va_view(0)
        assert not hot.heterogeneous
        assert hot.organization is Organization.MIRROR
        assert hot.n == 2
        assert hot.blocks_per_disk == HOT_BPD
        cold = cfg.va_view(1)
        assert cold.organization is Organization.RAID5
        assert cold.blocks_per_disk == BPD

    def test_homogeneous_helpers_reject_hda(self):
        cfg = hda_config()
        with pytest.raises(ValueError):
            cfg.make_layout()
        with pytest.raises(ValueError):
            cfg.arrays_for(4)
        with pytest.raises(ValueError):
            SystemConfig(organization=Organization.RAID5, n=4).total_logical_blocks

    def test_pool_requires_vas(self):
        with pytest.raises(ValueError):
            SystemConfig(
                organization=Organization.RAID5,
                pool=(DiskPoolEntry(DiskParams(), 4),),
            )

    def test_unknown_allocation_rejected(self):
        with pytest.raises(ValueError):
            hda_config(allocation="greedy")


class TestPoolResolution:
    def test_without_pool_uses_va_disks(self):
        slow = DiskParams()
        cfg = hda_config(vas=(
            VAConfig(Organization.MIRROR, 2, blocks_per_disk=HOT_BPD, disk=FAST),
            VAConfig(Organization.RAID5, 3),
        ))
        assigned = cfg.resolve_disk_params()
        assert assigned == [[FAST] * 4, [slow] * 4]

    def test_bandwidth_policy_gives_hot_va_the_fast_disks(self):
        cfg = hda_config(
            vas=hda_vas(heat=3.0),
            pool=(DiskPoolEntry(DiskParams(), 6), DiskPoolEntry(FAST, 4)),
            allocation="bandwidth",
        )
        assigned = cfg.resolve_disk_params()
        assert assigned[0] == [FAST] * 4  # hot mirror: 4 disks, all fast
        assert FAST not in assigned[1]

    def test_first_fit_takes_pool_order(self):
        cfg = hda_config(
            vas=hda_vas(),
            pool=(DiskPoolEntry(DiskParams(), 6), DiskPoolEntry(FAST, 4)),
            allocation="first_fit",
        )
        assigned = cfg.resolve_disk_params()
        assert assigned[0] == [DiskParams()] * 4  # stock disks come first

    def test_infeasible_pool_raises(self):
        cfg = hda_config(pool=(DiskPoolEntry(DiskParams(), 4),))
        with pytest.raises(AllocationError):
            cfg.resolve_disk_params()  # 8 disks demanded, 4 slots


class TestWithValidation:
    """``with_`` must produce a validated config (regression: it used
    to hand back configs the builders later choked on)."""

    def test_valid_update_round_trips(self):
        cfg = SystemConfig(organization=Organization.RAID5, n=4)
        assert cfg.with_(striping_unit=4).striping_unit == 4

    @pytest.mark.parametrize(
        "kw",
        [
            dict(striping_unit=0),
            dict(blocks_per_disk=0),
            dict(n=0),
            dict(block_bytes=0),
            dict(channel_mb_per_s=0.0),
            dict(track_buffers_per_disk=0),
            dict(parity_grain=0),
            dict(allocation="bogus"),
        ],
    )
    def test_invalid_update_raises(self, kw):
        cfg = SystemConfig(organization=Organization.RAID5, n=4)
        with pytest.raises(ValueError):
            cfg.with_(**kw)

    def test_invalid_update_on_hda_config_raises(self):
        with pytest.raises(ValueError):
            hda_config().with_(allocation="bogus")


def test_degraded_shim_warns_and_reexports():
    sys.modules.pop("repro.array.degraded", None)
    with pytest.warns(DeprecationWarning, match="repro.failure.degraded"):
        mod = importlib.import_module("repro.array.degraded")
    from repro.failure.degraded import DegradedParityController

    assert mod.DegradedParityController is DegradedParityController
