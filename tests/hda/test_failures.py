"""Failure schedules compose with Virtual Arrays.

A ``DiskFailure`` addresses ``(array, disk)`` and in an HDA build each
VA is its own array with its own disks and channel — so a failure in
the mirror VA must leave the RAID5 VA *bit-identical* to a healthy
run, the parity checker must keep enforcing the healthy VA's parity
contract (exemptions are per-controller, i.e. VA-scoped), and
schedule validation must reject out-of-range VA/disk targets.
"""

import pytest

from repro.failure import FailureSchedule
from repro.failure.errors import FailureScheduleError
from repro.sim import run_trace

from tests.hda.util import hda_config, poisson_trace


def _run(failures=None, **kw):
    cfg = hda_config()
    trace = poisson_trace(0.02, n=2000)
    return run_trace(cfg, trace, warmup_fraction=0.1, keep_samples=True,
                     failures=failures, **kw)


class TestCrossVAIsolation:
    def test_mirror_failure_leaves_raid5_va_bit_identical(self):
        healthy = _run()
        failed = _run(failures=FailureSchedule.single_failure(at_ms=0.0, disk=0,
                                                              array=0))
        assert failed.failures is not None
        assert failed.failures.degraded_reads > 0  # VA 0 really degraded
        # The cold RAID5 VA never noticed: same samples, to the bit.
        assert failed.va_response[1]._samples == healthy.va_response[1]._samples

    def test_raid5_failure_leaves_mirror_va_bit_identical(self):
        healthy = _run()
        failed = _run(failures=FailureSchedule.single_failure(at_ms=0.0, disk=1,
                                                              array=1))
        assert failed.failures is not None
        assert failed.va_response[0]._samples == healthy.va_response[0]._samples

    def test_degraded_va_response_degrades(self):
        healthy = _run()
        failed = _run(failures=FailureSchedule.single_failure(at_ms=0.0, disk=1,
                                                              array=1))
        # RAID5 reads of the dead disk reconstruct from the survivors —
        # strictly more arm work, so the VA's mean cannot improve.
        assert failed.va_response[1].mean > healthy.va_response[1].mean


class TestParityCheckerScope:
    def test_parity_enforced_on_healthy_va_while_other_va_degraded(self):
        # validate=True attaches the invariant checkers; a VA-scoped
        # exemption bug would either fail the healthy RAID5 VA's audit
        # or silently exempt it — the run completing with the checker
        # active and the RAID5 VA healthy covers the former.
        res = _run(failures=FailureSchedule.single_failure(at_ms=0.0, disk=0,
                                                           array=0),
                   validate=True)
        assert res.failures is not None

    def test_degraded_raid5_va_does_not_trip_checker(self):
        res = _run(failures=FailureSchedule.single_failure(at_ms=0.0, disk=1,
                                                           array=1),
                   validate=True)
        assert res.failures is not None


class TestScheduleValidation:
    def test_out_of_range_va_rejected(self):
        with pytest.raises(FailureScheduleError, match="array"):
            _run(failures=FailureSchedule.single_failure(at_ms=0.0, disk=0,
                                                         array=5))

    def test_out_of_range_disk_within_va_rejected(self):
        # VA 1 (RAID5 n=3) has 4 physical disks: 0..3.
        with pytest.raises(FailureScheduleError, match="disk"):
            _run(failures=FailureSchedule.single_failure(at_ms=0.0, disk=7,
                                                         array=1))
