"""FailureSchedule value-object semantics: validation, ordering,
determinism (repr / hash / pickle) — the properties the campaign
engine's content-keyed stores depend on."""

import pickle

import pytest

from repro.failure import (
    DiskFailure,
    FailureSchedule,
    FailureScheduleError,
    LatentError,
    ScrubPolicy,
    SpareArrival,
)


class TestEventValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(FailureScheduleError, match="at_ms"):
            DiskFailure(at_ms=-1.0, disk=0)

    def test_nan_time_rejected(self):
        with pytest.raises(FailureScheduleError, match="at_ms"):
            LatentError(at_ms=float("nan"), disk=1, pblock=0)

    def test_negative_disk_rejected(self):
        with pytest.raises(FailureScheduleError):
            DiskFailure(at_ms=0.0, disk=-1)

    def test_bad_rebuild_chunk_rejected(self):
        with pytest.raises(FailureScheduleError, match="chunk"):
            SpareArrival(at_ms=0.0, rebuild_chunk_blocks=0)

    def test_negative_rebuild_delay_rejected(self):
        with pytest.raises(FailureScheduleError, match="delay"):
            SpareArrival(at_ms=0.0, rebuild_delay_ms=-0.5)

    def test_scrub_period_must_be_positive(self):
        with pytest.raises(FailureScheduleError, match="period"):
            ScrubPolicy(period_ms=0.0)

    def test_scrub_min_passes_nonnegative(self):
        with pytest.raises(FailureScheduleError, match="min_passes"):
            ScrubPolicy(period_ms=10.0, min_passes=-1)


class TestScheduleValidation:
    def test_two_failures_same_array_rejected(self):
        with pytest.raises(FailureScheduleError, match="one DiskFailure"):
            FailureSchedule(
                events=(DiskFailure(0.0, disk=0), DiskFailure(5.0, disk=1))
            )

    def test_one_failure_per_array_is_fine(self):
        s = FailureSchedule(
            events=(DiskFailure(0.0, disk=0, array=0), DiskFailure(0.0, disk=0, array=1))
        )
        assert len(s.events) == 2

    def test_duplicate_latent_rejected(self):
        with pytest.raises(FailureScheduleError, match="duplicate"):
            FailureSchedule(
                events=(LatentError(0.0, disk=1, pblock=7), LatentError(3.0, disk=1, pblock=7))
            )

    def test_same_pblock_on_different_disks_is_fine(self):
        FailureSchedule(
            events=(LatentError(0.0, disk=1, pblock=7), LatentError(0.0, disk=2, pblock=7))
        )

    def test_spare_without_failure_rejected(self):
        with pytest.raises(FailureScheduleError, match="without a DiskFailure"):
            FailureSchedule(events=(SpareArrival(at_ms=10.0),))

    def test_spare_before_failure_rejected(self):
        with pytest.raises(FailureScheduleError, match="before the failure"):
            FailureSchedule(
                events=(DiskFailure(100.0, disk=0), SpareArrival(at_ms=50.0))
            )

    def test_non_event_rejected(self):
        with pytest.raises(FailureScheduleError, match="not a failure event"):
            FailureSchedule(events=("disk dies",))

    def test_list_events_canonicalized_to_tuple(self):
        s = FailureSchedule(events=[DiskFailure(0.0, disk=0)])
        assert isinstance(s.events, tuple)


class TestScheduleSemantics:
    def test_empty(self):
        assert FailureSchedule().empty
        assert not FailureSchedule(events=(DiskFailure(0.0, disk=0),)).empty
        assert not FailureSchedule(scrub=ScrubPolicy(period_ms=10.0)).empty

    def test_ordered_events_sorts_by_time(self):
        a = LatentError(30.0, disk=1, pblock=0)
        b = DiskFailure(0.0, disk=0)
        c = SpareArrival(50.0)
        s = FailureSchedule(events=(a, b, c))
        assert s.ordered_events() == (b, a, c)

    def test_ordered_events_ties_break_by_position(self):
        a = LatentError(0.0, disk=1, pblock=0)
        b = LatentError(0.0, disk=2, pblock=0)
        assert FailureSchedule(events=(a, b)).ordered_events() == (a, b)
        assert FailureSchedule(events=(b, a)).ordered_events() == (b, a)

    def test_single_failure_constructor(self):
        s = FailureSchedule.single_failure(
            at_ms=5.0, disk=2, spare_after_ms=10.0, rebuild_delay_ms=4.0
        )
        assert s.events[0] == DiskFailure(5.0, disk=2)
        assert s.events[1].at_ms == 15.0
        assert s.events[1].rebuild_delay_ms == 4.0

    def test_single_failure_without_spare(self):
        s = FailureSchedule.single_failure(disk=1)
        assert len(s.events) == 1


class TestDeterminism:
    """The point content hash includes repr(schedule); the parallel
    engine pickles schedules to workers.  Both must be stable."""

    def make(self):
        return FailureSchedule.single_failure(
            at_ms=0.0,
            disk=0,
            spare_after_ms=50.0,
            rebuild_blocks=600,
            scrub=ScrubPolicy(period_ms=300.0, min_passes=1),
        )

    def test_repr_deterministic_and_complete(self):
        a, b = self.make(), self.make()
        assert repr(a) == repr(b)
        # Any knob change must change the repr (it feeds the store key).
        c = FailureSchedule.single_failure(
            at_ms=0.0, disk=0, spare_after_ms=50.0, rebuild_blocks=601,
            scrub=ScrubPolicy(period_ms=300.0, min_passes=1),
        )
        assert repr(c) != repr(a)

    def test_hashable_and_equal(self):
        assert self.make() == self.make()
        assert hash(self.make()) == hash(self.make())

    def test_pickle_round_trip(self):
        s = self.make()
        back = pickle.loads(pickle.dumps(s))
        assert back == s
        assert repr(back) == repr(s)
