"""End-to-end failure scenarios through ``run_trace(failures=...)``:
rebuild under foreground load, scrubbing of latent errors, graceful
data-loss accounting, and the healthy-run identity guarantee."""

import math

import pytest

from repro.analytic import AnalyticUnsupportedError
from repro.failure import (
    DataLossError,
    DiskFailure,
    FailureSchedule,
    FailureScheduleError,
    LatentError,
    ScrubPolicy,
    SpareArrival,
)
from repro.sim import run_trace
from repro.validate import snapshot
from repro.validate.golden import diff_snapshots
from tests.validate.workload import BPD, config, make_trace


def trace4(seed=7, n=300):
    return make_trace(seed=seed, n=n, ndisks=4)


REBUILD = FailureSchedule.single_failure(
    at_ms=0.0, disk=1, spare_after_ms=50.0, rebuild_delay_ms=1.0, rebuild_blocks=600
)


class TestRebuildScenario:
    @pytest.fixture(scope="class")
    def result(self):
        return run_trace(config("raid5", n=4), trace4(), failures=REBUILD, validate=True)

    def test_rebuild_completes(self, result):
        report = result.failures
        assert len(report.rebuilds) == 1
        rb = report.rebuilds[0]
        assert rb.failed_disk == 1
        assert rb.blocks == 600
        assert rb.finished_ms is not None and rb.finished_ms > 50.0
        assert rb.lost_blocks == 0
        assert report.rebuild_duration_ms > 0

    def test_no_data_lost_with_intact_redundancy(self, result):
        report = result.failures
        assert not report.data_lost
        report.raise_for_loss()  # must not raise

    def test_foreground_took_degraded_paths(self, result):
        assert result.failures.degraded_reads > 0
        assert result.failures.degraded_writes > 0

    def test_every_request_completed(self, result):
        healthy = run_trace(config("raid5", n=4), trace4())
        assert result.requests == healthy.requests

    def test_deterministic(self):
        a = run_trace(config("raid5", n=4), trace4(), failures=REBUILD)
        b = run_trace(config("raid5", n=4), trace4(), failures=REBUILD)
        assert diff_snapshots(snapshot(a), snapshot(b), rtol=0.0, atol=0.0) == []

    @pytest.mark.parametrize("org", ["mirror", "parity_striping"])
    def test_other_redundant_orgs_rebuild(self, org):
        res = run_trace(config(org, n=4), trace4(n=150), failures=REBUILD)
        rb = res.failures.rebuilds[0]
        assert rb.finished_ms is not None and rb.lost_blocks == 0
        assert not res.failures.data_lost


class TestRebuildMetamorphic:
    def test_degraded_p95_at_least_healthy(self):
        """Losing a disk cannot make the tail faster at equal load."""
        trace = trace4()
        healthy = run_trace(config("raid5", n=4), trace)
        degraded = run_trace(
            config("raid5", n=4),
            trace,
            failures=FailureSchedule(events=(DiskFailure(0.0, disk=1),)),
        )
        assert degraded.p95_response_ms >= healthy.p95_response_ms

    def test_rebuild_time_monotone_in_throttle(self):
        """More delay between rebuild chunks => strictly later finish."""
        trace = trace4(n=150)
        durations = []
        for delay in (0.0, 8.0, 64.0):
            sched = FailureSchedule.single_failure(
                at_ms=0.0, disk=0, spare_after_ms=0.0,
                rebuild_delay_ms=delay, rebuild_blocks=300,
            )
            res = run_trace(config("raid5", n=4), trace, failures=sched)
            durations.append(res.failures.rebuild_duration_ms)
        assert durations[0] < durations[1] < durations[2]


SCRUB = FailureSchedule(
    events=tuple(
        LatentError(at_ms=0.0, disk=1 + (i % 3), pblock=(i * 97) % 400)
        for i in range(8)
    ),
    scrub=ScrubPolicy(period_ms=300.0, chunk_blocks=48, max_blocks=512, min_passes=1),
)


class TestScrubScenario:
    @pytest.fixture(scope="class")
    def report(self):
        res = run_trace(config("raid5", n=4), trace4(), failures=SCRUB, validate=True)
        return res.failures

    def test_all_latent_errors_repaired(self, report):
        """Acceptance criterion: the scrub (plus any repair-on-access)
        detects and repairs 100% of the injected latent errors."""
        assert report.latent_injected == 8
        assert report.latent_repaired == 8
        assert report.latent_outstanding == 0

    def test_scrub_pass_ran_and_detected(self, report):
        sc = report.scrubs[0]
        assert sc.passes >= 1
        assert sc.blocks_checked > 0
        assert sc.unrepairable == 0
        # Whatever the scrub found it also fixed.
        assert sc.detected == sc.repaired

    def test_exposure_windows_recorded(self, report):
        assert len(report.exposure_ms) == 8
        assert report.exposure_ms == tuple(sorted(report.exposure_ms))
        assert 0 <= report.exposure_mean_ms <= report.exposure_max_ms

    def test_no_loss(self, report):
        assert not report.data_lost

    def test_mirror_scrub_repairs_from_partner(self):
        res = run_trace(config("mirror", n=4), trace4(n=150), failures=SCRUB)
        assert res.failures.latent_outstanding == 0
        assert res.failures.latent_repaired == 8


class TestDataLoss:
    def test_base_org_loses_gracefully(self):
        """No redundancy: accesses to the dead disk are counted as lost,
        the run still completes, and raise_for_loss gives the typed error."""
        res = run_trace(
            config("base", n=4),
            trace4(),
            failures=FailureSchedule(events=(DiskFailure(0.0, disk=2),)),
        )
        report = res.failures
        assert report.data_lost
        assert report.lost_reads + report.lost_writes > 0
        assert report.lost_samples  # debugging breadcrumbs kept
        with pytest.raises(DataLossError, match="unreconstructable|hit lost data"):
            report.raise_for_loss()

    def test_loss_error_carries_counts(self):
        err = DataLossError(3, 2, 1, samples=((1.5, "read", 0, 7),))
        assert err.lost_reads == 3 and err.lost_writes == 2 and err.lost_blocks == 1
        assert "disk 0" in str(err)


class TestHealthyIdentity:
    """Acceptance criterion: with the failure subsystem present but
    inactive (empty schedule), results are bit-identical to a run that
    never heard of failures."""

    def test_empty_schedule_matches_healthy_bit_exactly(self):
        trace = trace4()
        healthy = run_trace(config("raid5", n=4), trace)
        empty = run_trace(config("raid5", n=4), trace, failures=FailureSchedule())

        healthy_snap = snapshot(healthy)
        empty_snap = snapshot(empty)
        report = empty_snap.pop("failures")
        assert diff_snapshots(healthy_snap, empty_snap, rtol=0.0, atol=0.0) == []

        # ... and the report itself says "nothing happened".
        assert report["degraded_reads"] == 0
        assert report["latent_injected"] == 0
        assert report["lost_reads"] == 0 and report["lost_block_count"] == 0
        assert math.isnan(healthy.mean_response_ms) is False
        assert empty.mean_response_ms == healthy.mean_response_ms

    def test_healthy_snapshot_has_no_failures_section(self):
        res = run_trace(config("raid5", n=4), trace4(n=100))
        assert "failures" not in snapshot(res)
        assert res.failures is None


class TestInterface:
    def test_analytic_backend_raises_typed_error(self):
        with pytest.raises(AnalyticUnsupportedError, match="backend='des'"):
            run_trace(
                config("raid5", n=4),
                trace4(n=50),
                backend="analytic",
                failures=FailureSchedule(events=(DiskFailure(0.0, disk=0),)),
            )

    def test_analytic_unsupported_is_a_value_error(self):
        assert issubclass(AnalyticUnsupportedError, ValueError)

    def test_cached_orgs_rejected(self):
        with pytest.raises(ValueError, match="uncached"):
            run_trace(
                config("raid5", n=4, cached=True, cache_mb=4),
                trace4(n=50),
                failures=FailureSchedule(events=(DiskFailure(0.0, disk=0),)),
            )

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError, match="FailureSchedule"):
            run_trace(config("raid5", n=4), trace4(n=50), failures=[DiskFailure(0.0, 0)])


class TestInjectorValidation:
    """Schedule-vs-system checks happen before any event fires."""

    def run(self, schedule, org="raid5"):
        return run_trace(config(org, n=4), trace4(n=50), failures=schedule)

    def test_disk_out_of_range(self):
        with pytest.raises(FailureScheduleError, match="disk 99"):
            self.run(FailureSchedule(events=(DiskFailure(0.0, disk=99),)))

    def test_array_out_of_range(self):
        with pytest.raises(FailureScheduleError, match="array 5"):
            self.run(FailureSchedule(events=(DiskFailure(0.0, disk=0, array=5),)))

    def test_pblock_out_of_range(self):
        with pytest.raises(FailureScheduleError, match="pblock"):
            self.run(FailureSchedule(events=(LatentError(0.0, disk=1, pblock=BPD),)))

    def test_spare_on_base_org_rejected(self):
        sched = FailureSchedule(
            events=(DiskFailure(0.0, disk=0), SpareArrival(at_ms=10.0))
        )
        with pytest.raises(FailureScheduleError, match="no redundancy"):
            self.run(sched, org="base")

    def test_latent_after_whole_disk_failure_is_moot(self):
        sched = FailureSchedule(
            events=(DiskFailure(0.0, disk=1), LatentError(5.0, disk=1, pblock=0))
        )
        with pytest.raises(FailureScheduleError, match="moot"):
            self.run(sched)
