"""Failure scenarios through the campaign engine: store-key
completeness, serial/parallel identity, and fail-fast on bad points."""

import json

import pytest

from repro.experiments.parallel import CampaignError, run_campaign, run_points_parallel
from repro.experiments.points import Point, TraceSpec, run_points
from repro.experiments.registry import get_experiment
from repro.experiments.result_store import point_key
from repro.failure import DiskFailure, FailureSchedule

SCALE = 0.01
SPEC = TraceSpec(2, SCALE)


def rebuild_point(delay_ms, key=("k",)):
    sched = FailureSchedule.single_failure(
        at_ms=0.0, disk=0, spare_after_ms=0.0,
        rebuild_delay_ms=delay_ms, rebuild_blocks=200,
    )
    return Point.sim("t", key, SPEC, "raid5", failures=sched)


class TestStoreKeyCompleteness:
    """Regression: the content key must see the failure schedule, so a
    degraded run can never alias a healthy run's memoized value."""

    def test_healthy_and_degraded_points_get_distinct_keys(self):
        healthy = Point.sim("t", ("k",), SPEC, "raid5")
        keys = {
            point_key(healthy),
            point_key(rebuild_point(0.0)),
            point_key(rebuild_point(64.0)),
        }
        assert len(keys) == 3

    def test_equal_schedules_share_a_key(self):
        assert point_key(rebuild_point(4.0)) == point_key(rebuild_point(4.0))

    def test_scrub_knobs_reach_the_key(self):
        from repro.experiments.ext_failure import _scrub_schedule

        a = Point.sim("t", ("k",), SPEC, "raid5", failures=_scrub_schedule(250.0))
        b = Point.sim("t", ("k",), SPEC, "raid5", failures=_scrub_schedule(1000.0))
        assert point_key(a) != point_key(b)


class TestFailureCampaigns:
    def test_rebuild_rate_campaign_parallel_matches_serial(self):
        """Acceptance criterion: --jobs output byte-identical to serial
        for the failure-scenario experiments."""
        ids = ["ext-rebuild-rate"]
        serial = run_campaign(ids, SCALE, jobs=1)
        parallel = run_campaign(ids, SCALE, jobs=2)
        as_bytes = lambda c: json.dumps(
            {e: [r.to_dict() for r in rs] for e, rs in c.items()}, indent=2
        ).encode()
        assert as_bytes(serial) == as_bytes(parallel)

    def test_scrub_points_parallel_match_serial(self):
        points = get_experiment("ext-scrub").points(SCALE)
        serial = run_points(points)
        parallel = run_points_parallel(points, jobs=2)
        assert parallel.keys() == serial.keys()
        for key in serial:
            assert repr(parallel[key]) == repr(serial[key])

    def test_rebuild_points_carry_scenario_extras(self):
        value = run_points([rebuild_point(0.0)])[("k",)]
        extras = dict(value.extras)
        assert extras["rebuild_ms"] > 0
        assert extras["lost_requests"] == 0.0
        assert "degraded_reads" in extras and "latent_outstanding" in extras

    def test_tradeoff_curve_covers_all_orgs(self):
        """The rebuild-rate sweep produces one curve per redundant
        organization (mirror, RAID5, parity striping)."""
        from repro.experiments.ext_failure import ORGS, REBUILD_DELAYS_MS

        results = run_campaign(["ext-rebuild-rate"], SCALE, jobs=1)["ext-rebuild-rate"]
        rebuild_fig = results[1]
        assert [s.label for s in rebuild_fig.series] == [label for _, label in ORGS]
        for s in rebuild_fig.series:
            assert s.xs == REBUILD_DELAYS_MS
            # Monotone tradeoff: gentler rebuild => later completion.
            assert all(a < b for a, b in zip(s.ys, s.ys[1:]))


class TestFailFast:
    def test_worker_crash_fails_campaign_with_schedule_active(self):
        """A schedule the system rejects must fail the campaign loudly
        (typed CampaignError naming the point), not hang or silently
        drop the cell."""
        bad = Point.sim(
            "ext-bad", ("boom",), SPEC, "raid5",
            failures=FailureSchedule(events=(DiskFailure(0.0, disk=99),)),
        )
        with pytest.raises(CampaignError, match="ext-bad"):
            run_points_parallel([rebuild_point(0.0), bad], jobs=2)
