"""Randomized structural properties of every layout.

The layouts are the simulator's address arithmetic; a single off-by-one
silently corrupts every downstream figure.  These tests sweep the whole
(small) logical space of randomly-shaped layouts and assert the global
properties the per-case unit tests can't cover:

* the logical → physical map is injective and inverts exactly;
* data and parity never collide, and parity never shares a disk with a
  block it protects;
* RAID5's rotation spreads parity evenly across all disks, while RAID4
  concentrates it on the dedicated disk (the Fig. 6/7 contrast).
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout import (
    BaseLayout,
    MirrorLayout,
    ParityStripingLayout,
    Raid4Layout,
    Raid5Layout,
)

su_st = st.sampled_from([1, 2, 4, 8])
n_st = st.integers(min_value=2, max_value=6)


def make_layouts(n, bpd, su):
    return [
        BaseLayout(n, bpd),
        MirrorLayout(n, bpd),
        Raid5Layout(n, bpd, striping_unit=su),
        Raid4Layout(n, bpd, striping_unit=su),
        ParityStripingLayout(n, bpd),
    ]


class TestMappingIsABijection:
    @given(n=n_st, su=su_st)
    @settings(max_examples=40, deadline=None)
    def test_every_logical_block_maps_to_exactly_one_location(self, n, su):
        bpd = 5 * su * (n + 1)  # keep rows whole for the striped layouts
        for layout in make_layouts(n, bpd, su):
            seen = set()
            for lb in range(layout.logical_blocks):
                addr = layout.map_block(lb)
                assert 0 <= addr.disk < layout.ndisks
                assert 0 <= addr.block < bpd
                key = (addr.disk, addr.block)
                assert key not in seen, f"{layout!r}: collision at {key}"
                seen.add(key)
                # The inverse mapping agrees.
                assert layout.logical_of(addr.disk, addr.block) == lb
                # Data blocks are never classified as parity.
                assert not layout.is_parity_block(addr.disk, addr.block)

    @given(n=n_st, su=su_st)
    @settings(max_examples=40, deadline=None)
    def test_unmapped_physical_blocks_are_exactly_the_parity_blocks(self, n, su):
        bpd = 3 * su * (n + 1)
        for layout in make_layouts(n, bpd, su):
            if not layout.has_parity:
                continue
            data = {
                (layout.map_block(lb).disk, layout.map_block(lb).block)
                for lb in range(layout.logical_blocks)
            }
            for disk in range(layout.ndisks):
                for pb in range(bpd):
                    is_data = (disk, pb) in data
                    assert layout.is_parity_block(disk, pb) == (not is_data)
                    assert (layout.logical_of(disk, pb) is not None) == is_data


class TestParityPlacement:
    @given(n=n_st, su=su_st)
    @settings(max_examples=40, deadline=None)
    def test_parity_never_shares_a_disk_with_its_data(self, n, su):
        bpd = 4 * su * (n + 1)
        for layout in make_layouts(n, bpd, su):
            if not layout.has_parity:
                continue
            for lb in range(layout.logical_blocks):
                addr = layout.map_block(lb)
                parity = layout.parity_of(lb)
                assert parity is not None
                assert parity.disk != addr.disk
                assert layout.is_parity_block(parity.disk, parity.block)

    @given(n=n_st, su=su_st)
    @settings(max_examples=40, deadline=None)
    def test_raid5_rotation_covers_all_disks_evenly(self, n, su):
        rows_per_cycle = n + 1
        bpd = 2 * su * rows_per_cycle  # two full rotation cycles
        layout = Raid5Layout(n, bpd, striping_unit=su)
        counts = Counter()
        for disk in range(layout.ndisks):
            for pb in range(bpd):
                if layout.is_parity_block(disk, pb):
                    counts[disk] += 1
        assert set(counts) == set(range(layout.ndisks))
        assert len(set(counts.values())) == 1, f"uneven rotation: {counts}"

    @given(n=n_st, su=su_st)
    @settings(max_examples=40, deadline=None)
    def test_raid4_concentrates_parity_on_one_disk(self, n, su):
        bpd = 3 * su * (n + 1)
        layout = Raid4Layout(n, bpd, striping_unit=su)
        for disk in range(layout.ndisks):
            held = sum(layout.is_parity_block(disk, pb) for pb in range(bpd))
            assert held == (bpd if disk == layout.parity_disk else 0)

    @given(n=n_st)
    @settings(max_examples=30, deadline=None)
    def test_parity_striping_group_members_share_offsets(self, n):
        bpd = 6 * (n + 1)
        layout = ParityStripingLayout(n, bpd)
        for lb in range(layout.logical_blocks):
            parity = layout.parity_of(lb)
            # Parity lives in the dedicated parity area of its disk.
            area = parity.block // layout.area_blocks
            assert area == layout.parity_area_index


class TestMirrorPairing:
    @given(n=n_st)
    @settings(max_examples=30, deadline=None)
    def test_mirror_of_is_a_fixed_point_free_involution(self, n):
        layout = MirrorLayout(n, 24)
        for d in range(layout.ndisks):
            m = layout.mirror_of(d)
            assert m != d
            assert layout.mirror_of(m) == d

    @given(n=n_st)
    @settings(max_examples=30, deadline=None)
    def test_pair_members_hold_the_same_block_number(self, n):
        layout = MirrorLayout(n, 24)
        for lb in range(0, layout.logical_blocks, 7):
            a, b = layout.pair_of(lb)
            assert a.block == b.block
            assert layout.mirror_of(a.disk) == b.disk
