"""Unit and property tests for all array layouts.

The key invariants:

* mapping is a bijection between the logical space and the non-parity
  physical blocks;
* parity never lives on a disk that holds any of the data it protects;
* write plans cover exactly the written logical range.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout import (
    BaseLayout,
    MirrorLayout,
    ParityPlacement,
    ParityStripingLayout,
    Raid4Layout,
    Raid5Layout,
    WriteMode,
)

BPD = 2640  # small, divisible by 6, 11, 16, 21 and powers of two up to 16


def make_layout(kind, n=10, bpd=BPD, su=1, placement=ParityPlacement.MIDDLE):
    if kind == "base":
        return BaseLayout(n, bpd)
    if kind == "mirror":
        return MirrorLayout(n, bpd)
    if kind == "raid5":
        return Raid5Layout(n, bpd, striping_unit=su)
    if kind == "raid4":
        return Raid4Layout(n, bpd, striping_unit=su)
    if kind == "parstripe":
        return ParityStripingLayout(n, bpd, placement=placement)
    raise ValueError(kind)


ALL_KINDS = ["base", "mirror", "raid5", "raid4", "parstripe"]
PARITY_KINDS = ["raid5", "raid4", "parstripe"]


class TestShapes:
    @pytest.mark.parametrize(
        "kind,expected",
        [("base", 10), ("mirror", 20), ("raid5", 11), ("raid4", 11), ("parstripe", 11)],
    )
    def test_ndisks_table3(self, kind, expected):
        """§3.2: Base N, Mirror 2N, parity organizations N+1 disks."""
        assert make_layout(kind).ndisks == expected

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_logical_capacity(self, kind):
        assert make_layout(kind).logical_blocks == 10 * BPD

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_has_parity(self, kind):
        assert make_layout(kind).has_parity == (kind in PARITY_KINDS)

    def test_validation(self):
        with pytest.raises(ValueError):
            BaseLayout(0, BPD)
        with pytest.raises(ValueError):
            BaseLayout(1, 0)
        with pytest.raises(ValueError):
            Raid5Layout(10, BPD, striping_unit=0)
        with pytest.raises(ValueError):
            Raid5Layout(10, BPD, striping_unit=7)  # does not divide BPD
        with pytest.raises(ValueError):
            ParityStripingLayout(6, BPD)  # 7 does not divide BPD


class TestMappingInvariants:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    @pytest.mark.parametrize("su", [1, 4, 16])
    def test_bijection(self, kind, su):
        """Every logical block maps to a unique in-range physical block
        and the inverse mapping recovers it."""
        layout = make_layout(kind, n=4, bpd=240, su=su)
        seen = set()
        for lb in range(layout.logical_blocks):
            addr = layout.map_block(lb)
            assert 0 <= addr.disk < layout.ndisks
            assert 0 <= addr.block < layout.blocks_per_disk
            key = (addr.disk, addr.block)
            assert key not in seen, f"collision at logical {lb}"
            seen.add(key)
            assert layout.logical_of(addr.disk, addr.block) == lb

    @pytest.mark.parametrize("kind", PARITY_KINDS)
    def test_parity_blocks_have_no_logical_address(self, kind):
        layout = make_layout(kind, n=4, bpd=240)
        for lb in range(layout.logical_blocks):
            p = layout.parity_of(lb)
            assert layout.logical_of(p.disk, p.block) is None
            assert layout.is_parity_block(p.disk, p.block)

    @pytest.mark.parametrize("kind", PARITY_KINDS)
    def test_parity_on_different_disk(self, kind):
        layout = make_layout(kind, n=4, bpd=240)
        for lb in range(layout.logical_blocks):
            assert layout.parity_of(lb).disk != layout.map_block(lb).disk

    @pytest.mark.parametrize("kind", ["base", "mirror"])
    def test_no_parity_for_unprotected(self, kind):
        layout = make_layout(kind)
        assert layout.parity_of(0) is None
        assert not layout.is_parity_block(0, 0)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_out_of_range_rejected(self, kind):
        layout = make_layout(kind)
        with pytest.raises(ValueError):
            layout.map_block(layout.logical_blocks)
        with pytest.raises(ValueError):
            layout.map_block(-1)
        with pytest.raises(ValueError):
            layout.logical_of(layout.ndisks, 0)
        assert layout.logical_of(0, layout.blocks_per_disk) is None

    @pytest.mark.parametrize("kind", ALL_KINDS)
    @pytest.mark.parametrize("su", [1, 4])
    def test_vectorised_matches_scalar(self, kind, su):
        layout = make_layout(kind, n=4, bpd=240, su=su)
        lbs = np.arange(layout.logical_blocks)
        disks, pblocks = layout.map_blocks(lbs)
        for lb in range(0, layout.logical_blocks, 7):
            addr = layout.map_block(lb)
            assert disks[lb] == addr.disk
            assert pblocks[lb] == addr.block

    @given(st.integers(min_value=0, max_value=4 * 240 - 1), st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=200)
    def test_raid5_roundtrip_property(self, lb, su):
        layout = Raid5Layout(4, 240, striping_unit=su)
        addr = layout.map_block(lb)
        assert layout.logical_of(addr.disk, addr.block) == lb

    @given(st.integers(min_value=0, max_value=4 * 240 - 1))
    @settings(max_examples=200)
    def test_parstripe_roundtrip_property(self, lb):
        for placement in ParityPlacement:
            layout = ParityStripingLayout(4, 240, placement=placement)
            addr = layout.map_block(lb)
            assert layout.logical_of(addr.disk, addr.block) == lb


class TestRaid5Specifics:
    def test_parity_rotates_over_all_disks(self):
        layout = Raid5Layout(4, 240, striping_unit=1)
        parity_disks = {layout.parity_disk_of_row(r) for r in range(5)}
        assert parity_disks == set(range(5))

    def test_su1_consecutive_blocks_on_different_disks(self):
        layout = Raid5Layout(4, 240, striping_unit=1)
        disks = [layout.map_block(lb).disk for lb in range(4)]
        assert len(set(disks)) == 4

    def test_large_su_keeps_blocks_together(self):
        layout = Raid5Layout(4, 240, striping_unit=8)
        disks = {layout.map_block(lb).disk for lb in range(8)}
        assert len(disks) == 1

    def test_row_same_parity_block(self):
        """All data blocks of one row (su=1) share one parity block."""
        layout = Raid5Layout(4, 240, striping_unit=1)
        parities = {layout.parity_of(lb) for lb in range(4)}
        assert len(parities) == 1

    def test_striping_balances_hot_disk(self):
        """A hot logical disk's accesses spread over all physical disks."""
        layout = Raid5Layout(4, 240, striping_unit=1)
        hot = np.arange(0, 240)  # logical disk 0 in the base layout
        disks, _ = layout.map_blocks(hot)
        counts = np.bincount(disks, minlength=5)
        assert counts.min() > 0
        assert counts.max() - counts.min() <= counts.mean() * 0.5


class TestRaid4Specifics:
    def test_all_parity_on_last_disk(self):
        layout = Raid4Layout(4, 240, striping_unit=2)
        for lb in range(0, layout.logical_blocks, 3):
            assert layout.parity_of(lb).disk == 4
        assert layout.parity_disk == 4

    def test_data_never_on_parity_disk(self):
        layout = Raid4Layout(4, 240, striping_unit=2)
        for lb in range(layout.logical_blocks):
            assert layout.map_block(lb).disk < 4


class TestParityStripingSpecifics:
    def test_sequential_data_stays_on_one_disk(self):
        """No interleaving: a logical disk's worth of data is sequential."""
        layout = ParityStripingLayout(4, 240)
        dpd = layout.data_blocks_per_disk
        disks = {layout.map_block(lb).disk for lb in range(dpd)}
        assert disks == {0}

    def test_area_size(self):
        layout = ParityStripingLayout(4, 240)
        assert layout.area_blocks == 48
        assert layout.data_blocks_per_disk == 192

    def test_placement_middle_vs_end(self):
        mid = ParityStripingLayout(4, 240, placement=ParityPlacement.MIDDLE)
        end = ParityStripingLayout(4, 240, placement=ParityPlacement.END)
        assert mid.parity_area_index == 2
        assert end.parity_area_index == 4
        # End placement leaves data areas 0..N-1 in place.
        assert end.map_block(0).block == 0
        # Parity sits in the middle of the disk for MIDDLE.
        p = mid.parity_of(0)
        assert 2 * 48 <= p.block < 3 * 48

    def test_group_assignment_is_latin(self):
        """Each group has exactly one area on each other disk."""
        layout = ParityStripingLayout(4, 240)
        for g in range(5):
            members = layout.members_of_group(g)
            assert len(members) == 4
            assert {d for d, _ in members} == set(range(5)) - {g}
            # Inverse consistency.
            for d, k in members:
                assert layout.group_of(d, k) == g

    def test_group_never_own_disk(self):
        layout = ParityStripingLayout(4, 240)
        for disk in range(5):
            for k in range(4):
                assert layout.group_of(disk, k) != disk

    def test_validation_of_helpers(self):
        layout = ParityStripingLayout(4, 240)
        with pytest.raises(ValueError):
            layout.group_of(5, 0)
        with pytest.raises(ValueError):
            layout.group_of(0, 4)
        with pytest.raises(ValueError):
            layout.members_of_group(5)


class TestMirrorSpecifics:
    def test_pair_structure(self):
        layout = MirrorLayout(4, 240)
        assert layout.mirror_of(0) == 1
        assert layout.mirror_of(1) == 0
        assert layout.mirror_of(6) == 7
        with pytest.raises(ValueError):
            layout.mirror_of(8)

    def test_pair_of(self):
        layout = MirrorLayout(4, 240)
        a, b = layout.pair_of(250)
        assert a.disk == 2
        assert b.disk == 3
        assert a.block == b.block == 10


class TestReadRuns:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_single_block(self, kind):
        layout = make_layout(kind, n=4, bpd=240)
        runs = layout.read_runs(17, 1)
        assert len(runs) == 1
        assert runs[0].nblocks == 1
        assert runs[0].start == layout.map_block(17).block

    def test_raid5_su1_multiblock_spreads(self):
        layout = Raid5Layout(4, 240, striping_unit=1)
        runs = layout.read_runs(0, 4)
        assert len(runs) == 4  # one block per disk

    def test_raid5_large_su_coalesces(self):
        layout = Raid5Layout(4, 240, striping_unit=8)
        runs = layout.read_runs(0, 4)
        assert len(runs) == 1
        assert runs[0].nblocks == 4

    def test_base_contiguous(self):
        layout = BaseLayout(4, 240)
        runs = layout.read_runs(10, 5)
        assert len(runs) == 1
        assert runs[0] .start == 10 and runs[0].nblocks == 5

    def test_run_validation(self):
        from repro.layout import Run

        with pytest.raises(ValueError):
            Run(0, 0, 0)
        with pytest.raises(ValueError):
            Run(0, -1, 1)
        assert Run(1, 5, 3).end == 8


class TestWritePlans:
    @pytest.mark.parametrize("kind", ["base", "mirror"])
    def test_plain_plans(self, kind):
        layout = make_layout(kind, n=4, bpd=240)
        plan = layout.write_plan(10, 3)
        assert len(plan) == 1
        assert plan[0].mode is WriteMode.PLAIN
        assert not plan[0].parity_runs
        assert sum(r.nblocks for r in plan[0].data_runs) == 3

    def test_raid5_single_block_is_rmw(self):
        layout = Raid5Layout(4, 240, striping_unit=1)
        plan = layout.write_plan(17, 1)
        assert len(plan) == 1
        g = plan[0]
        assert g.mode is WriteMode.RMW
        assert sum(r.nblocks for r in g.data_runs) == 1
        assert sum(r.nblocks for r in g.parity_runs) == 1
        assert g.parity_runs[0].disk == layout.parity_of(17).disk
        assert g.parity_runs[0].start == layout.parity_of(17).block

    def test_raid5_full_stripe(self):
        layout = Raid5Layout(4, 240, striping_unit=2)
        plan = layout.write_plan(0, 8)  # one full row: 4 units of 2 blocks
        assert len(plan) == 1
        g = plan[0]
        assert g.mode is WriteMode.FULL
        assert not g.read_runs
        assert sum(r.nblocks for r in g.data_runs) == 8
        assert sum(r.nblocks for r in g.parity_runs) == 2

    def test_raid5_reconstruct_write(self):
        layout = Raid5Layout(4, 240, striping_unit=1)
        plan = layout.write_plan(0, 3)  # 3 of 4 units -> reconstruct
        assert len(plan) == 1
        g = plan[0]
        assert g.mode is WriteMode.RECONSTRUCT
        assert sum(r.nblocks for r in g.read_runs) == 1  # the 4th unit
        # The read covers exactly the missing block.
        assert g.read_runs[0].disk == layout.map_block(3).disk

    def test_raid5_below_half_is_rmw(self):
        layout = Raid5Layout(10, 2640, striping_unit=1)
        plan = layout.write_plan(0, 4)  # 4 of 10 < half
        assert plan[0].mode is WriteMode.RMW

    def test_raid5_multirow_split(self):
        layout = Raid5Layout(4, 240, striping_unit=1)
        # Rows are 4 logical blocks; [2, 9) covers rows 0 (partial),
        # 1 (full), 2 (partial).
        plan = layout.write_plan(2, 7)
        assert len(plan) == 3
        modes = [g.mode for g in plan]
        assert modes[1] is WriteMode.FULL

    def test_plan_covers_exact_blocks(self):
        layout = Raid5Layout(4, 240, striping_unit=2)
        for start, n in [(0, 1), (3, 5), (7, 9), (230 * 4, 10)]:
            plan = layout.write_plan(start, n)
            covered = sum(sum(r.nblocks for r in g.data_runs) for g in plan)
            assert covered == n

    def test_parstripe_plan_always_rmw(self):
        layout = ParityStripingLayout(4, 240)
        plan = layout.write_plan(100, 4)
        assert all(g.mode is WriteMode.RMW for g in plan)

    def test_parstripe_plan_splits_at_area_boundary(self):
        layout = ParityStripingLayout(4, 240)  # areas of 48
        plan = layout.write_plan(46, 4)  # crosses area 0 -> 1 on disk 0
        assert len(plan) == 2
        assert plan[0].data_runs[0].nblocks == 2
        assert plan[1].data_runs[0].nblocks == 2
        # Different areas -> different parity group disks.
        assert plan[0].parity_runs[0].disk != plan[1].parity_runs[0].disk

    def test_parstripe_parity_offsets_match(self):
        layout = ParityStripingLayout(4, 240)
        plan = layout.write_plan(10, 1)
        p = layout.parity_of(10)
        assert plan[0].parity_runs[0].disk == p.disk
        assert plan[0].parity_runs[0].start == p.block

    @given(
        st.integers(min_value=0, max_value=4 * 240 - 16),
        st.integers(min_value=1, max_value=16),
        st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=100)
    def test_raid5_plan_block_conservation(self, start, n, su):
        layout = Raid5Layout(4, 240, striping_unit=su)
        plan = layout.write_plan(start, n)
        covered = sum(sum(r.nblocks for r in g.data_runs) for g in plan)
        assert covered == n
        for g in plan:
            # Parity runs on a parity layout are never empty.
            assert g.parity_runs
            for r in g.parity_runs:
                # Parity run is within the row's unit range.
                assert 0 <= r.start and r.end <= layout.blocks_per_disk

    @given(
        st.integers(min_value=0, max_value=4 * 240 - 16),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=100)
    def test_parstripe_plan_block_conservation(self, start, n):
        layout = ParityStripingLayout(4, 240)
        plan = layout.write_plan(start, n)
        covered = sum(sum(r.nblocks for r in g.data_runs) for g in plan)
        assert covered == n
        for g in plan:
            assert sum(r.nblocks for r in g.parity_runs) == sum(
                r.nblocks for r in g.data_runs
            )
