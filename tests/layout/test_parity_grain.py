"""Tests for fine-grained parity striping (the paper's extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout import ParityStripingLayout, WriteMode


class TestValidation:
    def test_grain_must_divide_area(self):
        # Area = 240 / 5 = 48.
        with pytest.raises(ValueError):
            ParityStripingLayout(4, 240, parity_grain=7)
        with pytest.raises(ValueError):
            ParityStripingLayout(4, 240, parity_grain=0)

    def test_valid_grains(self):
        for grain in (1, 2, 4, 8, 16, 48):
            ParityStripingLayout(4, 240, parity_grain=grain)


class TestMappingInvariants:
    @pytest.mark.parametrize("grain", [1, 4, 16])
    def test_data_mapping_unchanged(self, grain):
        """The whole point: data stays fully sequential; only the parity
        location rotates."""
        classic = ParityStripingLayout(4, 240)
        grained = ParityStripingLayout(4, 240, parity_grain=grain)
        for lb in range(classic.logical_blocks):
            assert classic.map_block(lb) == grained.map_block(lb)

    @pytest.mark.parametrize("grain", [1, 4, 16])
    def test_parity_never_on_own_disk(self, grain):
        layout = ParityStripingLayout(4, 240, parity_grain=grain)
        for lb in range(layout.logical_blocks):
            assert layout.parity_of(lb).disk != layout.map_block(lb).disk

    @pytest.mark.parametrize("grain", [1, 4])
    def test_parity_in_parity_area(self, grain):
        layout = ParityStripingLayout(4, 240, parity_grain=grain)
        base = layout.parity_area_index * layout.area_blocks
        for lb in range(0, layout.logical_blocks, 7):
            p = layout.parity_of(lb)
            assert base <= p.block < base + layout.area_blocks

    @pytest.mark.parametrize("grain", [1, 4])
    def test_group_membership_consistent(self, grain):
        """members_of_group is the exact inverse of group_of at every
        offset chunk."""
        layout = ParityStripingLayout(4, 240, parity_grain=grain)
        for off in range(0, layout.area_blocks, grain):
            for g in range(5):
                members = layout.members_of_group(g, off)
                assert len(members) == 4
                assert {d for d, _ in members} == set(range(5)) - {g}
                for d, k in members:
                    assert layout.group_of(d, k, off) == g

    def test_parity_load_spreads_across_disks(self):
        """One disk's data updates hammer a single parity disk under
        classic striping but spread over all others with a fine grain."""
        classic = ParityStripingLayout(4, 240)
        grained = ParityStripingLayout(4, 240, parity_grain=1)
        # All updates to data area 0 of disk 0.
        lbs = np.arange(0, 48)
        classic_disks = {classic.parity_of(int(lb)).disk for lb in lbs}
        grained_disks = {grained.parity_of(int(lb)).disk for lb in lbs}
        assert len(classic_disks) == 1
        assert grained_disks == {1, 2, 3, 4}

    @given(st.integers(min_value=0, max_value=4 * 240 - 1), st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=150)
    def test_roundtrip_property(self, lb, grain):
        layout = ParityStripingLayout(4, 240, parity_grain=grain)
        addr = layout.map_block(lb)
        assert layout.logical_of(addr.disk, addr.block) == lb


class TestWritePlan:
    def test_plan_splits_at_grain_boundaries(self):
        layout = ParityStripingLayout(4, 240, parity_grain=4)
        plan = layout.write_plan(2, 6)  # offsets 2..7 cross grain at 4
        assert len(plan) == 2
        assert plan[0].data_runs[0].nblocks == 2
        assert plan[1].data_runs[0].nblocks == 4
        # Different grain chunks may use different parity disks.
        assert all(g.mode is WriteMode.RMW for g in plan)

    def test_plan_parity_matches_parity_of(self):
        layout = ParityStripingLayout(4, 240, parity_grain=2)
        for lb in (0, 3, 50, 100):
            plan = layout.write_plan(lb, 1)
            p = layout.parity_of(lb)
            assert plan[0].parity_runs[0].disk == p.disk
            assert plan[0].parity_runs[0].start == p.block

    @given(
        st.integers(min_value=0, max_value=4 * 240 - 16),
        st.integers(min_value=1, max_value=16),
        st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=100)
    def test_block_conservation(self, start, n, grain):
        layout = ParityStripingLayout(4, 240, parity_grain=grain)
        plan = layout.write_plan(start, n)
        assert sum(sum(r.nblocks for r in g.data_runs) for g in plan) == n
        for g in plan:
            assert sum(r.nblocks for r in g.parity_runs) == sum(
                r.nblocks for r in g.data_runs
            )
