"""Smoke tests: every example script runs end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=600):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


@pytest.mark.slow
def test_quickstart():
    out = run_example("quickstart.py")
    assert "uncached" in out
    assert "cached (16 MB)" in out
    assert "mean response" in out


@pytest.mark.slow
def test_compare_organizations():
    out = run_example("compare_organizations.py", "--scale", "0.1")
    assert "raid4" in out
    assert "parity_striping" in out


@pytest.mark.slow
def test_cache_tuning():
    out = run_example("cache_tuning.py", "--scale", "0.01")
    assert "Hit ratios" in out
    assert "Response time" in out


@pytest.mark.slow
def test_sync_policies():
    out = run_example("sync_policies.py")
    assert "DF/PR" in out
    assert "SI" in out


@pytest.mark.slow
def test_hda_allocation():
    out = run_example("hda_allocation.py", "--scale", "0.05")
    assert "first_fit" in out
    assert "bandwidth" in out
    assert "capacity" in out
    assert "hot: 4/4 fast" in out  # bandwidth/capacity claim the fast disks
    assert "hot: 0/4 fast" in out  # first-fit strands them


@pytest.mark.slow
def test_trace_anatomy(tmp_path):
    out = run_example(
        "trace_anatomy.py", "--scale", "0.005", "--export-dir", str(tmp_path)
    )
    assert "phase breakdown" in out
    assert "rmw_rotate" in out
    assert "parity_striping" in out
    assert (tmp_path / "anatomy_raid5.jsonl").exists()
    assert (tmp_path / "anatomy_raid5.chrome.json").exists()
    assert (tmp_path / "anatomy_parity_striping.metrics.csv").exists()
