"""Tests for trace transforms and file formats."""

import io

import numpy as np
import pytest

from repro.trace import (
    TRACE_DTYPE,
    Trace,
    clip_requests,
    scale_speed,
    slice_arrays,
)
from repro.trace.io_ import (
    load_npz,
    read_paper_format,
    roundtrip_text,
    save_npz,
    write_paper_format,
)


@pytest.fixture
def trace():
    records = np.array(
        [
            (0.0, 5, 1, False),
            (10.0, 150, 2, True),
            (25.0, 250, 1, False),
            (40.0, 399, 1, True),
        ],
        dtype=TRACE_DTYPE,
    )
    return Trace(records, 4, 100, name="t")


class TestScaleSpeed:
    def test_double_speed_halves_times(self, trace):
        fast = scale_speed(trace, 2.0)
        np.testing.assert_allclose(fast.times, trace.times / 2)

    def test_half_speed_doubles_times(self, trace):
        slow = scale_speed(trace, 0.5)
        np.testing.assert_allclose(slow.times, trace.times * 2)

    def test_requests_unchanged(self, trace):
        fast = scale_speed(trace, 2.0)
        np.testing.assert_array_equal(fast.lblocks, trace.lblocks)
        np.testing.assert_array_equal(fast.is_write, trace.is_write)

    def test_original_untouched(self, trace):
        scale_speed(trace, 2.0)
        assert trace.times[1] == 10.0

    def test_invalid_speed(self, trace):
        with pytest.raises(ValueError):
            scale_speed(trace, 0.0)

    def test_name_annotated(self, trace):
        assert "speed2" in scale_speed(trace, 2.0).name


class TestSliceArrays:
    def test_keeps_only_range(self, trace):
        part = slice_arrays(trace, 1, 2)  # disks 1..2 -> blocks 100..299
        assert len(part) == 2
        np.testing.assert_array_equal(part.lblocks, [50, 150])
        assert part.ndisks == 2

    def test_rebased_addresses(self, trace):
        part = slice_arrays(trace, 3, 1)
        np.testing.assert_array_equal(part.lblocks, [99])
        assert part.logical_blocks == 100

    def test_times_preserved(self, trace):
        part = slice_arrays(trace, 0, 1)
        np.testing.assert_array_equal(part.times, [0.0])

    def test_straddling_request_clipped(self):
        records = np.array([(0.0, 98, 4, False)], dtype=TRACE_DTYPE)
        trace = Trace(records, 4, 100)
        left = slice_arrays(trace, 0, 1)
        assert len(left) == 1
        assert left.lblocks[0] == 98
        assert left.nblocks[0] == 2
        right = slice_arrays(trace, 1, 1)
        assert right.lblocks[0] == 0
        assert right.nblocks[0] == 2

    def test_validation(self, trace):
        with pytest.raises(ValueError):
            slice_arrays(trace, 4, 1)
        with pytest.raises(ValueError):
            slice_arrays(trace, 0, 5)
        with pytest.raises(ValueError):
            slice_arrays(trace, 2, 3)


class TestClip:
    def test_clip(self, trace):
        c = clip_requests(trace, 2)
        assert len(c) == 2
        with pytest.raises(ValueError):
            clip_requests(trace, 0)


class TestNpzFormat:
    def test_roundtrip(self, trace, tmp_path):
        path = tmp_path / "t.npz"
        save_npz(trace, path)
        loaded = load_npz(path)
        np.testing.assert_array_equal(loaded.records, trace.records)
        assert loaded.ndisks == trace.ndisks
        assert loaded.blocks_per_disk == trace.blocks_per_disk
        assert loaded.name == trace.name


class TestPaperFormat:
    def test_write_format(self, trace):
        buf = io.StringIO()
        write_paper_format(trace, buf)
        lines = buf.getvalue().strip().split("\n")
        # 4 requests, one is 2 blocks -> 5 lines.
        assert len(lines) == 5
        # Continuation block has zero delta.
        assert lines[2].startswith("0.000000 151 w")

    def test_roundtrip_preserves_requests(self, trace):
        back = roundtrip_text(trace)
        np.testing.assert_allclose(back.times, trace.times, atol=1e-5)
        np.testing.assert_array_equal(back.lblocks, trace.lblocks)
        np.testing.assert_array_equal(back.nblocks, trace.nblocks)
        np.testing.assert_array_equal(back.is_write, trace.is_write)

    def test_read_rejects_malformed(self):
        with pytest.raises(ValueError, match="malformed"):
            read_paper_format(io.StringIO("1.0 5\n"), 4, 100)
        with pytest.raises(ValueError, match="direction"):
            read_paper_format(io.StringIO("1.0 5 x\n"), 4, 100)

    def test_read_skips_comments_and_blanks(self):
        text = "# header\n\n1.0 5 r\n"
        t = read_paper_format(io.StringIO(text), 4, 100)
        assert len(t) == 1

    def test_zero_delta_different_direction_not_merged(self):
        text = "1.0 5 r\n0.0 6 w\n"
        t = read_paper_format(io.StringIO(text), 4, 100)
        assert len(t) == 2

    def test_zero_delta_nonadjacent_not_merged(self):
        text = "1.0 5 r\n0.0 9 r\n"
        t = read_paper_format(io.StringIO(text), 4, 100)
        assert len(t) == 2
