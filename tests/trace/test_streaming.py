"""TraceStream: the chunked generator source for synthetic workloads.

A stream is deterministic for a given ``(config, chunk_requests)`` pair
and re-iterable — two passes over ``chunks()`` must produce the same
bytes, and ``materialize()`` must equal the concatenation of one pass.
(The draw order is chunked, so a stream is *not* byte-identical to the
legacy one-shot ``generate_trace`` — it is its own deterministic
workload; the run-level equivalence lives in ``tests/sim``.)
"""

import numpy as np

from repro.trace.record import TRACE_DTYPE, Trace
from repro.trace.synthetic import TraceStream, trace2_config

CFG = trace2_config(scale=0.02)  # ~1.4k requests over 10 disks
CHUNK = 256


def _drain(stream):
    return list(stream.chunks())


class TestChunking:
    def test_chunk_sizes_and_total(self):
        stream = TraceStream(CFG, chunk_requests=CHUNK)
        chunks = _drain(stream)
        assert all(len(c) == CHUNK for c in chunks[:-1])
        assert 0 < len(chunks[-1]) <= CHUNK
        assert sum(len(c) for c in chunks) == CFG.n_requests == len(stream)

    def test_chunks_are_trace_dtype(self):
        stream = TraceStream(CFG, chunk_requests=CHUNK)
        for chunk in stream.chunks():
            assert chunk.dtype == TRACE_DTYPE

    def test_addresses_and_sizes_in_range(self):
        stream = TraceStream(CFG, chunk_requests=CHUNK)
        logical = CFG.ndisks * CFG.blocks_per_disk
        for chunk in stream.chunks():
            assert chunk["nblocks"].min() >= 1
            assert chunk["lblock"].min() >= 0
            assert (chunk["lblock"] + chunk["nblocks"]).max() <= logical

    def test_arrival_times_increase_across_chunk_boundaries(self):
        stream = TraceStream(CFG, chunk_requests=CHUNK)
        times = np.concatenate([c["time"] for c in stream.chunks()])
        assert np.all(np.diff(times) > 0)


class TestDeterminism:
    def test_reiteration_is_bit_identical(self):
        stream = TraceStream(CFG, chunk_requests=CHUNK)
        first = np.concatenate(_drain(stream))
        second = np.concatenate(_drain(stream))
        assert first.tobytes() == second.tobytes()

    def test_two_streams_same_key_are_bit_identical(self):
        a = np.concatenate(_drain(TraceStream(CFG, chunk_requests=CHUNK)))
        b = np.concatenate(_drain(TraceStream(CFG, chunk_requests=CHUNK)))
        assert a.tobytes() == b.tobytes()

    def test_materialize_equals_one_pass(self):
        stream = TraceStream(CFG, chunk_requests=CHUNK)
        drained = np.concatenate(_drain(stream))
        trace = stream.materialize()
        assert isinstance(trace, Trace)
        assert trace.records.tobytes() == drained.tobytes()
        assert trace.ndisks == stream.ndisks
        assert trace.blocks_per_disk == stream.blocks_per_disk

    def test_different_seed_differs(self):
        from dataclasses import replace

        a = np.concatenate(_drain(TraceStream(CFG, chunk_requests=CHUNK)))
        b = np.concatenate(
            _drain(TraceStream(replace(CFG, seed=CFG.seed + 1), chunk_requests=CHUNK))
        )
        assert a.tobytes() != b.tobytes()


class TestStreamMetadata:
    def test_nominal_duration_and_len(self):
        stream = TraceStream(CFG, chunk_requests=CHUNK)
        assert stream.duration_ms == CFG.duration_ms
        assert len(stream) == CFG.n_requests
        assert stream.name == CFG.name
