"""Tests for the synthetic trace generator: does it deliver the
workload characteristics it advertises (and the paper reports)?"""

import dataclasses

import numpy as np
import pytest

from repro.trace import (
    SyntheticTraceConfig,
    generate_trace,
    trace1_config,
    trace2_config,
)


def small_config(**overrides):
    base = dict(
        name="test",
        ndisks=8,
        blocks_per_disk=4096,
        n_requests=20_000,
        duration_ms=600_000.0,
        write_fraction=0.2,
        multiblock_fraction=0.05,
        multiblock_mean_extra=8.0,
        max_request_blocks=32,
        disk_zipf=0.8,
        hot_spot_fraction=0.05,
        hot_spot_weight=0.3,
        sequential_prob=0.1,
        rehit_prob=0.4,
        rehit_window=5_000,
        stack_median=500.0,
        stack_sigma=1.2,
        write_after_read_prob=0.7,
        recent_read_window=500,
        burst_rate_multiplier=5.0,
        burst_fraction=0.3,
        burst_mean_length=30.0,
        seed=7,
    )
    base.update(overrides)
    return SyntheticTraceConfig(**base)


class TestConfigValidation:
    def test_defaults_valid(self):
        small_config()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("ndisks", 0),
            ("n_requests", 0),
            ("duration_ms", 0.0),
            ("write_fraction", 1.5),
            ("multiblock_fraction", -0.1),
            ("hot_spot_fraction", 0.0),
            ("max_request_blocks", 0),
            ("burst_rate_multiplier", 0.5),
            ("burst_fraction", 1.0),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            small_config(**{field: value})

    def test_scaled(self):
        cfg = small_config().scaled(0.5)
        assert cfg.n_requests == 10_000
        assert cfg.duration_ms == 300_000.0
        # Arrival rate preserved.
        assert cfg.n_requests / cfg.duration_ms == pytest.approx(20_000 / 600_000.0)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            small_config().scaled(0)


class TestGeneratedShape:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(small_config())

    def test_request_count(self, trace):
        assert len(trace) == 20_000

    def test_deterministic(self):
        a = generate_trace(small_config())
        b = generate_trace(small_config())
        np.testing.assert_array_equal(a.records, b.records)

    def test_seed_changes_output(self):
        a = generate_trace(small_config())
        b = generate_trace(small_config(seed=8))
        assert not np.array_equal(a.records["lblock"], b.records["lblock"])

    def test_times_sorted_positive(self, trace):
        assert np.all(np.diff(trace.times) >= 0)
        assert trace.times[0] >= 0

    def test_duration_near_target(self, trace):
        assert trace.duration_ms == pytest.approx(600_000.0, rel=0.15)

    def test_write_fraction(self, trace):
        assert trace.stats().write_fraction == pytest.approx(0.2, abs=0.02)

    def test_multiblock_fraction(self, trace):
        assert 1 - trace.stats().single_block_fraction == pytest.approx(0.05, abs=0.01)

    def test_sizes_within_bounds(self, trace):
        assert trace.nblocks.min() >= 1
        assert trace.nblocks.max() <= 32

    def test_addresses_in_space(self, trace):
        assert trace.lblocks.min() >= 0
        assert (trace.lblocks + trace.nblocks).max() <= trace.logical_blocks

    def test_requests_stay_within_logical_disk(self, trace):
        start_disk = trace.lblocks // trace.blocks_per_disk
        end_disk = (trace.lblocks + trace.nblocks - 1) // trace.blocks_per_disk
        assert np.array_equal(start_disk, end_disk)

    def test_skew_present(self, trace):
        counts = trace.per_disk_access_counts()
        assert counts.max() > 2 * counts.min()

    def test_burstiness(self, trace):
        """The MMPP arrivals must be burstier than Poisson (CV > 1)."""
        iat = trace.interarrival_times()
        cv = iat.std() / iat.mean()
        assert cv > 1.2

    def test_no_bursts_gives_poisson_like(self):
        cfg = small_config(burst_fraction=0.0)
        iat = generate_trace(cfg).interarrival_times()
        assert iat.std() / iat.mean() == pytest.approx(1.0, abs=0.1)

    def test_temporal_locality_exists(self, trace):
        """Re-references must occur (same block accessed repeatedly)."""
        unique = len(np.unique(trace.lblocks))
        assert unique < len(trace) * 0.9

    def test_write_after_read(self, trace):
        """A healthy share of writes targets previously read blocks."""
        reads_seen = set()
        war = 0
        writes = 0
        for rec in trace.records:
            if rec["is_write"]:
                writes += 1
                if int(rec["lblock"]) in reads_seen:
                    war += 1
            else:
                reads_seen.add(int(rec["lblock"]))
        assert war / writes > 0.4


class TestPaperPresets:
    """The presets must reproduce Table 2 of the paper."""

    @pytest.fixture(scope="class")
    def t1(self):
        return generate_trace(trace1_config(scale=0.02))

    @pytest.fixture(scope="class")
    def t2(self):
        return generate_trace(trace2_config(scale=0.3))

    def test_trace1_shape(self, t1):
        s = t1.stats()
        assert s.ndisks == 130
        assert s.write_fraction == pytest.approx(0.10, abs=0.02)
        assert s.single_block_fraction == pytest.approx(0.98, abs=0.01)

    def test_trace2_shape(self, t2):
        s = t2.stats()
        assert s.ndisks == 10
        assert s.write_fraction == pytest.approx(0.28, abs=0.03)
        assert s.single_block_fraction == pytest.approx(0.95, abs=0.02)

    def test_trace2_more_skewed_than_trace1(self, t1, t2):
        assert t2.stats().disk_access_cv > t1.stats().disk_access_cv

    def test_full_scale_counts(self):
        assert trace1_config().n_requests == 3_362_505
        assert trace2_config().n_requests == 69_539

    def test_durations(self):
        assert trace1_config().duration_ms == pytest.approx(10_980_000.0)
        assert trace2_config().duration_ms == pytest.approx(6_000_000.0)

    def test_database_fits_table1_disk(self):
        from repro.disk import DiskGeometry

        assert trace1_config().blocks_per_disk <= DiskGeometry().total_blocks

    def test_bpd_divisible_by_array_widths(self):
        bpd = trace1_config().blocks_per_disk
        for width in (6, 11, 16, 21):  # N+1 for N = 5, 10, 15, 20
            assert bpd % width == 0
        for su in (1, 2, 4, 8, 16, 32, 64):
            assert bpd % su == 0
