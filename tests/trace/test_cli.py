"""Tests for the trace toolbox CLI."""

import pytest

from repro.trace.__main__ import main
from repro.trace.io_ import load_npz


@pytest.fixture
def t2_npz(tmp_path):
    out = tmp_path / "t2.npz"
    assert main(["generate", "--preset", "trace2", "--scale", "0.02", "--out", str(out)]) == 0
    return out


class TestGenerate:
    def test_generates_npz(self, t2_npz):
        trace = load_npz(t2_npz)
        assert trace.ndisks == 10
        assert len(trace) == pytest.approx(69539 * 0.02, rel=0.01)

    def test_generate_text(self, tmp_path):
        out = tmp_path / "t.txt"
        main(["generate", "--preset", "trace2", "--scale", "0.005", "--out", str(out)])
        lines = out.read_text().strip().split("\n")
        assert len(lines) >= 69539 * 0.005


class TestStats:
    def test_stats_prints_table(self, t2_npz, capsys):
        assert main(["stats", str(t2_npz)]) == 0
        out = capsys.readouterr().out
        assert "# of I/O accesses" in out

    def test_stats_text_requires_ndisks(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("1.0 5 r\n")
        with pytest.raises(SystemExit):
            main(["stats", str(path)])
        assert main(["stats", str(path), "--ndisks", "10"]) == 0


class TestConvert:
    def test_npz_to_text_and_back(self, t2_npz, tmp_path):
        txt = tmp_path / "t.txt"
        back = tmp_path / "back.npz"
        assert main(["convert", str(t2_npz), str(txt)]) == 0
        assert main(["convert", str(txt), str(back), "--ndisks", "10"]) == 0
        a = load_npz(t2_npz)
        b = load_npz(back)
        assert len(a) == len(b)
        assert list(a.lblocks[:50]) == list(b.lblocks[:50])


class TestSpeed:
    def test_speed_halves_duration(self, t2_npz, tmp_path):
        out = tmp_path / "fast.npz"
        assert main(["speed", str(t2_npz), str(out), "--factor", "2"]) == 0
        a = load_npz(t2_npz)
        b = load_npz(out)
        assert b.duration_ms == pytest.approx(a.duration_ms / 2)
