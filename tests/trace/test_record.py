"""Tests for the Trace data model and Table-2 statistics."""

import numpy as np
import pytest

from repro.trace import TRACE_DTYPE, Trace


def make_trace(rows, ndisks=4, bpd=100):
    records = np.array(rows, dtype=TRACE_DTYPE)
    return Trace(records, ndisks, bpd)


class TestValidation:
    def test_wrong_dtype(self):
        with pytest.raises(ValueError):
            Trace(np.zeros(3), 4, 100)

    def test_unsorted_times(self):
        with pytest.raises(ValueError, match="sorted"):
            make_trace([(5.0, 0, 1, False), (1.0, 0, 1, False)])

    def test_negative_time(self):
        with pytest.raises(ValueError):
            make_trace([(-1.0, 0, 1, False)])

    def test_zero_nblocks(self):
        with pytest.raises(ValueError):
            make_trace([(0.0, 0, 0, False)])

    def test_address_out_of_space(self):
        with pytest.raises(ValueError):
            make_trace([(0.0, 399, 2, False)])  # 399+2 > 400
        with pytest.raises(ValueError):
            make_trace([(0.0, -1, 1, False)])

    def test_bad_shape_params(self):
        records = np.zeros(0, dtype=TRACE_DTYPE)
        with pytest.raises(ValueError):
            Trace(records, 0, 100)
        with pytest.raises(ValueError):
            Trace(records, 4, 0)

    def test_empty_trace_allowed(self):
        t = Trace(np.zeros(0, dtype=TRACE_DTYPE), 4, 100)
        assert len(t) == 0
        assert t.duration_ms == 0.0
        with pytest.raises(ValueError):
            t.stats()


class TestAccessors:
    @pytest.fixture
    def trace(self):
        return make_trace(
            [
                (0.0, 0, 1, False),
                (1.0, 150, 2, True),
                (3.5, 399, 1, False),
            ]
        )

    def test_len_and_iter(self, trace):
        assert len(trace) == 3
        assert len(list(trace)) == 3

    def test_duration(self, trace):
        assert trace.duration_ms == 3.5

    def test_logical_blocks(self, trace):
        assert trace.logical_blocks == 400

    def test_field_views(self, trace):
        np.testing.assert_array_equal(trace.times, [0.0, 1.0, 3.5])
        np.testing.assert_array_equal(trace.lblocks, [0, 150, 399])
        np.testing.assert_array_equal(trace.nblocks, [1, 2, 1])
        np.testing.assert_array_equal(trace.is_write, [False, True, False])

    def test_logical_disks(self, trace):
        np.testing.assert_array_equal(trace.logical_disks(), [0, 1, 3])

    def test_interarrivals(self, trace):
        np.testing.assert_allclose(trace.interarrival_times(), [1.0, 2.5])

    def test_repr(self, trace):
        assert "3 requests" in repr(trace)


class TestStats:
    def test_table2_fields(self):
        trace = make_trace(
            [
                (0.0, 0, 1, False),  # single read
                (1.0, 10, 1, True),  # single write
                (2.0, 20, 4, False),  # multi read
                (3.0, 30, 2, True),  # multi write
            ]
        )
        s = trace.stats()
        assert s.n_ios == 4
        assert s.blocks_transferred == 8
        assert s.single_block_reads == 1
        assert s.single_block_writes == 1
        assert s.multiblock_reads == 1
        assert s.multiblock_writes == 1
        assert s.write_fraction == 0.5
        assert s.single_block_fraction == 0.5
        assert s.ndisks == 4

    def test_as_table_renders(self):
        trace = make_trace([(0.0, 0, 1, False)])
        text = trace.stats().as_table()
        assert "# of I/O accesses" in text
        assert "Write fraction" in text

    def test_per_disk_counts_block_weighted(self):
        trace = make_trace(
            [
                (0.0, 0, 3, False),  # 3 blocks on disk 0
                (1.0, 100, 1, False),  # 1 block on disk 1
                (2.0, 100, 1, True),
            ]
        )
        np.testing.assert_array_equal(trace.per_disk_access_counts(), [3, 2, 0, 0])

    def test_per_disk_counts_straddling_request(self):
        trace = make_trace([(0.0, 98, 4, False)])  # 2 blocks disk0, 2 disk1
        np.testing.assert_array_equal(trace.per_disk_access_counts(), [2, 2, 0, 0])

    def test_skew_metrics(self):
        rows = [(float(i), 0, 1, False) for i in range(90)]
        rows += [(float(90 + i), 150, 1, False) for i in range(10)]
        trace = make_trace(rows, ndisks=10, bpd=100)
        s = trace.stats()
        assert s.disk_access_cv > 1.0  # strongly skewed
        assert s.top_decile_share == pytest.approx(0.9)
