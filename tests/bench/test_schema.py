"""Normalized bench-record schema and the legacy-shape adapters."""

import json
from pathlib import Path

import pytest

from repro.bench.schema import (
    SCHEMA,
    BenchSchemaError,
    Metric,
    load_bench_file,
    normalize,
    to_json,
)

ROOT = Path(__file__).resolve().parent.parent.parent


CAMPAIGN_KERNEL = {
    "benchmark": "campaign+kernel",
    "python": "3.12.0",
    "platform": "test",
    "cores": 2,
    "campaign": {
        "experiments": ["fig8"],
        "scale": 0.01,
        "jobs": 2,
        "serial_s": 1.0,
        "parallel_s": 0.5,
        "speedup": 2.0,
        "outputs_identical": True,
    },
    "event_throughput": {"events": 1000, "elapsed_s": 0.01, "events_per_s": 100000},
    "seek_time": {"calls": 10, "lut_s": 0.1, "closed_form_s": 0.2, "lut_speedup": 2.0},
    "trace_generation": {"requests": 10, "elapsed_s": 0.01, "requests_per_s": 1000},
}

ANALYTIC = {
    "benchmark": "analytic-vs-des",
    "python": "3.12.0",
    "platform": "test",
    "cores": 2,
    "campaigns": [
        {
            "experiment": "fig5",
            "points": 32,
            "des_s": 10.0,
            "analytic_s": 0.5,
            "speedup": 20.0,
            "max_rel_error": 0.3,
            "mean_abs_rel_error": 0.1,
            "tolerance": 0.5,
            "within_tolerance": True,
        }
    ],
    "best_speedup": 20.0,
}


class TestAdapters:
    def test_campaign_kernel_shape(self):
        record = normalize(CAMPAIGN_KERNEL, source="t")
        assert record.bench_id == "campaign+kernel"
        assert record.metrics["campaign.speedup"].value == 2.0
        assert record.metrics["campaign.speedup"].direction == "higher"
        assert record.metrics["campaign.serial_s"].direction == "lower"
        assert record.metrics["event_throughput.events_per_s"].value == 100000
        assert record.metrics["campaign.outputs_identical"].value == 1.0
        assert record.context["cores"] == 2
        assert record.raw is CAMPAIGN_KERNEL

    def test_analytic_shape(self):
        record = normalize(ANALYTIC, source="t")
        assert record.bench_id == "analytic-vs-des"
        assert record.metrics["analytic.fig5.analytic_speedup"].value == 20.0
        assert record.metrics["analytic.fig5.max_rel_error"].direction == "lower"
        assert record.metrics["analytic.best_speedup"].value == 20.0

    def test_normalized_round_trip(self):
        record = normalize(CAMPAIGN_KERNEL, source="t")
        doc = to_json(record)
        assert doc["schema"] == SCHEMA
        again = normalize(doc, source="t2")
        assert again.metrics == record.metrics
        assert again.bench_id == record.bench_id
        # The original raw document survives the round trip.
        assert again.raw == CAMPAIGN_KERNEL

    def test_unknown_shape_rejected(self):
        with pytest.raises(BenchSchemaError, match="unrecognized"):
            normalize({"benchmark": "mystery"}, source="t")

    def test_unknown_schema_version_rejected(self):
        with pytest.raises(BenchSchemaError, match="unknown schema"):
            normalize({"schema": "repro-bench/999", "bench_id": "x"}, source="t")

    def test_non_numeric_metric_rejected(self):
        doc = {
            "schema": SCHEMA,
            "bench_id": "x",
            "metrics": {"m": {"value": "fast"}},
        }
        with pytest.raises(BenchSchemaError):
            normalize(doc, source="t")

    def test_bad_direction_rejected(self):
        with pytest.raises(BenchSchemaError, match="direction"):
            Metric(1.0, direction="sideways")

    def test_empty_metrics_rejected(self):
        with pytest.raises(BenchSchemaError, match="metrics"):
            normalize({"schema": SCHEMA, "bench_id": "x", "metrics": {}}, source="t")


class TestCommittedFiles:
    """Every committed BENCH_*.json must parse under the shared schema."""

    @pytest.mark.parametrize(
        "path", sorted(ROOT.glob("BENCH_*.json")), ids=lambda p: p.name
    )
    def test_committed_bench_file_parses(self, path):
        record = load_bench_file(path)
        assert record.metrics, f"{path.name} normalized to zero metrics"
        assert record.bench_id

    def test_at_least_two_committed_files(self):
        # The trajectory gate needs history to compare against.
        assert len(list(ROOT.glob("BENCH_*.json"))) >= 2


class TestLoadFile:
    def test_missing_file(self, tmp_path):
        with pytest.raises(BenchSchemaError, match="cannot read"):
            load_bench_file(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{not json")
        with pytest.raises(BenchSchemaError, match="not JSON"):
            load_bench_file(p)

    def test_load_normalized_file(self, tmp_path):
        p = tmp_path / "BENCH_x.json"
        p.write_text(json.dumps(to_json(normalize(ANALYTIC, source="t"))))
        record = load_bench_file(p)
        assert record.source == str(p)
        assert "analytic.fig5.analytic_speedup" in record.metrics
