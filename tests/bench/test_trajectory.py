"""Baseline/regression detection and the compare CLI's exit codes."""

import json

import pytest

from repro.bench.schema import SCHEMA, BenchRecord, Metric
from repro.bench.trajectory import analyze, render_table
from repro.bench.__main__ import EXIT_OK, EXIT_REGRESSION, EXIT_SCHEMA, main


def record(source, **values):
    return BenchRecord(
        bench_id="synthetic",
        metrics={
            name: Metric(v[0], direction=v[1]) if isinstance(v, tuple) else Metric(v)
            for name, v in values.items()
        },
        source=source,
    )


class TestAnalyze:
    def test_flat_trajectory_is_ok(self):
        report = analyze(
            [record("a", x=100.0), record("b", x=101.0), record("c", x=99.0)]
        )
        (traj,) = report.trajectories
        assert traj.status == "ok"
        assert traj.baseline == pytest.approx(100.5)
        assert not report.has_regressions

    def test_throughput_drop_is_regression(self):
        report = analyze(
            [record("a", x=100.0), record("b", x=100.0), record("c", x=75.0)],
            threshold=0.2,
        )
        (traj,) = report.trajectories
        assert traj.status == "regression"
        assert traj.change == pytest.approx(-0.25)
        assert report.has_regressions

    def test_exactly_threshold_drop_triggers(self):
        report = analyze([record("a", x=100.0), record("b", x=80.0)], threshold=0.2)
        assert report.trajectories[0].status == "regression"

    def test_lower_is_better_rise_is_regression(self):
        report = analyze(
            [record("a", err=(0.10, "lower")), record("b", err=(0.15, "lower"))]
        )
        (traj,) = report.trajectories
        assert traj.status == "regression"

    def test_lower_is_better_drop_is_improvement(self):
        report = analyze(
            [record("a", err=(0.10, "lower")), record("b", err=(0.05, "lower"))]
        )
        assert report.trajectories[0].status == "improved"
        assert report.improvements

    def test_big_gain_is_improvement(self):
        report = analyze([record("a", x=100.0), record("b", x=200.0)])
        assert report.trajectories[0].status == "improved"

    def test_baseline_is_median_not_mean(self):
        # One outlier run must not poison the baseline.
        report = analyze(
            [
                record("a", x=100.0),
                record("outlier", x=1000.0),
                record("c", x=100.0),
                record("d", x=95.0),
            ]
        )
        assert report.trajectories[0].baseline == pytest.approx(100.0)
        assert report.trajectories[0].status == "ok"

    def test_new_and_absent_metrics_do_not_regress(self):
        report = analyze([record("a", old=1.0), record("b", new=1.0)])
        by_name = {t.name: t for t in report.trajectories}
        assert by_name["old"].status == "absent"
        assert by_name["new"].status == "new"
        assert not report.has_regressions

    def test_single_record_cannot_regress(self):
        report = analyze([record("only", x=1.0)])
        assert report.trajectories[0].status == "single"
        assert not report.has_regressions

    def test_rejects_empty_history_and_bad_threshold(self):
        with pytest.raises(ValueError):
            analyze([])
        with pytest.raises(ValueError):
            analyze([record("a", x=1.0)], threshold=0.0)

    def test_render_table_mentions_every_metric(self):
        report = analyze([record("a", x=100.0, y=1.0), record("b", x=70.0, y=1.0)])
        table = render_table(report)
        assert "x" in table and "y" in table
        assert "REGRESSION" in table
        assert "-30.0%" in table


def write_bench(path, **values):
    doc = {
        "schema": SCHEMA,
        "bench_id": "synthetic",
        "context": {},
        "metrics": {
            name: {
                "value": v[0] if isinstance(v, tuple) else v,
                "direction": v[1] if isinstance(v, tuple) else "higher",
            }
            for name, v in values.items()
        },
    }
    path.write_text(json.dumps(doc))
    return path


class TestCompareCli:
    def test_no_regression_exits_zero(self, tmp_path, capsys):
        a = write_bench(tmp_path / "a.json", x=100.0)
        b = write_bench(tmp_path / "b.json", x=102.0)
        assert main(["compare", str(a), str(b)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "trajectory over 2 bench file(s)" in out
        assert "x" in out

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        a = write_bench(tmp_path / "a.json", x=100.0)
        b = write_bench(tmp_path / "b.json", x=100.0)
        c = write_bench(tmp_path / "c.json", x=79.0)  # >20% below median 100
        assert main(["compare", str(a), str(b), str(c)]) == EXIT_REGRESSION
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "FAIL" in captured.err

    def test_advisory_reports_but_exits_zero(self, tmp_path, capsys):
        a = write_bench(tmp_path / "a.json", x=100.0)
        b = write_bench(tmp_path / "b.json", x=50.0)
        assert main(["compare", "--advisory", str(a), str(b)]) == EXIT_OK
        assert "ADVISORY" in capsys.readouterr().err

    def test_schema_error_exits_two_even_advisory(self, tmp_path, capsys):
        good = write_bench(tmp_path / "a.json", x=100.0)
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["compare", "--advisory", str(good), str(bad)]) == EXIT_SCHEMA
        assert "schema error" in capsys.readouterr().err

    def test_custom_threshold(self, tmp_path):
        a = write_bench(tmp_path / "a.json", x=100.0)
        b = write_bench(tmp_path / "b.json", x=90.0)
        assert main(["compare", str(a), str(b)]) == EXIT_OK  # 10% < default 20%
        assert main(["compare", "--threshold", "0.05", str(a), str(b)]) == EXIT_REGRESSION

    def test_json_report(self, tmp_path):
        a = write_bench(tmp_path / "a.json", x=100.0)
        b = write_bench(tmp_path / "b.json", x=60.0)
        out = tmp_path / "report.json"
        assert main(["compare", "--json", str(out), str(a), str(b)]) == EXIT_REGRESSION
        doc = json.loads(out.read_text())
        assert doc["regressions"] == ["x"]
        assert doc["metrics"][0]["status"] == "regression"

    def test_legacy_and_normalized_mix(self, tmp_path):
        """The adapter lets old-shape and new-shape files share a trajectory."""
        legacy = tmp_path / "old.json"
        legacy.write_text(
            json.dumps(
                {
                    "benchmark": "campaign+kernel",
                    "event_throughput": {"events_per_s": 100000},
                }
            )
        )
        current = write_bench(
            tmp_path / "new.json", **{"event_throughput.events_per_s": 50000.0}
        )
        assert main(["compare", str(legacy), str(current)]) == EXIT_REGRESSION

    def test_normalize_subcommand_round_trips(self, tmp_path, capsys):
        legacy = tmp_path / "old.json"
        legacy.write_text(
            json.dumps(
                {
                    "benchmark": "campaign+kernel",
                    "event_throughput": {"events_per_s": 100000},
                }
            )
        )
        assert main(["normalize", str(legacy)]) == EXIT_OK
        doc = json.loads(legacy.read_text())
        assert doc["schema"] == SCHEMA
        assert doc["raw"]["event_throughput"]["events_per_s"] == 100000
