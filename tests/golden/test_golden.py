"""Golden-snapshot regression tests.

Each case runs a small, fully deterministic workload and compares a
digest of the result against a JSON fixture committed next to this
file.  The digests include every per-array counter and percentile, so
any behavioural drift in the simulator — planner changes, scheduling
changes, accounting changes — shows up as a named field diff.

After an *intentional* behaviour change, regenerate with::

    PYTHONPATH=src python -m pytest tests/golden --regen-golden

and review the fixture diff like any other code change.  Every golden
run is executed twice (and under full validation) before comparing, so
a flaky fixture can never be recorded.
"""

from pathlib import Path

import pytest

from repro.sim import run_trace
from repro.validate import compare_snapshots, load_snapshot, save_snapshot, snapshot
from repro.validate.golden import GoldenMismatch, diff_snapshots
from tests.validate.workload import config, make_trace

FIXTURES = Path(__file__).parent

CASES = {
    "base_uncached_n4": dict(org="base", n=4),
    "raid5_uncached_n4": dict(org="raid5", n=4),
    "raid5_cached_n4": dict(org="raid5", n=4, cached=True, cache_mb=4),
    "mirror_uncached_n4": dict(org="mirror", n=4),
}


def golden_run(case_kw):
    cfg = config(**case_kw)
    trace = make_trace(seed=11, n=150, ndisks=4)
    return run_trace(cfg, trace, warmup_fraction=0.1, validate=True)


class TestGolden:
    @pytest.mark.parametrize("case", sorted(CASES))
    def test_matches_golden(self, case, request):
        path = FIXTURES / f"{case}.json"
        # Two live runs must agree bit-exactly before either is compared
        # against (or recorded as) the fixture.
        first = snapshot(golden_run(CASES[case]))
        second = snapshot(golden_run(CASES[case]))
        assert diff_snapshots(first, second, rtol=0.0, atol=0.0) == []

        if request.config.getoption("--regen-golden"):
            save_snapshot(path, first)
            return
        expected = load_snapshot(path)
        assert expected is not None, (
            f"missing fixture {path.name}; run pytest with --regen-golden"
        )
        compare_snapshots(expected, first, rtol=1e-6, atol=1e-9)


class TestDiffMachinery:
    def test_exact_match_is_empty(self):
        snap = {"a": 1, "b": [1.0, 2.0], "c": {"d": "x"}}
        assert diff_snapshots(snap, snap) == []

    def test_integer_drift_is_exact(self):
        assert diff_snapshots({"count": 10}, {"count": 11}, rtol=0.5)

    def test_float_within_tolerance_passes(self):
        assert diff_snapshots({"x": 1.0}, {"x": 1.0 + 1e-12}) == []
        assert diff_snapshots({"x": 1.0}, {"x": 1.1}, rtol=0.2) == []

    def test_float_outside_tolerance_fails(self):
        diffs = diff_snapshots({"x": 1.0}, {"x": 1.1}, rtol=1e-3)
        assert len(diffs) == 1 and "x" in diffs[0]

    def test_shape_changes_are_reported(self):
        assert diff_snapshots({"a": [1, 2]}, {"a": [1, 2, 3]})
        assert diff_snapshots({"a": 1}, {"b": 1})
        assert diff_snapshots({"a": {"b": 1}}, {"a": 5})

    def test_nan_equals_nan(self):
        nan = float("nan")
        assert diff_snapshots({"x": nan}, {"x": nan}) == []

    def test_compare_raises_with_field_names(self):
        with pytest.raises(GoldenMismatch, match=r"\$\.count"):
            compare_snapshots({"count": 1}, {"count": 2})
