"""Golden-snapshot regression tests for failure scenarios.

Same discipline as ``test_golden.py`` — two live runs must agree
bit-exactly before comparing against the committed fixture — but the
snapshots additionally carry the ``failures`` section (rebuild/scrub
outcomes, degraded counters, exposure windows), so any drift in the
failure subsystem shows up as a named field diff.

Regenerate after an intentional change with::

    PYTHONPATH=src python -m pytest tests/golden --regen-golden
"""

from pathlib import Path

import pytest

from repro.failure import FailureSchedule, LatentError, ScrubPolicy
from repro.sim import run_trace
from repro.validate import compare_snapshots, load_snapshot, save_snapshot, snapshot
from repro.validate.golden import diff_snapshots
from tests.validate.workload import config, make_trace

FIXTURES = Path(__file__).parent

REBUILD = FailureSchedule.single_failure(
    at_ms=0.0, disk=1, spare_after_ms=50.0, rebuild_delay_ms=1.0, rebuild_blocks=400
)
SCRUB = FailureSchedule(
    events=tuple(
        LatentError(at_ms=0.0, disk=1 + (i % 3), pblock=(i * 97) % 400)
        for i in range(6)
    ),
    scrub=ScrubPolicy(period_ms=300.0, chunk_blocks=48, max_blocks=512, min_passes=1),
)

CASES = {
    "failure_rebuild_raid5_n4": dict(org="raid5", n=4, failures=REBUILD),
    "failure_scrub_mirror_n4": dict(org="mirror", n=4, failures=SCRUB),
}


def golden_run(case_kw):
    kw = dict(case_kw)
    failures = kw.pop("failures")
    org = kw.pop("org")
    cfg = config(org, **kw)
    trace = make_trace(seed=11, n=150, ndisks=4)
    return run_trace(cfg, trace, warmup_fraction=0.1, validate=True, failures=failures)


class TestGoldenFailure:
    @pytest.mark.parametrize("case", sorted(CASES))
    def test_matches_golden(self, case, request):
        path = FIXTURES / f"{case}.json"
        first = snapshot(golden_run(CASES[case]))
        second = snapshot(golden_run(CASES[case]))
        assert diff_snapshots(first, second, rtol=0.0, atol=0.0) == []
        assert "failures" in first  # the scenario section must be recorded

        if request.config.getoption("--regen-golden"):
            save_snapshot(path, first)
            return
        expected = load_snapshot(path)
        assert expected is not None, (
            f"missing fixture {path.name}; run pytest with --regen-golden"
        )
        compare_snapshots(expected, first, rtol=1e-6, atol=1e-9)
