"""Golden-snapshot regression tests for the analytic backend.

One fixture per organization, produced by the M/G/1 fast solver on a
seeded Poisson workload (the arrival process the solver models — the
heavily bursty validation trace sits above its saturation knee by
design).  The solver is pure computation, so two back-to-back runs
must agree *bit-exactly* before either is compared against the
fixture; any drift in the decomposition, the service-time moments, or
the queueing formulas shows up as a named field diff.

Regenerate after an intentional model change with::

    PYTHONPATH=src python -m pytest tests/golden --regen-golden

and review the fixture diff like any other code change.
"""

from pathlib import Path

import pytest

from repro.sim import run_trace
from repro.validate import compare_snapshots, load_snapshot, save_snapshot, snapshot
from repro.validate.golden import diff_snapshots
from tests.analytic.workload import config, poisson_trace

FIXTURES = Path(__file__).parent

CASES = {
    "analytic_base_n4": dict(org="base"),
    "analytic_mirror_n4": dict(org="mirror"),
    "analytic_raid5_n4": dict(org="raid5"),
    "analytic_raid4_n4": dict(org="raid4"),
    "analytic_paritystripe_n4": dict(org="parity_striping"),
    "analytic_raid5_cached_n4": dict(org="raid5", cached=True, cache_mb=2),
}


def golden_solve(case_kw):
    kw = dict(case_kw)
    cfg = config(kw.pop("org"), **kw)
    trace = poisson_trace(0.08, seed=11, n=800, nblocks=(1, 1, 1, 4))
    return run_trace(cfg, trace, warmup_fraction=0.1, backend="analytic")


class TestGoldenAnalytic:
    @pytest.mark.parametrize("case", sorted(CASES))
    def test_matches_golden(self, case, request):
        path = FIXTURES / f"{case}.json"
        first = snapshot(golden_solve(CASES[case]))
        second = snapshot(golden_solve(CASES[case]))
        assert diff_snapshots(first, second, rtol=0.0, atol=0.0) == []

        if request.config.getoption("--regen-golden"):
            save_snapshot(path, first)
            return
        expected = load_snapshot(path)
        assert expected is not None, (
            f"missing fixture {path.name}; run pytest with --regen-golden"
        )
        compare_snapshots(expected, first, rtol=1e-6, atol=1e-9)
