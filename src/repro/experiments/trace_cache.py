"""Content-keyed trace cache: small in-process LRU + on-disk store.

Synthetic trace generation is deterministic but expensive (the address
loop walks every request), and a campaign evaluates the same trace at
many sweep points — across *processes* when the parallel engine fans
points out to workers.  This module memoizes :func:`~repro.trace.
synthetic.generate_trace` at two levels:

1. an in-process LRU of fully materialized :class:`Trace` objects,
   bounded to a handful of entries (a full Trace-1 pins tens of MB, so
   the old ``lru_cache(maxsize=32)`` approach could hold gigabytes);
2. a directory of ``.npz`` files keyed by a content hash of the
   generator config, shared by every process on the machine.

The disk key covers *every* generator knob (including the seed and a
format version), so a config change can never alias a stale file.
Writes are atomic (``os.replace`` of a temp file), so concurrent
workers warming the same entry race benignly: one wins, the others
either re-read the complete file or regenerate.

Environment variables
---------------------
``REPRO_TRACE_CACHE``
    Cache directory.  Defaults to ``~/.cache/repro/traces``.  Set to
    ``off`` (or ``0``/``none``) to disable the disk layer entirely —
    the in-process LRU still applies.
``REPRO_TRACE_MEMCACHE``
    Size of the in-process LRU (default 4 traces; 0 disables it).

Effectiveness is observable: every lookup bumps the process-local
counters behind :func:`stats` (memory/disk hits, generations,
evictions), which the campaign telemetry layer samples around each
point to attribute cache traffic to the point that caused it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Optional

import numpy as np

from repro.trace.record import TRACE_DTYPE, Trace
from repro.trace.synthetic import SyntheticTraceConfig, generate_trace

__all__ = [
    "CacheStats",
    "cache_dir",
    "cached_generate",
    "clear_memory_cache",
    "config_key",
    "memory_cache_size",
    "reset_stats",
    "stats",
]

#: Bump when the on-disk layout or the generator's draw order changes.
_FORMAT_VERSION = 1


def cache_dir() -> Optional[Path]:
    """The on-disk cache directory, or ``None`` when disabled."""
    raw = os.environ.get("REPRO_TRACE_CACHE")
    if raw is not None:
        if raw.strip().lower() in ("off", "0", "none", ""):
            return None
        return Path(raw).expanduser()
    return Path.home() / ".cache" / "repro" / "traces"


def memory_cache_size() -> int:
    """Capacity of the in-process LRU (entries, not bytes)."""
    raw = os.environ.get("REPRO_TRACE_MEMCACHE", "4")
    try:
        return max(0, int(raw))
    except ValueError:
        return 4


def config_key(cfg: SyntheticTraceConfig) -> str:
    """Stable content hash of every generator knob."""
    payload = dataclasses.asdict(cfg)
    payload["__format__"] = _FORMAT_VERSION
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()
    return f"{cfg.name.replace('/', '_').replace('@', '_')}-{digest[:16]}"


# -- statistics --------------------------------------------------------------


@dataclasses.dataclass
class CacheStats:
    """Process-local effectiveness counters for both cache layers.

    Every :func:`cached_generate` call ends in exactly one of
    ``memory_hits``, ``disk_hits`` or ``generated``; the remaining
    fields break down the disk layer (a ``disk_miss`` is a lookup that
    found no usable file — corrupt files count here too) and the LRU's
    capacity pressure (``memory_evictions``).
    """

    memory_hits: int = 0
    memory_evictions: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    disk_stores: int = 0
    generated: int = 0

    @property
    def lookups(self) -> int:
        return self.memory_hits + self.disk_hits + self.generated

    @property
    def hit_ratio(self) -> float:
        n = self.lookups
        return (self.memory_hits + self.disk_hits) / n if n else float("nan")

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        """Counter increments since the *earlier* snapshot."""
        return CacheStats(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in dataclasses.fields(CacheStats)
            }
        )


_stats = CacheStats()


def stats() -> CacheStats:
    """A snapshot of the process-local cache counters."""
    return dataclasses.replace(_stats)


def reset_stats() -> None:
    """Zero the counters (tests; per-campaign accounting)."""
    global _stats
    _stats = CacheStats()


# -- in-process layer --------------------------------------------------------

_memory: "OrderedDict[str, Trace]" = OrderedDict()


def clear_memory_cache() -> None:
    """Drop every in-process entry (tests, memory pressure)."""
    _memory.clear()


def _memory_get(key: str) -> Optional[Trace]:
    trace = _memory.get(key)
    if trace is not None:
        _memory.move_to_end(key)
        _stats.memory_hits += 1
    return trace


def _memory_put(key: str, trace: Trace) -> None:
    cap = memory_cache_size()
    if cap == 0:
        return
    _memory[key] = trace
    _memory.move_to_end(key)
    while len(_memory) > cap:
        _memory.popitem(last=False)
        _stats.memory_evictions += 1


# -- disk layer --------------------------------------------------------------


def _disk_path(key: str) -> Optional[Path]:
    base = cache_dir()
    return None if base is None else base / f"{key}.npz"


def _disk_load(path: Path, cfg: SyntheticTraceConfig) -> Optional[Trace]:
    try:
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"]))
            records = archive["records"]
    except (OSError, ValueError, KeyError, json.JSONDecodeError):
        # Truncated/corrupt/foreign file: regenerate rather than fail.
        return None
    if records.dtype != TRACE_DTYPE or meta.get("format") != _FORMAT_VERSION:
        return None
    return Trace(records, meta["ndisks"], meta["blocks_per_disk"], name=meta["name"])


def _disk_store(path: Path, trace: Trace) -> None:
    meta = json.dumps(
        {
            "format": _FORMAT_VERSION,
            "ndisks": trace.ndisks,
            "blocks_per_disk": trace.blocks_per_disk,
            "name": trace.name,
        }
    )
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(suffix=".npz.tmp", dir=path.parent)
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, records=trace.records, meta=np.array(meta))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        # A read-only or full cache directory must never fail the run.
        pass


# -- public API --------------------------------------------------------------


def cached_generate(cfg: SyntheticTraceConfig) -> Trace:
    """:func:`generate_trace` through the two cache layers.

    The returned :class:`Trace` is bit-identical to a direct
    ``generate_trace(cfg)`` call — the cache stores the generator's
    exact output, keyed by the exact config.
    """
    key = config_key(cfg)
    trace = _memory_get(key)
    if trace is not None:
        return trace

    path = _disk_path(key)
    if path is not None:
        if path.exists():
            trace = _disk_load(path, cfg)
            if trace is not None:
                _stats.disk_hits += 1
                _memory_put(key, trace)
                return trace
        _stats.disk_misses += 1

    trace = generate_trace(cfg)
    _stats.generated += 1
    if path is not None:
        _disk_store(path, trace)
        _stats.disk_stores += 1
    _memory_put(key, trace)
    return trace
