"""Figure 4: response time of the synchronization policies vs array size.

Panels: {RAID5, Parity Striping} × {Trace 1, Trace 2}; one curve per
policy (SI, RF, RF/PR, DF, DF/PR) over N ∈ {5, 10, 15, 20}.

Expected shape: SI clearly worst (parity disk held spinning); DF below
RF; the /PR variants best; all gaps narrowing as N grows.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Series
from repro.experiments.points import Point, TraceSpec, run_points

__all__ = ["run", "points", "assemble"]

POLICIES = ["SI", "RF", "RF/PR", "DF", "DF/PR"]
SIZES = [5, 10, 15, 20]
ORGS = [("raid5", "RAID5"), ("parity_striping", "ParStripe")]


def points(scale: float = 1.0) -> list[Point]:
    return [
        Point.sim(
            "fig4",
            (which, org, policy, n),
            TraceSpec(which, scale, n=n),
            org,
            n=n,
            sync_policy=policy,
        )
        for which in (1, 2)
        for org, _ in ORGS
        for policy in POLICIES
        for n in SIZES
    ]


def assemble(scale: float, values: dict) -> list[ExperimentResult]:
    results = []
    for which in (1, 2):
        for org, org_label in ORGS:
            series = [
                Series(
                    policy,
                    SIZES,
                    [values[(which, org, policy, n)].mean_response_ms for n in SIZES],
                )
                for policy in POLICIES
            ]
            results.append(
                ExperimentResult(
                    exp_id="fig4",
                    title=f"Sync policies, {org_label}, Trace {which}",
                    xlabel="array size N",
                    ylabel="mean response time (ms)",
                    series=series,
                )
            )
    return results


def run(scale: float = 1.0) -> list[ExperimentResult]:
    return assemble(scale, run_points(points(scale)))
