"""Figure 4: response time of the synchronization policies vs array size.

Panels: {RAID5, Parity Striping} × {Trace 1, Trace 2}; one curve per
policy (SI, RF, RF/PR, DF, DF/PR) over N ∈ {5, 10, 15, 20}.

Expected shape: SI clearly worst (parity disk held spinning); DF below
RF; the /PR variants best; all gaps narrowing as N grows.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Series, get_trace, response_time

__all__ = ["run"]

POLICIES = ["SI", "RF", "RF/PR", "DF", "DF/PR"]
SIZES = [5, 10, 15, 20]


def run(scale: float = 1.0) -> list[ExperimentResult]:
    results = []
    for which in (1, 2):
        for org, org_label in (("raid5", "RAID5"), ("parity_striping", "ParStripe")):
            series = []
            for policy in POLICIES:
                ys = []
                for n in SIZES:
                    trace = get_trace(which, scale, n=n)
                    res = response_time(org, trace, n=n, sync_policy=policy)
                    ys.append(res.mean_response_ms)
                series.append(Series(policy, SIZES, ys))
            results.append(
                ExperimentResult(
                    exp_id="fig4",
                    title=f"Sync policies, {org_label}, Trace {which}",
                    xlabel="array size N",
                    ylabel="mean response time (ms)",
                    series=series,
                )
            )
    return results
