"""Figures 6 and 7: distribution of accesses over disks.

Figure 6 plots per-disk access counts for the Base organization on
Trace 1 (strong, irregular skew); Figure 7 the same workload through
RAID5 with a 4 KB striping unit (near-flat within each array).

These figures need no timing simulation — access counts follow from
the trace and the layout — so the full 130-disk Trace 1 is used.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, Series, T1_BASE_SCALE
from repro.layout import BaseLayout, Raid5Layout
from repro.trace import generate_trace, trace1_config

__all__ = ["run_fig6", "run_fig7", "access_histogram"]


def access_histogram(layout_factory, n: int, trace) -> np.ndarray:
    """Physical per-disk access counts of *trace* under a layout.

    The trace's logical disks are partitioned into arrays of ``n``; each
    array uses its own layout instance (identical parameters).
    """
    layout = layout_factory(n, trace.blocks_per_disk)
    per_array_blocks = n * trace.blocks_per_disk
    narrays = trace.ndisks // n
    counts = np.zeros(narrays * layout.ndisks, dtype=np.int64)
    lblocks = trace.lblocks
    arrays = lblocks // per_array_blocks
    local = lblocks - arrays * per_array_blocks
    disks, _ = layout.map_blocks(local)
    np.add.at(counts, arrays * layout.ndisks + disks, trace.nblocks.astype(np.int64))
    return counts


def _trace(scale: float):
    return generate_trace(trace1_config(scale=T1_BASE_SCALE * scale * 2))


def run_fig6(scale: float = 1.0) -> list[ExperimentResult]:
    trace = _trace(scale)
    counts = access_histogram(BaseLayout, 10, trace)
    return [
        ExperimentResult(
            exp_id="fig6",
            title="Per-disk access counts, Base organization, Trace 1",
            xlabel="disk",
            ylabel="accesses",
            series=[Series("accesses", list(range(len(counts))), counts.tolist())],
            notes=f"CV = {counts.std() / counts.mean():.3f}",
        )
    ]


def run_fig7(scale: float = 1.0) -> list[ExperimentResult]:
    trace = _trace(scale)
    counts = access_histogram(
        lambda n, bpd: Raid5Layout(n, bpd, striping_unit=1), 10, trace
    )
    base_counts = access_histogram(BaseLayout, 10, trace)
    return [
        ExperimentResult(
            exp_id="fig7",
            title="Per-disk access counts, RAID5 (4 KB striping unit), Trace 1",
            xlabel="disk",
            ylabel="accesses",
            series=[Series("accesses", list(range(len(counts))), counts.tolist())],
            notes=(
                f"CV = {counts.std() / counts.mean():.3f} "
                f"(Base organization: {base_counts.std() / base_counts.mean():.3f})"
            ),
        )
    ]
