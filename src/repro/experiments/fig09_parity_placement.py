"""Figure 9: Parity Striping parity placement (middle vs end cylinders).

§4.2.3 derives the rule: the parity area is hotter than a data area iff
``w > 1/N``; for Trace 1 (w ≈ 0.1) the cutoff is N = 10 — middle
placement should win for large N and lose for small N.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Series
from repro.experiments.points import Point, TraceSpec, run_points
from repro.layout import ParityPlacement
from repro.models import preferred_placement

__all__ = ["run", "points", "assemble", "SIZES"]

SIZES = [5, 10, 15, 20]
PLACEMENTS = (ParityPlacement.MIDDLE, ParityPlacement.END)


def points(scale: float = 1.0) -> list[Point]:
    return [
        Point.sim(
            "fig9",
            (which, placement.value, n),
            TraceSpec(which, scale, n=n),
            "parity_striping",
            n=n,
            parity_placement=placement,
        )
        for which in (1, 2)
        for placement in PLACEMENTS
        for n in SIZES
    ]


def assemble(scale: float, values: dict) -> list[ExperimentResult]:
    results = []
    for which, wfrac in ((1, 0.10), (2, 0.28)):
        series = [
            Series(
                placement.value,
                SIZES,
                [values[(which, placement.value, n)].mean_response_ms for n in SIZES],
            )
            for placement in PLACEMENTS
        ]
        rule = ", ".join(
            f"N={n}:{preferred_placement(n, wfrac).value}" for n in SIZES
        )
        results.append(
            ExperimentResult(
                exp_id="fig9",
                title=f"Parity placement, Parity Striping, Trace {which}",
                xlabel="array size N",
                ylabel="mean response time (ms)",
                series=series,
                notes=f"w>1/N rule predicts: {rule}",
            )
        )
    return results


def run(scale: float = 1.0) -> list[ExperimentResult]:
    return assemble(scale, run_points(points(scale)))
