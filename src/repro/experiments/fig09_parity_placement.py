"""Figure 9: Parity Striping parity placement (middle vs end cylinders).

§4.2.3 derives the rule: the parity area is hotter than a data area iff
``w > 1/N``; for Trace 1 (w ≈ 0.1) the cutoff is N = 10 — middle
placement should win for large N and lose for small N.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Series, get_trace, response_time
from repro.layout import ParityPlacement
from repro.models import preferred_placement

__all__ = ["run", "SIZES"]

SIZES = [5, 10, 15, 20]


def run(scale: float = 1.0) -> list[ExperimentResult]:
    results = []
    for which, wfrac in ((1, 0.10), (2, 0.28)):
        series = []
        for placement in (ParityPlacement.MIDDLE, ParityPlacement.END):
            ys = []
            for n in SIZES:
                trace = get_trace(which, scale, n=n)
                res = response_time(
                    "parity_striping", trace, n=n, parity_placement=placement
                )
                ys.append(res.mean_response_ms)
            series.append(Series(placement.value, SIZES, ys))
        rule = ", ".join(
            f"N={n}:{preferred_placement(n, wfrac).value}" for n in SIZES
        )
        results.append(
            ExperimentResult(
                exp_id="fig9",
                title=f"Parity placement, Parity Striping, Trace {which}",
                xlabel="array size N",
                ylabel="mean response time (ms)",
                series=series,
                notes=f"w>1/N rule predicts: {rule}",
            )
        )
    return results
