"""Content-keyed point-result store: memoize campaign *outputs*.

The trace cache (:mod:`repro.experiments.trace_cache`) memoizes the
expensive *inputs* of a campaign; this module does the same for the
outputs.  Every :class:`~repro.experiments.points.Point` has a stable
content hash over everything that determines its value — the trace
recipe, the evaluator kind, the organization and every keyword override
(including the solver backend) plus a format version — and the store
maps that hash to the evaluated
:class:`~repro.experiments.points.PointValue` as a small JSON file.

Because point evaluation is deterministic (seeded RNGs, content-keyed
traces), a stored value is *the* value: serving it instead of
recomputing cannot change campaign output.  That gives two behaviours
for free:

* ``--resume``: a campaign interrupted half-way re-runs only the
  missing points (workers persist each value as soon as it is
  computed);
* skip-unchanged re-runs: repeating a campaign with a warm store
  recomputes nothing, and any config change (scale, backend, override)
  changes the hash so stale values can never alias.

The store is consulted only when a caller opts in (the engine's
``resume`` flag); provenance — served from the store vs computed — is
recorded per point in the campaign manifest.

Environment variables
---------------------
``REPRO_RESULT_STORE``
    Store directory.  Defaults to ``~/.cache/repro/results``.  Set to
    ``off`` (or ``0``/``none``) to disable the store even when a
    campaign asks to resume.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import tempfile
from pathlib import Path
from typing import Optional

from repro.experiments.points import Point, PointValue

__all__ = [
    "load_value",
    "point_key",
    "store_dir",
    "store_value",
]

#: Bump when the PointValue layout or the evaluators' semantics change —
#: stored values from older formats must never be served.
_FORMAT_VERSION = 1

_VALUE_FIELDS = (
    "mean_response_ms",
    "read_hit_ratio",
    "write_hit_ratio",
    "physical_disks",
)


def store_dir() -> Optional[Path]:
    """The on-disk store directory, or ``None`` when disabled."""
    raw = os.environ.get("REPRO_RESULT_STORE")
    if raw is not None:
        if raw.strip().lower() in ("off", "0", "none", ""):
            return None
        return Path(raw).expanduser()
    return Path.home() / ".cache" / "repro" / "results"


def point_key(point: Point) -> str:
    """Stable content hash of everything that determines a point's value.

    The figure-placement identity (``exp_id``, ``key``) is deliberately
    excluded: two figures sweeping the same (trace, organization,
    overrides) cell share one stored value.
    """
    payload = {
        "__format__": _FORMAT_VERSION,
        "spec": {
            "which": point.spec.which,
            "scale": point.spec.scale,
            "speed": point.spec.speed,
            "n": point.spec.n,
        },
        "kind": point.kind,
        "org": point.org,
        "overrides": [[k, repr(v)] for k, v in point.overrides],
    }
    if point.spec.hda:
        # Added only when present so every legacy point's hash — and
        # therefore its already-stored value — survives unchanged.
        payload["spec"]["hda"] = [[k, repr(v)] for k, v in point.spec.hda]
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()[:32]


def _path_for(key: str) -> Optional[Path]:
    base = store_dir()
    return None if base is None else base / f"{key}.json"


def _encode(value: float) -> Optional[float]:
    return None if isinstance(value, float) and math.isnan(value) else value


def _decode(value) -> float:
    return math.nan if value is None else float(value)


def store_value(key: str, value: PointValue) -> None:
    """Persist *value* under *key* (atomic; never fails the run)."""
    path = _path_for(key)
    if path is None:
        return
    doc = {
        "format": _FORMAT_VERSION,
        "value": {
            "mean_response_ms": _encode(value.mean_response_ms),
            "read_hit_ratio": _encode(value.read_hit_ratio),
            "write_hit_ratio": _encode(value.write_hit_ratio),
            "physical_disks": value.physical_disks,
            "extras": [[k, _encode(v)] for k, v in value.extras],
        },
    }
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(suffix=".json.tmp", dir=path.parent)
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        # A read-only or full store directory must never fail the run.
        pass


def load_value(key: str) -> Optional[PointValue]:
    """The stored value for *key*, or ``None`` (missing/corrupt/stale)."""
    path = _path_for(key)
    if path is None or not path.exists():
        return None
    try:
        with open(path) as fh:
            doc = json.load(fh)
        if doc.get("format") != _FORMAT_VERSION:
            return None
        raw = doc["value"]
        return PointValue(
            mean_response_ms=_decode(raw["mean_response_ms"]),
            read_hit_ratio=_decode(raw["read_hit_ratio"]),
            write_hit_ratio=_decode(raw["write_hit_ratio"]),
            physical_disks=int(raw["physical_disks"]),
            extras=tuple((str(k), _decode(v)) for k, v in raw.get("extras", [])),
        )
    except (OSError, ValueError, KeyError, TypeError, json.JSONDecodeError):
        # Truncated/corrupt/foreign file: recompute rather than fail.
        return None
