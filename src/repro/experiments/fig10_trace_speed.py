"""Figure 10: response time vs trace speed (non-cached, N = 10).

§4.2.4: RAID5 degrades gracefully with load and does better than
mirrors at 2×; Parity Striping (and to a lesser degree Base) degrade
severely; at 0.5× with little queueing Base beats RAID5 on Trace 2.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Series, get_trace, response_time
from repro.experiments.fig05_array_size import ORGS

__all__ = ["run", "SPEEDS"]

SPEEDS = [0.5, 1.0, 2.0]


def run(scale: float = 1.0) -> list[ExperimentResult]:
    results = []
    for which in (1, 2):
        series = []
        for org, label in ORGS:
            ys = []
            for speed in SPEEDS:
                trace = get_trace(which, scale, speed=speed)
                ys.append(response_time(org, trace).mean_response_ms)
            series.append(Series(label, SPEEDS, ys))
        results.append(
            ExperimentResult(
                exp_id="fig10",
                title=f"Response time vs trace speed (uncached), Trace {which}",
                xlabel="trace speed",
                ylabel="mean response time (ms)",
                series=series,
            )
        )
    return results
