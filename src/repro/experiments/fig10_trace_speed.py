"""Figure 10: response time vs trace speed (non-cached, N = 10).

§4.2.4: RAID5 degrades gracefully with load and does better than
mirrors at 2×; Parity Striping (and to a lesser degree Base) degrade
severely; at 0.5× with little queueing Base beats RAID5 on Trace 2.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Series
from repro.experiments.fig05_array_size import ORGS
from repro.experiments.points import Point, TraceSpec, run_points

__all__ = ["run", "points", "assemble", "SPEEDS"]

SPEEDS = [0.5, 1.0, 2.0]


def points(scale: float = 1.0) -> list[Point]:
    return [
        Point.sim("fig10", (which, org, speed), TraceSpec(which, scale, speed=speed), org)
        for which in (1, 2)
        for org, _ in ORGS
        for speed in SPEEDS
    ]


def assemble(scale: float, values: dict) -> list[ExperimentResult]:
    results = []
    for which in (1, 2):
        series = [
            Series(
                label,
                SPEEDS,
                [values[(which, org, speed)].mean_response_ms for speed in SPEEDS],
            )
            for org, label in ORGS
        ]
        results.append(
            ExperimentResult(
                exp_id="fig10",
                title=f"Response time vs trace speed (uncached), Trace {which}",
                xlabel="trace speed",
                ylabel="mean response time (ms)",
                series=series,
            )
        )
    return results


def run(scale: float = 1.0) -> list[ExperimentResult]:
    return assemble(scale, run_points(points(scale)))
