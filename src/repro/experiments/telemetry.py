"""Campaign telemetry: per-point records, manifest and summary.

PRs 5–6 made campaigns parallel and fast; this module makes them
*observable*.  Every work unit the engine executes — a decomposed
:class:`~repro.experiments.points.Point` or a whole-experiment unit —
emits a structured :class:`PointRecord`: the content hash of its
configuration, the solver backend, wall time, kernel events simulated
(and events/s), the trace-cache traffic it caused, which OS process
evaluated it, and whether the value was computed or served from the
point-result store.

A :class:`CampaignRecorder` collects the records (in whatever order
workers finish) and writes two artifacts atomically:

* a JSONL **manifest** — one header line describing the campaign, then
  one line per record, sorted by ``(exp_id, key)`` so serial and
  ``--jobs N`` runs of the same campaign produce structurally identical
  manifests (only the per-record wall/pid fields differ);
* a **summary** JSON next to it — point-latency histograms (per
  backend, via the mergeable log-bucket
  :class:`~repro.obs.metrics.Histogram`), provenance and cache totals,
  and aggregate throughput.

Records never influence values: the instrumented evaluator wraps the
exact serial evaluation path, so a campaign with telemetry produces
byte-identical figures to one without.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.experiments import result_store, trace_cache
from repro.experiments.points import Point, PointValue, run_point

__all__ = [
    "MANIFEST_SCHEMA",
    "SUMMARY_SCHEMA",
    "CampaignRecorder",
    "PointRecord",
    "evaluate_point",
    "read_manifest",
    "stored_record",
    "whole_unit_record",
]

MANIFEST_SCHEMA = "repro-campaign/1"
SUMMARY_SCHEMA = "repro-campaign-summary/1"


@dataclass
class PointRecord:
    """Telemetry for one executed campaign unit."""

    exp_id: str
    key: List  # the point key, JSON-ified (tuple -> list)
    kind: str  # "sim" | "hitratio" | "whole"
    org: str
    backend: str
    config_hash: str
    provenance: str  # "computed" | "stored"
    wall_s: float
    events: int
    events_per_s: float
    worker_pid: int
    trace_cache: Dict[str, int] = field(default_factory=dict)
    mean_response_ms: float = math.nan

    def identity(self) -> tuple:
        """The fields that must match between serial and parallel runs
        of the same campaign (everything but timing and placement)."""
        return (
            self.exp_id,
            tuple(self.key),
            self.kind,
            self.org,
            self.backend,
            self.config_hash,
            self.events,
        )


def _backend_of(point: Point) -> str:
    if point.kind != "sim":
        return "fastsim"
    return dict(point.overrides).get("backend", "des")


def evaluate_point(
    point: Point, resume: bool = False
) -> Tuple[PointValue, PointRecord]:
    """Evaluate one point with telemetry (in whatever process).

    With ``resume`` the point-result store is consulted first and the
    computed value persisted after a miss, so an interrupted campaign
    picks up where it stopped.  The returned record carries the
    provenance either way.
    """
    key = result_store.point_key(point)
    before = trace_cache.stats()
    t0 = time.perf_counter()

    value = result_store.load_value(key) if resume else None
    provenance = "stored" if value is not None else "computed"
    if value is None:
        value = run_point(point)
        if resume:
            result_store.store_value(key, value)

    wall = time.perf_counter() - t0
    # Events *this run* simulated: a store hit did no kernel work.
    events = int(dict(value.extras).get("events", 0.0)) if provenance == "computed" else 0
    record = PointRecord(
        exp_id=point.exp_id,
        key=list(point.key),
        kind=point.kind,
        org=point.org,
        backend=_backend_of(point),
        config_hash=key,
        provenance=provenance,
        wall_s=wall,
        events=events,
        events_per_s=(events / wall) if (events and wall > 0) else 0.0,
        worker_pid=os.getpid(),
        trace_cache=trace_cache.stats().delta(before).as_dict(),
        mean_response_ms=value.mean_response_ms,
    )
    return value, record


def stored_record(
    point: Point, key: str, value: PointValue, wall_s: float = 0.0
) -> PointRecord:
    """Record for a point served from the result store without a worker
    round-trip (the engine's parent-side pre-check)."""
    return PointRecord(
        exp_id=point.exp_id,
        key=list(point.key),
        kind=point.kind,
        org=point.org,
        backend=_backend_of(point),
        config_hash=key,
        provenance="stored",
        wall_s=wall_s,
        events=0,
        events_per_s=0.0,
        worker_pid=os.getpid(),
        mean_response_ms=value.mean_response_ms,
    )


def whole_unit_record(exp_id: str, wall_s: float, backend: str = "des") -> PointRecord:
    """Record for an experiment that has no point decomposition."""
    return PointRecord(
        exp_id=exp_id,
        key=["whole"],
        kind="whole",
        org="",
        backend=backend,
        config_hash="",
        provenance="computed",
        wall_s=wall_s,
        events=0,
        events_per_s=0.0,
        worker_pid=os.getpid(),
    )


def _jsonable(value):
    """NaN-free JSON scalar (the manifest is strict JSON)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def _atomic_write_text(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(suffix=".tmp", dir=path.parent)
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class CampaignRecorder:
    """Collects :class:`PointRecord` s and writes manifest + summary.

    The recorder is order-insensitive: records arrive in completion
    order (nondeterministic under ``--jobs N``) and are sorted by
    ``(exp_id, key)`` at :meth:`finalize`, which is what makes parallel
    manifests comparable to serial ones.
    """

    def __init__(self, manifest_path: Union[str, Path]) -> None:
        self.manifest_path = Path(manifest_path)
        self.records: List[PointRecord] = []
        self._t0 = time.perf_counter()

    @property
    def summary_path(self) -> Path:
        name = self.manifest_path.name
        if name.endswith(".jsonl"):
            name = name[: -len(".jsonl")]
        return self.manifest_path.with_name(name + ".summary.json")

    def add(self, record: PointRecord) -> None:
        self.records.append(record)

    # -- output ---------------------------------------------------------------
    def _sorted_records(self) -> List[PointRecord]:
        return sorted(
            self.records, key=lambda r: (r.exp_id, [str(k) for k in r.key])
        )

    def _summary(self, meta: dict) -> dict:
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        cache_totals: Dict[str, int] = {}
        for rec in self.records:
            registry.counter("points", provenance=rec.provenance).inc()
            registry.histogram(
                "point_wall_s", lo=1e-5, hi=1e4, backend=rec.backend
            ).observe(rec.wall_s)
            for k, v in rec.trace_cache.items():
                cache_totals[k] = cache_totals.get(k, 0) + v

        latency = {}
        for name, labels, metric in registry:
            if name != "point_wall_s":
                continue
            backend = dict(labels).get("backend", "")
            latency[backend] = {
                "count": metric.count,
                "mean_s": _jsonable(round(metric.mean, 6)),
                "p50_s": _jsonable(round(metric.percentile(50), 6)),
                "p95_s": _jsonable(round(metric.percentile(95), 6)),
                "max_s": _jsonable(round(metric.max, 6))
                if metric.count
                else None,
                "buckets": [
                    [round(metric.lower_edge(i), 6), c]
                    for i, c in enumerate(metric.counts)
                    if c
                ],
            }

        events = sum(r.events for r in self.records)
        computed_wall = sum(
            r.wall_s for r in self.records if r.provenance == "computed"
        )
        return {
            "schema": SUMMARY_SCHEMA,
            "points": len(self.records),
            "computed": sum(1 for r in self.records if r.provenance == "computed"),
            "stored": sum(1 for r in self.records if r.provenance == "stored"),
            "wall_s": round(time.perf_counter() - self._t0, 4),
            "events": events,
            "events_per_s": round(events / computed_wall) if computed_wall else 0,
            "trace_cache": cache_totals,
            "point_latency": latency,
            **meta,
        }

    def finalize(self, **meta) -> dict:
        """Write the manifest and summary; returns the summary dict.

        Keyword arguments (experiment ids, scale, jobs, backend, ...)
        land in the manifest header and the summary verbatim.
        """
        header = {
            "record": "campaign",
            "schema": MANIFEST_SCHEMA,
            "points": len(self.records),
            **meta,
        }
        lines = [json.dumps(header, sort_keys=True)]
        for rec in self._sorted_records():
            doc = {"record": "point"}
            doc.update({k: _jsonable(v) for k, v in asdict(rec).items()})
            lines.append(json.dumps(doc, sort_keys=True))
        _atomic_write_text(self.manifest_path, "\n".join(lines) + "\n")

        summary = self._summary(meta)
        _atomic_write_text(
            self.summary_path, json.dumps(summary, indent=2, sort_keys=True) + "\n"
        )
        return summary


def read_manifest(path: Union[str, Path]) -> Tuple[dict, List[dict]]:
    """Parse a manifest into ``(header, point_records)``.

    Raises ``ValueError`` on structural problems (missing header, a
    non-JSON line, a record without the required fields).
    """
    header: Optional[dict] = None
    points: List[dict] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from None
            kind = doc.get("record")
            if kind == "campaign":
                if header is not None:
                    raise ValueError(f"{path}:{lineno}: duplicate campaign header")
                header = doc
            elif kind == "point":
                missing = [
                    k
                    for k in ("exp_id", "key", "provenance", "wall_s", "backend")
                    if k not in doc
                ]
                if missing:
                    raise ValueError(
                        f"{path}:{lineno}: point record missing {missing}"
                    )
                points.append(doc)
            else:
                raise ValueError(f"{path}:{lineno}: unknown record {kind!r}")
    if header is None:
        raise ValueError(f"{path}: no campaign header record")
    return header, points
