"""Figures 17-19: RAID4 parity caching vs RAID5 across parameters.

Figure 17 — array size at fixed total cache ((5, 8 MB), (10, 16 MB),
(20, 32 MB)): dedicating a disk to parity does not pay at N = 5 (fewer
arms for reads) but wins from N = 10 up, the gap widening with N.

Figure 18 — trace speed: RAID4-PC's advantage grows with load; the
buffered parity disk keeps up even at 2×.

Figure 19 — striping unit (cached): U-shaped curves; Trace 2's optimum
at a smaller unit than Trace 1's because its disks run busier.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Series, get_trace, response_time
from repro.experiments.fig08_striping_unit import UNITS

__all__ = ["run_fig17", "run_fig18", "run_fig19"]

PAIR = (("raid5", "RAID5"), ("raid4", "RAID4-PC"))
FIG17_POINTS = [(5, 8.0), (10, 16.0), (20, 32.0)]
SPEEDS = [0.5, 1.0, 2.0]


def run_fig17(scale: float = 1.0) -> list[ExperimentResult]:
    results = []
    xs = [n for n, _ in FIG17_POINTS]
    for which in (1, 2):
        series = []
        for org, label in PAIR:
            ys = []
            for n, cache_mb in FIG17_POINTS:
                trace = get_trace(which, scale, n=n)
                res = response_time(org, trace, n=n, cached=True, cache_mb=cache_mb)
                ys.append(res.mean_response_ms)
            series.append(Series(label, xs, ys))
        results.append(
            ExperimentResult(
                exp_id="fig17",
                title=f"RAID4-PC vs RAID5 across array sizes, Trace {which}",
                xlabel="array size N (cache = 1.6 MB x N)",
                ylabel="mean response time (ms)",
                series=series,
            )
        )
    return results


def run_fig18(scale: float = 1.0) -> list[ExperimentResult]:
    results = []
    for which in (1, 2):
        series = []
        for org, label in PAIR:
            ys = []
            for speed in SPEEDS:
                trace = get_trace(which, scale, speed=speed)
                ys.append(
                    response_time(org, trace, cached=True).mean_response_ms
                )
            series.append(Series(label, SPEEDS, ys))
        results.append(
            ExperimentResult(
                exp_id="fig18",
                title=f"RAID4-PC vs RAID5 across trace speeds, Trace {which}",
                xlabel="trace speed",
                ylabel="mean response time (ms)",
                series=series,
            )
        )
    return results


def run_fig19(scale: float = 1.0) -> list[ExperimentResult]:
    results = []
    for which in (1, 2):
        trace = get_trace(which, scale)
        series = []
        for org, label in PAIR:
            ys = [
                response_time(
                    org, trace, striping_unit=su, cached=True
                ).mean_response_ms
                for su in UNITS
            ]
            series.append(Series(label, UNITS, ys))
        results.append(
            ExperimentResult(
                exp_id="fig19",
                title=f"Striping unit (cached), RAID4-PC and RAID5, Trace {which}",
                xlabel="striping unit (blocks)",
                ylabel="mean response time (ms)",
                series=series,
            )
        )
    return results
