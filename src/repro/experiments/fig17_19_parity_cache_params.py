"""Figures 17-19: RAID4 parity caching vs RAID5 across parameters.

Figure 17 — array size at fixed total cache ((5, 8 MB), (10, 16 MB),
(20, 32 MB)): dedicating a disk to parity does not pay at N = 5 (fewer
arms for reads) but wins from N = 10 up, the gap widening with N.

Figure 18 — trace speed: RAID4-PC's advantage grows with load; the
buffered parity disk keeps up even at 2×.

Figure 19 — striping unit (cached): U-shaped curves; Trace 2's optimum
at a smaller unit than Trace 1's because its disks run busier.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Series
from repro.experiments.fig08_striping_unit import UNITS
from repro.experiments.points import Point, TraceSpec, run_points

__all__ = [
    "run_fig17",
    "run_fig18",
    "run_fig19",
    "points_fig17",
    "assemble_fig17",
    "points_fig18",
    "assemble_fig18",
    "points_fig19",
    "assemble_fig19",
]

PAIR = (("raid5", "RAID5"), ("raid4", "RAID4-PC"))
FIG17_POINTS = [(5, 8.0), (10, 16.0), (20, 32.0)]
SPEEDS = [0.5, 1.0, 2.0]


def points_fig17(scale: float = 1.0) -> list[Point]:
    return [
        Point.sim(
            "fig17",
            (which, org, n),
            TraceSpec(which, scale, n=n),
            org,
            n=n,
            cached=True,
            cache_mb=cache_mb,
        )
        for which in (1, 2)
        for org, _ in PAIR
        for n, cache_mb in FIG17_POINTS
    ]


def assemble_fig17(scale: float, values: dict) -> list[ExperimentResult]:
    results = []
    xs = [n for n, _ in FIG17_POINTS]
    for which in (1, 2):
        series = [
            Series(
                label, xs, [values[(which, org, n)].mean_response_ms for n, _ in FIG17_POINTS]
            )
            for org, label in PAIR
        ]
        results.append(
            ExperimentResult(
                exp_id="fig17",
                title=f"RAID4-PC vs RAID5 across array sizes, Trace {which}",
                xlabel="array size N (cache = 1.6 MB x N)",
                ylabel="mean response time (ms)",
                series=series,
            )
        )
    return results


def run_fig17(scale: float = 1.0) -> list[ExperimentResult]:
    return assemble_fig17(scale, run_points(points_fig17(scale)))


def points_fig18(scale: float = 1.0) -> list[Point]:
    return [
        Point.sim(
            "fig18", (which, org, speed), TraceSpec(which, scale, speed=speed), org, cached=True
        )
        for which in (1, 2)
        for org, _ in PAIR
        for speed in SPEEDS
    ]


def assemble_fig18(scale: float, values: dict) -> list[ExperimentResult]:
    results = []
    for which in (1, 2):
        series = [
            Series(
                label,
                SPEEDS,
                [values[(which, org, speed)].mean_response_ms for speed in SPEEDS],
            )
            for org, label in PAIR
        ]
        results.append(
            ExperimentResult(
                exp_id="fig18",
                title=f"RAID4-PC vs RAID5 across trace speeds, Trace {which}",
                xlabel="trace speed",
                ylabel="mean response time (ms)",
                series=series,
            )
        )
    return results


def run_fig18(scale: float = 1.0) -> list[ExperimentResult]:
    return assemble_fig18(scale, run_points(points_fig18(scale)))


def points_fig19(scale: float = 1.0) -> list[Point]:
    return [
        Point.sim(
            "fig19", (which, org, su), TraceSpec(which, scale), org,
            striping_unit=su, cached=True,
        )
        for which in (1, 2)
        for org, _ in PAIR
        for su in UNITS
    ]


def assemble_fig19(scale: float, values: dict) -> list[ExperimentResult]:
    results = []
    for which in (1, 2):
        series = [
            Series(label, UNITS, [values[(which, org, su)].mean_response_ms for su in UNITS])
            for org, label in PAIR
        ]
        results.append(
            ExperimentResult(
                exp_id="fig19",
                title=f"Striping unit (cached), RAID4-PC and RAID5, Trace {which}",
                xlabel="striping unit (blocks)",
                ylabel="mean response time (ms)",
                series=series,
            )
        )
    return results


def run_fig19(scale: float = 1.0) -> list[ExperimentResult]:
    return assemble_fig19(scale, run_points(points_fig19(scale)))
