"""Command-line entry point for the experiment drivers.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments fig5 [fig8 ...] [--scale 0.5] [--json out.json]
    python -m repro.experiments all --scale 0.25 --jobs 8

``--jobs N`` fans the campaign's independent simulation points out over
N worker processes; the merged output is byte-identical to a serial run
(``--jobs 1``, the default).  ``--jobs 0`` uses one worker per core.

``--manifest PATH`` records per-point telemetry (JSONL manifest plus a
``*.summary.json``); ``--resume`` serves unchanged points from the
content-keyed result store.  Inspect manifests with
``python -m repro.bench show PATH``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments.registry import EXPERIMENTS, get_experiment

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("ids", nargs="*", help="experiment ids (or 'all')")
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="multiply the default trace sizes (smaller = faster)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes for the campaign (1 = serial, 0 = all cores)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-point progress to stderr",
    )
    parser.add_argument(
        "--backend",
        choices=("des", "analytic"),
        default="des",
        help="simulation points: discrete-event (default) or the fast "
        "M/G/1 analytic solver (see README 'Fast analytic backend')",
    )
    parser.add_argument(
        "--manifest",
        metavar="PATH",
        help="write a per-point JSONL campaign manifest (plus a "
        "*.summary.json next to it; see README 'Campaign telemetry')",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="serve unchanged points from the content-keyed result store "
        "and persist fresh ones (REPRO_RESULT_STORE sets the directory)",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument("--json", metavar="PATH", help="also dump results as JSON")
    parser.add_argument(
        "--plot", action="store_true", help="render each figure as an ASCII chart"
    )
    args = parser.parse_args(argv)

    if args.list or not args.ids:
        for exp in EXPERIMENTS.values():
            print(f"{exp.exp_id:8s} {'$' * exp.cost:4s} {exp.title}")
        return 0

    ids = list(EXPERIMENTS) if args.ids == ["all"] else args.ids
    # Resolve aliases (e.g. fig05 -> fig5) and fail early on unknown ids.
    ids = [get_experiment(i).exp_id for i in ids]

    jobs = args.jobs
    campaign = None
    recorder = None
    if jobs != 1 or args.manifest or args.resume:
        from repro.experiments.parallel import (
            ProgressPrinter,
            default_jobs,
            run_campaign,
        )

        if jobs <= 0:
            jobs = default_jobs()
        if args.manifest:
            from repro.experiments.telemetry import CampaignRecorder

            recorder = CampaignRecorder(args.manifest)
        hook = ProgressPrinter() if args.progress else None
        t0 = time.time()
        campaign = run_campaign(
            ids,
            args.scale,
            jobs=jobs,
            progress=hook,
            backend=args.backend,
            recorder=recorder,
            resume=args.resume,
        )
        campaign_elapsed = time.time() - t0
    elif args.progress:
        print("note: --progress reports per experiment in serial mode", file=sys.stderr)

    collected = []
    for exp_id in ids:
        exp = get_experiment(exp_id)
        t0 = time.time()
        if campaign is not None:
            results = campaign[exp_id]
        elif args.backend != "des" and exp.points is not None:
            from repro.experiments.points import run_points, with_backend

            results = exp.assemble(
                args.scale, run_points(with_backend(exp.points(args.scale), args.backend))
            )
        else:
            if args.backend != "des":
                print(
                    f"note: {exp.exp_id} has no point decomposition; "
                    f"running on the DES backend",
                    file=sys.stderr,
                )
            results = exp.run(args.scale)
        elapsed = time.time() - t0
        for result in results:
            print(result.table_str())
            print()
            if args.plot:
                from repro.experiments.ascii_plot import render_chart

                print(render_chart(result))
                print()
            collected.append(result.to_dict())
        print(f"[{exp.exp_id} done in {elapsed:.1f} s]")
        print()

    if campaign is not None:
        print(
            f"[campaign: {len(ids)} experiment(s) over {jobs} worker(s) "
            f"in {campaign_elapsed:.1f} s]",
            file=sys.stderr,
        )
    if recorder is not None:
        from repro.experiments.trace_cache import stats

        summary = recorder.finalize(
            experiments=ids,
            scale=args.scale,
            jobs=jobs,
            backend=args.backend,
            resume=args.resume,
            elapsed_s=round(campaign_elapsed, 4),
            trace_cache_parent=stats().as_dict(),
        )
        print(
            f"[manifest: {recorder.manifest_path} — {summary['points']} point(s), "
            f"{summary['computed']} computed, {summary['stored']} stored; "
            f"summary: {recorder.summary_path}]",
            file=sys.stderr,
        )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(collected, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
