"""Heterogeneous Disk Array sweep: allocation policy x VA mix.

The paper evaluates one organization at a time over identical disks.
A Heterogeneous Disk Array (HDA) instead carves one disk pool into
Virtual Arrays with different RAID levels — the transaction-processing
sweet spot being hot, small-write data on a mirrored VA of fast disks
and the cold bulk on RAID5 over stock disks (Thomasian & Xu).

``ext-hda`` sweeps the placement policy (first-fit / bandwidth-balanced
/ capacity-balanced) against two mirror+RAID5 splits of the Trace-2
database over a 16-stock + 4-fast disk pool:

* the pool lists the stock disks first, so **first-fit** strands the
  fast disks idle and the hot mirror lands on stock spindles — the
  naive baseline;
* **bandwidth** places the hottest VA (accesses per spindle) on the
  fastest disks first, so the mirror claims the fast disks;
* **capacity** best-fits by demanded blocks; the half-capacity mirror
  VA fits the smaller fast disks, the full-capacity RAID5 VA cannot.

The workload concentrates 75% of accesses (and, via the write-skew
knob, an even larger share of the small writes) on the mirror VA's
address range, so per-VA p95 and the fast/stock utilization split show
what each policy buys.  The experiment rides the standard point
machinery: ``--jobs`` fan-out, result-store memoization and manifests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.experiments.common import ExperimentResult, Series
from repro.experiments.points import Point, TraceSpec, run_points
from repro.layout import POLICIES
from repro.sim import (
    DiskParams,
    DiskPoolEntry,
    Organization,
    SystemConfig,
    VAConfig,
)
from repro.trace.synthetic import DEFAULT_BLOCKS_PER_DISK

__all__ = [
    "run",
    "points",
    "assemble",
    "FAST",
    "SLOW",
    "POOL",
    "HOT_BPD",
    "MIXES",
]

#: Stock Table-1 disk (5400 rpm, 11.2 ms average seek, 226 800 blocks).
SLOW = DiskParams()

#: Faster, smaller disk class: higher rpm and quicker arm, but 24
#: surfaces instead of 30 — 181 440 blocks, too small to host a
#: full-capacity RAID5 member (which needs 221 760), roomy enough for
#: the half-capacity mirror VA.  That asymmetry is what makes the
#: three policies genuinely diverge.
FAST = DiskParams(rpm=7200.0, average_seek_ms=8.5, maximal_seek_ms=18.0,
                  settle_ms=1.5, surfaces=24)

#: Stock disks first: a declaration-order (first-fit) placement never
#: reaches the fast disks, which is exactly the baseline worth showing.
POOL = (DiskPoolEntry(SLOW, 16), DiskPoolEntry(FAST, 4))

#: Blocks per mirror-VA disk: half a stock disk, so two mirror spindles
#: carry one logical disk's worth of data and the VA fits on FAST.
HOT_BPD = DEFAULT_BLOCKS_PER_DISK // 2

#: Access share of (hot mirror, cold RAID5) VAs, and the extra
#: concentration of writes onto the hot VA (share ** skew).
_VA_WEIGHTS = (3.0, 1.0)
_WRITE_SKEW = 2.0


@dataclass(frozen=True)
class VAMix:
    """One way to split the database between the mirror and RAID5 VAs."""

    key: str
    mirror_n: int  # primaries; the VA occupies 2x this many disks
    raid5_n: int  # data disks; the VA occupies this + 1 disks

    @property
    def vas(self) -> Tuple[VAConfig, ...]:
        return (
            VAConfig(Organization.MIRROR, self.mirror_n, name="hot",
                     blocks_per_disk=HOT_BPD, heat=_VA_WEIGHTS[0]),
            VAConfig(Organization.RAID5, self.raid5_n, name="cold"),
        )

    @property
    def trace_disks(self) -> Tuple[int, int]:
        """Logical (trace) disks per VA at the stock block count."""
        return (
            self.mirror_n * HOT_BPD // DEFAULT_BLOCKS_PER_DISK,
            self.raid5_n,
        )

    @property
    def hda(self) -> Tuple[Tuple[str, Any], ...]:
        """Sorted generator overrides for :class:`TraceSpec`."""
        return (
            ("ndisks", sum(self.trace_disks)),
            ("va_disks", self.trace_disks),
            ("va_weights", _VA_WEIGHTS),
            ("va_write_skew", _WRITE_SKEW),
        )


#: The two splits swept: a minimal hot tier (one logical disk mirrored
#: over 2+2 spindles) and a deeper one (two logical disks over 4+4).
MIXES = [VAMix("m2+r8", 2, 8), VAMix("m4+r6", 4, 6)]


def _system_config(mix: VAMix, policy: str) -> SystemConfig:
    """The config a point builds — reused by assemble() for placements."""
    return SystemConfig(
        organization=Organization.BASE,
        blocks_per_disk=DEFAULT_BLOCKS_PER_DISK,
        vas=mix.vas,
        pool=POOL,
        allocation=policy,
    )


def points(scale: float = 1.0) -> List[Point]:
    return [
        Point.sim(
            "ext-hda",
            (mix.key, policy),
            TraceSpec(2, scale, hda=mix.hda),
            "base",  # label only; the VAs carry the organizations
            vas=mix.vas,
            pool=POOL,
            allocation=policy,
            keep_samples=True,
        )
        for mix in MIXES
        for policy in POLICIES
    ]


def _class_utils(mix: VAMix, policy: str, extras: Dict[str, float]) -> Dict[str, float]:
    """Mean utilization of each disk class under one placement.

    Each placed disk is attributed its VA's mean utilization (the
    per-point extras carry per-VA, not per-disk, numbers); unplaced
    pool slots idle at 0, which is the point — first-fit strands the
    fast disks.
    """
    sums = {"fast": 0.0, "slow": 0.0}
    counts = {"fast": 0, "slow": 0}
    for entry in POOL:
        counts["fast" if entry.disk == FAST else "slow"] += entry.count
    assigned = _system_config(mix, policy).resolve_disk_params()
    for vi, params in enumerate(assigned):
        util = extras.get(f"va{vi}_util", math.nan)
        for p in params:
            sums["fast" if p == FAST else "slow"] += util
    return {cls: sums[cls] / counts[cls] for cls in sums}


def assemble(scale: float, values: dict) -> List[ExperimentResult]:
    policies = list(POLICIES)

    def extra(mix: VAMix, policy: str, name: str) -> float:
        return dict(values[(mix.key, policy)].extras).get(name, math.nan)

    va_labels = ["hot mirror", "cold RAID5"]
    p95_series = [
        Series(f"{mix.key} {label}", policies,
               [extra(mix, p, f"va{vi}_p95_ms") for p in policies])
        for mix in MIXES
        for vi, label in enumerate(va_labels)
    ]
    mean_series = [
        Series(mix.key, policies,
               [values[(mix.key, p)].mean_response_ms for p in policies])
        for mix in MIXES
    ]
    util_series = []
    for mix in MIXES:
        per_policy = [
            _class_utils(mix, p, dict(values[(mix.key, p)].extras))
            for p in policies
        ]
        for cls in ("fast", "slow"):
            util_series.append(
                Series(f"{mix.key} {cls}", policies,
                       [100.0 * u[cls] for u in per_policy])
            )
    return [
        ExperimentResult(
            exp_id="ext-hda",
            title="Per-VA p95 vs allocation policy (Trace 2, mirror+RAID5 HDA)",
            xlabel="allocation policy",
            ylabel="p95 response time (ms)",
            series=p95_series,
            notes=(
                f"pool {POOL[0].count} stock + {POOL[1].count} fast disks; "
                f"hot VA draws {_VA_WEIGHTS[0] / sum(_VA_WEIGHTS):.0%} of "
                f"accesses, writes skewed harder (skew {_WRITE_SKEW})"
            ),
        ),
        ExperimentResult(
            exp_id="ext-hda",
            title="Overall mean response vs allocation policy",
            xlabel="allocation policy",
            ylabel="mean response time (ms)",
            series=mean_series,
        ),
        ExperimentResult(
            exp_id="ext-hda",
            title="Disk-class utilization vs allocation policy",
            xlabel="allocation policy",
            ylabel="mean utilization (%)",
            series=util_series,
            notes=(
                "per-disk figure approximated by its VA's mean "
                "utilization; unplaced pool slots count as idle"
            ),
        ),
    ]


def run(scale: float = 1.0) -> List[ExperimentResult]:
    return assemble(scale, run_points(points(scale)))
