"""Shared machinery for the experiment drivers.

Trace handling
--------------
Trace 2 is small enough to regenerate per run.  Trace 1 (130 data
disks, 3.36 M requests at full scale) is scaled down in two ways that
both preserve per-disk load: the request stream is shortened
(``scaled`` on the generator config) and only the first
:data:`T1_DISKS` logical disks are simulated — the paper itself
averages over 13 identical arrays, so simulating 6 of them at the same
per-disk rate measures the same system.  60 disks divide evenly into
arrays for every ``N`` the paper sweeps (5, 10, 15, 20).

For Trace 2 with ``N`` larger than its 10 data disks (the paper sweeps
N to 20 for both traces), the logical space is padded: the database
still occupies 10 disks' worth of addresses but is laid out over an
``N``-wide array, exactly what the equal-capacity rule implies when the
array is wider than the database.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace

import numpy as np

from repro.experiments.trace_cache import cached_generate, memory_cache_size
from repro.sim import Organization, RunResult, SystemConfig, run_trace
from repro.trace import (
    Trace,
    scale_speed,
    slice_arrays,
    trace1_config,
    trace2_config,
)

__all__ = [
    "ExperimentResult",
    "Series",
    "T1_DISKS",
    "T1_BASE_SCALE",
    "T2_BASE_SCALE",
    "get_trace",
    "make_config",
    "response_time",
]

#: Logical disks simulated for Trace-1 experiments (of the 130 traced).
T1_DISKS = 60
#: Default request-stream scale for Trace 1 (multiplied by --scale).
T1_BASE_SCALE = 0.04
#: Default request-stream scale for Trace 2.
T2_BASE_SCALE = 0.5


# Generation goes through the content-keyed cache in
# :mod:`repro.experiments.trace_cache` (disk-backed, shared across the
# parallel engine's workers).  The old ``lru_cache(maxsize=32)`` here
# could pin 32 full traces in RAM; this LRU of *final* experiment
# traces is bounded to a handful of entries and only dodges the cheap
# per-point slice/pad/speed transforms.
_final_traces: "OrderedDict[tuple, Trace]" = OrderedDict()


def _trace1_cached(scale: float) -> Trace:
    full = cached_generate(trace1_config(scale=scale))
    return slice_arrays(full, 0, T1_DISKS)


def _trace2_cached(scale: float, hda: tuple = ()) -> Trace:
    cfg = trace2_config(scale=scale)
    if hda:
        cfg = replace(cfg, **dict(hda))
    return cached_generate(cfg)


def _pad_disks(trace: Trace, ndisks: int) -> Trace:
    """Widen the logical space without adding traffic (N > database)."""
    if ndisks < trace.ndisks:
        raise ValueError("padding cannot shrink the trace")
    if ndisks == trace.ndisks:
        return trace
    return Trace(
        trace.records,
        ndisks,
        trace.blocks_per_disk,
        name=f"{trace.name}|pad{ndisks}",
    )


def get_trace(
    which: int,
    scale: float = 1.0,
    speed: float = 1.0,
    n: int = 10,
    hda: tuple = (),
) -> Trace:
    """Build the experiment trace.

    Parameters
    ----------
    which:
        1 or 2 (the paper's Trace 1 / Trace 2).
    scale:
        Multiplies the experiment-default request-stream scale.
    speed:
        §4.2.4 trace-speed factor.
    n:
        Array size the trace will be run against (used to pad Trace 2
        when ``n`` exceeds its 10 data disks).
    hda:
        Heterogeneous-array generator overrides: sorted keyword pairs
        applied to the Trace-2 synthetic config (``ndisks``,
        ``va_disks``, ``va_weights``, ``va_write_skew``, ...).  Only
        valid for Trace 2; the logical space is taken as-is (no
        ``n``-padding) because an HDA point sizes it explicitly.
    """
    hda = tuple(hda)
    key = (which, round(scale, 9), round(speed, 9), n) + ((hda,) if hda else ())
    cached = _final_traces.get(key)
    if cached is not None:
        _final_traces.move_to_end(key)
        return cached

    if which == 1:
        if hda:
            raise ValueError("hda overrides are only supported for trace 2")
        trace = _trace1_cached(round(T1_BASE_SCALE * scale, 6))
    elif which == 2:
        trace = _trace2_cached(round(T2_BASE_SCALE * scale, 6), hda)
        if not hda and n > trace.ndisks:
            trace = _pad_disks(trace, n)
    else:
        raise ValueError(f"trace must be 1 or 2, got {which}")
    if speed != 1.0:
        trace = scale_speed(trace, speed)

    cap = memory_cache_size()
    if cap > 0:
        _final_traces[key] = trace
        while len(_final_traces) > cap:
            _final_traces.popitem(last=False)
    return trace


def make_config(org: str, trace: Trace, **overrides) -> SystemConfig:
    """A SystemConfig matched to *trace* with Table 4 defaults."""
    overrides.setdefault("n", 10)
    return SystemConfig(
        organization=Organization.parse(org),
        blocks_per_disk=trace.blocks_per_disk,
        **overrides,
    )


def response_time(
    org: str,
    trace: Trace,
    backend: str = "des",
    failures=None,
    keep_samples: bool = False,
    **overrides,
) -> RunResult:
    """Run one (organization, trace) point on the chosen backend.

    ``failures`` (a :class:`~repro.failure.FailureSchedule`) and
    ``keep_samples`` route to :func:`~repro.sim.run_trace`; everything
    else overrides :class:`~repro.sim.SystemConfig` fields.  Failure
    drivers set ``keep_samples=True`` because their headline metric is
    the p95 during the scenario, which needs the sample store.
    """
    return run_trace(
        make_config(org, trace, **overrides),
        trace,
        keep_samples=keep_samples,
        backend=backend,
        failures=failures,
    )


# ---------------------------------------------------------------------------


@dataclass
class Series:
    """One curve of a figure: a label and (x, y) points."""

    label: str
    xs: list
    ys: list[float]

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError("xs and ys must have equal length")


@dataclass
class ExperimentResult:
    """The reproduced data behind one table or figure."""

    exp_id: str
    title: str
    xlabel: str
    ylabel: str
    series: list[Series] = field(default_factory=list)
    notes: str = ""

    def table_str(self) -> str:
        """Render the series as the rows/columns the paper plots."""
        header = [self.xlabel] + [s.label for s in self.series]
        xs = self.series[0].xs if self.series else []
        rows = []
        for i, x in enumerate(xs):
            row = [str(x)]
            for s in self.series:
                try:
                    row.append(f"{s.ys[i]:.2f}")
                except (IndexError, TypeError):
                    row.append("-")
            rows.append(row)
        widths = [
            max(len(header[c]), *(len(r[c]) for r in rows)) if rows else len(header[c])
            for c in range(len(header))
        ]
        lines = [
            f"{self.exp_id}: {self.title}",
            f"({self.ylabel})",
            "  ".join(h.ljust(w) for h, w in zip(header, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for r in rows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def series_by_label(self, label: str) -> Series:
        """Find a series by its label (exact match)."""
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(label)

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "id": self.exp_id,
            "title": self.title,
            "xlabel": self.xlabel,
            "ylabel": self.ylabel,
            "series": [
                {"label": s.label, "xs": list(s.xs), "ys": list(s.ys)}
                for s in self.series
            ],
            "notes": self.notes,
        }
