"""Failure-domain scenario sweeps (beyond the paper's figures).

Two campaigns over the knobs of :mod:`repro.failure`:

* ``ext-rebuild-rate`` — the §4.2.1 tradeoff the paper names but never
  plots: a disk fails at t=0, a spare arrives immediately, and the
  rebuild throttle (``rebuild_delay_ms`` between chunks) sweeps from
  full-speed to gentle.  Fast rebuilds restore redundancy sooner but
  steal arm time from foreground requests (worse p95); slow rebuilds
  are polite but stretch the window in which a second failure loses
  data.  One curve pair (foreground p95, rebuild completion time) per
  organization — mirrors reconstruct from one partner, RAID5 from N
  surviving disks, Parity Striping from its parity-group members, so
  the tradeoff's shape differs by organization.
* ``ext-scrub`` — scrub-interval vs latent-error exposure: latent
  sector errors injected at t=0, a periodic scrub detects and repairs
  them, and the exposure window (injection → repair) grows with the
  scrub period while the scrub's foreground interference shrinks.

Both decompose into points, so they parallelize (``--jobs``), memoize
(result store) and telemeter (manifests) like every other registered
experiment.  The failure schedule rides inside the point's overrides —
its repr is part of the point's content hash, which is what keeps
degraded results from ever aliasing healthy memoized entries.
"""

from __future__ import annotations

import math

from repro.experiments.common import ExperimentResult, Series
from repro.experiments.points import Point, TraceSpec, run_points
from repro.failure import FailureSchedule, LatentError, ScrubPolicy

__all__ = [
    "run_rebuild_rate",
    "points_rebuild_rate",
    "assemble_rebuild_rate",
    "run_scrub",
    "points_scrub",
    "assemble_scrub",
    "REBUILD_DELAYS_MS",
    "SCRUB_PERIODS_MS",
]

#: Organizations with redundancy to rebuild from (label -> config org).
ORGS = [
    ("mirror", "Mirrored"),
    ("raid5", "RAID5"),
    ("parity_striping", "ParStripe"),
]

#: Rebuild throttle sweep: pause between rebuild chunks, ms.
REBUILD_DELAYS_MS = [0.0, 4.0, 16.0, 64.0]

#: Blocks swept by the rebuild (the active slice; full disks would
#: dwarf the foreground trace at every scale).
_REBUILD_BLOCKS = 4000


def _rebuild_schedule(delay_ms: float) -> FailureSchedule:
    return FailureSchedule.single_failure(
        at_ms=0.0,
        disk=0,
        spare_after_ms=0.0,
        rebuild_chunk_blocks=6,
        rebuild_delay_ms=delay_ms,
        rebuild_blocks=_REBUILD_BLOCKS,
    )


def points_rebuild_rate(scale: float = 1.0) -> list[Point]:
    return [
        Point.sim(
            "ext-rebuild-rate",
            (org, delay),
            TraceSpec(2, scale),
            org,
            failures=_rebuild_schedule(delay),
            keep_samples=True,
        )
        for org, _ in ORGS
        for delay in REBUILD_DELAYS_MS
    ]


def assemble_rebuild_rate(scale: float, values: dict) -> list[ExperimentResult]:
    def extra(org, delay, name):
        return dict(values[(org, delay)].extras).get(name, math.nan)

    p95_series = [
        Series(label, REBUILD_DELAYS_MS,
               [extra(org, d, "p95_ms") for d in REBUILD_DELAYS_MS])
        for org, label in ORGS
    ]
    rebuild_series = [
        Series(label, REBUILD_DELAYS_MS,
               [extra(org, d, "rebuild_ms") / 1000.0 for d in REBUILD_DELAYS_MS])
        for org, label in ORGS
    ]
    return [
        ExperimentResult(
            exp_id="ext-rebuild-rate",
            title="Foreground p95 during rebuild vs rebuild throttle (Trace 2)",
            xlabel="rebuild chunk delay (ms)",
            ylabel="p95 response time (ms)",
            series=p95_series,
            notes=(
                f"disk 0 fails at t=0, spare immediate, rebuild sweeps "
                f"{_REBUILD_BLOCKS} blocks in 6-block chunks"
            ),
        ),
        ExperimentResult(
            exp_id="ext-rebuild-rate",
            title="Rebuild completion time vs rebuild throttle (Trace 2)",
            xlabel="rebuild chunk delay (ms)",
            ylabel="rebuild time (s)",
            series=rebuild_series,
        ),
    ]


def run_rebuild_rate(scale: float = 1.0) -> list[ExperimentResult]:
    return assemble_rebuild_rate(scale, run_points(points_rebuild_rate(scale)))


# ---------------------------------------------------------------------------

#: Scrub-interval sweep, ms between passes (first pass starts one
#: period in, so the exposure window scales with the period).
SCRUB_PERIODS_MS = [250.0, 1000.0, 4000.0]

#: Latent sector errors injected at t=0.
_N_LATENT = 12

#: Scrub pass span: covers every injected pblock, not the whole disk.
_SCRUB_SPAN = 1536

SCRUB_ORGS = [("raid5", "RAID5"), ("mirror", "Mirrored")]


def _scrub_schedule(period_ms: float) -> FailureSchedule:
    events = tuple(
        LatentError(at_ms=0.0, disk=(i % 7) + 1, pblock=(i * 113) % 1500)
        for i in range(_N_LATENT)
    )
    return FailureSchedule(
        events=events,
        scrub=ScrubPolicy(
            period_ms=period_ms,
            chunk_blocks=48,
            start_ms=period_ms,
            max_blocks=_SCRUB_SPAN,
            min_passes=1,
        ),
    )


def points_scrub(scale: float = 1.0) -> list[Point]:
    return [
        Point.sim(
            "ext-scrub",
            (org, period),
            TraceSpec(2, scale),
            org,
            failures=_scrub_schedule(period),
            keep_samples=True,
        )
        for org, _ in SCRUB_ORGS
        for period in SCRUB_PERIODS_MS
    ]


def assemble_scrub(scale: float, values: dict) -> list[ExperimentResult]:
    def extra(org, period, name):
        return dict(values[(org, period)].extras).get(name, math.nan)

    exposure_series = [
        Series(label, SCRUB_PERIODS_MS,
               [extra(org, p, "exposure_mean_ms") for p in SCRUB_PERIODS_MS])
        for org, label in SCRUB_ORGS
    ]
    repaired_series = []
    for org, label in SCRUB_ORGS:
        ys = []
        for p in SCRUB_PERIODS_MS:
            injected = extra(org, p, "latent_injected")
            repaired = extra(org, p, "latent_repaired")
            ys.append(100.0 * repaired / injected if injected else math.nan)
        repaired_series.append(Series(label, SCRUB_PERIODS_MS, ys))
    return [
        ExperimentResult(
            exp_id="ext-scrub",
            title="Latent-error exposure vs scrub interval (Trace 2)",
            xlabel="scrub period (ms)",
            ylabel="mean exposure (ms)",
            series=exposure_series,
            notes=(
                f"{_N_LATENT} latent errors injected at t=0; first scrub "
                f"pass starts one period in; repair-on-access also counts"
            ),
        ),
        ExperimentResult(
            exp_id="ext-scrub",
            title="Latent errors repaired vs scrub interval (Trace 2)",
            xlabel="scrub period (ms)",
            ylabel="repaired (%)",
            series=repaired_series,
        ),
    ]


def run_scrub(scale: float = 1.0) -> list[ExperimentResult]:
    return assemble_scrub(scale, run_points(points_scrub(scale)))
