"""Parallel campaign engine: fan experiment points out over processes.

The registry decomposes most experiments into independent
:class:`~repro.experiments.points.Point` work units (config + trace
spec, nothing heavyweight).  This module schedules those units over a
``ProcessPoolExecutor`` and merges the values deterministically:

* results are keyed by each point's ``key`` and assembled by the
  driver's ``assemble`` hook, so completion order cannot perturb the
  output — ``--jobs N`` is byte-identical to a serial run;
* experiments without a decomposition (pure-computation tables,
  the custom rebuild scenario) run as single whole-experiment units in
  the same pool;
* traces are materialized per worker through the shared on-disk trace
  cache, so N workers generate each workload once per machine, not once
  per point;
* a crashed worker (or a point raising) cancels the remaining work and
  surfaces a :class:`CampaignError` naming the failed unit instead of
  hanging the pool.

Serial execution (``jobs=1``) bypasses multiprocessing entirely and is
exactly the historical code path.
"""

from __future__ import annotations

import os
import sys
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.common import ExperimentResult
from repro.experiments.points import (
    Point,
    PointValue,
    run_point,
    run_points,
    with_backend,
)
from repro.experiments.registry import get_experiment

__all__ = ["CampaignError", "default_jobs", "run_campaign", "run_points_parallel"]

#: Signature of a progress callback: ``progress(done, total, label)``.
ProgressHook = Callable[[int, int, str], None]


class CampaignError(RuntimeError):
    """A campaign work unit failed (the message names the unit)."""


def default_jobs() -> int:
    """Worker count for ``--jobs 0``: one per available core."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def stderr_progress(done: int, total: int, label: str) -> None:
    """Default progress reporter: one line per completed unit."""
    print(f"[{done}/{total}] {label}", file=sys.stderr, flush=True)


# -- worker-side entry points (module-level: picklable under spawn) ----------


def _eval_point(point: Point) -> PointValue:
    return run_point(point)


def _eval_whole(exp_id: str, scale: float) -> List[ExperimentResult]:
    return get_experiment(exp_id).run(scale)


# -- engine ------------------------------------------------------------------


def run_points_parallel(
    points: Sequence[Point],
    jobs: int,
    progress: Optional[ProgressHook] = None,
) -> Dict[tuple, PointValue]:
    """Evaluate *points* over *jobs* workers into a ``key -> value`` map.

    With ``jobs <= 1`` this is :func:`~repro.experiments.points.
    run_points`.  Keys must be unique across the sequence.
    """
    if jobs <= 1:
        total = len(points)
        values: Dict[tuple, PointValue] = {}
        for i, point in enumerate(points):
            values[point.key] = run_point(point)
            if progress is not None:
                progress(i + 1, total, point.label())
        return values

    seen = set()
    for point in points:
        if point.key in seen:
            raise ValueError(f"duplicate point key {point.key!r} in {point.exp_id}")
        seen.add(point.key)

    values = {}
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {pool.submit(_eval_point, p): p for p in points}
        _drain(futures, progress, lambda fut, point: values.__setitem__(point.key, fut.result()))
    return values


def _drain(futures, progress, on_done) -> None:
    """Collect *futures*, failing fast with the offending unit named."""
    done_count = 0
    total = len(futures)
    pending = set(futures)
    while pending:
        finished, pending = wait(pending, return_when=FIRST_EXCEPTION)
        for fut in finished:
            unit = futures[fut]
            label = unit.label() if isinstance(unit, Point) else str(unit)
            try:
                on_done(fut, unit)
            except Exception as exc:
                for other in pending:
                    other.cancel()
                raise CampaignError(
                    f"campaign unit '{label}' failed: {type(exc).__name__}: {exc}"
                ) from exc
            done_count += 1
            if progress is not None:
                progress(done_count, total, label)


def run_campaign(
    exp_ids: Sequence[str],
    scale: float = 1.0,
    jobs: int = 1,
    progress: Optional[ProgressHook] = None,
    backend: str = "des",
) -> Dict[str, List[ExperimentResult]]:
    """Run the experiments and return ``exp_id -> results``, in order.

    Parameters
    ----------
    exp_ids:
        Experiment ids, already resolved against the registry.
    jobs:
        ``<= 1`` runs everything serially in-process (the historical
        path); ``> 1`` fans out over that many worker processes.
    progress:
        Optional ``hook(done, total, label)`` called per finished unit.
    backend:
        Evaluate simulation points on ``"des"`` (default) or the
        ``"analytic"`` fast solver.  Experiments without a point
        decomposition always run on the DES.
    """
    experiments = [get_experiment(e) for e in exp_ids]

    if jobs <= 1:
        out: Dict[str, List[ExperimentResult]] = {}
        # Count units only for progress reporting; execution is the
        # plain serial driver path.
        done = 0
        total = len(experiments)
        for exp in experiments:
            if backend != "des" and exp.points is not None:
                pts = with_backend(exp.points(scale), backend)
                out[exp.exp_id] = exp.assemble(scale, run_points(pts))
            else:
                out[exp.exp_id] = exp.run(scale)
            done += 1
            if progress is not None:
                progress(done, total, exp.exp_id)
        return out

    point_lists: Dict[str, List[Point]] = {}
    tasks: List[tuple] = []  # ("point", Point) | ("whole", exp_id)
    for exp in experiments:
        if exp.points is not None and exp.assemble is not None:
            pts = with_backend(exp.points(scale), backend)
            point_lists[exp.exp_id] = pts
            tasks.extend(("point", p) for p in pts)
        else:
            tasks.append(("whole", exp.exp_id))

    point_values: Dict[str, Dict[tuple, PointValue]] = {e: {} for e in point_lists}
    whole_results: Dict[str, List[ExperimentResult]] = {}

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {}
        for kind, payload in tasks:
            if kind == "point":
                futures[pool.submit(_eval_point, payload)] = payload
            else:
                futures[pool.submit(_eval_whole, payload, scale)] = payload

        def collect(fut, unit):
            if isinstance(unit, Point):
                point_values[unit.exp_id][unit.key] = fut.result()
            else:
                whole_results[unit] = fut.result()

        _drain(futures, progress, collect)

    out = {}
    for exp in experiments:
        if exp.exp_id in point_lists:
            out[exp.exp_id] = exp.assemble(scale, point_values[exp.exp_id])
        else:
            out[exp.exp_id] = whole_results[exp.exp_id]
    return out
