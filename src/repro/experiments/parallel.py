"""Parallel campaign engine: fan experiment points out over processes.

The registry decomposes most experiments into independent
:class:`~repro.experiments.points.Point` work units (config + trace
spec, nothing heavyweight).  This module schedules those units over a
``ProcessPoolExecutor`` and merges the values deterministically:

* results are keyed by each point's ``key`` and assembled by the
  driver's ``assemble`` hook, so completion order cannot perturb the
  output — ``--jobs N`` is byte-identical to a serial run;
* experiments without a decomposition (pure-computation tables,
  the custom rebuild scenario) run as single whole-experiment units in
  the same pool;
* traces are materialized per worker through the shared on-disk trace
  cache, so N workers generate each workload once per machine, not once
  per point;
* a crashed worker (or a point raising) cancels the remaining work and
  surfaces a :class:`CampaignError` naming the failed unit instead of
  hanging the pool.

Serial execution (``jobs=1``) bypasses multiprocessing entirely and is
exactly the historical code path.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import ExperimentResult
from repro.experiments.points import (
    Point,
    PointValue,
    run_point,
    run_points,
    with_backend,
)
from repro.experiments.registry import get_experiment
from repro.experiments.telemetry import (
    CampaignRecorder,
    PointRecord,
    evaluate_point,
    whole_unit_record,
)

__all__ = [
    "CampaignError",
    "ProgressPrinter",
    "default_jobs",
    "run_campaign",
    "run_points_parallel",
    "stderr_progress",
]

#: Signature of a progress callback: ``progress(done, total, label)``.
ProgressHook = Callable[[int, int, str], None]


class CampaignError(RuntimeError):
    """A campaign work unit failed (the message names the unit)."""


def default_jobs() -> int:
    """Worker count for ``--jobs 0``: one per available core."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _format_eta(seconds: float) -> str:
    seconds = max(0, int(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


class ProgressPrinter:
    """Throttled stderr progress with elapsed time and ETA.

    On a TTY the line rewrites in place (``\\r``); on CI logs and other
    non-TTY streams it falls back to plain lines, throttled to one per
    *interval* seconds so a thousand-point campaign does not emit a
    thousand lines.  The first and last units always print, and a new
    campaign (``done`` resetting) restarts the clock.
    """

    def __init__(self, interval_s: float = 1.0, stream=None) -> None:
        self.interval_s = interval_s
        self.stream = stream if stream is not None else sys.stderr
        self._t0: Optional[float] = None
        self._last_print = -float("inf")
        self._last_done = 0
        self._line_open = False

    def _is_tty(self) -> bool:
        isatty = getattr(self.stream, "isatty", None)
        return bool(isatty()) if isatty else False

    def __call__(self, done: int, total: int, label: str) -> None:
        now = time.perf_counter()
        if self._t0 is None or done <= self._last_done:
            self._t0 = now
            self._last_print = -float("inf")
        self._last_done = done

        final = done >= total
        if not final and done > 1 and now - self._last_print < self.interval_s:
            return
        self._last_print = now

        elapsed = now - self._t0
        if done and total > done and elapsed > 0:
            eta = f" eta {_format_eta(elapsed / done * (total - done))}"
        else:
            eta = ""
        text = f"[{done}/{total}] {elapsed:.1f}s{eta} {label}"
        if self._is_tty():
            pad = ""
            if self._line_open:
                pad = " " * max(0, getattr(self, "_prev_len", 0) - len(text))
            end = "\n" if final else ""
            print(f"\r{text}{pad}", end=end, file=self.stream, flush=True)
            self._prev_len = len(text)
            self._line_open = not final
        else:
            print(text, file=self.stream, flush=True)


#: Shared default reporter (the CLI's ``--progress``); kept as a
#: module-level callable for backwards compatibility with the old
#: line-per-unit function of the same name.
stderr_progress: ProgressHook = ProgressPrinter()


# -- worker-side entry points (module-level: picklable under spawn) ----------


def _eval_point(point: Point) -> PointValue:
    return run_point(point)


def _eval_point_recorded(point: Point, resume: bool) -> Tuple[PointValue, PointRecord]:
    return evaluate_point(point, resume=resume)


def _eval_whole_timed(
    exp_id: str, scale: float
) -> Tuple[List[ExperimentResult], PointRecord]:
    t0 = time.perf_counter()
    results = get_experiment(exp_id).run(scale)
    return results, whole_unit_record(exp_id, time.perf_counter() - t0)


# -- engine ------------------------------------------------------------------


def run_points_parallel(
    points: Sequence[Point],
    jobs: int,
    progress: Optional[ProgressHook] = None,
    recorder: Optional[CampaignRecorder] = None,
    resume: bool = False,
) -> Dict[tuple, PointValue]:
    """Evaluate *points* over *jobs* workers into a ``key -> value`` map.

    With ``jobs <= 1`` this is :func:`~repro.experiments.points.
    run_points`.  Keys must be unique across the sequence.  A
    *recorder* collects one telemetry record per point; *resume* serves
    values from the point-result store where possible (checked in the
    parent, so stored points never reach a worker) and persists each
    computed value worker-side as soon as it exists.
    """
    if jobs <= 1:
        total = len(points)
        values: Dict[tuple, PointValue] = {}
        for i, point in enumerate(points):
            if recorder is not None or resume:
                value, record = evaluate_point(point, resume=resume)
                if recorder is not None:
                    recorder.add(record)
                values[point.key] = value
            else:
                values[point.key] = run_point(point)
            if progress is not None:
                progress(i + 1, total, point.label())
        return values

    seen = set()
    for point in points:
        if point.key in seen:
            raise ValueError(f"duplicate point key {point.key!r} in {point.exp_id}")
        seen.add(point.key)

    values = {}
    total = len(points)
    done = 0
    pending_points: List[Point] = []
    if resume:
        from repro.experiments import result_store
        from repro.experiments.telemetry import stored_record

        for point in points:
            t0 = time.perf_counter()
            key = result_store.point_key(point)
            value = result_store.load_value(key)
            if value is None:
                pending_points.append(point)
                continue
            values[point.key] = value
            if recorder is not None:
                recorder.add(
                    stored_record(point, key, value, time.perf_counter() - t0)
                )
            done += 1
            if progress is not None:
                progress(done, total, point.label())
    else:
        pending_points = list(points)

    recorded = recorder is not None or resume
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {}
        for p in pending_points:
            if recorded:
                futures[pool.submit(_eval_point_recorded, p, resume)] = p
            else:
                futures[pool.submit(_eval_point, p)] = p

        def collect(fut, point):
            if recorded:
                value, record = fut.result()
                if recorder is not None:
                    recorder.add(record)
            else:
                value = fut.result()
            values[point.key] = value

        _drain(futures, progress, collect, done_start=done, total=total)
    return values


def _drain(futures, progress, on_done, done_start: int = 0, total: Optional[int] = None) -> None:
    """Collect *futures*, failing fast with the offending unit named."""
    done_count = done_start
    if total is None:
        total = done_start + len(futures)
    pending = set(futures)
    while pending:
        finished, pending = wait(pending, return_when=FIRST_EXCEPTION)
        for fut in finished:
            unit = futures[fut]
            label = unit.label() if isinstance(unit, Point) else str(unit)
            try:
                on_done(fut, unit)
            except Exception as exc:
                for other in pending:
                    other.cancel()
                raise CampaignError(
                    f"campaign unit '{label}' failed: {type(exc).__name__}: {exc}"
                ) from exc
            done_count += 1
            if progress is not None:
                progress(done_count, total, label)


def run_campaign(
    exp_ids: Sequence[str],
    scale: float = 1.0,
    jobs: int = 1,
    progress: Optional[ProgressHook] = None,
    backend: str = "des",
    recorder: Optional[CampaignRecorder] = None,
    resume: bool = False,
) -> Dict[str, List[ExperimentResult]]:
    """Run the experiments and return ``exp_id -> results``, in order.

    Parameters
    ----------
    exp_ids:
        Experiment ids, already resolved against the registry.
    jobs:
        ``<= 1`` runs everything serially in-process (the historical
        path); ``> 1`` fans out over that many worker processes.
    progress:
        Optional ``hook(done, total, label)`` called per finished unit.
    backend:
        Evaluate simulation points on ``"des"`` (default) or the
        ``"analytic"`` fast solver.  Experiments without a point
        decomposition always run on the DES.
    recorder:
        Optional :class:`~repro.experiments.telemetry.CampaignRecorder`
        collecting one telemetry record per executed unit (the caller
        finalizes it into the manifest).  With a recorder, serial runs
        route decomposed experiments through the same points path the
        parallel engine uses — output is identical by the
        ``run == assemble(run_points(points))`` contract.
    resume:
        Serve previously computed points from the content-keyed result
        store and persist fresh values into it, so interrupted or
        repeated campaigns only compute what is missing.
    """
    experiments = [get_experiment(e) for e in exp_ids]
    instrumented = recorder is not None or resume

    if jobs <= 1:
        out: Dict[str, List[ExperimentResult]] = {}
        # Count units only for progress reporting; execution is the
        # plain serial driver path (or its instrumented twin).
        done = 0
        total = len(experiments)
        for exp in experiments:
            if exp.points is not None and (backend != "des" or instrumented):
                pts = with_backend(exp.points(scale), backend)
                values = run_points_parallel(
                    pts, jobs=1, recorder=recorder, resume=resume
                )
                out[exp.exp_id] = exp.assemble(scale, values)
            else:
                t0 = time.perf_counter()
                out[exp.exp_id] = exp.run(scale)
                if recorder is not None:
                    recorder.add(
                        whole_unit_record(exp.exp_id, time.perf_counter() - t0)
                    )
            done += 1
            if progress is not None:
                progress(done, total, exp.exp_id)
        return out

    point_lists: Dict[str, List[Point]] = {}
    whole_ids: List[str] = []
    all_points: List[Point] = []
    for exp in experiments:
        if exp.points is not None and exp.assemble is not None:
            pts = with_backend(exp.points(scale), backend)
            point_lists[exp.exp_id] = pts
            all_points.extend(pts)
        else:
            whole_ids.append(exp.exp_id)

    point_values: Dict[str, Dict[tuple, PointValue]] = {e: {} for e in point_lists}
    whole_results: Dict[str, List[ExperimentResult]] = {}
    total = len(all_points) + len(whole_ids)
    done = 0

    # Parent-side store pre-check: stored points never reach a worker.
    pending_points = all_points
    if resume:
        from repro.experiments import result_store
        from repro.experiments.telemetry import stored_record

        pending_points = []
        for point in all_points:
            t0 = time.perf_counter()
            key = result_store.point_key(point)
            value = result_store.load_value(key)
            if value is None:
                pending_points.append(point)
                continue
            point_values[point.exp_id][point.key] = value
            if recorder is not None:
                recorder.add(
                    stored_record(point, key, value, time.perf_counter() - t0)
                )
            done += 1
            if progress is not None:
                progress(done, total, point.label())

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {}
        for p in pending_points:
            if instrumented:
                futures[pool.submit(_eval_point_recorded, p, resume)] = p
            else:
                futures[pool.submit(_eval_point, p)] = p
        for exp_id in whole_ids:
            futures[pool.submit(_eval_whole_timed, exp_id, scale)] = exp_id

        def collect(fut, unit):
            if isinstance(unit, Point):
                if instrumented:
                    value, record = fut.result()
                    if recorder is not None:
                        recorder.add(record)
                else:
                    value = fut.result()
                point_values[unit.exp_id][unit.key] = value
            else:
                results, record = fut.result()
                whole_results[unit] = results
                if recorder is not None:
                    recorder.add(record)

        _drain(futures, progress, collect, done_start=done, total=total)

    out = {}
    for exp in experiments:
        if exp.exp_id in point_lists:
            out[exp.exp_id] = exp.assemble(scale, point_values[exp.exp_id])
        else:
            out[exp.exp_id] = whole_results[exp.exp_id]
    return out
