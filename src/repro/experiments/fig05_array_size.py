"""Figure 5: response time vs array size, non-cached organizations.

One panel per trace; curves for Base, Mirror, RAID5, Parity Striping
over N ∈ {5, 10, 15, 20}.

Expected shape (§4.2): Mirror below Base everywhere; Trace 1: RAID5
noticeably above Base (write penalty) and Parity Striping worst at
small N; Trace 2 (high skew): RAID5 below Base, Parity Striping above.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Series
from repro.experiments.points import Point, TraceSpec, run_points

__all__ = ["run", "points", "assemble", "ORGS", "SIZES"]

ORGS = [
    ("base", "Base"),
    ("mirror", "Mirror"),
    ("raid5", "RAID5"),
    ("parity_striping", "ParStripe"),
]
SIZES = [5, 10, 15, 20]


def points(scale: float = 1.0) -> list[Point]:
    return [
        Point.sim("fig5", (which, org, n), TraceSpec(which, scale, n=n), org, n=n)
        for which in (1, 2)
        for org, _ in ORGS
        for n in SIZES
    ]


def assemble(scale: float, values: dict) -> list[ExperimentResult]:
    results = []
    for which in (1, 2):
        series = [
            Series(label, SIZES, [values[(which, org, n)].mean_response_ms for n in SIZES])
            for org, label in ORGS
        ]
        results.append(
            ExperimentResult(
                exp_id="fig5",
                title=f"Response time vs array size (uncached), Trace {which}",
                xlabel="array size N",
                ylabel="mean response time (ms)",
                series=series,
            )
        )
    return results


def run(scale: float = 1.0) -> list[ExperimentResult]:
    return assemble(scale, run_points(points(scale)))
