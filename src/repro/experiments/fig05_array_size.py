"""Figure 5: response time vs array size, non-cached organizations.

One panel per trace; curves for Base, Mirror, RAID5, Parity Striping
over N ∈ {5, 10, 15, 20}.

Expected shape (§4.2): Mirror below Base everywhere; Trace 1: RAID5
noticeably above Base (write penalty) and Parity Striping worst at
small N; Trace 2 (high skew): RAID5 below Base, Parity Striping above.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Series, get_trace, response_time

__all__ = ["run", "ORGS", "SIZES"]

ORGS = [
    ("base", "Base"),
    ("mirror", "Mirror"),
    ("raid5", "RAID5"),
    ("parity_striping", "ParStripe"),
]
SIZES = [5, 10, 15, 20]


def run(scale: float = 1.0) -> list[ExperimentResult]:
    results = []
    for which in (1, 2):
        series = []
        for org, label in ORGS:
            ys = []
            for n in SIZES:
                trace = get_trace(which, scale, n=n)
                res = response_time(org, trace, n=n)
                ys.append(res.mean_response_ms)
            series.append(Series(label, SIZES, ys))
        results.append(
            ExperimentResult(
                exp_id="fig5",
                title=f"Response time vs array size (uncached), Trace {which}",
                xlabel="array size N",
                ylabel="mean response time (ms)",
                series=series,
            )
        )
    return results
