"""Extension experiments beyond the paper's figures.

These exercise the features the paper mentions but does not evaluate:

* ``ext-rebuild`` — degraded-mode and rebuild performance vs array size
  (the §4.2.1 remark that "large arrays... have worse performance
  during reconstruction").
* ``ext-destage`` — the §3.4 destage-policy comparison (periodic vs
  basic LRU write-back) plus the decoupled policy the paper proposes.
* ``ext-parity-grain`` — the conclusions' future-work item: a finer
  grain for the parity in Parity Striping, to balance the parity
  update load while preserving data seek affinity.
* ``ext-spindle`` — spindle synchronization on/off ("no spindle
  synchronization is assumed"): what the assumption is worth.
* ``ext-scheduler`` — FCFS vs SSTF per-disk queue disciplines.
"""

from __future__ import annotations

from repro.failure import DegradedParityController, RebuildProcess
from repro.channel import Channel
from repro.des import Environment
from repro.disk.drive import Disk
from repro.experiments.common import (
    ExperimentResult,
    Series,
    get_trace,
    make_config,
)
from repro.experiments.points import Point, TraceSpec, run_points
from repro.sim import run_trace

__all__ = [
    "run_rebuild",
    "run_destage_policies",
    "run_parity_grain",
    "run_spindle_sync",
    "run_scheduler",
    "run_reliability",
    "points_destage",
    "assemble_destage",
    "points_parity_grain",
    "assemble_parity_grain",
    "points_spindle",
    "assemble_spindle",
    "points_scheduler",
    "assemble_scheduler",
]


def run_reliability(scale: float = 1.0) -> list[ExperimentResult]:
    """The introduction's reliability/cost trade-off as a table.

    MTTDL (mean time to data loss) and storage overhead for the Trace-1
    system (130 data disks) under each organization — the numbers that
    motivate redundant arrays over both raw disks and mirrors.
    """
    from repro.models import ReliabilityModel, storage_overhead

    model = ReliabilityModel(disk_mttf_hours=100_000.0, mttr_hours=24.0)
    orgs = ["base", "mirror", "raid5", "parity_striping"]
    mttdl_years = [
        model.system_mttdl(org, 130, 10) / (24.0 * 365.0) for org in orgs
    ]
    overhead = [100.0 * storage_overhead(org, 10) for org in orgs]
    return [
        ExperimentResult(
            exp_id="ext-reliability",
            title="MTTDL and storage overhead, 130 data disks, N = 10",
            xlabel="organization",
            ylabel="MTTDL (years) / overhead (%)",
            series=[
                Series("MTTDL_years", orgs, mttdl_years),
                Series("overhead_pct", orgs, overhead),
            ],
            notes=(
                f"intro check: first failure among 150 disks every "
                f"{model.paper_intro_check(150):.1f} days (paper: < 28)"
            ),
        )
    ]


def run_rebuild(scale: float = 1.0) -> list[ExperimentResult]:
    """Degraded and rebuilding RAID5 arrays vs array size (Trace 2)."""
    sizes = [5, 10, 15]
    healthy, degraded, rebuild_ms = [], [], []
    for n in sizes:
        trace = get_trace(2, scale * 0.5, n=n)
        cfg = make_config("raid5", trace, n=n)

        healthy.append(run_trace(cfg, trace, keep_samples=False).mean_response_ms)

        # Degraded + rebuilding run: one array, failed disk 0, hot spare.
        env = Environment()
        layout = cfg.make_layout()
        geometry = cfg.disk.geometry(cfg.block_bytes)
        seek = cfg.disk.seek_model()
        disks = [
            Disk(env, geometry, seek, name=f"d{i}") for i in range(layout.ndisks)
        ]
        ctrl = DegradedParityController(
            env, disks=disks, layout=layout, channel=Channel(env), config=cfg,
            failed_disk=0, spare=True,
        )
        # Rebuild only the active slice to keep runtimes proportional.
        used = min(layout.blocks_per_disk, 40_000)
        rebuild = RebuildProcess(ctrl, chunk_blocks=6, used_blocks=used)

        times = []

        def source(env, trace=trace, ctrl=ctrl, times=times):
            per_array = ctrl.layout.logical_blocks
            for rec in trace.records:
                t = float(rec["time"])
                if t > env.now:
                    yield env.timeout(t - env.now)
                env.process(
                    one(env, int(rec["lblock"]) % per_array, int(rec["nblocks"]),
                        bool(rec["is_write"]))
                )

        def one(env, lb, k, w, ctrl=ctrl, times=times):
            t0 = env.now
            yield from ctrl.handle(lb, min(k, 16), w)
            times.append(env.now - t0)

        env.process(source(env))
        env.run(until=rebuild.process)
        env.run(until=env.now + 120_000.0)
        degraded.append(sum(times) / max(len(times), 1))
        rebuild_ms.append(rebuild.duration_ms or float("nan"))

    return [
        ExperimentResult(
            exp_id="ext-rebuild",
            title="RAID5 degraded-mode response and rebuild time vs N (Trace 2)",
            xlabel="array size N",
            ylabel="ms",
            series=[
                Series("healthy rt", sizes, healthy),
                Series("during rebuild rt", sizes, degraded),
                Series("rebuild duration/1000", sizes, [r / 1000.0 for r in rebuild_ms]),
            ],
            notes="rebuild sweeps a fixed 40k-block slice per disk",
        )
    ]


DESTAGE_POLICIES = ("periodic", "lru_demand", "decoupled")
DESTAGE_MB = (8, 16, 32)


def points_destage(scale: float = 1.0) -> list[Point]:
    return [
        Point.sim(
            "ext-destage",
            (which, policy, mb),
            TraceSpec(which, scale),
            "raid5",
            cached=True,
            cache_mb=mb,
            destage_policy=policy,
        )
        for which in (1, 2)
        for policy in DESTAGE_POLICIES
        for mb in DESTAGE_MB
    ]


def assemble_destage(scale: float, values: dict) -> list[ExperimentResult]:
    results = []
    for which in (1, 2):
        series = [
            Series(
                policy,
                list(DESTAGE_MB),
                [values[(which, policy, mb)].mean_response_ms for mb in DESTAGE_MB],
            )
            for policy in DESTAGE_POLICIES
        ]
        results.append(
            ExperimentResult(
                exp_id="ext-destage",
                title=f"Destage policies, cached RAID5, Trace {which}",
                xlabel="cache size (MB)",
                ylabel="mean response time (ms)",
                series=series,
                notes="paper: periodic always beats the basic LRU policy",
            )
        )
    return results


def run_destage_policies(scale: float = 1.0) -> list[ExperimentResult]:
    """Periodic vs basic-LRU vs decoupled write-back (§3.4)."""
    return assemble_destage(scale, run_points(points_destage(scale)))


GRAIN_VARIANTS = (
    ("ParStripe classic", "parity_striping", {}),
    ("ParStripe grain=1", "parity_striping", {"parity_grain": 1}),
    ("ParStripe grain=8", "parity_striping", {"parity_grain": 8}),
    ("RAID5 su=1", "raid5", {}),
)


def points_parity_grain(scale: float = 1.0) -> list[Point]:
    return [
        Point.sim("ext-parity-grain", (which, label), TraceSpec(which, scale), org, **kw)
        for which in (1, 2)
        for label, org, kw in GRAIN_VARIANTS
    ]


def assemble_parity_grain(scale: float, values: dict) -> list[ExperimentResult]:
    results = []
    for which in (1, 2):
        labels = [label for label, _, _ in GRAIN_VARIANTS]
        results.append(
            ExperimentResult(
                exp_id="ext-parity-grain",
                title=f"Fine-grained parity striping, Trace {which}",
                xlabel="organization",
                ylabel="mean response time (ms)",
                series=[
                    Series(
                        "response",
                        labels,
                        [values[(which, label)].mean_response_ms for label in labels],
                    )
                ],
                notes="grain spreads parity-update load while data stays sequential",
            )
        )
    return results


def run_parity_grain(scale: float = 1.0) -> list[ExperimentResult]:
    """Fine-grained Parity Striping vs classic vs RAID5 (future work)."""
    return assemble_parity_grain(scale, run_points(points_parity_grain(scale)))


def points_spindle(scale: float = 1.0) -> list[Point]:
    return [
        Point.sim(
            "ext-spindle", (which, org, sync), TraceSpec(which, scale), org, spindle_sync=sync
        )
        for which in (1, 2)
        for org in ("mirror", "raid5")
        for sync in (False, True)
    ]


def assemble_spindle(scale: float, values: dict) -> list[ExperimentResult]:
    results = []
    for which in (1, 2):
        series = [
            Series(
                org,
                ["unsynced", "synced"],
                [values[(which, org, sync)].mean_response_ms for sync in (False, True)],
            )
            for org in ("mirror", "raid5")
        ]
        results.append(
            ExperimentResult(
                exp_id="ext-spindle",
                title=f"Spindle synchronization, Trace {which}",
                xlabel="spindles",
                ylabel="mean response time (ms)",
                series=series,
                notes="the paper assumes unsynchronized spindles",
            )
        )
    return results


def run_spindle_sync(scale: float = 1.0) -> list[ExperimentResult]:
    """Spindle synchronization on/off for Mirror and RAID5."""
    return assemble_spindle(scale, run_points(points_spindle(scale)))


def points_scheduler(scale: float = 1.0) -> list[Point]:
    return [
        Point.sim(
            "ext-scheduler", (which, org, s), TraceSpec(which, scale), org, disk_scheduler=s
        )
        for which in (1, 2)
        for org in ("base", "raid5")
        for s in ("fcfs", "sstf")
    ]


def assemble_scheduler(scale: float, values: dict) -> list[ExperimentResult]:
    results = []
    for which in (1, 2):
        series = [
            Series(
                org,
                ["fcfs", "sstf"],
                [values[(which, org, s)].mean_response_ms for s in ("fcfs", "sstf")],
            )
            for org in ("base", "raid5")
        ]
        results.append(
            ExperimentResult(
                exp_id="ext-scheduler",
                title=f"Disk queue discipline, Trace {which}",
                xlabel="discipline",
                ylabel="mean response time (ms)",
                series=series,
            )
        )
    return results


def run_scheduler(scale: float = 1.0) -> list[ExperimentResult]:
    """FCFS vs SSTF per-disk scheduling across organizations."""
    return assemble_scheduler(scale, run_points(points_scheduler(scale)))
