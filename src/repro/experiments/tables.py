"""Tables 1-4 of the paper: parameter and characteristics tables.

These "experiments" verify that the building blocks reproduce the
paper's configuration exactly: the disk model hits Table 1, the trace
generator hits Table 2, every Table 3 organization builds and runs, and
Table 4 is the config default set.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Series, get_trace
from repro.experiments.points import Point, TraceSpec, run_points
from repro.sim import DiskParams, SystemConfig

__all__ = ["table1", "table2", "table3", "table4", "points_table3", "assemble_table3"]


def table1(scale: float = 1.0) -> list[ExperimentResult]:
    """Disk and channel parameters (+ derived seek curve calibration)."""
    p = DiskParams()
    geo = p.geometry()
    sm = p.seek_model()
    rows = [
        ("rotation_rpm", p.rpm, 5400.0),
        ("average_seek_ms", sm.average_seek_time(), 11.2),
        ("maximal_seek_ms", sm.max_seek_time(), 28.0),
        ("tracks_per_platter", float(p.cylinders), 1260.0),
        ("sectors_per_track", float(p.sectors_per_track), 48.0),
        ("bytes_per_sector", float(p.bytes_per_sector), 512.0),
        ("platters", p.surfaces / 2.0, 15.0),
        ("capacity_GB", geo.capacity_bytes / 1e9, 0.9),
        ("revolution_ms", geo.revolution_time, 60000.0 / 5400.0),
    ]
    result = ExperimentResult(
        exp_id="table1",
        title="Disk and channel parameters (Table 1)",
        xlabel="parameter",
        ylabel="value",
        series=[
            Series("model", [r[0] for r in rows], [r[1] for r in rows]),
            Series("paper", [r[0] for r in rows], [r[2] for r in rows]),
        ],
        notes="capacity 'about 0.9 GB' in the paper; seek curve fitted exactly",
    )
    return [result]


def table2(scale: float = 1.0) -> list[ExperimentResult]:
    """Trace characteristics vs the paper's Table 2 (scaled counts)."""
    out = []
    paper = {
        1: dict(write_fraction=0.1003, single_fraction=0.9787, ndisks=130),
        2: dict(write_fraction=0.2826, single_fraction=0.9407, ndisks=10),
    }
    for which in (1, 2):
        trace = get_trace(which, scale) if which == 2 else None
        if which == 1:
            # Use the unsliced generator output for Table 2 fidelity.
            from repro.experiments.common import T1_BASE_SCALE
            from repro.trace import generate_trace, trace1_config

            trace = generate_trace(trace1_config(scale=T1_BASE_SCALE * scale))
        s = trace.stats()
        rows = [
            ("n_ios", float(s.n_ios)),
            ("blocks_transferred", float(s.blocks_transferred)),
            ("write_fraction", s.write_fraction),
            ("single_block_fraction", s.single_block_fraction),
            ("disk_access_cv", s.disk_access_cv),
            ("top_decile_share", s.top_decile_share),
        ]
        expected = paper[which]
        out.append(
            ExperimentResult(
                exp_id="table2",
                title=f"Trace {which} characteristics (Table 2)",
                xlabel="characteristic",
                ylabel="value",
                series=[
                    Series("measured", [r[0] for r in rows], [r[1] for r in rows]),
                    Series(
                        "paper",
                        [r[0] for r in rows],
                        [
                            float("nan"),
                            float("nan"),
                            expected["write_fraction"],
                            expected["single_fraction"],
                            float("nan"),
                            float("nan"),
                        ],
                    ),
                ],
                notes=f"counts are scaled by {scale:g} x the experiment default",
            )
        )
    return out


def _table3_cells() -> list[tuple[bool, str]]:
    cells = []
    for cached in (False, True):
        orgs = ["base", "mirror", "raid5", "parity_striping"]
        if cached:
            orgs.append("raid4")
        cells.extend((cached, org) for org in orgs)
    return cells


def points_table3(scale: float = 1.0) -> list[Point]:
    return [
        Point.sim("table3", (cached, org), TraceSpec(2, scale * 0.2), org, cached=cached)
        for cached, org in _table3_cells()
    ]


def assemble_table3(scale: float, values: dict) -> list[ExperimentResult]:
    labels, disks, rts = [], [], []
    for cached, org in _table3_cells():
        v = values[(cached, org)]
        labels.append(f"{'cached' if cached else 'uncached'}:{org}")
        disks.append(float(v.physical_disks))
        rts.append(v.mean_response_ms)
    return [
        ExperimentResult(
            exp_id="table3",
            title="Disk array organizations (Table 3): all build and run",
            xlabel="organization",
            ylabel="mean response time (ms) / physical disks",
            series=[
                Series("response_ms", labels, rts),
                Series("physical_disks", labels, disks),
            ],
        )
    ]


def table3(scale: float = 1.0) -> list[ExperimentResult]:
    """Table 3 organization matrix: every cell builds and runs."""
    return assemble_table3(scale, run_points(points_table3(scale)))


def table4(scale: float = 1.0) -> list[ExperimentResult]:
    """Default parameters (Table 4) as exposed by SystemConfig."""
    cfg = SystemConfig()
    rows = [
        ("N", float(cfg.n)),
        ("block_kb", cfg.block_bytes / 1024.0),
        ("striping_unit_blocks", float(cfg.striping_unit)),
        ("cache_mb", cfg.cache_mb),
    ]
    return [
        ExperimentResult(
            exp_id="table4",
            title="Default parameters (Table 4)",
            xlabel="parameter",
            ylabel="value",
            series=[Series("default", [r[0] for r in rows], [r[1] for r in rows])],
            notes=f"sync={cfg.sync_policy}, parity placement={cfg.parity_placement.value}",
        )
    ]
