"""Figure 14: striping unit for the *cached* RAID5 organization.

§4.3.3: the cached array runs at lighter disk load, so larger striping
units become attractive — the Trace 1 optimum moves to ~16 blocks
(vs 8 uncached); Trace 2's optimum stays at 1 block (low hit ratio).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Series, get_trace, response_time
from repro.experiments.fig08_striping_unit import UNITS

__all__ = ["run"]


def run(scale: float = 1.0) -> list[ExperimentResult]:
    results = []
    for which in (1, 2):
        trace = get_trace(which, scale)
        ys = [
            response_time(
                "raid5", trace, striping_unit=su, cached=True
            ).mean_response_ms
            for su in UNITS
        ]
        results.append(
            ExperimentResult(
                exp_id="fig14",
                title=f"RAID5 striping unit (cached, 16 MB), Trace {which}",
                xlabel="striping unit (blocks)",
                ylabel="mean response time (ms)",
                series=[Series("RAID5 cached", UNITS, ys)],
            )
        )
    return results
