"""Figure 14: striping unit for the *cached* RAID5 organization.

§4.3.3: the cached array runs at lighter disk load, so larger striping
units become attractive — the Trace 1 optimum moves to ~16 blocks
(vs 8 uncached); Trace 2's optimum stays at 1 block (low hit ratio).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Series
from repro.experiments.fig08_striping_unit import UNITS
from repro.experiments.points import Point, TraceSpec, run_points

__all__ = ["run", "points", "assemble"]


def points(scale: float = 1.0) -> list[Point]:
    return [
        Point.sim(
            "fig14", (which, su), TraceSpec(which, scale), "raid5",
            striping_unit=su, cached=True,
        )
        for which in (1, 2)
        for su in UNITS
    ]


def assemble(scale: float, values: dict) -> list[ExperimentResult]:
    return [
        ExperimentResult(
            exp_id="fig14",
            title=f"RAID5 striping unit (cached, 16 MB), Trace {which}",
            xlabel="striping unit (blocks)",
            ylabel="mean response time (ms)",
            series=[
                Series(
                    "RAID5 cached",
                    UNITS,
                    [values[(which, su)].mean_response_ms for su in UNITS],
                )
            ],
        )
        for which in (1, 2)
    ]


def run(scale: float = 1.0) -> list[ExperimentResult]:
    return assemble(scale, run_points(points(scale)))
