"""Experiment drivers: one per table/figure of the paper.

Every experiment is registered in :mod:`repro.experiments.registry` and
runnable from the command line::

    python -m repro.experiments fig5 --scale 0.5
    python -m repro.experiments --list

``--scale`` multiplies each experiment's default trace size; the
default sizes are chosen so a figure regenerates in minutes on a
laptop.  Relative comparisons (who wins, by what factor) are stable in
scale; see EXPERIMENTS.md for recorded full runs.
"""

from repro.experiments.common import ExperimentResult, Series
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "Series",
    "get_experiment",
    "run_experiment",
]
