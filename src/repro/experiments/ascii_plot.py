"""ASCII rendering of experiment results.

The offline environment has no plotting library, so the experiment CLI
can render each figure as a terminal chart: one mark per series, a
y-axis in the measured unit, series markers labelled in a legend.
Pure-stdlib, deterministic, and good enough to *see* the crossovers the
paper's figures show (e.g. RAID5 dipping under Base as N grows).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.experiments.common import ExperimentResult

__all__ = ["render_chart"]

MARKERS = "ox+*#@%&"


def _format_tick(value: float) -> str:
    if abs(value) >= 1000:
        return f"{value:8.0f}"
    return f"{value:8.2f}"


def render_chart(
    result: ExperimentResult,
    width: int = 64,
    height: int = 16,
    logx: Optional[bool] = None,
) -> str:
    """Render an :class:`ExperimentResult` as an ASCII chart.

    Numeric x-values are spread along the width (log-spaced when the
    range exceeds a decade, e.g. cache sizes and striping units);
    categorical x-values are evenly spaced.  Overlapping points show
    the marker of the later series.
    """
    if not result.series:
        return f"{result.exp_id}: (no series)"
    if width < 16 or height < 4:
        raise ValueError("chart too small to render")

    xs_raw = result.series[0].xs
    numeric = all(isinstance(x, (int, float)) for x in xs_raw)
    if numeric:
        xvals = [float(x) for x in xs_raw]
        if logx is None:
            logx = min(xvals) > 0 and max(xvals) / max(min(xvals), 1e-12) > 10.0
        pos_src = [math.log(x) if logx else x for x in xvals]
    else:
        pos_src = list(range(len(xs_raw)))
        logx = False
    lo_x, hi_x = min(pos_src), max(pos_src)
    span_x = (hi_x - lo_x) or 1.0

    ys_all = [y for s in result.series for y in s.ys if y == y]  # drop NaN
    if not ys_all:
        return f"{result.exp_id}: (no data)"
    lo_y, hi_y = min(ys_all), max(ys_all)
    if lo_y == hi_y:
        lo_y, hi_y = lo_y - 1.0, hi_y + 1.0
    pad = 0.05 * (hi_y - lo_y)
    lo_y -= pad
    hi_y += pad

    grid = [[" "] * width for _ in range(height)]
    for si, series in enumerate(result.series):
        marker = MARKERS[si % len(MARKERS)]
        for x, y in zip(pos_src, series.ys):
            if y != y:
                continue
            col = int(round((x - lo_x) / span_x * (width - 1)))
            row = int(round((hi_y - y) / (hi_y - lo_y) * (height - 1)))
            grid[row][col] = marker

    lines = [f"{result.exp_id}: {result.title}"]
    for r, row in enumerate(grid):
        yval = hi_y - r * (hi_y - lo_y) / (height - 1)
        axis = _format_tick(yval) if r % 3 == 0 else " " * 8
        lines.append(f"{axis} |{''.join(row)}|")
    lines.append(" " * 8 + "+" + "-" * width + "+")
    left = str(xs_raw[0])
    right = str(xs_raw[-1])
    gap = width - len(left) - len(right)
    lines.append(
        " " * 9 + left + " " * max(gap, 1) + right
        + ("   (log x)" if logx else "")
    )
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {s.label}" for i, s in enumerate(result.series)
    )
    lines.append(" " * 9 + f"x: {result.xlabel}   y: {result.ylabel}")
    lines.append(" " * 9 + legend)
    return "\n".join(lines)
