"""Figure 13: array size with a fixed *total* cache budget (cached).

(N, per-array cache) ∈ {(5, 8 MB), (10, 16 MB), (15, 24 MB)} — the
total cache is constant, so the question is partitioned-vs-shared
caches combined with arm counts and load balancing (§4.3.2).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Series, get_trace, response_time
from repro.experiments.fig05_array_size import ORGS

__all__ = ["run", "POINTS"]

POINTS = [(5, 8.0), (10, 16.0), (15, 24.0)]


def run(scale: float = 1.0) -> list[ExperimentResult]:
    results = []
    xs = [n for n, _ in POINTS]
    for which in (1, 2):
        series = []
        for org, label in ORGS:
            ys = []
            for n, cache_mb in POINTS:
                trace = get_trace(which, scale, n=n)
                res = response_time(org, trace, n=n, cached=True, cache_mb=cache_mb)
                ys.append(res.mean_response_ms)
            series.append(Series(label, xs, ys))
        results.append(
            ExperimentResult(
                exp_id="fig13",
                title=f"Array size at fixed total cache (cached), Trace {which}",
                xlabel="array size N (cache = 1.6 MB x N per array)",
                ylabel="mean response time (ms)",
                series=series,
            )
        )
    return results
