"""Figure 13: array size with a fixed *total* cache budget (cached).

(N, per-array cache) ∈ {(5, 8 MB), (10, 16 MB), (15, 24 MB)} — the
total cache is constant, so the question is partitioned-vs-shared
caches combined with arm counts and load balancing (§4.3.2).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Series
from repro.experiments.fig05_array_size import ORGS
from repro.experiments.points import Point, TraceSpec, run_points

__all__ = ["run", "points", "assemble", "POINTS"]

POINTS = [(5, 8.0), (10, 16.0), (15, 24.0)]


def points(scale: float = 1.0) -> list[Point]:
    return [
        Point.sim(
            "fig13",
            (which, org, n),
            TraceSpec(which, scale, n=n),
            org,
            n=n,
            cached=True,
            cache_mb=cache_mb,
        )
        for which in (1, 2)
        for org, _ in ORGS
        for n, cache_mb in POINTS
    ]


def assemble(scale: float, values: dict) -> list[ExperimentResult]:
    results = []
    xs = [n for n, _ in POINTS]
    for which in (1, 2):
        series = [
            Series(label, xs, [values[(which, org, n)].mean_response_ms for n, _ in POINTS])
            for org, label in ORGS
        ]
        results.append(
            ExperimentResult(
                exp_id="fig13",
                title=f"Array size at fixed total cache (cached), Trace {which}",
                xlabel="array size N (cache = 1.6 MB x N per array)",
                ylabel="mean response time (ms)",
                series=series,
            )
        )
    return results


def run(scale: float = 1.0) -> list[ExperimentResult]:
    return assemble(scale, run_points(points(scale)))
