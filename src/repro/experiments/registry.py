"""Registry of all experiments (one per paper table/figure).

Every entry maps an experiment id to a callable
``run(scale: float) -> list[ExperimentResult]``.  Experiments that
decompose into independent work units additionally expose

``points(scale) -> list[Point]``
    the independent (trace x organization x sweep-value) cells, and
``assemble(scale, values: dict[key, PointValue]) -> list[ExperimentResult]``
    the pure merge of evaluated cells back into figures,

with the contract ``run(scale) == assemble(scale, run_points(points(
scale)))`` — the parallel engine relies on it to make ``--jobs N``
byte-identical to a serial run.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.experiments.points import Point, PointValue

from repro.experiments import tables
from repro.experiments import fig04_sync
from repro.experiments import fig05_array_size
from repro.experiments import fig06_07_skew
from repro.experiments import fig08_striping_unit
from repro.experiments import fig09_parity_placement
from repro.experiments import fig10_trace_speed
from repro.experiments import fig11_hit_ratios
from repro.experiments import fig12_cache_size
from repro.experiments import fig13_cached_array_size
from repro.experiments import fig14_cached_striping
from repro.experiments import fig15_16_parity_cache
from repro.experiments import fig17_19_parity_cache_params
from repro.experiments import extensions
from repro.experiments import ext_failure
from repro.experiments import ext_hda
from repro.experiments.common import ExperimentResult

__all__ = ["Experiment", "EXPERIMENTS", "get_experiment", "run_experiment"]


@dataclass(frozen=True)
class Experiment:
    """A registered, runnable paper artifact."""

    exp_id: str
    title: str
    run: Callable[[float], list[ExperimentResult]]
    #: Rough relative cost (1 = seconds, 3 = minutes at default scale).
    cost: int = 2
    #: Point decomposition for the parallel engine (None = run whole).
    points: Optional[Callable[[float], List[Point]]] = None
    assemble: Optional[
        Callable[[float, Dict[tuple, PointValue]], List[ExperimentResult]]
    ] = None

    def __post_init__(self) -> None:
        if (self.points is None) != (self.assemble is None):
            raise ValueError(
                f"{self.exp_id}: points and assemble must be provided together"
            )


EXPERIMENTS: dict[str, Experiment] = {
    e.exp_id: e
    for e in [
        # Whole-unit experiments (pure computation or bespoke scenarios).
        Experiment("table1", "Disk and channel parameters", tables.table1, cost=1),
        Experiment("table2", "Trace characteristics", tables.table2, cost=1),
        Experiment("table3", "Organization matrix smoke", tables.table3, cost=2,
                   points=tables.points_table3, assemble=tables.assemble_table3),
        Experiment("table4", "Default parameters", tables.table4, cost=1),
        Experiment("fig4", "Synchronization policies vs N", fig04_sync.run, cost=3,
                   points=fig04_sync.points, assemble=fig04_sync.assemble),
        Experiment("fig5", "Array size, uncached orgs", fig05_array_size.run, cost=3,
                   points=fig05_array_size.points, assemble=fig05_array_size.assemble),
        Experiment("fig6", "Disk access skew, Base", fig06_07_skew.run_fig6, cost=1),
        Experiment("fig7", "Disk access skew, RAID5", fig06_07_skew.run_fig7, cost=1),
        Experiment("fig8", "Striping unit, uncached RAID5", fig08_striping_unit.run, cost=2,
                   points=fig08_striping_unit.points, assemble=fig08_striping_unit.assemble),
        Experiment("fig9", "Parity placement, ParStripe", fig09_parity_placement.run, cost=3,
                   points=fig09_parity_placement.points, assemble=fig09_parity_placement.assemble),
        Experiment("fig10", "Trace speed, uncached orgs", fig10_trace_speed.run, cost=3,
                   points=fig10_trace_speed.points, assemble=fig10_trace_speed.assemble),
        Experiment("fig11", "Hit ratios vs cache size", fig11_hit_ratios.run, cost=2,
                   points=fig11_hit_ratios.points, assemble=fig11_hit_ratios.assemble),
        Experiment("fig12", "Cache size, cached orgs", fig12_cache_size.run, cost=3,
                   points=fig12_cache_size.points, assemble=fig12_cache_size.assemble),
        Experiment("fig13", "Array size, fixed total cache", fig13_cached_array_size.run, cost=3,
                   points=fig13_cached_array_size.points, assemble=fig13_cached_array_size.assemble),
        Experiment("fig14", "Striping unit, cached RAID5", fig14_cached_striping.run, cost=2,
                   points=fig14_cached_striping.points, assemble=fig14_cached_striping.assemble),
        Experiment("fig15", "Hit ratios, RAID4-PC vs RAID5", fig15_16_parity_cache.run_fig15, cost=2,
                   points=fig15_16_parity_cache.points_fig15,
                   assemble=fig15_16_parity_cache.assemble_fig15),
        Experiment("fig16", "Cache size, RAID4-PC vs RAID5", fig15_16_parity_cache.run_fig16, cost=2,
                   points=fig15_16_parity_cache.points_fig16,
                   assemble=fig15_16_parity_cache.assemble_fig16),
        Experiment("fig17", "Array size, RAID4-PC vs RAID5", fig17_19_parity_cache_params.run_fig17, cost=3,
                   points=fig17_19_parity_cache_params.points_fig17,
                   assemble=fig17_19_parity_cache_params.assemble_fig17),
        Experiment("fig18", "Trace speed, RAID4-PC vs RAID5", fig17_19_parity_cache_params.run_fig18, cost=3,
                   points=fig17_19_parity_cache_params.points_fig18,
                   assemble=fig17_19_parity_cache_params.assemble_fig18),
        Experiment("fig19", "Striping unit, RAID4-PC vs RAID5", fig17_19_parity_cache_params.run_fig19, cost=3,
                   points=fig17_19_parity_cache_params.points_fig19,
                   assemble=fig17_19_parity_cache_params.assemble_fig19),
        # Extensions beyond the paper's figures.
        Experiment("ext-rebuild", "Degraded mode + rebuild vs N", extensions.run_rebuild, cost=3),
        Experiment("ext-destage", "Destage policy comparison", extensions.run_destage_policies, cost=3,
                   points=extensions.points_destage, assemble=extensions.assemble_destage),
        Experiment("ext-parity-grain", "Fine-grained parity striping", extensions.run_parity_grain, cost=2,
                   points=extensions.points_parity_grain, assemble=extensions.assemble_parity_grain),
        Experiment("ext-spindle", "Spindle synchronization", extensions.run_spindle_sync, cost=2,
                   points=extensions.points_spindle, assemble=extensions.assemble_spindle),
        Experiment("ext-scheduler", "FCFS vs SSTF disk scheduling", extensions.run_scheduler, cost=2,
                   points=extensions.points_scheduler, assemble=extensions.assemble_scheduler),
        Experiment("ext-reliability", "MTTDL / storage overhead", extensions.run_reliability, cost=1),
        Experiment("ext-rebuild-rate", "Rebuild rate vs foreground p95", ext_failure.run_rebuild_rate, cost=3,
                   points=ext_failure.points_rebuild_rate, assemble=ext_failure.assemble_rebuild_rate),
        Experiment("ext-scrub", "Scrub interval vs latent-error exposure", ext_failure.run_scrub, cost=2,
                   points=ext_failure.points_scrub, assemble=ext_failure.assemble_scrub),
        Experiment("ext-hda", "Heterogeneous arrays: allocation policy x VA mix", ext_hda.run, cost=3,
                   points=ext_hda.points, assemble=ext_hda.assemble),
    ]
}


def get_experiment(exp_id: str) -> Experiment:
    """Look up an experiment by id.

    Accepts zero-padded and module-style aliases: ``fig05`` and
    ``fig05_array_size`` both resolve to ``fig5``.
    """
    key = exp_id.lower().strip()
    if key not in EXPERIMENTS and key.startswith("fig"):
        m = re.match(r"fig0*(\d+)", key)
        if m and "fig" + m.group(1) in EXPERIMENTS:
            key = "fig" + m.group(1)
        else:
            key = "fig" + key[3:].lstrip("0")
    try:
        return EXPERIMENTS[key]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(exp_id: str, scale: float = 1.0) -> list[ExperimentResult]:
    """Run one experiment and return its results."""
    return get_experiment(exp_id).run(scale)
