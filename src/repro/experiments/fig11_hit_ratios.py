"""Figure 11: cache hit ratios vs cache size.

Read and write hit ratios for the parity organizations (which retain
old copies of dirtied blocks) against the non-parity ones, per trace.

Expected shape (§4.3): write hit ratio far above read hit ratio;
Trace 1's write hit ratio near 1 for large caches; the parity
organizations' read hit ratio a few percent below the non-parity ones
at small caches, the gap shrinking as the cache grows.

Hit ratios are measured with the fast cache-only simulator
(:mod:`repro.cache.fastsim`), which matches the full simulation's cache
decisions; larger traces are therefore affordable here.
"""

from __future__ import annotations

from repro.cache import simulate_hit_ratios
from repro.experiments.common import ExperimentResult, Series, get_trace

__all__ = ["run", "CACHE_MB"]

CACHE_MB = [8, 16, 32, 64, 128, 256]
BLOCKS_PER_MB = 256


def run(scale: float = 1.0) -> list[ExperimentResult]:
    results = []
    for which in (1, 2):
        # Hit ratios benefit from longer traces; the fast simulator
        # affords 4x the timing experiments' default.
        trace = get_trace(which, scale * 4)
        rows = {"plain": [], "parity": []}
        for mode in ("plain", "parity"):
            for mb in CACHE_MB:
                rows[mode].append(
                    simulate_hit_ratios(trace, 10, mb * BLOCKS_PER_MB, mode)
                )
        results.append(
            ExperimentResult(
                exp_id="fig11",
                title=f"Hit ratios vs cache size, Trace {which}",
                xlabel="cache size (MB)",
                ylabel="hit ratio",
                series=[
                    Series(
                        "read (Base/Mirror)",
                        CACHE_MB,
                        [s.read_hit_ratio for s in rows["plain"]],
                    ),
                    Series(
                        "read (parity orgs)",
                        CACHE_MB,
                        [s.read_hit_ratio for s in rows["parity"]],
                    ),
                    Series(
                        "write (Base/Mirror)",
                        CACHE_MB,
                        [s.write_hit_ratio for s in rows["plain"]],
                    ),
                    Series(
                        "write (parity orgs)",
                        CACHE_MB,
                        [s.write_hit_ratio for s in rows["parity"]],
                    ),
                ],
            )
        )
    return results
