"""Figure 11: cache hit ratios vs cache size.

Read and write hit ratios for the parity organizations (which retain
old copies of dirtied blocks) against the non-parity ones, per trace.

Expected shape (§4.3): write hit ratio far above read hit ratio;
Trace 1's write hit ratio near 1 for large caches; the parity
organizations' read hit ratio a few percent below the non-parity ones
at small caches, the gap shrinking as the cache grows.

Hit ratios are measured with the fast cache-only simulator
(:mod:`repro.cache.fastsim`), which matches the full simulation's cache
decisions; larger traces are therefore affordable here.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Series
from repro.experiments.points import Point, TraceSpec, run_points

__all__ = ["run", "points", "assemble", "CACHE_MB"]

CACHE_MB = [8, 16, 32, 64, 128, 256]
BLOCKS_PER_MB = 256


def points(scale: float = 1.0) -> list[Point]:
    # Hit ratios benefit from longer traces; the fast simulator affords
    # 4x the timing experiments' default.
    return [
        Point.hitratio(
            "fig11", (which, mode, mb), TraceSpec(which, scale * 4), mb * BLOCKS_PER_MB, mode
        )
        for which in (1, 2)
        for mode in ("plain", "parity")
        for mb in CACHE_MB
    ]


def assemble(scale: float, values: dict) -> list[ExperimentResult]:
    results = []
    for which in (1, 2):
        results.append(
            ExperimentResult(
                exp_id="fig11",
                title=f"Hit ratios vs cache size, Trace {which}",
                xlabel="cache size (MB)",
                ylabel="hit ratio",
                series=[
                    Series(
                        "read (Base/Mirror)",
                        CACHE_MB,
                        [values[(which, "plain", mb)].read_hit_ratio for mb in CACHE_MB],
                    ),
                    Series(
                        "read (parity orgs)",
                        CACHE_MB,
                        [values[(which, "parity", mb)].read_hit_ratio for mb in CACHE_MB],
                    ),
                    Series(
                        "write (Base/Mirror)",
                        CACHE_MB,
                        [values[(which, "plain", mb)].write_hit_ratio for mb in CACHE_MB],
                    ),
                    Series(
                        "write (parity orgs)",
                        CACHE_MB,
                        [values[(which, "parity", mb)].write_hit_ratio for mb in CACHE_MB],
                    ),
                ],
            )
        )
    return results


def run(scale: float = 1.0) -> list[ExperimentResult]:
    return assemble(scale, run_points(points(scale)))
