"""Point decomposition of the experiment drivers.

A campaign (``python -m repro.experiments all``) is dozens of
independent simulation runs — (figure x trace x organization x sweep
value) cells.  The drivers describe those cells declaratively as
:class:`Point` work units so the engine in
:mod:`repro.experiments.parallel` can fan them out over processes:

* a :class:`TraceSpec` names the workload *by construction recipe*
  (trace number, scale, speed, array size) instead of carrying a
  materialized :class:`~repro.trace.record.Trace` — the spec pickles in
  bytes, and each worker materializes it through the shared
  content-keyed trace cache;
* a :class:`Point` is one cell: the spec plus the organization and the
  ``response_time``/``simulate_hit_ratios`` keyword overrides, tagged
  with a hashable ``key`` the driver uses to place the value back into
  its figure;
* :func:`run_point` evaluates one cell and returns a compact, picklable
  :class:`PointValue`.

Determinism: evaluating a point touches no shared mutable state beyond
the trace caches (content-keyed, so a hit and a miss materialize
bit-identical traces), and every simulation seeds its own RNGs — so any
execution order, in any process layout, yields the same values.  The
serial drivers run through exactly this path (``run(scale)`` is
``assemble(scale, run_points(points(scale)))``), which is what makes
``--jobs N`` output byte-identical to a serial run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Tuple

__all__ = [
    "Point",
    "PointValue",
    "TraceSpec",
    "run_point",
    "run_points",
    "with_backend",
]


@dataclass(frozen=True)
class TraceSpec:
    """Recipe for an experiment trace (the arguments of ``get_trace``)."""

    which: int
    scale: float
    speed: float = 1.0
    n: int = 10
    #: Heterogeneous-array generator overrides (sorted keyword pairs for
    #: :class:`~repro.trace.synthetic.SyntheticTraceConfig`, e.g.
    #: ``ndisks``/``va_disks``/``va_weights``/``va_write_skew``).  Empty
    #: for every legacy spec, so their pickles and store hashes are
    #: unchanged.
    hda: Tuple[Tuple[str, Any], ...] = ()

    def materialize(self):
        """Build the trace (through the shared trace cache)."""
        from repro.experiments.common import get_trace

        return get_trace(
            self.which, self.scale, speed=self.speed, n=self.n, hda=self.hda
        )


@dataclass(frozen=True)
class Point:
    """One independent work unit of an experiment.

    ``kind`` selects the evaluator: ``"sim"`` runs the full
    discrete-event simulation (``response_time``), ``"hitratio"`` the
    fast cache-only pass (``simulate_hit_ratios``).  ``overrides`` is a
    sorted tuple of keyword pairs so the point stays hashable and
    pickles canonically.
    """

    exp_id: str
    key: Tuple
    spec: TraceSpec
    kind: str = "sim"
    org: str = ""
    overrides: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def sim(cls, exp_id: str, key: Tuple, spec: TraceSpec, org: str, **overrides) -> "Point":
        """A full-simulation point (mean response time of one run)."""
        return cls(
            exp_id=exp_id,
            key=key,
            spec=spec,
            kind="sim",
            org=org,
            overrides=tuple(sorted(overrides.items())),
        )

    @classmethod
    def hitratio(
        cls, exp_id: str, key: Tuple, spec: TraceSpec, cache_blocks: int, mode: str
    ) -> "Point":
        """A cache-only hit-ratio point (no timing simulation)."""
        return cls(
            exp_id=exp_id,
            key=key,
            spec=spec,
            kind="hitratio",
            overrides=(("cache_blocks", cache_blocks), ("mode", mode)),
        )

    @property
    def kwargs(self) -> Dict[str, Any]:
        return dict(self.overrides)

    def label(self) -> str:
        """Human-readable identity for progress lines and errors."""
        parts = [self.exp_id]
        if self.org:
            parts.append(self.org)
        parts.append("/".join(str(k) for k in self.key))
        return " ".join(parts)


@dataclass(frozen=True)
class PointValue:
    """The picklable result of one point.

    Only the fields the figures actually plot are carried back from
    workers; full :class:`~repro.sim.results.RunResult` objects (with
    their numpy arrays and tallies) stay worker-local.
    """

    mean_response_ms: float = math.nan
    read_hit_ratio: float = math.nan
    write_hit_ratio: float = math.nan
    physical_disks: int = 0
    extras: Tuple[Tuple[str, float], ...] = field(default=())


def run_point(point: Point) -> PointValue:
    """Evaluate one work unit (in whatever process this is called)."""
    trace = point.spec.materialize()
    if point.kind == "sim":
        from repro.experiments.common import response_time

        res = response_time(point.org, trace, **point.kwargs)
        extras = [("events", float(res.events))]
        if res.failures is not None:
            # Failure-scenario points carry the scenario outcome in the
            # extras channel so assemble() can build tradeoff curves
            # without re-running anything.  Healthy points are untouched
            # (byte-identical extras).
            f = res.failures
            try:
                p95 = res.p95_response_ms
            except ValueError:  # samples not kept for this point
                p95 = float("nan")
            extras += [
                ("p95_ms", float(p95)),
                ("rebuild_ms", float(f.rebuild_duration_ms)),
                ("degraded_reads", float(f.degraded_reads)),
                ("degraded_writes", float(f.degraded_writes)),
                ("latent_injected", float(f.latent_injected)),
                ("latent_repaired", float(f.latent_repaired)),
                ("latent_outstanding", float(f.latent_outstanding)),
                ("exposure_mean_ms", float(f.exposure_mean_ms)),
                ("lost_requests", float(f.lost_reads + f.lost_writes)),
            ]
        if res.va_response:
            # Heterogeneous (multi-VA) points report per-VA latency and
            # the VA's mean disk utilization so assemble() can plot
            # per-class curves.  Homogeneous points never populate
            # ``va_response``, so their extras stay byte-identical.
            for vi, tally in enumerate(res.va_response):
                try:
                    p95 = tally.percentile(95) if tally.count else float("nan")
                except ValueError:  # samples not kept for this point
                    p95 = float("nan")
                util = float("nan")
                if vi < len(res.arrays) and len(res.arrays[vi].disk_utilization):
                    util = float(res.arrays[vi].disk_utilization.mean())
                extras += [
                    (f"va{vi}_mean_ms", float(tally.mean)),
                    (f"va{vi}_p95_ms", float(p95)),
                    (f"va{vi}_util", util),
                ]
        return PointValue(
            mean_response_ms=res.mean_response_ms,
            physical_disks=len(res.per_disk_accesses),
            extras=tuple(extras),
        )
    if point.kind == "hitratio":
        from repro.cache import simulate_hit_ratios
        from repro.layout import Raid4Layout

        kw = point.kwargs
        mode = kw["mode"]
        layout = None
        if mode == "raid4pc":
            layout = Raid4Layout(10, trace.blocks_per_disk, striping_unit=1)
        stats = simulate_hit_ratios(trace, 10, kw["cache_blocks"], mode, layout=layout)
        return PointValue(
            read_hit_ratio=stats.read_hit_ratio,
            write_hit_ratio=stats.write_hit_ratio,
        )
    raise ValueError(f"unknown point kind {point.kind!r}")


def with_backend(points: Iterable[Point], backend: str) -> List[Point]:
    """Retarget the simulation points of a campaign onto *backend*.

    Hit-ratio points are backend-independent (the fast cache pass *is*
    the analytic answer) and pass through unchanged; ``"des"`` is the
    identity so existing call sites stay byte-identical.
    """
    out: List[Point] = []
    for point in points:
        if backend == "des" or point.kind != "sim":
            out.append(point)
            continue
        overrides = dict(point.overrides)
        overrides["backend"] = backend
        out.append(replace(point, overrides=tuple(sorted(overrides.items()))))
    return out


def run_points(points: Iterable[Point]) -> Dict[Tuple, PointValue]:
    """Evaluate *points* serially, in order, into a ``key -> value`` map.

    The serial twin of the parallel engine's fan-out; drivers call this
    from their ``run``.
    """
    values: Dict[Tuple, PointValue] = {}
    for point in points:
        if point.key in values:
            raise ValueError(f"duplicate point key {point.key!r} in {point.exp_id}")
        values[point.key] = run_point(point)
    return values
