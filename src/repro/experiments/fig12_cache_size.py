"""Figure 12: response time vs cache size, cached organizations (N=10).

Expected shape (§4.3.1): all organizations improve with cache size;
Mirror ~20% better than Base; for Trace 1 RAID5 closes to within ~1% of
Base at 16 MB (the cache eliminates the write penalty); for Trace 2
RAID5 stays competitive because of its load balancing at low hit
ratios.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Series
from repro.experiments.fig05_array_size import ORGS
from repro.experiments.points import Point, TraceSpec, run_points

__all__ = ["run", "points", "assemble", "CACHE_MB"]

CACHE_MB = [8, 16, 32, 64]


def points(scale: float = 1.0) -> list[Point]:
    return [
        Point.sim(
            "fig12", (which, org, mb), TraceSpec(which, scale), org, cached=True, cache_mb=mb
        )
        for which in (1, 2)
        for org, _ in ORGS
        for mb in CACHE_MB
    ]


def assemble(scale: float, values: dict) -> list[ExperimentResult]:
    results = []
    for which in (1, 2):
        series = [
            Series(
                label,
                CACHE_MB,
                [values[(which, org, mb)].mean_response_ms for mb in CACHE_MB],
            )
            for org, label in ORGS
        ]
        results.append(
            ExperimentResult(
                exp_id="fig12",
                title=f"Response time vs cache size (cached), Trace {which}",
                xlabel="cache size (MB)",
                ylabel="mean response time (ms)",
                series=series,
            )
        )
    return results


def run(scale: float = 1.0) -> list[ExperimentResult]:
    return assemble(scale, run_points(points(scale)))
