"""Figure 12: response time vs cache size, cached organizations (N=10).

Expected shape (§4.3.1): all organizations improve with cache size;
Mirror ~20% better than Base; for Trace 1 RAID5 closes to within ~1% of
Base at 16 MB (the cache eliminates the write penalty); for Trace 2
RAID5 stays competitive because of its load balancing at low hit
ratios.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Series, get_trace, response_time
from repro.experiments.fig05_array_size import ORGS

__all__ = ["run", "CACHE_MB"]

CACHE_MB = [8, 16, 32, 64]


def run(scale: float = 1.0) -> list[ExperimentResult]:
    results = []
    for which in (1, 2):
        trace = get_trace(which, scale)
        series = []
        for org, label in ORGS:
            ys = [
                response_time(org, trace, cached=True, cache_mb=mb).mean_response_ms
                for mb in CACHE_MB
            ]
            series.append(Series(label, CACHE_MB, ys))
        results.append(
            ExperimentResult(
                exp_id="fig12",
                title=f"Response time vs cache size (cached), Trace {which}",
                xlabel="cache size (MB)",
                ylabel="mean response time (ms)",
                series=series,
            )
        )
    return results
