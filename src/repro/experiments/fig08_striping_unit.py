"""Figure 8: response time vs RAID5 striping unit (non-cached, N = 10).

Expected shape (§4.2.2): Trace 1 optimal around 8 blocks with little
difference from 1 to 16, degrading from 32 up; Trace 2 optimal at
1 block (load balancing dominates), degrading steadily with size.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Series, get_trace, response_time

__all__ = ["run", "UNITS"]

UNITS = [1, 2, 4, 8, 16, 32, 64]


def run(scale: float = 1.0) -> list[ExperimentResult]:
    results = []
    for which in (1, 2):
        trace = get_trace(which, scale)
        ys = [
            response_time("raid5", trace, striping_unit=su).mean_response_ms
            for su in UNITS
        ]
        results.append(
            ExperimentResult(
                exp_id="fig8",
                title=f"RAID5 striping unit (uncached), Trace {which}",
                xlabel="striping unit (blocks)",
                ylabel="mean response time (ms)",
                series=[Series("RAID5", UNITS, ys)],
            )
        )
    return results
