"""Figure 8: response time vs RAID5 striping unit (non-cached, N = 10).

Expected shape (§4.2.2): Trace 1 optimal around 8 blocks with little
difference from 1 to 16, degrading from 32 up; Trace 2 optimal at
1 block (load balancing dominates), degrading steadily with size.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Series
from repro.experiments.points import Point, TraceSpec, run_points

__all__ = ["run", "points", "assemble", "UNITS"]

UNITS = [1, 2, 4, 8, 16, 32, 64]


def points(scale: float = 1.0) -> list[Point]:
    return [
        Point.sim("fig8", (which, su), TraceSpec(which, scale), "raid5", striping_unit=su)
        for which in (1, 2)
        for su in UNITS
    ]


def assemble(scale: float, values: dict) -> list[ExperimentResult]:
    return [
        ExperimentResult(
            exp_id="fig8",
            title=f"RAID5 striping unit (uncached), Trace {which}",
            xlabel="striping unit (blocks)",
            ylabel="mean response time (ms)",
            series=[
                Series("RAID5", UNITS, [values[(which, su)].mean_response_ms for su in UNITS])
            ],
        )
        for which in (1, 2)
    ]


def run(scale: float = 1.0) -> list[ExperimentResult]:
    return assemble(scale, run_points(points(scale)))
