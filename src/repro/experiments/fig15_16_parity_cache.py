"""Figures 15 and 16: RAID4 with parity caching vs RAID5 (cached).

Figure 15: hit ratios — buffered parity occupies cache slots, so
RAID4's hit ratio trails RAID5's slightly (visibly only for Trace 2 at
small caches).

Figure 16: response time vs cache size — RAID4-PC wins at every cache
size for N = 10; by ~1-2% on Trace 1 and up to ~15% on Trace 2 at
16 MB, the gap narrowing with cache size (§4.4.1).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, Series
from repro.experiments.points import Point, TraceSpec, run_points

__all__ = [
    "run_fig15",
    "run_fig16",
    "points_fig15",
    "assemble_fig15",
    "points_fig16",
    "assemble_fig16",
    "CACHE_MB",
]

CACHE_MB = [8, 16, 32, 64]
BLOCKS_PER_MB = 256


def points_fig15(scale: float = 1.0) -> list[Point]:
    return [
        Point.hitratio(
            "fig15", (which, mode, mb), TraceSpec(which, scale * 4), mb * BLOCKS_PER_MB, mode
        )
        for which in (1, 2)
        for mode in ("parity", "raid4pc")
        for mb in CACHE_MB
    ]


def assemble_fig15(scale: float, values: dict) -> list[ExperimentResult]:
    results = []
    for which in (1, 2):
        r5 = [values[(which, "parity", mb)] for mb in CACHE_MB]
        r4 = [values[(which, "raid4pc", mb)] for mb in CACHE_MB]
        results.append(
            ExperimentResult(
                exp_id="fig15",
                title=f"Hit ratios, RAID5 vs RAID4 parity caching, Trace {which}",
                xlabel="cache size (MB)",
                ylabel="hit ratio",
                series=[
                    Series("read RAID5", CACHE_MB, [s.read_hit_ratio for s in r5]),
                    Series("read RAID4-PC", CACHE_MB, [s.read_hit_ratio for s in r4]),
                    Series("write RAID5", CACHE_MB, [s.write_hit_ratio for s in r5]),
                    Series("write RAID4-PC", CACHE_MB, [s.write_hit_ratio for s in r4]),
                ],
            )
        )
    return results


def run_fig15(scale: float = 1.0) -> list[ExperimentResult]:
    return assemble_fig15(scale, run_points(points_fig15(scale)))


PAIR16 = (("raid5", "RAID5"), ("raid4", "RAID4-PC"))


def points_fig16(scale: float = 1.0) -> list[Point]:
    return [
        Point.sim(
            "fig16", (which, org, mb), TraceSpec(which, scale), org, cached=True, cache_mb=mb
        )
        for which in (1, 2)
        for org, _ in PAIR16
        for mb in CACHE_MB
    ]


def assemble_fig16(scale: float, values: dict) -> list[ExperimentResult]:
    results = []
    for which in (1, 2):
        series = [
            Series(
                label,
                CACHE_MB,
                [values[(which, org, mb)].mean_response_ms for mb in CACHE_MB],
            )
            for org, label in PAIR16
        ]
        results.append(
            ExperimentResult(
                exp_id="fig16",
                title=f"Response time vs cache size, RAID4-PC vs RAID5, Trace {which}",
                xlabel="cache size (MB)",
                ylabel="mean response time (ms)",
                series=series,
            )
        )
    return results


def run_fig16(scale: float = 1.0) -> list[ExperimentResult]:
    return assemble_fig16(scale, run_points(points_fig16(scale)))
