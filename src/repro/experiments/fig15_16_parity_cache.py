"""Figures 15 and 16: RAID4 with parity caching vs RAID5 (cached).

Figure 15: hit ratios — buffered parity occupies cache slots, so
RAID4's hit ratio trails RAID5's slightly (visibly only for Trace 2 at
small caches).

Figure 16: response time vs cache size — RAID4-PC wins at every cache
size for N = 10; by ~1-2% on Trace 1 and up to ~15% on Trace 2 at
16 MB, the gap narrowing with cache size (§4.4.1).
"""

from __future__ import annotations

from repro.cache import simulate_hit_ratios
from repro.experiments.common import ExperimentResult, Series, get_trace, response_time
from repro.layout import Raid4Layout

__all__ = ["run_fig15", "run_fig16", "CACHE_MB"]

CACHE_MB = [8, 16, 32, 64]
BLOCKS_PER_MB = 256


def run_fig15(scale: float = 1.0) -> list[ExperimentResult]:
    results = []
    for which in (1, 2):
        trace = get_trace(which, scale * 4)
        layout = Raid4Layout(10, trace.blocks_per_disk, striping_unit=1)
        r5, r4 = [], []
        for mb in CACHE_MB:
            r5.append(simulate_hit_ratios(trace, 10, mb * BLOCKS_PER_MB, "parity"))
            r4.append(
                simulate_hit_ratios(
                    trace, 10, mb * BLOCKS_PER_MB, "raid4pc", layout=layout
                )
            )
        results.append(
            ExperimentResult(
                exp_id="fig15",
                title=f"Hit ratios, RAID5 vs RAID4 parity caching, Trace {which}",
                xlabel="cache size (MB)",
                ylabel="hit ratio",
                series=[
                    Series("read RAID5", CACHE_MB, [s.read_hit_ratio for s in r5]),
                    Series("read RAID4-PC", CACHE_MB, [s.read_hit_ratio for s in r4]),
                    Series("write RAID5", CACHE_MB, [s.write_hit_ratio for s in r5]),
                    Series("write RAID4-PC", CACHE_MB, [s.write_hit_ratio for s in r4]),
                ],
            )
        )
    return results


def run_fig16(scale: float = 1.0) -> list[ExperimentResult]:
    results = []
    for which in (1, 2):
        trace = get_trace(which, scale)
        series = []
        for org, label in (("raid5", "RAID5"), ("raid4", "RAID4-PC")):
            ys = [
                response_time(org, trace, cached=True, cache_mb=mb).mean_response_ms
                for mb in CACHE_MB
            ]
            series.append(Series(label, CACHE_MB, ys))
        results.append(
            ExperimentResult(
                exp_id="fig16",
                title=f"Response time vs cache size, RAID4-PC vs RAID5, Trace {which}",
                xlabel="cache size (MB)",
                ylabel="mean response time (ms)",
                series=series,
            )
        )
    return results
