"""Simulation validation: invariant checking, replay and golden regression.

Opt-in (``run_trace(..., validate=True)``) runtime verification of the
simulator's physics:

* :class:`ValidationMonitor` installs passive probes across the kernel,
  disks, channels, caches and controllers, and fans events out to
  pluggable :class:`InvariantChecker` s;
* the stock checkers guard request conservation, parity-group
  consistency, cache accounting and resource sanity;
* :func:`verify_replay` enforces the determinism contract (same seed ⇒
  bit-identical results);
* :mod:`repro.validate.golden` snapshots results for regression
  fixtures under ``tests/golden/``.

The probes cost one ``is not None`` check per tap when validation is
off, so the default path is unaffected.
"""

from repro.validate.cache_accounting import CacheAccountingChecker
from repro.validate.checker import CheckContext, InvariantChecker, InvariantViolation
from repro.validate.conservation import RequestConservationChecker
from repro.validate.golden import (
    GoldenMismatch,
    compare_snapshots,
    diff_snapshots,
    load_snapshot,
    save_snapshot,
    snapshot,
)
from repro.validate.monitor import ValidationMonitor, default_checkers
from repro.validate.parity import ParityConsistencyChecker
from repro.validate.replay import ReplayMismatch, result_fingerprint, verify_replay
from repro.validate.resources import ResourceSanityChecker

__all__ = [
    "CacheAccountingChecker",
    "CheckContext",
    "InvariantChecker",
    "InvariantViolation",
    "RequestConservationChecker",
    "GoldenMismatch",
    "compare_snapshots",
    "diff_snapshots",
    "load_snapshot",
    "save_snapshot",
    "snapshot",
    "ValidationMonitor",
    "default_checkers",
    "ParityConsistencyChecker",
    "ReplayMismatch",
    "result_fingerprint",
    "verify_replay",
    "ResourceSanityChecker",
]
