"""Deterministic replay verification.

The simulator's reproducibility contract: same seed, same configuration,
same trace ⇒ the same run, bit for bit.  The kernel earns this with its
``(time, sequence)`` event heap (deterministic tie-breaking) and seeded
RNGs; :func:`verify_replay` enforces it end-to-end by running the same
simulation twice and comparing *complete* result fingerprints —
including every individual response-time sample, so even a single
reordered event shows up.
"""

from __future__ import annotations

import hashlib
import json

from repro.validate.golden import diff_snapshots, snapshot

__all__ = ["ReplayMismatch", "result_fingerprint", "verify_replay"]


class ReplayMismatch(AssertionError):
    """Two runs of the same seeded configuration diverged."""

    def __init__(self, diffs: list[str]) -> None:
        shown = "\n  ".join(diffs[:20])
        more = f"\n  ... and {len(diffs) - 20} more" if len(diffs) > 20 else ""
        super().__init__(
            "simulation is not deterministic: identical seed and config "
            f"produced {len(diffs)} differing field(s):\n  {shown}{more}"
        )
        self.diffs = diffs


def result_fingerprint(result) -> str:
    """SHA-256 over a canonical JSON digest of *result*.

    Includes every response-time sample, so two results share a
    fingerprint only if the runs were observationally identical.
    """
    snap = snapshot(result, include_samples=True)
    payload = json.dumps(snap, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def verify_replay(config, trace, runs: int = 2, **run_kw) -> str:
    """Run ``run_trace(config, trace)`` *runs* times; all must agree.

    Returns the common fingerprint.  Raises :class:`ReplayMismatch`
    with a field-level diff on the first divergence.  Extra keyword
    arguments are forwarded to :func:`repro.sim.runner.run_trace`.
    """
    from repro.sim.runner import run_trace

    if runs < 2:
        raise ValueError("need at least two runs to verify replay")
    reference = None
    ref_print = None
    for _ in range(runs):
        result = run_trace(config, trace, **run_kw)
        snap = snapshot(result, include_samples=True)
        fp = hashlib.sha256(
            json.dumps(snap, sort_keys=True, separators=(",", ":")).encode()
        ).hexdigest()
        if reference is None:
            reference, ref_print = snap, fp
        elif fp != ref_print:
            diffs = diff_snapshots(reference, snap, rtol=0.0, atol=0.0)
            raise ReplayMismatch(diffs or [f"fingerprint {fp} != {ref_print}"])
    assert ref_print is not None
    return ref_print
