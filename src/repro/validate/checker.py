"""Invariant-checker framework.

A checker is a passive observer: the :class:`~repro.validate.monitor.
ValidationMonitor` fans simulation events out to every attached checker
(disk submissions/completions, channel transfers, cache mutations,
request admissions, destages, degraded accesses, request release and
completion), and calls :meth:`InvariantChecker.finalize` once the run
ends.  A checker that sees physics violated raises
:class:`InvariantViolation` with enough context to debug the run.

Checkers must never mutate simulation state — they exist so that a
``validate=True`` run is *observationally identical* to a normal run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.array.controller import ArrayController
    from repro.cache.lru import LRUCache
    from repro.channel.bus import Channel
    from repro.des import Environment
    from repro.disk.drive import Disk
    from repro.disk.request import DiskRequest
    from repro.sim.results import RunResult

__all__ = ["InvariantViolation", "CheckContext", "InvariantChecker"]


class InvariantViolation(AssertionError):
    """A machine-checked simulation invariant failed.

    Derives from :class:`AssertionError`: a violation is a bug in the
    simulator (or an injected fault), never a property of the workload.
    """

    def __init__(self, checker: str, message: str) -> None:
        super().__init__(f"[{checker}] {message}")
        self.checker = checker


class CheckContext:
    """What every checker can see: the environment, the controllers and
    the placement of each disk within its array.

    Parameters
    ----------
    env, controllers:
        The simulation under observation.
    warmup_ms:
        Statistics cutoff of the run (requests released earlier are
        simulated but not measured).
    """

    def __init__(self, env: "Environment", controllers, warmup_ms: float = 0.0) -> None:
        self.env = env
        self.controllers = list(controllers)
        self.warmup_ms = warmup_ms
        #: ``disk -> (array_index, disk_index, controller)`` for every
        #: disk of every attached array (identity-keyed).
        self.disk_info: dict[Any, tuple[int, int, "ArrayController"]] = {}
        for ai, ctrl in enumerate(self.controllers):
            for di, disk in enumerate(ctrl.disks):
                self.disk_info[disk] = (ai, di, ctrl)

    def array_of(self, controller: "ArrayController") -> int:
        """Index of *controller* among the attached arrays."""
        return self.controllers.index(controller)


class InvariantChecker:
    """Base class: every callback defaults to a no-op.

    Subclasses set :attr:`name` (used in violation messages), override
    the callbacks they care about, and implement :meth:`finalize`.
    """

    name = "invariant"

    # -- lifecycle -----------------------------------------------------------
    def attach(self, ctx: CheckContext) -> None:
        """Called once before the run starts."""

    def finalize(self, ctx: CheckContext, result: Optional["RunResult"]) -> None:
        """Called once after the run ends (*result* may be ``None`` when
        the monitor is used outside :func:`repro.sim.runner.run_trace`)."""

    # -- simulation taps -----------------------------------------------------
    def on_disk_submit(self, ctx: CheckContext, disk: "Disk", request: "DiskRequest") -> None:
        pass

    def on_disk_complete(self, ctx: CheckContext, disk: "Disk", request: "DiskRequest") -> None:
        pass

    def on_channel_transfer(
        self, ctx: CheckContext, channel: "Channel", nbytes: int, duration: float
    ) -> None:
        pass

    def on_cache_op(self, ctx: CheckContext, cache: "LRUCache", op: str, arg: int) -> None:
        pass

    def on_handle(
        self, ctx: CheckContext, controller: "ArrayController",
        lstart: int, nblocks: int, is_write: bool,
    ) -> None:
        pass

    def on_destage(self, ctx: CheckContext, controller: "ArrayController", run) -> None:
        pass

    def on_write_group(self, ctx: CheckContext, controller: "ArrayController", group) -> None:
        pass

    def on_parity_update(
        self, ctx: CheckContext, controller: "ArrayController", run, parity_runs
    ) -> None:
        pass

    def on_degraded(self, ctx: CheckContext, controller: "ArrayController", kind: str) -> None:
        pass

    def on_data_loss(
        self, ctx: CheckContext, controller: "ArrayController", kind: str, disk: int, pblock: int
    ) -> None:
        pass

    def on_latent_repair(
        self, ctx: CheckContext, controller: "ArrayController", disk: int, pblock: int, how: str
    ) -> None:
        pass

    def on_request_released(self, ctx: CheckContext, rid: int, time: float) -> None:
        pass

    def on_request_completed(self, ctx: CheckContext, rid: int, time: float) -> None:
        pass

    # -- helpers -------------------------------------------------------------
    def fail(self, message: str) -> None:
        """Raise an :class:`InvariantViolation` attributed to this checker."""
        raise InvariantViolation(self.name, message)
