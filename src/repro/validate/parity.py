"""Parity-group consistency for the parity organizations.

The redundancy contract of RAID5 / RAID4 / Parity Striping is that
every update of a data block carries an update of the parity block
protecting it.  The checker verifies this at the point where it can be
broken — the controllers' write planning and destage paths — by
*independently* re-deriving the protected parity addresses from the
layout and comparing them with the parity updates the controller
actually issues:

* **Uncached write groups** (``on_write_group``): for each data block
  of the group, ``layout.parity_of`` must be covered by the group's
  ``parity_runs`` (full-stripe, reconstruct and RMW modes alike).
* **Cached destage runs** (``on_parity_update``): the parity runs a
  destage submits — or, under RAID4 parity caching, buffers as deltas —
  must cover ``layout.parity_of`` of every destaged logical block.
* **Disk stream** (finalize): an array whose data disks completed write
  traffic must have issued parity-area write traffic (or still hold
  buffered deltas); and no write may land on a physical block the
  layout cannot classify.

Degraded arrays are exempted exactly where redundancy is genuinely
gone — and no wider.  The exemption is *per block*, through the
controller's own spare/watermark-aware ``_is_failed``: once a rebuild
has reconstructed a block onto the spare (below the watermark), that
block is live again and its parity contract is enforced like any other;
only blocks still above the watermark (or on a spare-less failed disk)
are exempt.  The stream-level finalize audit skips arrays that were
degraded at any point of the run (``ever_failed``): a RAID4 array whose
parity disk spent the run failed may legitimately complete data writes
with no parity traffic at all.
"""

from __future__ import annotations

from repro.disk.request import AccessKind
from repro.validate.checker import CheckContext, InvariantChecker

__all__ = ["ParityConsistencyChecker"]

_WRITE_KINDS = (AccessKind.WRITE, AccessKind.RMW)


class ParityConsistencyChecker(InvariantChecker):
    """Every data update is covered by a matching parity update."""

    name = "parity-consistency"

    def attach(self, ctx: CheckContext) -> None:
        self._groups_checked = 0
        #: Per-array counters of completed data / submitted parity writes.
        self._data_writes: dict[int, int] = {}
        self._parity_writes: dict[int, int] = {}
        self._deltas_buffered: dict[int, int] = {}

    @staticmethod
    def _failed_disk(controller) -> int | None:
        return getattr(controller, "failed_disk", None)

    @staticmethod
    def _gone(controller, disk: int, pblock: int) -> bool:
        """Is this physical block genuinely without a live drive?

        Delegates to the degraded controller's spare/watermark-aware
        ``_is_failed`` so a rebuild-in-progress group is exempted only
        above the watermark: reconstructed blocks on the spare are held
        to the full parity contract again.
        """
        is_failed = getattr(controller, "_is_failed", None)
        if is_failed is None:
            return False
        return bool(is_failed(disk, pblock))

    # -- plan-level checks ---------------------------------------------------
    def on_write_group(self, ctx: CheckContext, controller, group) -> None:
        layout = controller.layout
        if not layout.has_parity:
            return
        provided = {
            (run.disk, pb)
            for run in group.parity_runs
            for pb in range(run.start, run.end)
        }
        for addr, lblock in self._required_parity(layout, group.data_runs, controller):
            if self._gone(controller, addr.disk, addr.block):
                continue
            if (addr.disk, addr.block) not in provided:
                self.fail(
                    f"write group ({group.mode.value}) updates lblock {lblock} "
                    f"but not its parity at disk {addr.disk} "
                    f"pblock {addr.block} (t={ctx.env.now:g})"
                )
        self._groups_checked += 1

    def on_parity_update(self, ctx: CheckContext, controller, run, parity_runs) -> None:
        layout = controller.layout
        ai = ctx.array_of(controller)
        provided = {
            (prun.disk, pb)
            for prun in parity_runs
            for pb in range(prun.start, prun.end)
        }
        self._deltas_buffered[ai] = self._deltas_buffered.get(ai, 0) + len(provided)
        for lblock in run.lblocks:
            addr = layout.parity_of(lblock)
            if addr is None:
                self.fail(f"destaged lblock {lblock} has no parity in {layout!r}")
            if (addr.disk, addr.block) not in provided:
                self.fail(
                    f"destage of lblock {lblock} (disk {run.disk}, "
                    f"pblocks [{run.start}, {run.end})) omits its parity at "
                    f"disk {addr.disk} pblock {addr.block} (t={ctx.env.now:g})"
                )
        self._groups_checked += 1

    @classmethod
    def _required_parity(cls, layout, data_runs, controller):
        """``(parity_address, lblock)`` for each live data block of the runs."""
        out = []
        for run in data_runs:
            for pb in range(run.start, run.end):
                if cls._gone(controller, run.disk, pb):
                    continue
                lblock = layout.logical_of(run.disk, pb)
                if lblock is None:
                    continue
                addr = layout.parity_of(lblock)
                if addr is not None:
                    out.append((addr, lblock))
        return out

    # -- stream-level checks ---------------------------------------------------
    def on_disk_submit(self, ctx: CheckContext, disk, request) -> None:
        info = ctx.disk_info.get(disk)
        if info is None or request.kind not in _WRITE_KINDS:
            return
        ai, di, ctrl = info
        layout = ctrl.layout
        if not layout.has_parity:
            return
        for pb in range(request.start_block, request.end_block):
            if layout.is_parity_block(di, pb):
                self._parity_writes[ai] = self._parity_writes.get(ai, 0) + 1

    def on_disk_complete(self, ctx: CheckContext, disk, request) -> None:
        info = ctx.disk_info.get(disk)
        if info is None or request.kind not in _WRITE_KINDS:
            return
        ai, di, ctrl = info
        layout = ctrl.layout
        if not layout.has_parity:
            return
        for pb in range(request.start_block, request.end_block):
            if self._gone(ctrl, di, pb):
                continue
            if layout.logical_of(di, pb) is not None:
                self._data_writes[ai] = self._data_writes.get(ai, 0) + 1

    def finalize(self, ctx: CheckContext, result) -> None:
        for ai, ctrl in enumerate(ctx.controllers):
            if not ctrl.layout.has_parity:
                continue
            if self._failed_disk(ctrl) is not None or getattr(ctrl, "ever_failed", False):
                continue  # arrays degraded during the run may legitimately skip parity
            data = self._data_writes.get(ai, 0)
            parity = self._parity_writes.get(ai, 0)
            buffered = self._deltas_buffered.get(ai, 0)
            if data > 0 and parity + buffered == 0:
                self.fail(
                    f"array {ai} completed {data} data-block write(s) but "
                    f"never issued or buffered a parity update"
                )
