"""Golden-snapshot regression support.

A *snapshot* is a JSON-able digest of a :class:`~repro.sim.results.
RunResult`: run metadata, the response-time tallies (count, mean,
min/max, selected percentiles) and every per-array counter.  Snapshots
are stored under ``tests/golden/`` and compared with
:func:`diff_snapshots`, which treats integers exactly and floats with a
configurable tolerance — so a golden test distinguishes "the simulator
changed behaviour" from "floating-point noise".

Regenerate fixtures with ``pytest --regen-golden`` after an intentional
behaviour change, and eyeball the diff before committing it.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Optional

__all__ = [
    "GoldenMismatch",
    "snapshot",
    "diff_snapshots",
    "compare_snapshots",
    "save_snapshot",
    "load_snapshot",
]

#: Percentiles recorded for each tally.
_PERCENTILES = (50, 90, 95, 99)


class GoldenMismatch(AssertionError):
    """An actual run diverged from its golden snapshot."""

    def __init__(self, diffs: list[str]) -> None:
        shown = "\n  ".join(diffs[:20])
        more = f"\n  ... and {len(diffs) - 20} more" if len(diffs) > 20 else ""
        super().__init__(f"{len(diffs)} field(s) diverged from golden:\n  {shown}{more}")
        self.diffs = diffs


def _tally_snapshot(tally, include_samples: bool) -> dict:
    out = {
        "count": tally.count,
        "mean": tally.mean,
        "min": tally.min if tally.count else None,
        "max": tally.max if tally.count else None,
    }
    if tally.count:
        for q in _PERCENTILES:
            out[f"p{q}"] = tally.percentile(q)
    if include_samples:
        out["samples"] = [float(s) for s in tally.samples]
    return out


def snapshot(result, include_samples: bool = False) -> dict:
    """A JSON-able digest of *result*.

    With ``include_samples=True`` every response-time observation is
    recorded verbatim — useful for bit-exact replay fingerprints, too
    bulky for committed golden files.
    """
    out = {
        "meta": {
            "name": result.name,
            "organization": result.organization,
            "n": result.n,
            "narrays": result.narrays,
            "simulated_ms": result.simulated_ms,
            "warmup_ms": result.warmup_ms,
            "requests": result.requests,
        },
        "response": _tally_snapshot(result.response, include_samples),
        "read_response": _tally_snapshot(result.read_response, include_samples),
        "write_response": _tally_snapshot(result.write_response, include_samples),
        "arrays": [
            {
                "disk_accesses": [int(x) for x in a.disk_accesses],
                "disk_utilization": [float(x) for x in a.disk_utilization],
                "channel_utilization": float(a.channel_utilization),
                "read_hits": a.read_hits,
                "read_misses": a.read_misses,
                "write_hits": a.write_hits,
                "write_misses": a.write_misses,
                "sync_writebacks": a.sync_writebacks,
                "destaged_blocks": a.destaged_blocks,
            }
            for a in result.arrays
        ],
    }
    # Failure-scenario outcome, only for failure-injected runs: the
    # section is added conditionally so every pre-existing fixture (and
    # every healthy run's fingerprint) is untouched by the subsystem's
    # existence.
    report = getattr(result, "failures", None)
    if report is not None:
        out["failures"] = report.to_dict()
    return out


def _walk(expected, actual, path, rtol, atol, diffs) -> None:
    if isinstance(expected, dict):
        if not isinstance(actual, dict):
            diffs.append(f"{path}: expected mapping, got {type(actual).__name__}")
            return
        for key in expected:
            if key not in actual:
                diffs.append(f"{path}.{key}: missing")
            else:
                _walk(expected[key], actual[key], f"{path}.{key}", rtol, atol, diffs)
        for key in actual:
            if key not in expected:
                diffs.append(f"{path}.{key}: unexpected")
    elif isinstance(expected, list):
        if not isinstance(actual, list):
            diffs.append(f"{path}: expected list, got {type(actual).__name__}")
            return
        if len(expected) != len(actual):
            diffs.append(f"{path}: length {len(actual)} != {len(expected)}")
            return
        for i, (e, a) in enumerate(zip(expected, actual)):
            _walk(e, a, f"{path}[{i}]", rtol, atol, diffs)
    elif isinstance(expected, bool) or expected is None or isinstance(expected, str):
        if expected != actual:
            diffs.append(f"{path}: {actual!r} != {expected!r}")
    elif isinstance(expected, int) and isinstance(actual, int):
        # Counters are exact: a count that moved is a behaviour change.
        if expected != actual:
            diffs.append(f"{path}: {actual} != {expected}")
    elif isinstance(expected, (int, float)):
        if not isinstance(actual, (int, float)):
            diffs.append(f"{path}: expected number, got {type(actual).__name__}")
        elif math.isnan(expected) and math.isnan(actual):
            pass
        elif not math.isclose(float(actual), float(expected), rel_tol=rtol, abs_tol=atol):
            diffs.append(f"{path}: {actual!r} != {expected!r} (rtol={rtol:g}, atol={atol:g})")
    else:
        if expected != actual:
            diffs.append(f"{path}: {actual!r} != {expected!r}")


def diff_snapshots(expected: dict, actual: dict, rtol: float = 1e-9, atol: float = 1e-9) -> list[str]:
    """Human-readable differences between two snapshots (empty == match).

    Integers (request counts, hits, destaged blocks...) compare exactly;
    floats within ``rtol``/``atol``.  The default tolerances are tight on
    purpose: the simulator is deterministic, so a golden run should
    reproduce its fixture almost bit-exactly on one platform, with the
    tolerance only absorbing cross-platform libm differences.
    """
    diffs: list[str] = []
    _walk(expected, actual, "$", rtol, atol, diffs)
    return diffs


def compare_snapshots(expected: dict, actual: dict, rtol: float = 1e-9, atol: float = 1e-9) -> None:
    """Raise :class:`GoldenMismatch` when the snapshots diverge."""
    diffs = diff_snapshots(expected, actual, rtol=rtol, atol=atol)
    if diffs:
        raise GoldenMismatch(diffs)


def save_snapshot(path: Path, snap: dict) -> None:
    """Write *snap* as deterministic, diff-friendly JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snap, indent=2, sort_keys=True) + "\n")


def load_snapshot(path: Path) -> Optional[dict]:
    """Read a snapshot, or ``None`` when the fixture does not exist."""
    path = Path(path)
    if not path.exists():
        return None
    return json.loads(path.read_text())
