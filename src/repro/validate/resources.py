"""Resource sanity: utilizations, queues and buffer pools obey physics.

No resource can be busy for longer than the simulated span, no queue
can go negative, and the channel's own counters must agree with an
independent shadow accumulation of the transfers it reported.  These
are cheap global checks that catch whole classes of accounting bugs
(double-counted busy time, lost queue decrements, leaked track
buffers) regardless of which organization is running.
"""

from __future__ import annotations

import math

from repro.validate.checker import CheckContext, InvariantChecker

__all__ = ["ResourceSanityChecker"]

#: Slack for float accumulation when comparing against the simulated span.
_EPS = 1e-9


class _ChannelShadow:
    __slots__ = ("bytes", "busy", "count")

    def __init__(self) -> None:
        self.bytes = 0
        self.busy = 0.0
        self.count = 0


class ResourceSanityChecker(InvariantChecker):
    """Utilization in [0, 1], queues non-negative, pools bounded."""

    name = "resource-sanity"

    def attach(self, ctx: CheckContext) -> None:
        self._shadows: dict[int, _ChannelShadow] = {}
        self._channel_to_array: dict[int, int] = {}
        for ai, ctrl in enumerate(ctx.controllers):
            self._shadows[ai] = _ChannelShadow()
            self._channel_to_array[id(ctrl.channel)] = ai

    def on_channel_transfer(self, ctx: CheckContext, channel, nbytes, duration) -> None:
        ai = self._channel_to_array.get(id(channel))
        if ai is None:
            return
        if nbytes <= 0 or duration <= 0 or not math.isfinite(duration):
            self.fail(
                f"array {ai}: channel moved {nbytes} byte(s) in "
                f"{duration:g} ms (t={ctx.env.now:g})"
            )
        shadow = self._shadows[ai]
        shadow.bytes += nbytes
        shadow.busy += duration
        shadow.count += 1

    def on_disk_submit(self, ctx: CheckContext, disk, request) -> None:
        info = ctx.disk_info.get(disk)
        if info is None:
            return
        ai, di, _ = info
        qlen = disk.queue_length.value
        if qlen < 0 or disk.queue_length.min < 0:
            self.fail(
                f"array {ai} disk {di}: queue length went negative "
                f"(now {qlen:g}, min {disk.queue_length.min:g})"
            )

    def finalize(self, ctx: CheckContext, result) -> None:
        now = ctx.env.now
        span = now * (1.0 + _EPS) + _EPS
        for ai, ctrl in enumerate(ctx.controllers):
            self._check_disks(ai, ctrl, now, span)
            self._check_channel(ai, ctrl, now, span)
            self._check_buffers(ai, ctrl)
        if result is not None:
            self._check_result(result)

    def _check_disks(self, ai: int, ctrl, now: float, span: float) -> None:
        for di, disk in enumerate(ctrl.disks):
            where = f"array {ai} disk {di}"
            if disk.busy_time < 0 or disk.busy_time > span:
                self.fail(
                    f"{where}: busy for {disk.busy_time:g} ms of a "
                    f"{now:g} ms run"
                )
            util = disk.utilization(now)
            if not 0.0 <= util <= 1.0 + _EPS:
                self.fail(f"{where}: utilization {util:g} outside [0, 1]")
            if disk.seek_time_total < 0 or disk.seek_time_total > disk.busy_time + _EPS:
                self.fail(
                    f"{where}: seeks total {disk.seek_time_total:g} ms "
                    f"of {disk.busy_time:g} ms busy"
                )
            if disk.queue_length.min < 0:
                self.fail(
                    f"{where}: queue length reached {disk.queue_length.min:g}"
                )
            if disk.queue_length.value != disk.pending:
                self.fail(
                    f"{where}: queue statistic reads "
                    f"{disk.queue_length.value:g} but {disk.pending} "
                    f"request(s) are pending"
                )

    def _check_channel(self, ai: int, ctrl, now: float, span: float) -> None:
        channel = ctrl.channel
        shadow = self._shadows.get(ai)
        where = f"array {ai} channel"
        if channel.busy_time < 0 or channel.busy_time > span:
            self.fail(
                f"{where}: busy for {channel.busy_time:g} ms of a "
                f"{now:g} ms run"
            )
        util = channel.utilization(now)
        if not 0.0 <= util <= 1.0 + _EPS:
            self.fail(f"{where}: utilization {util:g} outside [0, 1]")
        if channel.queue_length.min < 0:
            self.fail(f"{where}: queue length reached {channel.queue_length.min:g}")
        if shadow is not None:
            if channel.transfers != shadow.count:
                self.fail(
                    f"{where}: counts {channel.transfers} transfer(s), "
                    f"{shadow.count} observed"
                )
            if channel.bytes_transferred != shadow.bytes:
                self.fail(
                    f"{where}: counts {channel.bytes_transferred} byte(s), "
                    f"{shadow.bytes} observed"
                )
            if not math.isclose(
                channel.busy_time, shadow.busy, rel_tol=1e-9, abs_tol=1e-6
            ):
                self.fail(
                    f"{where}: busy time {channel.busy_time:g} ms diverges "
                    f"from the {shadow.busy:g} ms of observed transfers"
                )

    def _check_buffers(self, ai: int, ctrl) -> None:
        pool = getattr(ctrl, "buffers", None)
        if pool is None:
            return
        where = f"array {ai} track-buffer pool"
        # Every acquisition is released in a ``finally`` before its
        # request completes, so a quiesced array holds no buffers: a
        # non-empty pool at end of run is a leak.
        if pool.in_use != 0:
            self.fail(
                f"{where}: {pool.in_use} of {pool.capacity} buffer(s) "
                f"still held at end of run"
            )
        if not 0 <= pool.peak_in_use <= pool.capacity:
            self.fail(
                f"{where}: peak use {pool.peak_in_use} of "
                f"{pool.capacity} buffer(s)"
            )

    def _check_result(self, result) -> None:
        for ai, metrics in enumerate(result.arrays):
            for di, util in enumerate(metrics.disk_utilization):
                if not 0.0 <= util <= 1.0 + _EPS:
                    self.fail(
                        f"RunResult array {ai} disk {di}: utilization "
                        f"{util:g} outside [0, 1]"
                    )
            if not 0.0 <= metrics.channel_utilization <= 1.0 + _EPS:
                self.fail(
                    f"RunResult array {ai}: channel utilization "
                    f"{metrics.channel_utilization:g} outside [0, 1]"
                )
            if any(n < 0 for n in metrics.disk_accesses):
                self.fail(f"RunResult array {ai}: negative disk access count")
