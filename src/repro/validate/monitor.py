"""The validation monitor: probe installation and event fan-out.

:class:`ValidationMonitor` is the single object the simulator knows
about.  :meth:`~ValidationMonitor.attach` installs it as the probe of
every disk, channel, cache and controller of the system and registers a
kernel event hook; each notification is fanned out to the attached
checkers.  :meth:`~ValidationMonitor.finalize` gives every checker its
end-of-run audit and then detaches all probes, so a monitored system
can keep running unobserved afterwards.

The monitor also owns one invariant itself: the kernel's clock must
never run backwards (the ``(time, sequence)`` heap contract).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.validate.checker import CheckContext, InvariantChecker, InvariantViolation

__all__ = ["ValidationMonitor", "default_checkers"]


def default_checkers() -> list[InvariantChecker]:
    """One instance of each stock checker."""
    from repro.validate.cache_accounting import CacheAccountingChecker
    from repro.validate.conservation import RequestConservationChecker
    from repro.validate.parity import ParityConsistencyChecker
    from repro.validate.resources import ResourceSanityChecker

    return [
        RequestConservationChecker(),
        ParityConsistencyChecker(),
        CacheAccountingChecker(),
        ResourceSanityChecker(),
    ]


class ValidationMonitor:
    """Fans simulation events out to a set of invariant checkers.

    Parameters
    ----------
    checkers:
        The checkers to run; ``None`` selects the four stock checkers
        (conservation, parity, cache accounting, resource sanity).
    """

    def __init__(self, checkers: Optional[Iterable[InvariantChecker]] = None) -> None:
        self.checkers = list(checkers) if checkers is not None else default_checkers()
        self.ctx: Optional[CheckContext] = None
        self._hook = None
        self._last_event_time = 0.0

    # -- lifecycle -----------------------------------------------------------
    def attach(self, env, controllers: Sequence, warmup_ms: float = 0.0) -> "ValidationMonitor":
        """Install probes on *controllers* and their resources."""
        if self.ctx is not None:
            raise RuntimeError("monitor is already attached")
        self.ctx = CheckContext(env, controllers, warmup_ms)
        self._last_event_time = env.now
        for ctrl in self.ctx.controllers:
            ctrl.probe = self
            ctrl.channel.probe = self
            for disk in ctrl.disks:
                disk.probe = self
            cache = getattr(ctrl, "cache", None)
            if cache is not None:
                cache.probe = self
        self._hook = env.on_event(self._on_kernel_event)
        for checker in self.checkers:
            checker.attach(self.ctx)
        return self

    def finalize(self, result=None) -> None:
        """Run every checker's end-of-run audit, then detach."""
        ctx = self._require_ctx()
        try:
            for checker in self.checkers:
                checker.finalize(ctx, result)
        finally:
            self.detach()

    def detach(self) -> None:
        """Remove all probes; the system continues unobserved."""
        if self.ctx is None:
            return
        for ctrl in self.ctx.controllers:
            ctrl.probe = None
            ctrl.channel.probe = None
            for disk in ctrl.disks:
                disk.probe = None
            cache = getattr(ctrl, "cache", None)
            if cache is not None:
                cache.probe = None
        if self._hook is not None:
            self.ctx.env.off_event(self._hook)
            self._hook = None
        self.ctx = None

    def _require_ctx(self) -> CheckContext:
        if self.ctx is None:
            raise RuntimeError("monitor is not attached")
        return self.ctx

    # -- kernel hook -----------------------------------------------------------
    def _on_kernel_event(self, time: float, event) -> None:
        if time < self._last_event_time:
            raise InvariantViolation(
                "event-order",
                f"clock ran backwards: event at {time:g} after {self._last_event_time:g}",
            )
        self._last_event_time = time

    # -- probe interface (called by the instrumented simulator) ---------------
    def on_disk_submit(self, disk, request) -> None:
        ctx = self.ctx
        for checker in self.checkers:
            checker.on_disk_submit(ctx, disk, request)

    def on_disk_complete(self, disk, request) -> None:
        ctx = self.ctx
        for checker in self.checkers:
            checker.on_disk_complete(ctx, disk, request)

    def on_channel_transfer(self, channel, nbytes, duration) -> None:
        ctx = self.ctx
        for checker in self.checkers:
            checker.on_channel_transfer(ctx, channel, nbytes, duration)

    def on_cache_op(self, cache, op: str, arg: int) -> None:
        ctx = self.ctx
        for checker in self.checkers:
            checker.on_cache_op(ctx, cache, op, arg)

    def on_handle(self, controller, lstart: int, nblocks: int, is_write: bool) -> None:
        ctx = self.ctx
        for checker in self.checkers:
            checker.on_handle(ctx, controller, lstart, nblocks, is_write)

    def on_destage(self, controller, run) -> None:
        ctx = self.ctx
        for checker in self.checkers:
            checker.on_destage(ctx, controller, run)

    def on_write_group(self, controller, group) -> None:
        ctx = self.ctx
        for checker in self.checkers:
            checker.on_write_group(ctx, controller, group)

    def on_parity_update(self, controller, run, parity_runs) -> None:
        ctx = self.ctx
        for checker in self.checkers:
            checker.on_parity_update(ctx, controller, run, parity_runs)

    def on_degraded(self, controller, kind: str) -> None:
        ctx = self.ctx
        for checker in self.checkers:
            checker.on_degraded(ctx, controller, kind)

    def on_data_loss(self, controller, kind: str, disk: int, pblock: int) -> None:
        ctx = self.ctx
        for checker in self.checkers:
            checker.on_data_loss(ctx, controller, kind, disk, pblock)

    def on_latent_repair(self, controller, disk: int, pblock: int, how: str) -> None:
        ctx = self.ctx
        for checker in self.checkers:
            checker.on_latent_repair(ctx, controller, disk, pblock, how)

    # -- tracing-only taps (consumed by repro.obs; validation ignores them) ---
    def on_disk_phase(self, disk, request, phase: str, t0: float, t1: float) -> None:
        pass

    def on_channel_request(self, channel, nbytes: int) -> None:
        pass

    def on_mirror_route(self, controller, run, chosen, alternate, seek_chosen, seek_alt) -> None:
        pass

    # -- workload notifications (called by the runner) -------------------------
    def request_released(self, rid: int, time: float) -> None:
        ctx = self._require_ctx()
        for checker in self.checkers:
            checker.on_request_released(ctx, rid, time)

    def request_completed(self, rid: int, time: float) -> None:
        ctx = self._require_ctx()
        for checker in self.checkers:
            checker.on_request_completed(ctx, rid, time)
