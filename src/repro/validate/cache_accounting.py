"""Cache accounting: the NV cache's books must balance.

A *shadow cache* replays every mutation the real
:class:`~repro.cache.lru.LRUCache` reports through its probe
(insertions, writes, evictions, destage begin/finish, slot
reservations) against an independent model of the §3.4 semantics, and
the occupancy invariant ::

    residents + old copies + reserved slots <= capacity

is asserted after every operation.  At finalize the shadow state must
match the real cache exactly (residency, dirty set, old-copy and
reservation counts), hit/miss counters must reconcile with the number
of requests the controller admitted, and the per-array counters
harvested into :class:`~repro.sim.results.RunResult` must equal the
live objects they were copied from.
"""

from __future__ import annotations

from repro.cache.lru import BlockState
from repro.validate.checker import CheckContext, InvariantChecker

__all__ = ["CacheAccountingChecker"]


class _ShadowEntry:
    __slots__ = ("dirty", "has_old", "destaging", "redirtied")

    def __init__(self) -> None:
        self.dirty = False
        self.has_old = False
        self.destaging = False
        self.redirtied = False


class _ShadowCache:
    """Independent replay of the LRU cache's state machine."""

    def __init__(self, cache) -> None:
        self.capacity = cache.capacity
        self.track_old = cache.track_old
        self.entries: dict[int, _ShadowEntry] = {}
        self.old_copies = 0
        self.reserved = 0

    @property
    def occupancy(self) -> int:
        return len(self.entries) + self.old_copies + self.reserved

    @property
    def free_slots(self) -> int:
        return self.capacity - self.occupancy

    def apply(self, op: str, arg: int) -> str | None:
        """Apply one mutation; returns an error string on a bad transition."""
        if op == "reserve":
            if self.free_slots < arg:
                return f"reserved {arg} slot(s) with only {self.free_slots} free"
            self.reserved += arg
        elif op == "release":
            if arg > self.reserved:
                return f"released {arg} of {self.reserved} reserved slot(s)"
            self.reserved -= arg
        elif op == "insert_clean":
            if arg in self.entries:
                return f"insert_clean of resident block {arg}"
            if self.free_slots < 1:
                return f"insert_clean of block {arg} with no free slot"
            self.entries[arg] = _ShadowEntry()
        elif op == "write":
            entry = self.entries.get(arg)
            if entry is None:
                if self.free_slots < 1:
                    return f"write-miss insert of block {arg} with no free slot"
                entry = _ShadowEntry()
                entry.dirty = True
                self.entries[arg] = entry
            elif not entry.dirty:
                entry.dirty = True
                if self.track_old:
                    if self.free_slots < 1:
                        return f"old copy of block {arg} retained with no free slot"
                    entry.has_old = True
                    self.old_copies += 1
            elif entry.destaging:
                entry.redirtied = True
        elif op == "evict":
            entry = self.entries.pop(arg, None)
            if entry is None:
                return f"evicted non-resident block {arg}"
            if entry.dirty:
                return f"evicted dirty block {arg}"
            if entry.destaging:
                return f"evicted block {arg} mid-destage"
        elif op == "begin_destage":
            entry = self.entries.get(arg)
            if entry is None or not entry.dirty:
                return f"begin_destage of non-dirty block {arg}"
            if entry.destaging:
                return f"begin_destage of block {arg} already destaging"
            entry.destaging = True
            entry.redirtied = False
        elif op == "finish_destage":
            entry = self.entries.get(arg)
            if entry is None:
                return None  # defensive no-op, mirrors the real cache
            entry.destaging = False
            if entry.has_old:
                entry.has_old = False
                self.old_copies -= 1
            if entry.redirtied:
                entry.redirtied = False
                if self.track_old and self.free_slots >= 1:
                    entry.has_old = True
                    self.old_copies += 1
            else:
                entry.dirty = False
        else:
            return f"unknown cache operation {op!r}"
        return None


class CacheAccountingChecker(InvariantChecker):
    """Hits, misses, occupancy and destage counters must reconcile."""

    name = "cache-accounting"

    def attach(self, ctx: CheckContext) -> None:
        self._shadows: dict[int, _ShadowCache] = {}
        self._cache_to_array: dict[int, int] = {}
        self._reads: dict[int, int] = {}
        self._writes: dict[int, int] = {}
        self._destaged: dict[int, int] = {}
        for ai, ctrl in enumerate(ctx.controllers):
            cache = getattr(ctrl, "cache", None)
            if cache is not None:
                self._shadows[ai] = _ShadowCache(cache)
                self._cache_to_array[id(cache)] = ai

    def on_cache_op(self, ctx: CheckContext, cache, op: str, arg: int) -> None:
        ai = self._cache_to_array.get(id(cache))
        if ai is None:
            return
        error = self._shadows[ai].apply(op, arg)
        if error is not None:
            self.fail(f"array {ai}: {error} (t={ctx.env.now:g})")
        if cache.occupancy > cache.capacity or cache.free_slots < 0:
            self.fail(
                f"array {ai}: occupancy {cache.occupancy} exceeds capacity "
                f"{cache.capacity} after {op!r} (t={ctx.env.now:g})"
            )

    def on_handle(self, ctx: CheckContext, controller, lstart, nblocks, is_write) -> None:
        if getattr(controller, "cache", None) is None:
            return
        ai = ctx.array_of(controller)
        counts = self._writes if is_write else self._reads
        counts[ai] = counts.get(ai, 0) + 1

    def on_destage(self, ctx: CheckContext, controller, run) -> None:
        ai = ctx.array_of(controller)
        self._destaged[ai] = self._destaged.get(ai, 0) + run.nblocks

    def finalize(self, ctx: CheckContext, result) -> None:
        for ai, shadow in self._shadows.items():
            ctrl = ctx.controllers[ai]
            cache = ctrl.cache
            self._check_shadow(ai, shadow, cache)

            reads = self._reads.get(ai, 0)
            writes = self._writes.get(ai, 0)
            if cache.read_hits + cache.read_misses != reads:
                self.fail(
                    f"array {ai}: read hits ({cache.read_hits}) + misses "
                    f"({cache.read_misses}) != {reads} read requests admitted"
                )
            if cache.write_hits + cache.write_misses != writes:
                self.fail(
                    f"array {ai}: write hits ({cache.write_hits}) + misses "
                    f"({cache.write_misses}) != {writes} write requests admitted"
                )
            destaged = self._destaged.get(ai, 0)
            if destaged != ctrl.destaged_blocks:
                self.fail(
                    f"array {ai}: controller counts {ctrl.destaged_blocks} "
                    f"destaged block(s) but {destaged} were observed"
                )
            if result is not None and ai < len(result.arrays):
                metrics = result.arrays[ai]
                pairs = [
                    ("read_hits", metrics.read_hits, cache.read_hits),
                    ("read_misses", metrics.read_misses, cache.read_misses),
                    ("write_hits", metrics.write_hits, cache.write_hits),
                    ("write_misses", metrics.write_misses, cache.write_misses),
                    ("sync_writebacks", metrics.sync_writebacks, ctrl.sync_writebacks),
                    ("destaged_blocks", metrics.destaged_blocks, ctrl.destaged_blocks),
                ]
                for field, harvested, live in pairs:
                    if harvested != live:
                        self.fail(
                            f"array {ai}: RunResult.{field}={harvested} "
                            f"diverges from the live counter {live}"
                        )

    def _check_shadow(self, ai: int, shadow: _ShadowCache, cache) -> None:
        actual_resident = {lb for lb, _ in cache.iter_blocks()}
        if actual_resident != set(shadow.entries):
            extra = actual_resident - set(shadow.entries)
            lost = set(shadow.entries) - actual_resident
            self.fail(
                f"array {ai}: residency diverged from the shadow model "
                f"(unexpected {sorted(extra)[:5]}, missing {sorted(lost)[:5]})"
            )
        actual_dirty = {
            lb for lb, e in cache.iter_blocks() if e.state is BlockState.DIRTY
        }
        shadow_dirty = {lb for lb, e in shadow.entries.items() if e.dirty}
        if actual_dirty != shadow_dirty:
            self.fail(
                f"array {ai}: dirty set diverged from the shadow model "
                f"({len(actual_dirty)} dirty vs {len(shadow_dirty)} expected; "
                f"difference {sorted(actual_dirty ^ shadow_dirty)[:5]})"
            )
        if set(cache.dirty_blocks(include_destaging=True)) != actual_dirty:
            self.fail(
                f"array {ai}: the dirty index disagrees with per-entry states"
            )
        if cache.old_copies != shadow.old_copies:
            self.fail(
                f"array {ai}: {cache.old_copies} old copies held, shadow "
                f"expects {shadow.old_copies}"
            )
        if cache.reserved_slots != shadow.reserved:
            self.fail(
                f"array {ai}: {cache.reserved_slots} slots reserved, shadow "
                f"expects {shadow.reserved}"
            )
