"""Deterministic fault injectors — proof that the checkers are alive.

A checker that never fires is indistinguishable from a checker that
checks nothing, so every stock checker ships with a fault that breaks
exactly the invariant it guards.  Each injector is a context manager
that patches a simulator class method for its scope and restores it on
exit; all are deterministic (no randomness), so a mutation smoke-test
fails reproducibly.

These exist for the test suite.  Production code must never import
them.
"""

from __future__ import annotations

from contextlib import contextmanager

__all__ = [
    "drop_parity_updates",
    "lose_completions",
    "suppress_cache_probe",
    "inflate_cache_hits",
    "inflate_channel_busy",
    "leak_track_buffer",
]


@contextmanager
def drop_parity_updates():
    """Controllers silently stop updating parity.

    Uncached write groups lose their ``parity_runs``; cached destages
    derive an empty parity set.  Trips ``parity-consistency``.
    """
    from repro.array.cached import CachedController
    from repro.array.uncached import _UncachedController

    orig_group = _UncachedController._write_group
    orig_pruns = CachedController._parity_runs_for

    def faulty_group(self, group):
        group.parity_runs = []
        return orig_group(self, group)

    def faulty_pruns(self, run):
        return []

    _UncachedController._write_group = faulty_group
    CachedController._parity_runs_for = faulty_pruns
    try:
        yield
    finally:
        _UncachedController._write_group = orig_group
        CachedController._parity_runs_for = orig_pruns


@contextmanager
def lose_completions(every: int = 2):
    """Every *every*-th request completion notification is dropped.

    Models a runner that loses track of in-flight requests.  Trips
    ``request-conservation`` at finalize (requests released but never
    completed).
    """
    from repro.validate.monitor import ValidationMonitor

    orig = ValidationMonitor.request_completed
    state = {"n": 0}

    def faulty(self, rid, time):
        state["n"] += 1
        if state["n"] % every == 0:
            return
        orig(self, rid, time)

    ValidationMonitor.request_completed = faulty
    try:
        yield
    finally:
        ValidationMonitor.request_completed = orig


@contextmanager
def suppress_cache_probe(every: int = 3):
    """Every *every*-th cache write mutates state without reporting it.

    The real cache and the shadow model diverge.  Trips
    ``cache-accounting`` at finalize.
    """
    from repro.cache.lru import LRUCache

    orig = LRUCache.write
    state = {"n": 0}

    def faulty(self, lblock):
        state["n"] += 1
        if state["n"] % every == 0:
            probe, self.probe = self.probe, None
            try:
                return orig(self, lblock)
            finally:
                self.probe = probe
        return orig(self, lblock)

    LRUCache.write = faulty
    try:
        yield
    finally:
        LRUCache.write = orig


@contextmanager
def inflate_cache_hits(extra: int = 1):
    """The cache over-reports read hits by *extra* (once).

    Hits + misses no longer reconcile with the requests the controller
    admitted.  Trips ``cache-accounting`` at finalize.
    """
    from repro.cache.lru import LRUCache

    orig = LRUCache.probe_read
    state = {"done": False}

    def faulty(self, lblocks):
        if not state["done"]:
            state["done"] = True
            self.read_hits += extra
        return orig(self, lblocks)

    LRUCache.probe_read = faulty
    try:
        yield
    finally:
        LRUCache.probe_read = orig


@contextmanager
def inflate_channel_busy(extra_ms: float = 5.0):
    """The channel's busy-time counter drifts from its real transfers.

    Trips ``resource-sanity`` at finalize (shadow busy-time mismatch).
    """
    from repro.channel.bus import Channel

    orig = Channel.transfer
    state = {"done": False}

    def faulty(self, nbytes, priority=0.0):
        result = yield from orig(self, nbytes, priority)
        if not state["done"]:
            state["done"] = True
            self.busy_time += extra_ms
        return result

    Channel.transfer = faulty
    try:
        yield
    finally:
        Channel.transfer = orig


@contextmanager
def leak_track_buffer():
    """The first track-buffer release is silently dropped.

    Buffers stay "in use" forever.  Trips ``resource-sanity`` at
    finalize (non-empty pool at end of run).
    """
    from repro.channel.trackbuffer import TrackBufferPool

    orig = TrackBufferPool.release
    state = {"done": False}

    def faulty(self, k=1):
        if not state["done"]:
            state["done"] = True
            return None
        return orig(self, k)

    TrackBufferPool.release = faulty
    try:
        yield
    finally:
        TrackBufferPool.release = orig
