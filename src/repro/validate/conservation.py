"""Request conservation: nothing is lost, duplicated, or acausal.

Checks, online:

* every logical request is released once and completed exactly once,
  with a finite, non-negative response time;
* every disk access completes no earlier than it was submitted, and at
  most once (service intervals are monotone and non-negative);

and at finalize:

* released == completed (no request left behind);
* the measured tallies in :class:`~repro.sim.results.RunResult`
  reconcile with the post-warmup releases the checker counted, and the
  read/write split sums to the total.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.validate.checker import CheckContext, InvariantChecker

__all__ = ["RequestConservationChecker"]


class RequestConservationChecker(InvariantChecker):
    """Every released request completes exactly once, causally."""

    name = "request-conservation"

    def attach(self, ctx: CheckContext) -> None:
        self._released: dict[int, float] = {}
        self._completed: set[int] = set()
        self._measured = 0  # releases at or after the warmup cutoff
        self._disk_submits = 0
        self._disk_completes = 0

    # -- logical requests ----------------------------------------------------
    def on_request_released(self, ctx: CheckContext, rid: int, time: float) -> None:
        if rid in self._released:
            self.fail(f"request {rid} released twice (t={time:g})")
        if not math.isfinite(time) or time < 0.0:
            self.fail(f"request {rid} released at unphysical time {time!r}")
        self._released[rid] = time
        if time >= ctx.warmup_ms:
            self._measured += 1

    def on_request_completed(self, ctx: CheckContext, rid: int, time: float) -> None:
        if rid not in self._released:
            self.fail(f"request {rid} completed but never released")
        if rid in self._completed:
            self.fail(f"request {rid} completed twice (t={time:g})")
        t0 = self._released[rid]
        if not math.isfinite(time) or time < t0:
            self.fail(
                f"request {rid} completed at {time!r}, before its release at {t0:g}"
            )
        self._completed.add(rid)

    # -- disk accesses -------------------------------------------------------
    def on_disk_submit(self, ctx: CheckContext, disk, request) -> None:
        self._disk_submits += 1

    def on_disk_complete(self, ctx: CheckContext, disk, request) -> None:
        self._disk_completes += 1
        if ctx.env.now < request.submit_time:
            self.fail(
                f"{disk.name}: {request!r} completed at {ctx.env.now:g}, "
                f"before its submission at {request.submit_time:g}"
            )
        if request.spin_revolutions < 0 or request.hold_retries < 0:
            self.fail(f"{disk.name}: negative service counters on {request!r}")

    # -- finalize ------------------------------------------------------------
    def finalize(self, ctx: CheckContext, result) -> None:
        outstanding = set(self._released) - self._completed
        if outstanding:
            sample = sorted(outstanding)[:5]
            self.fail(
                f"{len(outstanding)} request(s) released but never completed "
                f"(e.g. {sample})"
            )
        if self._disk_completes > self._disk_submits:
            self.fail(
                f"{self._disk_completes} disk completions exceed "
                f"{self._disk_submits} submissions"
            )
        if result is None:
            return
        if result.requests != len(self._released):
            self.fail(
                f"RunResult.requests={result.requests} but "
                f"{len(self._released)} requests were released"
            )
        if result.response.count != self._measured:
            self.fail(
                f"response tally holds {result.response.count} samples but "
                f"{self._measured} post-warmup requests completed"
            )
        split = result.read_response.count + result.write_response.count
        if split != result.response.count:
            self.fail(
                f"read ({result.read_response.count}) + write "
                f"({result.write_response.count}) samples != total "
                f"({result.response.count})"
            )
        for tally in (result.response, result.read_response, result.write_response):
            if tally.count and (tally.min < 0.0 or not math.isfinite(tally.max)):
                self.fail(
                    f"response times outside [0, inf): min={tally.min!r}, "
                    f"max={tally.max!r}"
                )
