"""Cached controllers (§3.4, §4.3, §4.4).

One controller class serves all five organizations; the differences are
confined to the destage write path (plain / duplicated / parity RMW /
parity-cached) selected from the layout and configuration:

* read hit  → channel transfer only;
* read miss → fetch missing blocks from disk (synchronous, normal
  priority), then channel transfer;
* write     → channel transfer into the NV cache, block dirtied, old
  contents retained for parity organizations; response ends here;
* destage   → periodic background process groups dirty blocks into
  physically contiguous runs and writes them back at background
  priority, spread progressively over the period;
* RAID4 parity caching → destage pushes parity deltas into the cache
  (with back-pressure when full) and a spooler drains them to the
  dedicated parity disk in SCAN order.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

from repro.array.controller import ArrayController
from repro.cache.destage import DestageRun, plan_destage_runs
from repro.cache.lru import BlockState, LRUCache
from repro.cache.paritycache import ParityCacheQueue
from repro.channel.bus import Channel
from repro.des import AllOf, Environment, Event
from repro.disk.drive import Disk
from repro.disk.request import AccessKind, DiskRequest, Priority
from repro.layout.common import Layout, Run, merge_runs, PhysicalAddress
from repro.layout.mirror import MirrorLayout
from repro.layout.raid4 import Raid4Layout

__all__ = ["CachedController"]


class CachedController(ArrayController):
    """Controller with a non-volatile LRU cache and background destage."""

    def __init__(
        self,
        env: Environment,
        layout: Layout,
        disks: Sequence[Disk],
        channel: Channel,
        config,
    ) -> None:
        super().__init__(env, layout, disks, channel, config)
        self.cache = LRUCache(config.cache_blocks, track_old=layout.has_parity)
        self._slot_waiters: list[Event] = []

        self.parity_caching = (
            isinstance(layout, Raid4Layout) and config.parity_caching
        )
        if self.parity_caching:
            self.parity_queue = ParityCacheQueue(self.cache)
            self._spool_wakeup: Optional[Event] = None
            self._scan_pos = 0
            self._scan_up = True
            env.process(self._parity_spooler())

        # Statistics.
        self.sync_writebacks = 0
        self.destage_cycles = 0
        self.destaged_blocks = 0

        policy = config.destage_policy
        if policy == "periodic":
            env.process(self._destage_loop())
        elif policy == "decoupled":
            env.process(self._decoupled_destage_loop())
            env.process(self._flush_loop())
        # "lru_demand": no background process; writebacks happen only on
        # replacement of a dirty LRU head (the paper's baseline policy).

    # ------------------------------------------------------------------
    # Request admission
    # ------------------------------------------------------------------
    def handle(self, lstart: int, nblocks: int, is_write: bool):
        self.requests_handled += 1
        if self.probe is not None:
            self.probe.on_handle(self, lstart, nblocks, is_write)
        if is_write:
            return self._handle_write(lstart, nblocks)
        return self._handle_read(lstart, nblocks)

    def _handle_read(self, lstart: int, nblocks: int) -> Generator[Event, None, None]:
        cache = self.cache
        blocks = list(range(lstart, lstart + nblocks))
        if cache.probe_read(blocks):
            cache.read_hits += 1
            yield from self._channel_transfer(nblocks)
            return
        cache.read_misses += 1

        missing = []
        for b in blocks:
            if cache.get(b) is None:
                missing.append(b)
            else:
                cache.touch(b)
        # Claim slots (evicting / waiting as needed), then fetch.
        yield from self._acquire_slots(len(missing))
        addrs = [(b, self.plans.map_block(b)) for b in missing]
        runs = merge_runs([a for _, a in addrs])
        fetches = [self.env.process(self._fetch_run(run)) for run in runs]
        if fetches:
            yield AllOf(self.env, fetches)
        yield from self._channel_transfer(nblocks)

    def _fetch_run(self, run: Run) -> Generator[Event, None, None]:
        """Read a physically contiguous run of missed blocks into the cache."""
        req = self._pick_read_disk(run).submit(
            DiskRequest(AccessKind.READ, run.start, run.nblocks)
        )
        yield req.done
        for pblock in range(run.start, run.end):
            lblock = self.layout.logical_of(run.disk, pblock)
            assert lblock is not None
            self.cache.release_slots(1)
            if self.cache.get(lblock) is None:
                self.cache.insert_clean(lblock)
            else:
                self._notify_slot()  # raced with another inserter

    def _handle_write(self, lstart: int, nblocks: int) -> Generator[Event, None, None]:
        # Host data crosses the channel into the NV cache.
        yield from self._channel_transfer(nblocks)
        cache = self.cache
        if all(b in cache for b in range(lstart, lstart + nblocks)):
            cache.write_hits += 1
        else:
            cache.write_misses += 1
        for b in range(lstart, lstart + nblocks):
            entry = cache.get(b)
            needs_slot = entry is None or (
                cache.track_old and entry.state is BlockState.CLEAN and not entry.has_old
            )
            if needs_slot:
                yield from self._acquire_slots(1)
                cache.release_slots(1)
            cache.write(b)

    def _pick_read_disk(self, run: Run) -> Disk:
        """Read routing: mirrors use the nearer arm of the pair."""
        layout = self.layout
        if isinstance(layout, MirrorLayout):
            a = self.disks[run.disk]
            b = self.disks[layout.mirror_of(run.disk)]
            da, db = a.seek_distance_to(run.start), b.seek_distance_to(run.start)
            if da != db:
                chosen = a if da < db else b
            else:
                chosen = a if a.pending <= b.pending else b
            if self.probe is not None:
                alt, s_c, s_a = (b, da, db) if chosen is a else (a, db, da)
                self.probe.on_mirror_route(self, run, chosen, alt, s_c, s_a)
            return chosen
        return self.disks[run.disk]

    # ------------------------------------------------------------------
    # Cache space management
    # ------------------------------------------------------------------
    def _acquire_slots(self, k: int) -> Generator[Event, None, None]:
        """Reserve *k* cache slots, evicting or waiting as necessary."""
        if k == 0:
            return
        while not self.cache.reserve_slots(k):
            yield from self._free_one_slot()
        # Wake-one notification: if space remains, pass the baton on.
        if self.cache.free_slots > 0:
            self._notify_slot()

    def _free_one_slot(self) -> Generator[Event, None, None]:
        """Evict the LRU candidate; synchronously write it back if dirty.

        If every resident block has a destage in flight, wait for one to
        complete (the slot-freed notification).
        """
        candidate = self.cache.eviction_candidate()
        if candidate is None:
            waiter = Event(self.env)
            self._slot_waiters.append(waiter)
            yield waiter
            return
        lblock, entry = candidate
        if entry.state is BlockState.DIRTY:
            # The paper's "miss may wait for the replaced block to be
            # written to disk" path — rare while destage keeps up.
            self.sync_writebacks += 1
            self.cache.begin_destage(lblock)
            addr = self.layout.map_block(lblock)
            run = DestageRun(
                disk=addr.disk,
                start=addr.block,
                lblocks=[lblock],
                all_old_cached=entry.has_old,
            )
            yield from self._destage_run(run, priority=Priority.NORMAL)
            entry = self.cache.get(lblock)
            if entry is None or entry.state is not BlockState.CLEAN:
                return  # re-dirtied concurrently; try another candidate
        self.cache.evict(lblock)
        self._notify_slot()

    def _notify_slot(self) -> None:
        """Wake the oldest slot waiter (wake-one, to avoid a thundering
        herd of retries; successful wakers cascade the notification)."""
        while self._slot_waiters:
            w = self._slot_waiters.pop(0)
            if not w.triggered:
                w.succeed()
                return

    # ------------------------------------------------------------------
    # Destage
    # ------------------------------------------------------------------
    def _destage_loop(self) -> Generator[Event, None, None]:
        """Initiate a destage cycle every ``destage_period_ms``."""
        env = self.env
        period = self.config.destage_period_ms
        while True:
            yield env.timeout(period)
            runs = plan_destage_runs(
                self.cache, self.layout, self.config.destage_max_blocks
            )
            if not runs:
                continue
            self.destage_cycles += 1
            # Full-stripe detection must happen now, while every block of
            # the cycle is still dirty — sibling runs may destage first.
            full_map = self._full_parity_map(runs) if self.parity_caching else None
            # Progressive scheduling: spread the cycle's writes over the
            # period so they interfere minimally with read traffic.
            spacing = period / len(runs)
            for i, run in enumerate(runs):
                env.process(self._delayed_destage(run, i * spacing, full_map))

    def _decoupled_destage_loop(self) -> Generator[Event, None, None]:
        """Frequent small destages of the oldest dirty blocks.

        The decoupled policy (suggested in §3.4): write back dirty blocks
        from the LRU head often, so replacement rarely finds a dirty
        head, while the full flush that frees old-data copies runs only
        once per period.
        """
        env = self.env
        cfg = self.config
        interval = cfg.destage_period_ms / cfg.decoupled_batches_per_period
        while True:
            yield env.timeout(interval)
            candidates = self.cache.oldest_dirty(cfg.decoupled_batch_blocks)
            if not candidates:
                continue
            runs = plan_destage_runs(self.cache, self.layout, blocks=candidates)
            if not runs:
                continue
            full_map = self._full_parity_map(runs) if self.parity_caching else None
            for run in runs:
                env.process(self._delayed_destage(run, 0.0, full_map))

    def _flush_loop(self) -> Generator[Event, None, None]:
        """Periodic full flush for the decoupled policy (frees old copies)."""
        env = self.env
        period = self.config.destage_period_ms
        while True:
            yield env.timeout(period)
            runs = plan_destage_runs(
                self.cache, self.layout, self.config.destage_max_blocks
            )
            if not runs:
                continue
            self.destage_cycles += 1
            full_map = self._full_parity_map(runs) if self.parity_caching else None
            spacing = period / len(runs)
            for i, run in enumerate(runs):
                env.process(self._delayed_destage(run, i * spacing, full_map))

    def _full_parity_map(self, runs: list[DestageRun]) -> dict[int, bool]:
        """For each parity block of the cycle: is its whole stripe dirty?"""
        full_map: dict[int, bool] = {}
        for run in runs:
            for prun in self._parity_runs_for(run):
                for pblock in range(prun.start, prun.end):
                    if pblock not in full_map:
                        full_map[pblock] = self._stripe_fully_dirty(pblock)
        return full_map

    def _delayed_destage(
        self,
        run: DestageRun,
        delay: float,
        full_map: Optional[dict[int, bool]] = None,
    ) -> Generator[Event, None, None]:
        if delay > 0:
            yield self.env.timeout(delay)
        yield from self._destage_run(run, priority=Priority.DESTAGE, full_map=full_map)

    def _destage_run(
        self,
        run: DestageRun,
        priority: float,
        full_map: Optional[dict[int, bool]] = None,
    ) -> Generator[Event, None, None]:
        """Write one contiguous dirty run (and its redundancy) to disk."""
        layout = self.layout
        env = self.env

        if isinstance(layout, MirrorLayout):
            reqs = [
                self.disks[d].submit(
                    DiskRequest(AccessKind.WRITE, run.start, run.nblocks, priority=priority)
                )
                for d in (run.disk, layout.mirror_of(run.disk))
            ]
            yield AllOf(env, [r.done for r in reqs])
        elif not layout.has_parity:
            req = self.disks[run.disk].submit(
                DiskRequest(AccessKind.WRITE, run.start, run.nblocks, priority=priority)
            )
            yield req.done
        elif self.parity_caching:
            yield from self._destage_parity_cached(run, priority, full_map or {})
        else:
            yield from self._destage_parity(run, priority)

        self.destaged_blocks += run.nblocks
        if self.probe is not None:
            self.probe.on_destage(self, run)
        for lblock in run.lblocks:
            self.cache.finish_destage(lblock)
        self._notify_slot()

    def _parity_runs_for(self, run: DestageRun) -> list[Run]:
        """Parity blocks protecting the run's logical blocks."""
        addrs = sorted(
            (
                (p.disk, p.block)
                for p in (self.plans.parity_of(lb) for lb in run.lblocks)
            ),
        )
        return merge_runs([PhysicalAddress(d, b) for d, b in addrs])

    def _destage_parity(self, run: DestageRun, priority: float) -> Generator[Event, None, None]:
        """RAID5 / Parity Striping destage: data write + parity RMW.

        With the old data cached the data disk performs a plain write and
        the parity delta is computable immediately; otherwise the data
        disk does a read-modify-write whose read gates the parity write.
        """
        env = self.env
        if run.all_old_cached:
            data_req = self.disks[run.disk].submit(
                DiskRequest(AccessKind.WRITE, run.start, run.nblocks, priority=priority)
            )
            gate = None
        else:
            data_req = self.disks[run.disk].submit(
                DiskRequest(AccessKind.RMW, run.start, run.nblocks, priority=priority)
            )
            gate = data_req.read_complete

        pruns = self._parity_runs_for(run)
        if self.probe is not None:
            self.probe.on_parity_update(self, run, pruns)
        parity_done = []
        for prun in pruns:
            preq = self.disks[prun.disk].submit(
                DiskRequest(
                    AccessKind.RMW,
                    prun.start,
                    prun.nblocks,
                    priority=priority,
                    data_ready=gate,
                )
            )
            parity_done.append(preq.done)
        yield AllOf(env, [data_req.done] + parity_done)

    def _destage_parity_cached(
        self, run: DestageRun, priority: float, full_map: dict[int, bool]
    ) -> Generator[Event, None, None]:
        """RAID4 parity caching: buffer deltas, write only the data.

        If the old data is not cached it must be read (RMW) to form the
        delta, but the parity disk is untouched here — the spooler
        handles it asynchronously.

        Back-pressure: when the cache has no slot for a parity delta the
        destage waits for one — but only while the spooler has pending
        work that is guaranteed to free slots.  Otherwise (the §4.4 "queue
        fills the entire cache" corner, or a cache full of blocks that
        cannot free themselves) the parity is serviced directly from the
        parity disk, as the paper describes.
        """
        env = self.env
        pruns = self._parity_runs_for(run)
        if self.probe is not None:
            self.probe.on_parity_update(self, run, pruns)
        direct_parity: list[Run] = []
        for prun in pruns:
            for pblock in range(prun.start, prun.end):
                while not self.parity_queue.add(
                    pblock, full=full_map.get(pblock, False)
                ):
                    if len(self.parity_queue) == 0:
                        # Nothing pending to free slots: bypass the cache
                        # and update the parity synchronously.
                        direct_parity.append(Run(self.layout.parity_disk, pblock, 1))
                        break
                    waiter = Event(env)
                    self._slot_waiters.append(waiter)
                    yield waiter
                else:
                    if self.cache.free_slots > 0:
                        self._notify_slot()

        kind = AccessKind.WRITE if run.all_old_cached else AccessKind.RMW
        data_req = self.disks[run.disk].submit(
            DiskRequest(kind, run.start, run.nblocks, priority=priority)
        )
        gate = data_req.read_complete if kind is AccessKind.RMW else None
        direct_done = [
            self.disks[prun.disk]
            .submit(
                DiskRequest(
                    AccessKind.RMW,
                    prun.start,
                    prun.nblocks,
                    priority=priority,
                    data_ready=gate,
                )
            )
            .done
            for prun in direct_parity
        ]
        yield AllOf(env, [data_req.done] + direct_done)
        self._kick_spooler()

    def _stripe_fully_dirty(self, parity_pblock: int) -> bool:
        """True if every data block protected by this parity block is
        dirty or destaging — then the actual parity is cached and the
        spooler can write it without reading the old parity."""
        layout = self.layout
        assert isinstance(layout, Raid4Layout)
        su = layout.striping_unit
        row, offset = divmod(parity_pblock, su)
        for j in range(layout.n):
            lblock = (row * layout.n + j) * su + offset
            entry = self.cache.get(lblock)
            if entry is None or entry.state is not BlockState.DIRTY:
                return False
        return True

    # ------------------------------------------------------------------
    # RAID4 parity spooler
    # ------------------------------------------------------------------
    def _kick_spooler(self) -> None:
        if self._spool_wakeup is not None and not self._spool_wakeup.triggered:
            self._spool_wakeup.succeed()

    def _parity_spooler(self) -> Generator[Event, None, None]:
        """Drain buffered parity to the dedicated disk in SCAN order."""
        env = self.env
        layout = self.layout
        assert isinstance(layout, Raid4Layout)
        parity_disk = self.disks[layout.parity_disk]
        while True:
            while len(self.parity_queue) == 0:
                self._spool_wakeup = Event(env)
                yield self._spool_wakeup
                self._spool_wakeup = None
            popped = self.parity_queue.pop_scan_run(self._scan_pos, self._scan_up)
            assert popped is not None
            deltas, self._scan_up = popped
            self._scan_pos = deltas[-1].pblock
            kind = AccessKind.WRITE if deltas[0].full else AccessKind.RMW
            req = parity_disk.submit(
                DiskRequest(kind, deltas[0].pblock, len(deltas))
            )
            yield req.done
            self.cache.release_slots(len(deltas))
            self._notify_slot()
