"""Deprecated shim: degraded-mode operation moved to :mod:`repro.failure`.

The degraded controllers and the rebuild process were promoted into the
failure-domain subsystem (``src/repro/failure/``), where they gained
runtime failure transitions, latent-error handling and scrub support.
Importing this module re-exports the original names but now raises a
:class:`DeprecationWarning`; import from :mod:`repro.failure.degraded`
(or the :mod:`repro.failure` package) instead.
"""

import warnings

from repro.failure.degraded import (
    DegradedMirrorController,
    DegradedParityController,
    RebuildProcess,
    reconstruction_sources,
)

warnings.warn(
    "repro.array.degraded is deprecated; import from repro.failure.degraded",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "reconstruction_sources",
    "DegradedParityController",
    "DegradedMirrorController",
    "RebuildProcess",
]
