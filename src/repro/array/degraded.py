"""Back-compat shim: degraded-mode operation moved to :mod:`repro.failure`.

The degraded controllers and the rebuild process were promoted into the
failure-domain subsystem (``src/repro/failure/``), where they gained
runtime failure transitions, latent-error handling and scrub support.
This module re-exports the original names so existing imports keep
working; new code should import from :mod:`repro.failure` directly.
"""

from repro.failure.degraded import (
    DegradedMirrorController,
    DegradedParityController,
    RebuildProcess,
    reconstruction_sources,
)

__all__ = [
    "reconstruction_sources",
    "DegradedParityController",
    "DegradedMirrorController",
    "RebuildProcess",
]
