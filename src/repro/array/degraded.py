"""Degraded-mode operation and rebuild after a disk failure.

The paper's motivation is media recovery: redundant arrays survive a
disk failure and keep serving requests, at a performance cost the paper
mentions explicitly ("large arrays... have worse performance during
reconstruction following a disk failure", §4.2.1).  This module
implements that regime for the uncached organizations:

* **Degraded reads** — a read addressed to the failed disk is serviced
  by reading all the surviving blocks of its redundancy group (the
  other N-1 data blocks plus parity for the parity organizations, the
  mirror partner for mirrors) and XOR-reconstructing, so the response
  is the max over N concurrent accesses.
* **Degraded writes** — a write to a surviving disk updates parity
  normally; a write to the failed disk updates *only* the parity (read
  the other N-1 blocks, XOR with the new data, rewrite parity), so the
  data is recoverable even though its disk is gone.
* **Rebuild** — a background process sweeps the failed disk's blocks in
  physical order, reconstructing each onto a hot spare at background
  priority.  A watermark tracks progress: requests below it use the
  spare normally, requests above it take the degraded paths.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.array.uncached import UncachedMirrorController, UncachedParityController
from repro.des import AllOf, Environment, Event
from repro.disk.drive import Disk
from repro.disk.request import AccessKind, DiskRequest, Priority
from repro.layout.common import Layout, PhysicalAddress, Run, WriteGroup, WriteMode
from repro.layout.mirror import MirrorLayout
from repro.layout.paritystripe import ParityStripingLayout
from repro.layout.striped import StripedParityLayout

__all__ = [
    "reconstruction_sources",
    "DegradedParityController",
    "DegradedMirrorController",
    "RebuildProcess",
]


def reconstruction_sources(layout: Layout, disk: int, pblock: int) -> list[PhysicalAddress]:
    """Surviving blocks whose XOR reconstructs ``(disk, pblock)``.

    Works for both data and parity blocks of the parity layouts, and
    for mirror layouts (the single partner copy).
    """
    if isinstance(layout, MirrorLayout):
        return [PhysicalAddress(layout.mirror_of(disk), pblock)]

    if isinstance(layout, StripedParityLayout):
        # A row's data and parity all sit at the same physical block on
        # each of the N+1 disks: the sources are simply every other disk.
        return [
            PhysicalAddress(d, pblock) for d in range(layout.ndisks) if d != disk
        ]

    if isinstance(layout, ParityStripingLayout):
        area, off = divmod(pblock, layout.area_blocks)
        k = layout._data_area(area)
        parity_base = layout.parity_area_index * layout.area_blocks
        if k is None:
            # Parity block of group `disk`: XOR of all member data blocks.
            return [
                PhysicalAddress(d, layout._physical_area(kk) * layout.area_blocks + off)
                for d, kk in layout.members_of_group(disk, off)
            ]
        group = layout.group_of(disk, k, off)
        sources = [PhysicalAddress(group, parity_base + off)]
        for d, kk in layout.members_of_group(group, off):
            if d == disk:
                continue
            sources.append(
                PhysicalAddress(d, layout._physical_area(kk) * layout.area_blocks + off)
            )
        return sources

    raise TypeError(f"no redundancy to reconstruct from in {type(layout).__name__}")


class _DegradedMixin:
    """State shared by the degraded controllers."""

    def _init_degraded(self, failed_disk: int, spare: bool) -> None:
        if not 0 <= failed_disk < self.layout.ndisks:
            raise ValueError(f"failed disk {failed_disk} out of range")
        self.failed_disk = failed_disk
        #: Physical blocks of the failed disk rebuilt so far (watermark);
        #: the spare serves addresses below it.
        self.rebuilt_upto = 0
        self.has_spare = spare
        if spare:
            # The spare replaces the failed drive in the array: same
            # geometry, fresh arm.
            old = self.disks[failed_disk]
            self.disks[failed_disk] = Disk(
                old.env, old.geometry, old.seek_model, name=f"{old.name}.spare"
            )
        self.degraded_reads = 0
        self.degraded_writes = 0

    def _note_degraded(self, kind: str) -> None:
        """Count a degraded access and notify the validation tap."""
        if kind == "read":
            self.degraded_reads += 1
        else:
            self.degraded_writes += 1
        if self.probe is not None:
            self.probe.on_degraded(self, kind)

    def _is_failed(self, disk: int, pblock: int) -> bool:
        """True if this physical block is currently unreadable."""
        if disk != self.failed_disk:
            return False
        return not (self.has_spare and pblock < self.rebuilt_upto)


class DegradedParityController(_DegradedMixin, UncachedParityController):
    """An uncached parity array (RAID5/RAID4/Parity Striping) with one
    failed disk, optionally rebuilding onto a hot spare."""

    def __init__(self, env, layout, disks, channel, config, failed_disk: int, spare: bool = False):
        super().__init__(env, layout, disks, channel, config)
        self._init_degraded(failed_disk, spare)

    # -- reads ---------------------------------------------------------------
    def _read_run(self, run: Run) -> Generator[Event, None, None]:
        # Split the run at the failure boundary block by block (runs are
        # short; requests are overwhelmingly single-block).
        degraded = [
            pb for pb in range(run.start, run.end) if self._is_failed(run.disk, pb)
        ]
        if not degraded:
            yield from super()._read_run(run)
            return
        self._note_degraded("read")
        procs = []
        healthy = [
            pb for pb in range(run.start, run.end) if not self._is_failed(run.disk, pb)
        ]
        if healthy:
            procs.append(
                self.env.process(
                    super()._read_run(Run(run.disk, healthy[0], len(healthy)))
                )
            )
        for pb in degraded:
            procs.append(self.env.process(self._reconstruct_read(run.disk, pb)))
        yield AllOf(self.env, procs)

    def _reconstruct_read(self, disk: int, pblock: int) -> Generator[Event, None, None]:
        """Read all surviving sources, then ship the block to the host."""
        sources = reconstruction_sources(self.layout, disk, pblock)
        nbuf = len(sources)
        yield from self.buffers.acquire(nbuf)
        try:
            reads = [
                self.disks[src.disk].submit(DiskRequest(AccessKind.READ, src.block))
                for src in sources
            ]
            yield AllOf(self.env, [r.done for r in reads])
            yield from self._channel_transfer(1)
        finally:
            self.buffers.release(nbuf)

    # -- writes ----------------------------------------------------------------
    def _rmw(self, group: WriteGroup) -> Generator[Event, None, None]:
        touches_failed = any(
            self._is_failed(run.disk, pb)
            for run in group.data_runs + group.parity_runs
            for pb in range(run.start, run.end)
        )
        if not touches_failed:
            yield from super()._rmw(group)
            return
        self._note_degraded("write")
        yield from self._degraded_update(group)

    def _degraded_update(self, group: WriteGroup) -> Generator[Event, None, None]:
        """Update with a failed member in the redundancy group.

        Failed data block  -> read the other N-1 data blocks, then
        rewrite the parity with the reconstructed delta.
        Failed parity block -> write the data plainly (no parity left
        to maintain for that group).
        """
        env = self.env
        done = []
        claims = 0
        reads: list[DiskRequest] = []
        parity_writes: list[tuple[Run, Event]] = []

        for run in group.data_runs:
            for pb in range(run.start, run.end):
                if self._is_failed(run.disk, pb):
                    # Read every surviving source except the parity (the
                    # parity is rewritten), then gate the parity write.
                    sources = [
                        src
                        for src in reconstruction_sources(self.layout, run.disk, pb)
                        if not self.layout.is_parity_block(src.disk, src.block)
                    ]
                    yield from self.buffers.acquire(len(sources))
                    claims += len(sources)
                    for src in sources:
                        reads.append(
                            self.disks[src.disk].submit(
                                DiskRequest(AccessKind.READ, src.block)
                            )
                        )
                else:
                    yield from self.buffers.acquire(1)
                    claims += 1
                    req = self.disks[run.disk].submit(
                        DiskRequest(AccessKind.RMW, pb, 1)
                    )
                    reads.append(req)
                    done.append(req.done)

        gate = AllOf(env, [r.read_complete for r in reads]) if reads else None
        for run in group.parity_runs:
            for pb in range(run.start, run.end):
                if self._is_failed(run.disk, pb):
                    continue  # parity disk itself failed: nothing to update
                yield from self.buffers.acquire(1)
                claims += 1
                req = self.disks[run.disk].submit(
                    DiskRequest(AccessKind.RMW, pb, 1, data_ready=gate)
                )
                done.append(req.done)

        if done:
            yield AllOf(env, done)
        elif reads:
            yield AllOf(env, [r.done for r in reads])
        if claims:
            self.buffers.release(claims)


class DegradedMirrorController(_DegradedMixin, UncachedMirrorController):
    """A mirrored array with one failed member."""

    def __init__(self, env, layout, disks, channel, config, failed_disk: int, spare: bool = False):
        super().__init__(env, layout, disks, channel, config)
        self._init_degraded(failed_disk, spare)

    def _pick_read_disk(self, run: Run) -> Disk:
        if self._is_failed(run.disk, run.start):
            self._note_degraded("read")
            return self.disks[self.mlayout.mirror_of(run.disk)]
        partner = self.mlayout.mirror_of(run.disk)
        if self._is_failed(partner, run.start):
            return self.disks[run.disk]
        return super()._pick_read_disk(run)

    def _execute_group(self, group: WriteGroup) -> Generator[Event, None, None]:
        assert group.mode is WriteMode.PLAIN
        done = []
        for run in group.data_runs:
            for disk_idx in (run.disk, self.mlayout.mirror_of(run.disk)):
                if self._is_failed(disk_idx, run.start):
                    self._note_degraded("write")
                    continue
                req = self.disks[disk_idx].submit(
                    DiskRequest(AccessKind.WRITE, run.start, run.nblocks)
                )
                done.append(req.done)
        yield AllOf(self.env, done)


class RebuildProcess:
    """Background reconstruction of the failed disk onto the spare.

    Sweeps the failed disk's physical blocks in ``chunk_blocks`` units:
    reads all surviving sources of the chunk at background priority,
    writes the reconstructed chunk to the spare, advances the
    controller's watermark.  ``delay_ms`` throttles between chunks to
    bound the interference with foreground traffic.
    """

    def __init__(
        self,
        controller,
        chunk_blocks: int = 6,
        delay_ms: float = 0.0,
        used_blocks: Optional[int] = None,
    ) -> None:
        if not controller.has_spare:
            raise ValueError("rebuild requires a spare disk")
        if chunk_blocks < 1:
            raise ValueError("chunk_blocks must be >= 1")
        self.controller = controller
        self.chunk_blocks = chunk_blocks
        self.delay_ms = delay_ms
        self.total_blocks = (
            used_blocks
            if used_blocks is not None
            else controller.layout.blocks_per_disk
        )
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.process = controller.env.process(self._run())

    @property
    def duration_ms(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def done(self) -> bool:
        return self.finished_at is not None

    def _run(self) -> Generator[Event, None, None]:
        ctrl = self.controller
        env = ctrl.env
        layout = ctrl.layout
        failed = ctrl.failed_disk
        spare = ctrl.disks[failed]
        self.started_at = env.now

        pblock = 0
        while pblock < self.total_blocks:
            chunk = min(self.chunk_blocks, self.total_blocks - pblock)
            # Gather the union of surviving source runs for the chunk.
            per_disk: dict[int, list[int]] = {}
            for pb in range(pblock, pblock + chunk):
                for src in reconstruction_sources(layout, failed, pb):
                    per_disk.setdefault(src.disk, []).append(src.block)
            reads = []
            for disk_idx, blocks in per_disk.items():
                blocks.sort()
                start = blocks[0]
                reads.append(
                    ctrl.disks[disk_idx].submit(
                        DiskRequest(
                            AccessKind.READ,
                            start,
                            blocks[-1] - start + 1,
                            priority=Priority.DESTAGE,
                        )
                    )
                )
            yield AllOf(env, [r.done for r in reads])
            write = spare.submit(
                DiskRequest(AccessKind.WRITE, pblock, chunk, priority=Priority.DESTAGE)
            )
            yield write.done
            pblock += chunk
            ctrl.rebuilt_upto = pblock
            if self.delay_ms > 0:
                yield env.timeout(self.delay_ms)
        self.finished_at = env.now
