"""Array controllers: the paper's five organizations.

Controllers admit logical I/O requests, translate them through a
:mod:`repro.layout`, orchestrate disk and channel activity (including
the parity read-modify-write synchronization policies of §3.3), and for
cached organizations manage the non-volatile cache, destage and parity
spooling of §3.4.
"""

from repro.array.sync import SyncPolicy
from repro.array.controller import ArrayController
from repro.array.uncached import (
    UncachedBaseController,
    UncachedMirrorController,
    UncachedParityController,
)
from repro.array.cached import CachedController

__all__ = [
    "ArrayController",
    "CachedController",
    "SyncPolicy",
    "UncachedBaseController",
    "UncachedMirrorController",
    "UncachedParityController",
]
