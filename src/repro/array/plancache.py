"""Request-plan memoization for the array controllers.

Per-request logical→physical decomposition is structurally repetitive:
every layout in this package is periodic in the logical address (see
:meth:`repro.layout.common.Layout.plan_period`), so a request's physical
plan depends only on its offset *within* one period and its size, not on
its absolute address.  The :class:`PlanCache` exploits that: it computes
each plan once at the request's period residue and translates it — a
disk shift modulo the array width plus a physical-block shift — for
every other period.

Correctness relies on two contracts:

* the layout's ``plan_period()`` symmetry (each layout proves its own in
  its override), and
* plan objects (:class:`~repro.layout.common.Run` lists and
  :class:`~repro.layout.common.WriteGroup` s) being treated as immutable
  by every consumer — controllers, degraded paths and probes only
  iterate them, so translated copies can share structure and zero-shift
  requests can share the template outright.

The cache is *failure-epoch aware* in the simplest possible way: any
failure-domain transition (disk death, spare arrival, rebuild
completion) calls :meth:`PlanCache.invalidate`, which bumps the epoch
and drops every memoized plan.  Plans themselves are failure-independent
(degraded handling happens at execution time, not planning time), so
this is insurance against future layouts whose planning *does* consult
failure state — and it keeps the cache's keying equivalent to the
``(org, offset % period, size, degraded-epoch)`` scheme without storing
dead epochs.
"""

from __future__ import annotations

from typing import Optional

from repro.layout.common import Layout, PhysicalAddress, Run, WriteGroup

__all__ = ["PlanCache"]

#: Entries per internal table before it is wholesale dropped.  Periods
#: are tens of thousands of blocks at the default geometry, so OLTP
#: workloads stay far below this; the cap only bounds adversarial
#: request mixes.
_MAX_ENTRIES = 131072


class PlanCache:
    """Memoizes read runs, write plans and per-block mappings.

    Parameters
    ----------
    layout:
        The array's layout.  If its :meth:`~repro.layout.common.Layout.plan_period`
        returns ``None`` the cache degrades to a transparent pass-through.
    rmw_threshold:
        Baked into cached write plans (it is constant per run).
    enabled:
        ``False`` forces pass-through mode (the ``plan_cache`` config knob).
    """

    __slots__ = (
        "layout",
        "rmw_threshold",
        "enabled",
        "epoch",
        "hits",
        "misses",
        "_period",
        "_disk_step",
        "_pblock_step",
        "_ndisks",
        "_reads",
        "_writes",
        "_maps",
        "_parity",
    )

    def __init__(self, layout: Layout, rmw_threshold: float, enabled: bool = True) -> None:
        self.layout = layout
        self.rmw_threshold = rmw_threshold
        period = layout.plan_period() if enabled else None
        self.enabled = period is not None
        if period is not None:
            self._period, self._disk_step, self._pblock_step = period
        else:
            self._period = self._disk_step = self._pblock_step = 0
        self._ndisks = layout.ndisks
        #: Monotonic failure-domain epoch; bumped by :meth:`invalidate`.
        self.epoch = 0
        self.hits = 0
        self.misses = 0
        self._reads: dict[tuple[int, int], list[Run]] = {}
        self._writes: dict[tuple[int, int], list[WriteGroup]] = {}
        self._maps: dict[int, PhysicalAddress] = {}
        self._parity: dict[int, Optional[PhysicalAddress]] = {}

    # -- plan translation ---------------------------------------------------
    def _shift_runs(self, runs: list[Run], q: int) -> list[Run]:
        """Translate template *runs* forward by *q* periods."""
        dshift = q * self._disk_step
        pshift = q * self._pblock_step
        if dshift:
            ndisks = self._ndisks
            return [
                Run((r.disk + dshift) % ndisks, r.start + pshift, r.nblocks)
                for r in runs
            ]
        return [Run(r.disk, r.start + pshift, r.nblocks) for r in runs]

    def _shift_group(self, group: WriteGroup, q: int) -> WriteGroup:
        return WriteGroup(
            mode=group.mode,
            data_runs=self._shift_runs(group.data_runs, q),
            read_runs=self._shift_runs(group.read_runs, q),
            parity_runs=self._shift_runs(group.parity_runs, q),
        )

    # -- request planning ---------------------------------------------------
    def read_runs(self, lstart: int, nblocks: int) -> list[Run]:
        """Memoizing :meth:`~repro.layout.common.Layout.read_runs`."""
        if not self.enabled:
            return self.layout.read_runs(lstart, nblocks)
        q, residue = divmod(lstart, self._period)
        key = (residue, nblocks)
        template = self._reads.get(key)
        if template is None:
            self.misses += 1
            if len(self._reads) >= _MAX_ENTRIES:
                self._reads.clear()
            # residue <= lstart, so the residue request is always in range.
            template = self.layout.read_runs(residue, nblocks)
            self._reads[key] = template
        else:
            self.hits += 1
        if q == 0:
            return template
        return self._shift_runs(template, q)

    def write_plan(self, lstart: int, nblocks: int) -> list[WriteGroup]:
        """Memoizing :meth:`~repro.layout.common.Layout.write_plan`."""
        if not self.enabled:
            return self.layout.write_plan(lstart, nblocks, self.rmw_threshold)
        q, residue = divmod(lstart, self._period)
        key = (residue, nblocks)
        template = self._writes.get(key)
        if template is None:
            self.misses += 1
            if len(self._writes) >= _MAX_ENTRIES:
                self._writes.clear()
            template = self.layout.write_plan(residue, nblocks, self.rmw_threshold)
            self._writes[key] = template
        else:
            self.hits += 1
        if q == 0:
            return template
        return [self._shift_group(g, q) for g in template]

    # -- per-block mapping --------------------------------------------------
    def map_block(self, lblock: int) -> PhysicalAddress:
        """Memoizing :meth:`~repro.layout.common.Layout.map_block`."""
        if not self.enabled:
            return self.layout.map_block(lblock)
        q, residue = divmod(lblock, self._period)
        addr = self._maps.get(residue)
        if addr is None:
            self.misses += 1
            if len(self._maps) >= _MAX_ENTRIES:
                self._maps.clear()
            addr = self.layout.map_block(residue)
            self._maps[residue] = addr
        else:
            self.hits += 1
        if q == 0:
            return addr
        return PhysicalAddress(
            (addr.disk + q * self._disk_step) % self._ndisks,
            addr.block + q * self._pblock_step,
        )

    def parity_of(self, lblock: int) -> Optional[PhysicalAddress]:
        """Memoizing :meth:`~repro.layout.common.Layout.parity_of`."""
        if not self.enabled:
            return self.layout.parity_of(lblock)
        q, residue = divmod(lblock, self._period)
        if residue in self._parity:
            self.hits += 1
            addr = self._parity[residue]
        else:
            self.misses += 1
            if len(self._parity) >= _MAX_ENTRIES:
                self._parity.clear()
            addr = self.layout.parity_of(residue)
            self._parity[residue] = addr
        if addr is None or q == 0:
            return addr
        return PhysicalAddress(
            (addr.disk + q * self._disk_step) % self._ndisks,
            addr.block + q * self._pblock_step,
        )

    # -- lifecycle -----------------------------------------------------------
    def invalidate(self) -> None:
        """Drop all memoized plans and advance the failure-domain epoch."""
        self.epoch += 1
        self._reads.clear()
        self._writes.clear()
        self._maps.clear()
        self._parity.clear()

    def stats(self) -> dict:
        """Hit/miss counters for benchmarks and tests."""
        return {
            "enabled": self.enabled,
            "epoch": self.epoch,
            "hits": self.hits,
            "misses": self.misses,
            "entries": (
                len(self._reads) + len(self._writes)
                + len(self._maps) + len(self._parity)
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "enabled" if self.enabled else "pass-through"
        return f"<PlanCache {state} hits={self.hits} misses={self.misses}>"
