"""Abstract array controller.

A controller owns the disks of one array, the array's channel and (for
cached organizations) its NV cache.  The simulation runner calls
:meth:`ArrayController.handle` once per trace request; the returned
generator is spawned as a process whose completion time defines the
request's response time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Generator, Sequence

from repro.array.plancache import PlanCache
from repro.channel.bus import Channel
from repro.des import Environment, Event
from repro.disk.drive import Disk
from repro.layout.common import Layout

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.config import SystemConfig

__all__ = ["ArrayController"]


class ArrayController(ABC):
    """Base class for the five organizations' controllers.

    Parameters
    ----------
    env, layout, disks, channel:
        The array's building blocks; ``len(disks) == layout.ndisks``.
    config:
        The full system configuration (block size, policies...).
    """

    def __init__(
        self,
        env: Environment,
        layout: Layout,
        disks: Sequence[Disk],
        channel: Channel,
        config: "SystemConfig",
    ) -> None:
        if len(disks) != layout.ndisks:
            raise ValueError(
                f"layout expects {layout.ndisks} disks, got {len(disks)}"
            )
        self.env = env
        self.layout = layout
        self.disks = list(disks)
        self.channel = channel
        self.config = config
        #: Memoized logical→physical planning (pass-through when the
        #: layout has no translational symmetry or the knob is off).
        self.plans = PlanCache(
            layout,
            config.rmw_threshold,
            enabled=getattr(config, "plan_cache", True),
        )
        self.requests_handled = 0
        #: Optional validation tap (``repro.validate``): an object with
        #: ``on_handle(controller, lstart, nblocks, is_write)`` and
        #: ``on_destage(controller, run)``.  ``None`` keeps request
        #: admission at one identity check.
        self.probe = None

    @property
    def block_bytes(self) -> int:
        return self.config.block_bytes

    @abstractmethod
    def handle(
        self, lstart: int, nblocks: int, is_write: bool
    ) -> Generator[Event, None, None]:
        """Service one logical request; yields until it completes."""

    # -- shared helpers -------------------------------------------------------
    def _channel_transfer(self, nblocks: int) -> Generator[Event, None, float]:
        """Move *nblocks* worth of data over the array channel."""
        return self.channel.transfer(nblocks * self.block_bytes)
