"""Parity/data synchronization policies (§3.3).

Updating a block in a parity organization requires reading the old data
and old parity, then writing both anew; the *parity* write cannot happen
until the old data has been read.  When and with what priority the
parity access is issued is the synchronization policy:

``SI`` (Simultaneous Issue)
    Parity access queued at the same time as the data access.  If the
    old data is not available when the parity disk has read the old
    parity and completed a revolution, the parity disk is *held*,
    spinning whole revolutions, until it is.
``RF`` (Read First)
    Parity access issued only after the old data has been read —
    minimal disk utilization, longer update response time.
``RF/PR``
    RF, with the parity access jumping ahead of non-parity accesses in
    the parity disk's queue.
``DF`` (Disk First)
    Parity access issued when the data access reaches the head of its
    queue and acquires the disk.
``DF/PR``
    DF with priority (the policy Chen & Towsley modelled) — the paper's
    overall winner.
"""

from __future__ import annotations

import enum
from typing import Sequence

from repro.des import AllOf, Environment, Event
from repro.disk.request import DiskRequest, Priority

__all__ = ["SyncPolicy", "parity_priority", "parity_issue_gate"]


class SyncPolicy(enum.Enum):
    """When the parity access of an update is issued."""

    SI = "SI"
    RF = "RF"
    RF_PR = "RF/PR"
    DF = "DF"
    DF_PR = "DF/PR"

    @classmethod
    def parse(cls, text: str) -> "SyncPolicy":
        """Accept the paper's spellings: ``SI, RF, RF/PR, DF, DF/PR``."""
        for member in cls:
            if member.value == text.upper():
                return member
        raise ValueError(
            f"unknown sync policy {text!r}; expected one of "
            f"{[m.value for m in cls]}"
        )


def parity_priority(policy: SyncPolicy) -> float:
    """Queue priority for parity accesses under *policy*."""
    if policy in (SyncPolicy.RF_PR, SyncPolicy.DF_PR):
        return Priority.PARITY_URGENT
    return Priority.NORMAL


def parity_issue_gate(
    policy: SyncPolicy, env: Environment, data_requests: Sequence[DiskRequest]
) -> Event | None:
    """Event after which the parity access may be submitted.

    ``None`` means submit immediately (SI).  For RF the gate is the
    completion of all old-data reads; for DF it is all data accesses
    having acquired their disks.
    """
    if policy is SyncPolicy.SI:
        return None
    if policy in (SyncPolicy.RF, SyncPolicy.RF_PR):
        return AllOf(env, [r.read_complete for r in data_requests])
    return AllOf(env, [r.started for r in data_requests])
