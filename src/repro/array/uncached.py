"""Non-cached controllers (§4.2): Base, Mirror and the parity
organizations (RAID5 / Parity Striping / RAID4) with track buffers.

Data paths:

* read:  disk → track buffer → channel (a busy channel never costs a
  revolution);
* write: channel → track buffer → disk;
* parity update: data disk performs a combined read-rotate-write; the
  parity disk does the same with its write gated on the old-data read,
  orchestrated per the configured synchronization policy.

Every write group claims all the track buffers it will need *upfront*
(atomic multi-acquire) — incremental claiming would let concurrent
parity updates deadlock on the pool.
"""

from __future__ import annotations

from typing import Generator, Sequence

from repro.array.controller import ArrayController
from repro.array.sync import SyncPolicy, parity_issue_gate, parity_priority
from repro.channel.bus import Channel
from repro.channel.trackbuffer import TrackBufferPool
from repro.des import AllOf, Environment, Event
from repro.disk.drive import Disk
from repro.disk.request import AccessKind, DiskRequest
from repro.layout.common import Layout, Run, WriteGroup, WriteMode
from repro.layout.mirror import MirrorLayout

__all__ = [
    "UncachedBaseController",
    "UncachedMirrorController",
    "UncachedParityController",
]


class _UncachedController(ArrayController):
    """Shared buffer/channel plumbing for the non-cached organizations."""

    def __init__(
        self,
        env: Environment,
        layout: Layout,
        disks: Sequence[Disk],
        channel: Channel,
        config,
    ) -> None:
        super().__init__(env, layout, disks, channel, config)
        self.buffers = TrackBufferPool(
            env, ndisks=layout.ndisks, buffers_per_disk=config.track_buffers_per_disk
        )

    # -- reads ---------------------------------------------------------------
    def handle(self, lstart: int, nblocks: int, is_write: bool):
        self.requests_handled += 1
        if self.probe is not None:
            self.probe.on_handle(self, lstart, nblocks, is_write)
        if is_write:
            return self._handle_write(lstart, nblocks)
        return self._handle_read(lstart, nblocks)

    def _handle_read(self, lstart: int, nblocks: int) -> Generator[Event, None, None]:
        runs = self.plans.read_runs(lstart, nblocks)
        if len(runs) == 1:
            yield from self._read_run(runs[0])
            return
        procs = [self.env.process(self._read_run(run)) for run in runs]
        yield AllOf(self.env, procs)

    def _read_run(self, run: Run) -> Generator[Event, None, None]:
        yield from self.buffers.acquire(1)
        try:
            req = self._pick_read_disk(run).submit(
                DiskRequest(AccessKind.READ, run.start, run.nblocks)
            )
            yield req.done
            yield from self._channel_transfer(run.nblocks)
        finally:
            self.buffers.release(1)

    def _pick_read_disk(self, run: Run) -> Disk:
        """Which physical disk services a read of *run* (mirror overrides)."""
        return self.disks[run.disk]

    # -- writes ----------------------------------------------------------------
    def _handle_write(self, lstart: int, nblocks: int) -> Generator[Event, None, None]:
        # Host data crosses the channel into the track buffers first.
        yield from self._channel_transfer(nblocks)
        plan = self.plans.write_plan(lstart, nblocks)
        procs = [self.env.process(self._write_group(group)) for group in plan]
        if len(procs) == 1:
            yield procs[0]
        else:
            yield AllOf(self.env, procs)

    def _group_buffers(self, group: WriteGroup) -> int:
        """Track buffers a write group needs (claimed atomically)."""
        return len(group.data_runs) + len(group.read_runs) + len(group.parity_runs)

    def _write_group(self, group: WriteGroup) -> Generator[Event, None, None]:
        if self.probe is not None:
            self.probe.on_write_group(self, group)
        nbuf = self._group_buffers(group)
        yield from self.buffers.acquire(nbuf)
        try:
            yield from self._execute_group(group)
        finally:
            self.buffers.release(nbuf)

    def _execute_group(self, group: WriteGroup) -> Generator[Event, None, None]:
        raise NotImplementedError


class UncachedBaseController(_UncachedController):
    """Independent disks: writes go straight to the addressed disk."""

    def _execute_group(self, group: WriteGroup) -> Generator[Event, None, None]:
        assert group.mode is WriteMode.PLAIN
        done = [
            self.disks[run.disk]
            .submit(DiskRequest(AccessKind.WRITE, run.start, run.nblocks))
            .done
            for run in group.data_runs
        ]
        yield AllOf(self.env, done)


class UncachedMirrorController(_UncachedController):
    """Mirrored pairs: writes to both members (response = max); reads to
    the member whose arm is nearest the target (shortest-seek routing)."""

    def __init__(self, env, layout, disks, channel, config) -> None:
        if not isinstance(layout, MirrorLayout):
            raise TypeError("mirror controller requires a MirrorLayout")
        super().__init__(env, layout, disks, channel, config)
        self.mlayout: MirrorLayout = layout

    def _pick_read_disk(self, run: Run) -> Disk:
        a = self.disks[run.disk]
        b = self.disks[self.mlayout.mirror_of(run.disk)]
        da, db = a.seek_distance_to(run.start), b.seek_distance_to(run.start)
        if da != db:
            chosen = a if da < db else b
        else:
            # Tie: the shorter queue wins.
            chosen = a if a.pending <= b.pending else b
        if self.probe is not None:
            alt, s_c, s_a = (b, da, db) if chosen is a else (a, db, da)
            self.probe.on_mirror_route(self, run, chosen, alt, s_c, s_a)
        return chosen

    def _execute_group(self, group: WriteGroup) -> Generator[Event, None, None]:
        assert group.mode is WriteMode.PLAIN
        done = []
        for run in group.data_runs:
            for disk_idx in (run.disk, self.mlayout.mirror_of(run.disk)):
                req = self.disks[disk_idx].submit(
                    DiskRequest(AccessKind.WRITE, run.start, run.nblocks)
                )
                done.append(req.done)
        yield AllOf(self.env, done)


class UncachedParityController(_UncachedController):
    """RAID5 / RAID4 / Parity Striping without a cache.

    Small writes use the read-modify-write path on the data disk(s) and
    the parity disk, synchronized per ``config.sync_policy``; large
    writes use reconstruct or full-stripe paths from the layout's plan.
    """

    def __init__(self, env, layout, disks, channel, config) -> None:
        if not layout.has_parity:
            raise TypeError("parity controller requires a parity layout")
        super().__init__(env, layout, disks, channel, config)
        self.sync_policy: SyncPolicy = config.sync_policy_enum

    def _execute_group(self, group: WriteGroup) -> Generator[Event, None, None]:
        if group.mode is WriteMode.FULL:
            yield from self._full_stripe(group)
        elif group.mode is WriteMode.RECONSTRUCT:
            yield from self._reconstruct(group)
        else:
            yield from self._rmw(group)

    def _full_stripe(self, group: WriteGroup) -> Generator[Event, None, None]:
        """Everything is written fresh; parity computed from host data."""
        done = [
            self.disks[run.disk]
            .submit(DiskRequest(AccessKind.WRITE, run.start, run.nblocks))
            .done
            for run in group.data_runs + group.parity_runs
        ]
        yield AllOf(self.env, done)

    def _reconstruct(self, group: WriteGroup) -> Generator[Event, None, None]:
        """Read the untouched units, then write data and fresh parity.

        The parity write is *submitted* only once the reads complete: a
        priority parity access issued earlier could jump ahead of another
        update's reads on its disk and create a cross-disk circular wait
        (the reads it needs queued behind parity accesses and vice versa).
        """
        reads = [
            self.disks[run.disk].submit(
                DiskRequest(AccessKind.READ, run.start, run.nblocks)
            )
            for run in group.read_runs
        ]
        done = [
            self.disks[run.disk]
            .submit(DiskRequest(AccessKind.WRITE, run.start, run.nblocks))
            .done
            for run in group.data_runs
        ]
        yield AllOf(self.env, [r.done for r in reads])
        for run in group.parity_runs:
            req = self.disks[run.disk].submit(
                DiskRequest(
                    AccessKind.WRITE,
                    run.start,
                    run.nblocks,
                    priority=parity_priority(self.sync_policy),
                )
            )
            done.append(req.done)
        yield AllOf(self.env, done)

    def _rmw(self, group: WriteGroup) -> Generator[Event, None, None]:
        """Read-modify-write on data disk(s) and parity disk."""
        env = self.env
        data_reqs = [
            self.disks[run.disk].submit(
                DiskRequest(AccessKind.RMW, run.start, run.nblocks)
            )
            for run in group.data_runs
        ]

        data_ready = AllOf(env, [r.read_complete for r in data_reqs])
        prio = parity_priority(self.sync_policy)
        gate = parity_issue_gate(self.sync_policy, env, data_reqs)
        if gate is not None:
            yield gate
        # Only SI issues the parity access before the data acquires its
        # disk, so only SI can hold the parity disk indefinitely; the
        # bounded hold makes it give up and retry.
        max_hold = (
            self.config.si_max_hold_revolutions
            if self.sync_policy is SyncPolicy.SI
            else None
        )

        parity_done = [
            self.disks[run.disk]
            .submit(
                DiskRequest(
                    AccessKind.RMW,
                    run.start,
                    run.nblocks,
                    priority=prio,
                    data_ready=data_ready,
                    max_hold_revolutions=max_hold,
                )
            )
            .done
            for run in group.parity_runs
        ]
        yield AllOf(env, [r.done for r in data_reqs] + parity_done)
