"""The host ↔ array channel.

A single shared link per array (10 MB/s in Table 1).  Transfers queue
FCFS (with optional priority) and hold the channel for
``bytes / rate``.  Channel time matters mainly as a fixed per-request
cost plus occasional contention when many disks in an array complete at
once — exactly how the paper uses it ("we account for all channel and
disk-related effects").
"""

from __future__ import annotations

from typing import Generator

from repro.des import Environment, Event, Resource, TimeWeighted

__all__ = ["Channel"]


class Channel:
    """A shared transfer link with a given rate.

    Parameters
    ----------
    env:
        Simulation environment.
    rate_mb_per_s:
        Transfer rate in MB/s (decimal megabytes, as in the paper).
    name:
        Identification for metrics.
    """

    def __init__(self, env: Environment, rate_mb_per_s: float = 10.0, name: str = "channel") -> None:
        if rate_mb_per_s <= 0:
            raise ValueError("rate must be positive")
        self.env = env
        self.name = name
        self.bytes_per_ms = rate_mb_per_s * 1e6 / 1000.0
        self._link = Resource(env, capacity=1)
        self.busy_time = 0.0
        self.bytes_transferred = 0
        self.transfers = 0
        self.queue_length = TimeWeighted(env.now, 0.0)
        #: Optional observation tap (``repro.validate`` / ``repro.obs``):
        #: an object with ``on_channel_request(channel, nbytes)`` (at
        #: enqueue) and ``on_channel_transfer(channel, nbytes, duration)``
        #: (at completion).
        self.probe = None

    def transfer_time(self, nbytes: int) -> float:
        """Pure wire time for *nbytes* in ms."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        return nbytes / self.bytes_per_ms

    def transfer(self, nbytes: int, priority: float = 0.0) -> Generator[Event, None, float]:
        """Acquire the channel and move *nbytes*; returns completion time.

        Use as ``yield from channel.transfer(...)`` inside a process.
        """
        env = self.env
        if self.probe is not None:
            self.probe.on_channel_request(self, nbytes)
        self.queue_length.add(env.now, +1)
        with self._link.request(priority=priority) as claim:
            yield claim
            self.queue_length.add(env.now, -1)
            duration = self.transfer_time(nbytes)
            yield env.timeout(duration)
            self.busy_time += duration
            self.bytes_transferred += nbytes
            self.transfers += 1
            if self.probe is not None:
                self.probe.on_channel_transfer(self, nbytes, duration)
        return env.now

    def utilization(self, now: float | None = None) -> float:
        """Fraction of time the channel has been busy."""
        t = self.env.now if now is None else now
        return self.busy_time / t if t > 0 else 0.0

    def __repr__(self) -> str:
        return f"<Channel {self.name} {self.bytes_per_ms * 1000 / 1e6:.1f} MB/s>"
