"""Host ↔ controller channel and controller track buffers.

Each array has one controller connected to the host by an independent
10 MB/s channel (Table 1).  Track buffers in the controller decouple the
disk surface from the channel: a read is staged disk → buffer → channel,
a write channel → buffer → disk, so a busy channel never costs a disk an
extra revolution.
"""

from repro.channel.bus import Channel
from repro.channel.trackbuffer import TrackBufferPool

__all__ = ["Channel", "TrackBufferPool"]
