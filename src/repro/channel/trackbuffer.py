"""Controller track buffers.

Non-cached controllers hold a small pool of track buffers — five per
attached disk in the paper — staging data between the disk surface and
the channel, and holding old data/parity while new parity is computed.

The pool is a counting semaphore with FIFO waiters and *atomic*
multi-buffer acquisition: a request that needs ``k`` buffers takes all
``k`` at once or waits.  (Incremental acquisition would allow
hold-and-wait deadlock between concurrent parity updates.)  At five
buffers per disk the pool almost never binds, which the tests verify.
"""

from __future__ import annotations

from collections import deque
from typing import Generator

from repro.des import Environment, Event

__all__ = ["TrackBufferPool"]


class TrackBufferPool:
    """Pool of identical track buffers shared by an array's controller."""

    def __init__(self, env: Environment, ndisks: int, buffers_per_disk: int = 5) -> None:
        if ndisks < 1 or buffers_per_disk < 1:
            raise ValueError("need at least one disk and one buffer per disk")
        self.env = env
        self.capacity = ndisks * buffers_per_disk
        self._available = self.capacity
        self._waiters: deque[tuple[int, Event]] = deque()
        self.peak_in_use = 0
        self.acquisitions = 0
        self.waits = 0

    @property
    def in_use(self) -> int:
        """Buffers currently held."""
        return self.capacity - self._available

    @property
    def available(self) -> int:
        return self._available

    @property
    def waiting(self) -> int:
        """Acquisition requests queued for buffers."""
        return len(self._waiters)

    def acquire(self, k: int = 1) -> Generator[Event, None, None]:
        """Atomically claim *k* buffers; waits (FIFO) if short.

        Use as ``yield from pool.acquire(k)``.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if k > self.capacity:
            raise ValueError(f"cannot acquire {k} of {self.capacity} buffers")
        if self._waiters or self._available < k:
            self.waits += 1
            grant = Event(self.env)
            self._waiters.append((k, grant))
            yield grant
        else:
            self._take(k)

    def release(self, k: int = 1) -> None:
        """Return *k* buffers and wake satisfiable waiters in FIFO order."""
        if k < 1 or self.in_use < k:
            raise ValueError(f"cannot release {k} buffers ({self.in_use} in use)")
        self._available += k
        while self._waiters and self._waiters[0][0] <= self._available:
            need, grant = self._waiters.popleft()
            self._take(need)
            grant.succeed()

    def _take(self, k: int) -> None:
        self._available -= k
        self.acquisitions += 1
        if self.in_use > self.peak_in_use:
            self.peak_in_use = self.in_use
