"""Simulation outputs.

:class:`RunResult` aggregates what the paper reports: mean response time
(overall and split by direction), cache hit ratios, per-disk access
counts (Figs. 6/7), disk and channel utilizations, and destage/sync
counters for diagnosing the cached organizations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.des import Tally

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.failure.report import FailureReport
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.span import TraceData

__all__ = ["RunResult", "ArrayMetrics"]


@dataclass
class ArrayMetrics:
    """Per-array counters harvested after a run."""

    disk_accesses: np.ndarray  # completed requests per physical disk
    disk_utilization: np.ndarray
    channel_utilization: float
    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    sync_writebacks: int = 0
    destaged_blocks: int = 0
    #: Request-plan cache counters (0 when the cache is disabled).
    plan_hits: int = 0
    plan_misses: int = 0


@dataclass
class RunResult:
    """Everything measured in one simulation run."""

    name: str
    organization: str
    n: int
    narrays: int
    simulated_ms: float
    requests: int
    warmup_ms: float
    response: Tally = field(default_factory=Tally)
    read_response: Tally = field(default_factory=Tally)
    write_response: Tally = field(default_factory=Tally)
    arrays: list[ArrayMetrics] = field(default_factory=list)
    #: Per-Virtual-Array response tallies for heterogeneous runs, in VA
    #: order (a split request counts toward its first VA).  Empty for
    #: homogeneous runs, so legacy results are unchanged.
    va_response: list[Tally] = field(default_factory=list)
    #: Kernel events scheduled during the run (0 for the analytic
    #: backend, which has no event loop).  Telemetry only — excluded
    #: from equality so it can never perturb result comparisons.
    events: int = field(default=0, compare=False)
    #: Span trace from ``run_trace(..., trace=True)``; ``None`` otherwise.
    #: Excluded from equality so instrumented results compare equal to
    #: plain ones.
    trace: Optional["TraceData"] = field(default=None, repr=False, compare=False)
    #: Metrics registry from ``run_trace(..., metrics=True)``.
    metrics: Optional["MetricsRegistry"] = field(
        default=None, repr=False, compare=False
    )
    #: Failure-scenario outcome from ``run_trace(..., failures=...)``;
    #: ``None`` for healthy runs.  Excluded from equality like the other
    #: instrumentation fields (the response statistics already reflect
    #: the scenario's performance impact).
    failures: Optional["FailureReport"] = field(
        default=None, repr=False, compare=False
    )

    # -- headline numbers -------------------------------------------------------
    @property
    def mean_response_ms(self) -> float:
        """The paper's primary metric (NaN when nothing was measured)."""
        return self.response.mean

    @property
    def p95_response_ms(self) -> float:
        """95th-percentile response (NaN when nothing was measured)."""
        if self.response.count == 0:
            return math.nan
        return self.response.percentile(95)

    @property
    def read_hit_ratio(self) -> float:
        hits = sum(a.read_hits for a in self.arrays)
        total = hits + sum(a.read_misses for a in self.arrays)
        return hits / total if total else math.nan

    @property
    def write_hit_ratio(self) -> float:
        hits = sum(a.write_hits for a in self.arrays)
        total = hits + sum(a.write_misses for a in self.arrays)
        return hits / total if total else math.nan

    @property
    def per_disk_accesses(self) -> np.ndarray:
        """Access counts for every physical disk, array-major."""
        if not self.arrays:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate([a.disk_accesses for a in self.arrays])

    @property
    def mean_disk_utilization(self) -> float:
        if not self.arrays:
            return math.nan
        return float(np.mean(np.concatenate([a.disk_utilization for a in self.arrays])))

    @property
    def max_disk_utilization(self) -> float:
        if not self.arrays:
            return math.nan
        return float(np.max(np.concatenate([a.disk_utilization for a in self.arrays])))

    @property
    def io_rate_per_s(self) -> float:
        span = self.simulated_ms - self.warmup_ms
        return self.requests / (span / 1000.0) if span > 0 else math.nan

    def summary(self) -> str:
        """Human-readable one-run report."""
        lines = [
            f"{self.name}: {self.organization} N={self.n} x{self.narrays} arrays",
            f"  requests measured   {self.response.count:,} "
            f"({self.requests:,} total, warmup {self.warmup_ms:.0f} ms)",
            f"  mean response       {self.mean_response_ms:.2f} ms "
            f"(reads {self.read_response.mean:.2f}, writes {self.write_response.mean:.2f})",
            f"  p95 response        {self.p95_response_ms:.2f} ms",
            f"  disk utilization    mean {self.mean_disk_utilization:.1%}, "
            f"max {self.max_disk_utilization:.1%}",
        ]
        if not math.isnan(self.read_hit_ratio):
            lines.append(
                f"  hit ratios          read {self.read_hit_ratio:.1%}, "
                f"write {self.write_hit_ratio:.1%}"
            )
        return "\n".join(lines)
