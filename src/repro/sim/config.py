"""Simulation configuration.

Defaults reproduce Table 1 (disk/channel parameters) and Table 4
(default experiment parameters): ``N = 10``, 4 KB blocks, Disk First
synchronization, 1-block striping unit, middle-cylinder parity
placement, 16 MB cache for cached organizations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.array.sync import SyncPolicy
from repro.disk.geometry import DiskGeometry
from repro.disk.seek import SeekModel
from repro.layout import (
    BaseLayout,
    Layout,
    MirrorLayout,
    ParityPlacement,
    ParityStripingLayout,
    Raid4Layout,
    Raid5Layout,
)
from repro.trace.synthetic import DEFAULT_BLOCKS_PER_DISK

__all__ = ["Organization", "DiskParams", "SystemConfig"]


class Organization(enum.Enum):
    """The five organizations of Table 3."""

    BASE = "base"
    MIRROR = "mirror"
    RAID5 = "raid5"
    RAID4 = "raid4"
    PARITY_STRIPING = "parity_striping"

    @classmethod
    def parse(cls, text: str) -> "Organization":
        t = text.strip().lower().replace("-", "_").replace(" ", "_")
        aliases = {
            "parstripe": cls.PARITY_STRIPING,
            "parity_stripe": cls.PARITY_STRIPING,
            "ps": cls.PARITY_STRIPING,
        }
        if t in aliases:
            return aliases[t]
        for member in cls:
            if member.value == t:
                return member
        raise ValueError(f"unknown organization {text!r}")


@dataclass(frozen=True)
class DiskParams:
    """Table 1 disk parameters plus the seek-curve settle time."""

    rpm: float = 5400.0
    average_seek_ms: float = 11.2
    maximal_seek_ms: float = 28.0
    settle_ms: float = 2.0
    cylinders: int = 1260
    surfaces: int = 30  # 15 platters
    sectors_per_track: int = 48
    bytes_per_sector: int = 512

    def geometry(self, block_bytes: int = 4096) -> DiskGeometry:
        """Build the :class:`DiskGeometry` for these parameters."""
        return DiskGeometry(
            cylinders=self.cylinders,
            surfaces=self.surfaces,
            sectors_per_track=self.sectors_per_track,
            bytes_per_sector=self.bytes_per_sector,
            rpm=self.rpm,
            block_bytes=block_bytes,
        )

    def seek_model(self) -> SeekModel:
        """Fit the seek curve to these parameters."""
        return SeekModel.fit(
            cylinders=self.cylinders,
            average_ms=self.average_seek_ms,
            maximal_ms=self.maximal_seek_ms,
            settle_ms=self.settle_ms,
        )


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build and run one simulated I/O subsystem."""

    organization: Organization = Organization.RAID5
    #: Array size: data-disk equivalents per array (Table 4: N = 10).
    n: int = 10
    #: Logical database blocks per data disk.
    blocks_per_disk: int = DEFAULT_BLOCKS_PER_DISK
    block_bytes: int = 4096
    #: RAID5/RAID4 striping unit in blocks (Table 4: 1 block).
    striping_unit: int = 1
    #: Parity Striping placement (Table 4: middle cylinders).
    parity_placement: ParityPlacement = ParityPlacement.MIDDLE
    #: Parity Striping fine-grained parity (the paper's suggested
    #: extension): rotate group membership every this many blocks of
    #: area offset; None = classic whole-area groups.
    parity_grain: int | None = None
    #: Parity/data synchronization (Table 4: Disk First).
    sync_policy: str = "DF"
    #: Stripe-coverage fraction at or above which reconstruct-write is
    #: used instead of read-modify-write ("less than half a stripe").
    rmw_threshold: float = 0.5
    #: Under SI, revolutions the parity disk is held waiting for the old
    #: data before requeueing the access ("held for the duration of some
    #: number of full rotations", §3.3).  The bound also breaks the
    #: cross-disk circular wait that unbounded holding can create.
    si_max_hold_revolutions: int = 4

    # Channel & buffers.
    channel_mb_per_s: float = 10.0
    track_buffers_per_disk: int = 5
    #: Per-disk queue discipline: ``fcfs`` (priority classes, FIFO
    #: within — the paper's model) or ``sstf`` (shortest seek first
    #: within the best priority class; an ablation extension).
    disk_scheduler: str = "fcfs"

    # Cache (cached organizations only).
    cached: bool = False
    cache_mb: float = 16.0
    destage_period_ms: float = 1000.0
    #: Cap on blocks destaged per cycle (None = everything dirty).
    destage_max_blocks: int | None = None
    #: Write-back policy (§3.4 compares the first two; the third is the
    #: decoupling the paper suggests investigating):
    #: ``periodic``   — background destage of all dirty blocks each period
    #:                  (the paper's choice, found best at all cache sizes);
    #: ``lru_demand`` — "basic LRU": dirty blocks written back only when
    #:                  they reach the LRU head and a miss replaces them;
    #: ``decoupled``  — frequent small destages of the oldest dirty blocks
    #:                  plus a periodic full flush that frees old copies.
    destage_policy: str = "periodic"
    #: decoupled policy: destages per period and blocks per destage.
    decoupled_batches_per_period: int = 4
    decoupled_batch_blocks: int = 24
    #: RAID4 parity caching (§4.4); RAID4 is only studied cached.
    parity_caching: bool = True
    #: Synchronize all spindles (paper: "No spindle synchronization is
    #: assumed", so the default randomises each disk's rotational phase).
    spindle_sync: bool = False
    #: Seed for the deterministic spindle phases.
    phase_seed: int = 77

    disk: DiskParams = field(default_factory=DiskParams)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("n must be >= 1")
        if self.cache_mb <= 0:
            raise ValueError("cache_mb must be positive")
        if self.destage_period_ms <= 0:
            raise ValueError("destage period must be positive")
        if not 0.0 < self.rmw_threshold <= 1.0:
            raise ValueError("rmw_threshold must be in (0, 1]")
        if self.destage_policy not in ("periodic", "lru_demand", "decoupled"):
            raise ValueError(f"unknown destage policy {self.destage_policy!r}")
        if self.disk_scheduler not in ("fcfs", "sstf"):
            raise ValueError(f"unknown disk scheduler {self.disk_scheduler!r}")
        if self.decoupled_batches_per_period < 1 or self.decoupled_batch_blocks < 1:
            raise ValueError("decoupled destage parameters must be >= 1")
        SyncPolicy.parse(self.sync_policy)  # validate early

    # -- derived -------------------------------------------------------------
    @property
    def sync_policy_enum(self) -> SyncPolicy:
        return SyncPolicy.parse(self.sync_policy)

    @property
    def cache_blocks(self) -> int:
        """Cache capacity in blocks (MB are binary here: 16 MB -> 4096)."""
        return int(self.cache_mb * 1024 * 1024 // self.block_bytes)

    @property
    def disks_per_array(self) -> int:
        """Physical disks per array for this organization (Table 3)."""
        if self.organization is Organization.BASE:
            return self.n
        if self.organization is Organization.MIRROR:
            return 2 * self.n
        return self.n + 1

    def make_layout(self) -> Layout:
        """Instantiate the layout for one array."""
        org = self.organization
        if org is Organization.BASE:
            return BaseLayout(self.n, self.blocks_per_disk)
        if org is Organization.MIRROR:
            return MirrorLayout(self.n, self.blocks_per_disk)
        if org is Organization.RAID5:
            return Raid5Layout(self.n, self.blocks_per_disk, self.striping_unit)
        if org is Organization.RAID4:
            return Raid4Layout(self.n, self.blocks_per_disk, self.striping_unit)
        return ParityStripingLayout(
            self.n,
            self.blocks_per_disk,
            self.parity_placement,
            parity_grain=self.parity_grain,
        )

    def arrays_for(self, total_data_disks: int) -> int:
        """Arrays needed to hold *total_data_disks* logical disks."""
        if total_data_disks % self.n:
            raise ValueError(
                f"{total_data_disks} data disks not divisible by N={self.n}"
            )
        return total_data_disks // self.n

    def with_(self, **changes) -> "SystemConfig":
        """Functional update (convenience for parameter sweeps)."""
        return replace(self, **changes)
