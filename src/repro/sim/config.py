"""Simulation configuration.

Defaults reproduce Table 1 (disk/channel parameters) and Table 4
(default experiment parameters): ``N = 10``, 4 KB blocks, Disk First
synchronization, 1-block striping unit, middle-cylinder parity
placement, 16 MB cache for cached organizations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.array.sync import SyncPolicy
from repro.disk.geometry import DiskGeometry
from repro.disk.seek import SeekModel
from repro.layout import (
    BaseLayout,
    Layout,
    MirrorLayout,
    ParityPlacement,
    ParityStripingLayout,
    Raid4Layout,
    Raid5Layout,
)
from repro.layout.allocation import POLICIES, PoolSlot, VADemand, allocate
from repro.trace.synthetic import DEFAULT_BLOCKS_PER_DISK

__all__ = [
    "DiskParams",
    "DiskPoolEntry",
    "Organization",
    "SystemConfig",
    "VAConfig",
]


class Organization(enum.Enum):
    """The five organizations of Table 3."""

    BASE = "base"
    MIRROR = "mirror"
    RAID5 = "raid5"
    RAID4 = "raid4"
    PARITY_STRIPING = "parity_striping"

    @classmethod
    def parse(cls, text: str) -> "Organization":
        t = text.strip().lower().replace("-", "_").replace(" ", "_")
        aliases = {
            "parstripe": cls.PARITY_STRIPING,
            "parity_stripe": cls.PARITY_STRIPING,
            "ps": cls.PARITY_STRIPING,
        }
        if t in aliases:
            return aliases[t]
        for member in cls:
            if member.value == t:
                return member
        raise ValueError(f"unknown organization {text!r}")


@dataclass(frozen=True)
class DiskParams:
    """Table 1 disk parameters plus the seek-curve settle time."""

    rpm: float = 5400.0
    average_seek_ms: float = 11.2
    maximal_seek_ms: float = 28.0
    settle_ms: float = 2.0
    cylinders: int = 1260
    surfaces: int = 30  # 15 platters
    sectors_per_track: int = 48
    bytes_per_sector: int = 512

    def geometry(self, block_bytes: int = 4096) -> DiskGeometry:
        """Build the :class:`DiskGeometry` for these parameters."""
        return DiskGeometry(
            cylinders=self.cylinders,
            surfaces=self.surfaces,
            sectors_per_track=self.sectors_per_track,
            bytes_per_sector=self.bytes_per_sector,
            rpm=self.rpm,
            block_bytes=block_bytes,
        )

    def seek_model(self) -> SeekModel:
        """Fit the seek curve to these parameters."""
        return SeekModel.fit(
            cylinders=self.cylinders,
            average_ms=self.average_seek_ms,
            maximal_ms=self.maximal_seek_ms,
            settle_ms=self.settle_ms,
        )


def _disk_bandwidth(disk: DiskParams, block_bytes: int) -> float:
    """Small-access figure of merit: accesses/ms at zero load."""
    geometry = disk.geometry(block_bytes)
    service = (
        disk.average_seek_ms
        + geometry.revolution_time / 2.0
        + geometry.block_transfer_time
    )
    return 1.0 / service


@dataclass(frozen=True)
class VAConfig:
    """One Virtual Array of a Heterogeneous Disk Array.

    A VA is a self-contained array organization — its own RAID level,
    width, stripe unit and (optionally) disk model and capacity share —
    carved out of the system's disk pool.  ``None`` fields inherit the
    enclosing :class:`SystemConfig`'s value, so a VA only states what
    differs from the system defaults.
    """

    organization: Organization
    #: Array size: data-disk equivalents of this VA.
    n: int
    #: Label for reports (defaults to the organization name).
    name: str = ""
    striping_unit: int = 1
    #: Logical blocks per data disk of this VA (its capacity share);
    #: ``None`` inherits the system's ``blocks_per_disk``.
    blocks_per_disk: int | None = None
    #: Disk model when the system has no pool (``None`` inherits);
    #: ignored when a pool is present — the allocation policy decides.
    disk: DiskParams | None = None
    #: Expected share of the workload's accesses, relative across VAs.
    #: The bandwidth-balanced allocation policy ranks VAs by
    #: ``heat / physical disks``.
    heat: float = 1.0
    cached: bool = False
    cache_mb: float | None = None
    parity_placement: ParityPlacement = ParityPlacement.MIDDLE
    parity_grain: int | None = None

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("VA n must be >= 1")
        if self.striping_unit < 1:
            raise ValueError("VA striping_unit must be >= 1")
        if self.blocks_per_disk is not None and self.blocks_per_disk < 1:
            raise ValueError("VA blocks_per_disk must be >= 1")
        if self.heat <= 0:
            raise ValueError("VA heat must be positive")
        if self.cache_mb is not None and self.cache_mb <= 0:
            raise ValueError("VA cache_mb must be positive")
        if self.parity_grain is not None and self.parity_grain < 1:
            raise ValueError("VA parity_grain must be >= 1")

    @property
    def label(self) -> str:
        return self.name or self.organization.value

    @property
    def ndisks(self) -> int:
        """Physical disks this VA's layout needs (Table 3 rule)."""
        if self.organization is Organization.BASE:
            return self.n
        if self.organization is Organization.MIRROR:
            return 2 * self.n
        return self.n + 1


@dataclass(frozen=True)
class DiskPoolEntry:
    """``count`` identical disks offered to the allocation policies."""

    disk: DiskParams
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("pool entry count must be >= 1")


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build and run one simulated I/O subsystem."""

    organization: Organization = Organization.RAID5
    #: Array size: data-disk equivalents per array (Table 4: N = 10).
    n: int = 10
    #: Logical database blocks per data disk.
    blocks_per_disk: int = DEFAULT_BLOCKS_PER_DISK
    block_bytes: int = 4096
    #: RAID5/RAID4 striping unit in blocks (Table 4: 1 block).
    striping_unit: int = 1
    #: Parity Striping placement (Table 4: middle cylinders).
    parity_placement: ParityPlacement = ParityPlacement.MIDDLE
    #: Parity Striping fine-grained parity (the paper's suggested
    #: extension): rotate group membership every this many blocks of
    #: area offset; None = classic whole-area groups.
    parity_grain: int | None = None
    #: Parity/data synchronization (Table 4: Disk First).
    sync_policy: str = "DF"
    #: Stripe-coverage fraction at or above which reconstruct-write is
    #: used instead of read-modify-write ("less than half a stripe").
    rmw_threshold: float = 0.5
    #: Memoize logical→physical request plans in the controllers
    #: (:mod:`repro.array.plancache`).  Plans are bit-identical either
    #: way — the knob exists for A/B benchmarking and as an escape hatch.
    plan_cache: bool = True
    #: Under SI, revolutions the parity disk is held waiting for the old
    #: data before requeueing the access ("held for the duration of some
    #: number of full rotations", §3.3).  The bound also breaks the
    #: cross-disk circular wait that unbounded holding can create.
    si_max_hold_revolutions: int = 4

    # Channel & buffers.
    channel_mb_per_s: float = 10.0
    track_buffers_per_disk: int = 5
    #: Per-disk queue discipline: ``fcfs`` (priority classes, FIFO
    #: within — the paper's model) or ``sstf`` (shortest seek first
    #: within the best priority class; an ablation extension).
    disk_scheduler: str = "fcfs"

    # Cache (cached organizations only).
    cached: bool = False
    cache_mb: float = 16.0
    destage_period_ms: float = 1000.0
    #: Cap on blocks destaged per cycle (None = everything dirty).
    destage_max_blocks: int | None = None
    #: Write-back policy (§3.4 compares the first two; the third is the
    #: decoupling the paper suggests investigating):
    #: ``periodic``   — background destage of all dirty blocks each period
    #:                  (the paper's choice, found best at all cache sizes);
    #: ``lru_demand`` — "basic LRU": dirty blocks written back only when
    #:                  they reach the LRU head and a miss replaces them;
    #: ``decoupled``  — frequent small destages of the oldest dirty blocks
    #:                  plus a periodic full flush that frees old copies.
    destage_policy: str = "periodic"
    #: decoupled policy: destages per period and blocks per destage.
    decoupled_batches_per_period: int = 4
    decoupled_batch_blocks: int = 24
    #: RAID4 parity caching (§4.4); RAID4 is only studied cached.
    parity_caching: bool = True
    #: Synchronize all spindles (paper: "No spindle synchronization is
    #: assumed", so the default randomises each disk's rotational phase).
    spindle_sync: bool = False
    #: Seed for the deterministic spindle phases.
    phase_seed: int = 77

    disk: DiskParams = field(default_factory=DiskParams)

    # Heterogeneous Disk Array (HDA) extension: when ``vas`` is
    # non-empty the system is a set of Virtual Arrays placed onto
    # ``pool`` by ``allocation``; the legacy single-organization fields
    # above then only provide defaults the VAs can inherit.
    vas: tuple[VAConfig, ...] = ()
    #: Placement policy (see :mod:`repro.layout.allocation`).
    allocation: str = "first_fit"
    #: Heterogeneous disk pool; empty = every VA uses its own (or the
    #: system's) disk model directly.
    pool: tuple[DiskPoolEntry, ...] = ()

    def __post_init__(self) -> None:
        # Coerce lists passed for convenience into the hashable tuples
        # the frozen dataclass expects.
        if not isinstance(self.vas, tuple):
            object.__setattr__(self, "vas", tuple(self.vas))
        if not isinstance(self.pool, tuple):
            object.__setattr__(self, "pool", tuple(self.pool))
        if self.n < 1:
            raise ValueError("n must be >= 1")
        if self.blocks_per_disk < 1:
            raise ValueError("blocks_per_disk must be >= 1")
        if self.block_bytes < 1:
            raise ValueError("block_bytes must be >= 1")
        if self.striping_unit < 1:
            raise ValueError("striping_unit must be >= 1")
        if self.parity_grain is not None and self.parity_grain < 1:
            raise ValueError("parity_grain must be >= 1")
        if self.channel_mb_per_s <= 0:
            raise ValueError("channel_mb_per_s must be positive")
        if self.track_buffers_per_disk < 1:
            raise ValueError("track_buffers_per_disk must be >= 1")
        if self.si_max_hold_revolutions < 1:
            raise ValueError("si_max_hold_revolutions must be >= 1")
        if self.cache_mb <= 0:
            raise ValueError("cache_mb must be positive")
        if self.destage_period_ms <= 0:
            raise ValueError("destage period must be positive")
        if self.destage_max_blocks is not None and self.destage_max_blocks < 1:
            raise ValueError("destage_max_blocks must be >= 1")
        if not 0.0 < self.rmw_threshold <= 1.0:
            raise ValueError("rmw_threshold must be in (0, 1]")
        if self.destage_policy not in ("periodic", "lru_demand", "decoupled"):
            raise ValueError(f"unknown destage policy {self.destage_policy!r}")
        if self.disk_scheduler not in ("fcfs", "sstf"):
            raise ValueError(f"unknown disk scheduler {self.disk_scheduler!r}")
        if self.decoupled_batches_per_period < 1 or self.decoupled_batch_blocks < 1:
            raise ValueError("decoupled destage parameters must be >= 1")
        SyncPolicy.parse(self.sync_policy)  # validate early
        if self.allocation not in POLICIES:
            raise ValueError(
                f"unknown allocation policy {self.allocation!r}; "
                f"expected one of {POLICIES}"
            )
        if self.pool and not self.vas:
            raise ValueError("a disk pool requires at least one VA")

    # -- derived -------------------------------------------------------------
    @property
    def sync_policy_enum(self) -> SyncPolicy:
        return SyncPolicy.parse(self.sync_policy)

    @property
    def cache_blocks(self) -> int:
        """Cache capacity in blocks (MB are binary here: 16 MB -> 4096)."""
        return int(self.cache_mb * 1024 * 1024 // self.block_bytes)

    @property
    def disks_per_array(self) -> int:
        """Physical disks per array for this organization (Table 3)."""
        if self.heterogeneous:
            raise ValueError(
                "heterogeneous config: per-VA, use va_view(vi).disks_per_array"
            )
        if self.organization is Organization.BASE:
            return self.n
        if self.organization is Organization.MIRROR:
            return 2 * self.n
        return self.n + 1

    def make_layout(self) -> Layout:
        """Instantiate the layout for one array."""
        if self.heterogeneous:
            raise ValueError(
                "heterogeneous config: per-VA, use va_view(vi).make_layout()"
            )
        org = self.organization
        if org is Organization.BASE:
            return BaseLayout(self.n, self.blocks_per_disk)
        if org is Organization.MIRROR:
            return MirrorLayout(self.n, self.blocks_per_disk)
        if org is Organization.RAID5:
            return Raid5Layout(self.n, self.blocks_per_disk, self.striping_unit)
        if org is Organization.RAID4:
            return Raid4Layout(self.n, self.blocks_per_disk, self.striping_unit)
        return ParityStripingLayout(
            self.n,
            self.blocks_per_disk,
            self.parity_placement,
            parity_grain=self.parity_grain,
        )

    def arrays_for(self, total_data_disks: int) -> int:
        """Arrays needed to hold *total_data_disks* logical disks."""
        if self.heterogeneous:
            raise ValueError(
                "heterogeneous config: the arrays are the VAs (len(vas))"
            )
        if total_data_disks % self.n:
            raise ValueError(
                f"{total_data_disks} data disks not divisible by N={self.n}"
            )
        return total_data_disks // self.n

    def with_(self, **changes) -> "SystemConfig":
        """Functional update (convenience for parameter sweeps).

        The replacement re-runs ``__post_init__``, so the resulting
        config is validated exactly like a freshly constructed one —
        an invalid piecemeal change (``with_(striping_unit=0)``) raises
        instead of producing a config the builders choke on later.
        """
        return replace(self, **changes)

    # -- heterogeneous (HDA) derived ------------------------------------------
    @property
    def heterogeneous(self) -> bool:
        """True when the system is a set of Virtual Arrays."""
        return bool(self.vas)

    def va_blocks_per_disk(self, vi: int) -> int:
        """Effective blocks-per-data-disk of VA *vi* (inheriting)."""
        va = self.vas[vi]
        return (
            va.blocks_per_disk
            if va.blocks_per_disk is not None
            else self.blocks_per_disk
        )

    @property
    def va_spans(self) -> tuple[int, ...]:
        """Logical address-space blocks owned by each VA, in order."""
        return tuple(
            va.n * self.va_blocks_per_disk(vi) for vi, va in enumerate(self.vas)
        )

    @property
    def total_logical_blocks(self) -> int:
        """Size of the combined VA logical address space."""
        if not self.heterogeneous:
            raise ValueError("total_logical_blocks is defined for HDA configs")
        return sum(self.va_spans)

    @property
    def organization_label(self) -> str:
        """Report label: the org name, or ``hda(...)`` listing the VAs."""
        if not self.heterogeneous:
            return self.organization.value
        return "hda(" + "+".join(va.organization.value for va in self.vas) + ")"

    @property
    def any_cached(self) -> bool:
        """Whether any array (legacy or VA) runs a controller cache."""
        if not self.heterogeneous:
            return self.cached
        return any(va.cached for va in self.vas)

    def va_view(self, vi: int) -> "SystemConfig":
        """A legacy-shaped config describing VA *vi* alone.

        The builders, controllers and the analytic decomposition all
        consume plain single-organization configs; the heterogeneous
        paths hand them this per-VA view instead of teaching every
        layer about VAs.
        """
        va = self.vas[vi]
        return replace(
            self,
            vas=(),
            pool=(),
            allocation="first_fit",
            organization=va.organization,
            n=va.n,
            blocks_per_disk=self.va_blocks_per_disk(vi),
            striping_unit=va.striping_unit,
            parity_placement=va.parity_placement,
            parity_grain=va.parity_grain,
            cached=va.cached,
            cache_mb=va.cache_mb if va.cache_mb is not None else self.cache_mb,
            disk=va.disk if va.disk is not None else self.disk,
        )

    def resolve_disk_params(self) -> list[list[DiskParams]]:
        """Physical disk model for every disk of every VA.

        With a pool, runs the configured allocation policy; without
        one, each VA uses its own (or the inherited) disk model.
        Raises :class:`~repro.layout.allocation.AllocationError` when
        the pool cannot satisfy the VAs.
        """
        if not self.heterogeneous:
            raise ValueError("resolve_disk_params is defined for HDA configs")
        if not self.pool:
            return [
                [self.va_view(vi).disk] * va.ndisks
                for vi, va in enumerate(self.vas)
            ]
        slot_params = [e.disk for e in self.pool for _ in range(e.count)]
        slots = [
            PoolSlot(
                capacity_blocks=p.geometry(self.block_bytes).total_blocks,
                bandwidth=_disk_bandwidth(p, self.block_bytes),
            )
            for p in slot_params
        ]
        demands = [
            VADemand(
                ndisks=va.ndisks,
                capacity_blocks=self.va_blocks_per_disk(vi),
                heat=va.heat,
            )
            for vi, va in enumerate(self.vas)
        ]
        placements = allocate(self.allocation, demands, slots)
        return [[slot_params[si] for si in placed] for placed in placements]
