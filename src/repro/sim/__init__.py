"""System assembly and simulation running.

:mod:`repro.sim.config` holds every parameter (Tables 1 and 4 defaults),
:mod:`repro.sim.system` builds arrays from a config,
:mod:`repro.sim.runner` drives a trace through the system and collects
:mod:`repro.sim.results`.
"""

from repro.sim.config import (
    DiskParams,
    DiskPoolEntry,
    Organization,
    SystemConfig,
    VAConfig,
)
from repro.sim.results import ArrayMetrics, RunResult
from repro.sim.system import ArraySystem, build_system
from repro.sim.runner import run_trace

__all__ = [
    "ArrayMetrics",
    "ArraySystem",
    "DiskParams",
    "DiskPoolEntry",
    "Organization",
    "RunResult",
    "SystemConfig",
    "VAConfig",
    "build_system",
    "run_trace",
]
