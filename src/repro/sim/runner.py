"""Trace-driven simulation runner.

Feeds a :class:`~repro.trace.record.Trace` through a built system: a
source process releases each request at its arrival time and spawns a
handler process on the owning array's controller; the handler's
completion time defines the response time.  Requests arriving before
the warm-up cutoff run normally but are excluded from the statistics.

Observability is opt-in: ``trace=True`` records a per-request span tree
(:class:`~repro.obs.span.TraceData` on ``result.trace``) and
``metrics=True`` fills a registry of counters, histograms and sampled
utilization timelines (``result.metrics``).  Neither perturbs the
simulation — instrumented runs produce bit-identical results.
"""

from __future__ import annotations

from typing import Generator, Optional, Union

import numpy as np

from repro.des import AllOf, Environment, Event, Tally
from repro.sim.config import SystemConfig
from repro.sim.results import ArrayMetrics, RunResult
from repro.sim.system import ArraySystem, build_system
from repro.trace.record import Trace
from repro.trace.synthetic import TraceStream

__all__ = ["run_trace"]


def run_trace(
    config: SystemConfig,
    workload: Union[Trace, TraceStream],
    warmup_fraction: float = 0.1,
    keep_samples: bool = True,
    name: Optional[str] = None,
    validate: bool = False,
    checkers=None,
    trace: Union[bool, "object"] = False,
    metrics: Union[bool, "object"] = False,
    metrics_interval_ms: Optional[float] = None,
    backend: str = "des",
    failures=None,
    warmup_ms: Optional[float] = None,
) -> RunResult:
    """Simulate *workload* on a system built from *config*.

    Parameters
    ----------
    workload:
        A materialized :class:`~repro.trace.record.Trace`, or a
        :class:`~repro.trace.synthetic.TraceStream` — the streaming
        source keeps only one chunk of requests resident, so 10M+
        request runs stay memory-bounded.  A stream and its
        :meth:`~repro.trace.synthetic.TraceStream.materialize`-d trace
        run a bit-identical simulation; pass ``warmup_ms`` to also pin
        the statistics cutoff (a stream's ``duration_ms`` is the nominal
        target, a trace's the realized last arrival, so a *fractional*
        warm-up resolves differently).  Streams require the DES backend
        (the analytic solver characterizes a whole trace at once).
    backend:
        ``"des"`` (default) runs the discrete-event simulation;
        ``"analytic"`` solves the same question with the M/G/1 +
        fork-join model in :mod:`repro.analytic` — orders of magnitude
        faster, accurate within the cross-validation tolerance bands.
        The analytic backend has no events, so ``validate``/``trace``/
        ``metrics`` instrumentation cannot be combined with it.
    warmup_fraction:
        Fraction of the trace duration excluded from statistics while
        queues and caches warm up.
    warmup_ms:
        Absolute warm-up cutoff in milliseconds; overrides
        ``warmup_fraction`` when given.
    keep_samples:
        Store every response time (enables percentiles; disable for very
        long runs).
    validate:
        Attach a :class:`~repro.validate.ValidationMonitor` for the run:
        invariant checkers observe every disk access, channel transfer
        and cache mutation and raise
        :class:`~repro.validate.InvariantViolation` on the first breach.
        Off by default — the unmonitored hot path costs one identity
        check per tap.
    checkers:
        Checker instances for the monitor (requires ``validate=True``);
        ``None`` selects the stock set.
    trace:
        ``True`` (or a pre-built :class:`~repro.obs.Tracer`) records a
        span tree per request; the export lands on ``result.trace``.
    metrics:
        ``True`` (or a :class:`~repro.obs.MetricsRegistry` to merge
        into) collects counters, latency histograms and utilization
        timelines; the registry lands on ``result.metrics``.
    metrics_interval_ms:
        Sampling period for the utilization/queue-depth timelines.
        Defaults to 1/200th of the trace duration (at least 1 ms).
    failures:
        A :class:`~repro.failure.FailureSchedule` of timed fault events
        (disk failure, spare arrival + rebuild, latent sector errors,
        periodic scrubbing) injected into the run.  The system is built
        with failure-capable controllers, the scenario is driven by a
        :class:`~repro.failure.FailureInjector`, and the outcome lands
        on ``result.failures`` as a
        :class:`~repro.failure.FailureReport`.  After the foreground
        trace drains, the clock keeps running until the scenario
        completes (pending events, started rebuilds, ``min_passes``
        scrub passes).  DES backend, uncached organizations only.

    Returns
    -------
    RunResult with response-time statistics and per-array counters.
    """
    if backend not in ("des", "analytic"):
        raise ValueError(f"unknown backend {backend!r}; expected 'des' or 'analytic'")
    if backend == "analytic":
        if isinstance(workload, TraceStream):
            raise ValueError(
                "the analytic backend characterizes a whole trace at once; "
                "materialize() the stream or use backend='des'"
            )
        if failures is not None:
            from repro.analytic import AnalyticUnsupportedError

            raise AnalyticUnsupportedError(
                "the analytic backend solves the healthy steady state only; "
                "failure schedules (degraded mode, rebuild, scrubbing) are "
                "transient behaviours it cannot represent — run the scenario "
                "with backend='des' instead"
            )
        if validate or checkers is not None:
            raise ValueError("the analytic backend has no events to validate")
        if (trace is not False and trace is not None) or (
            metrics is not False and metrics is not None
        ):
            raise ValueError("the analytic backend has no events to trace/meter")
        from repro.analytic import solve_trace

        return solve_trace(config, workload, warmup_fraction=warmup_fraction, name=name)
    if config.heterogeneous:
        total = workload.ndisks * workload.blocks_per_disk
        if total != config.total_logical_blocks:
            raise ValueError(
                f"trace addresses {total} logical blocks but the VAs define "
                f"{config.total_logical_blocks} "
                f"(spans {config.va_spans})"
            )
    elif workload.blocks_per_disk != config.blocks_per_disk:
        raise ValueError(
            f"trace uses {workload.blocks_per_disk} blocks/disk but the config "
            f"expects {config.blocks_per_disk}"
        )
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    if warmup_ms is not None and warmup_ms < 0:
        raise ValueError("warmup_ms must be >= 0")
    if checkers is not None and not validate:
        raise ValueError("checkers were supplied but validate is False")
    controller_factory = None
    if failures is not None:
        from repro.failure import FailureSchedule, failure_controller_factory

        if not isinstance(failures, FailureSchedule):
            raise TypeError(
                f"failures must be a FailureSchedule, got {type(failures).__name__}"
            )
        if config.any_cached:
            raise ValueError(
                "failure schedules support the uncached organizations only; "
                "run with cached=False"
            )
        controller_factory = failure_controller_factory
    narrays = (
        len(config.vas) if config.heterogeneous
        else config.arrays_for(workload.ndisks)
    )

    env = Environment()
    system = build_system(env, config, narrays, controller_factory=controller_factory)
    if warmup_ms is None:
        warmup_ms = workload.duration_ms * warmup_fraction

    monitor = None
    if validate:
        from repro.validate.monitor import ValidationMonitor

        monitor = ValidationMonitor(checkers)
        monitor.attach(env, system.controllers, warmup_ms)

    # The tracer attaches after the monitor so both see every probe tap
    # (the tracer wraps an existing probe in a fanout).
    tracer = None
    if trace is not False and trace is not None:
        from repro.obs.tracer import Tracer

        tracer = trace if not isinstance(trace, bool) else Tracer()
        tracer.attach(env, system.controllers)

    # Identity checks, not truthiness: an empty pre-built registry has
    # len() == 0 and must still be used.
    collector = None
    if metrics is not False and metrics is not None:
        from repro.obs.collect import MetricsCollector
        from repro.obs.metrics import MetricsRegistry

        registry = metrics if isinstance(metrics, MetricsRegistry) else None
        collector = MetricsCollector(registry)
        if metrics_interval_ms is None:
            metrics_interval_ms = max(workload.duration_ms / 200.0, 1.0)
        collector.attach(env, system.controllers, metrics_interval_ms)

    result = RunResult(
        name=name or workload.name,
        organization=config.organization_label,
        n=sum(va.n for va in config.vas) if config.heterogeneous else config.n,
        narrays=narrays,
        simulated_ms=0.0,
        requests=len(workload),
        warmup_ms=warmup_ms,
    )
    if config.heterogeneous:
        result.va_response = [Tally() for _ in config.vas]
    for tally in (
        result.response,
        result.read_response,
        result.write_response,
        *result.va_response,
    ):
        tally._samples = [] if keep_samples else None

    # The injector is created *before* the source process so that fault
    # events scheduled for the same instant as a request arrival apply
    # first (lower sequence number) — a t=0 failure is visible to the
    # very first request, deterministically.
    injector = None
    if failures is not None and not failures.empty:
        from repro.failure import FailureInjector

        injector = FailureInjector(env, system, failures)

    # The background destage/spooler processes never terminate, so the
    # run ends when the last request completes, not when the event queue
    # drains.
    progress = _Progress(len(workload), Event(env))
    env.process(
        _source(env, system, workload, warmup_ms, result, progress, monitor,
                tracer, collector)
    )
    if len(workload):
        env.run(until=progress.all_done)
    if injector is not None:
        # Keep the clock running until the scenario itself completes:
        # unapplied events, started rebuilds, owed scrub passes.
        injector.drain()
    result.simulated_ms = env.now
    result.events = env._seq
    if failures is not None:
        from repro.failure import build_report

        result.failures = build_report(
            system.controllers,
            rebuilds=injector.rebuilds if injector is not None else (),
            scrubs=injector.scrubs if injector is not None else (),
        )

    for controller in system.controllers:
        array_metrics = ArrayMetrics(
            disk_accesses=np.array([d.completed for d in controller.disks], dtype=np.int64),
            disk_utilization=np.array(
                [d.utilization(env.now) for d in controller.disks], dtype=np.float64
            ),
            channel_utilization=controller.channel.utilization(env.now),
        )
        cache = getattr(controller, "cache", None)
        if cache is not None:
            array_metrics.read_hits = cache.read_hits
            array_metrics.read_misses = cache.read_misses
            array_metrics.write_hits = cache.write_hits
            array_metrics.write_misses = cache.write_misses
            array_metrics.sync_writebacks = controller.sync_writebacks
            array_metrics.destaged_blocks = controller.destaged_blocks
        plans = getattr(controller, "plans", None)
        if plans is not None:
            array_metrics.plan_hits = plans.hits
            array_metrics.plan_misses = plans.misses
        result.arrays.append(array_metrics)

    # Tracer first: its detach restores the monitor's probes, which the
    # monitor's own finalize then removes.
    if tracer is not None:
        result.trace = tracer.finalize(
            {
                "name": result.name,
                "organization": result.organization,
                "n": result.n,
                "narrays": result.narrays,
                "warmup_ms": warmup_ms,
                "simulated_ms": result.simulated_ms,
            }
        )
    if monitor is not None:
        monitor.finalize(result)
    if collector is not None:
        result.metrics = collector.finalize(result)
    return result


class _Progress:
    """Counts completed requests and triggers when the last finishes."""

    __slots__ = ("remaining", "all_done")

    def __init__(self, total: int, all_done: Event) -> None:
        self.remaining = total
        self.all_done = all_done

    def one_done(self) -> None:
        self.remaining -= 1
        if self.remaining == 0:
            self.all_done.succeed()


def _source(
    env: Environment,
    system: ArraySystem,
    workload: Union[Trace, TraceStream],
    warmup_ms: float,
    result: RunResult,
    progress: "_Progress",
    monitor=None,
    tracer=None,
    collector=None,
) -> Generator[Event, None, None]:
    """Release requests at their trace arrival times.

    A materialized trace is treated as a single chunk, so the array and
    streaming paths run the same release loop — per-request behaviour is
    bit-identical between them by construction.  With a stream, only the
    current chunk's columns are resident; the next chunk is generated
    after the last request of this one has been released.
    """
    if isinstance(workload, Trace):
        chunk_iter = iter((workload.records,))
    else:
        chunk_iter = workload.chunks()
    rid = 0
    for records in chunk_iter:
        # One bulk tolist() per column instead of a numpy scalar
        # allocation per field access; the python floats/ints carry the
        # same values.
        times = records["time"].tolist()
        lblocks = records["lblock"].tolist()
        nblocks = records["nblocks"].tolist()
        is_write = records["is_write"].tolist()
        for i in range(len(times)):
            t = times[i]
            if t > env.now:
                yield env.timeout(t - env.now)
            if monitor is not None:
                monitor.request_released(rid, env.now)
            lstart, span, write = lblocks[i], nblocks[i], is_write[i]
            proc = env.process(
                _request(
                    env,
                    system,
                    lstart,
                    span,
                    write,
                    warmup_ms,
                    result,
                    progress,
                    monitor,
                    rid,
                    tracer,
                    collector,
                )
            )
            if tracer is not None:
                tracer.request_released(rid, proc, lstart, span, write)
            rid += 1


def _request(
    env: Environment,
    system: ArraySystem,
    lblock: int,
    nblocks: int,
    is_write: bool,
    warmup_ms: float,
    result: RunResult,
    progress: "_Progress",
    monitor=None,
    rid: int = -1,
    tracer=None,
    collector=None,
) -> Generator[Event, None, None]:
    """Service one trace request, splitting across arrays if needed."""
    t0 = env.now
    parts = system.split(lblock, nblocks)

    if len(parts) == 1:
        _, controller, local, span = parts[0]
        yield from controller.handle(local, span, is_write)
    else:
        procs = [
            env.process(controller.handle(local, span, is_write))
            for _, controller, local, span in parts
        ]
        yield AllOf(env, procs)

    if monitor is not None:
        monitor.request_completed(rid, env.now)
    if tracer is not None:
        tracer.request_completed(rid)
    if t0 >= warmup_ms:
        rt = env.now - t0
        result.response.observe(rt)
        (result.write_response if is_write else result.read_response).observe(rt)
        if result.va_response:
            result.va_response[parts[0][0]].observe(rt)
        if collector is not None:
            collector.observe_response(rt, is_write)
    progress.one_done()
