"""Trace-driven simulation runner.

Feeds a :class:`~repro.trace.record.Trace` through a built system: a
source process releases each request at its arrival time and spawns a
handler process on the owning array's controller; the handler's
completion time defines the response time.  Requests arriving before
the warm-up cutoff run normally but are excluded from the statistics.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.des import AllOf, Environment, Event
from repro.sim.config import SystemConfig
from repro.sim.results import ArrayMetrics, RunResult
from repro.sim.system import ArraySystem, build_system
from repro.trace.record import Trace

__all__ = ["run_trace"]


def run_trace(
    config: SystemConfig,
    trace: Trace,
    warmup_fraction: float = 0.1,
    keep_samples: bool = True,
    name: Optional[str] = None,
    validate: bool = False,
    checkers=None,
) -> RunResult:
    """Simulate *trace* on a system built from *config*.

    Parameters
    ----------
    warmup_fraction:
        Fraction of the trace duration excluded from statistics while
        queues and caches warm up.
    keep_samples:
        Store every response time (enables percentiles; disable for very
        long runs).
    validate:
        Attach a :class:`~repro.validate.ValidationMonitor` for the run:
        invariant checkers observe every disk access, channel transfer
        and cache mutation and raise
        :class:`~repro.validate.InvariantViolation` on the first breach.
        Off by default — the unmonitored hot path costs one identity
        check per tap.
    checkers:
        Checker instances for the monitor (requires ``validate=True``);
        ``None`` selects the stock set.

    Returns
    -------
    RunResult with response-time statistics and per-array counters.
    """
    if trace.blocks_per_disk != config.blocks_per_disk:
        raise ValueError(
            f"trace uses {trace.blocks_per_disk} blocks/disk but the config "
            f"expects {config.blocks_per_disk}"
        )
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    if checkers is not None and not validate:
        raise ValueError("checkers were supplied but validate is False")
    narrays = config.arrays_for(trace.ndisks)

    env = Environment()
    system = build_system(env, config, narrays)
    warmup_ms = trace.duration_ms * warmup_fraction

    monitor = None
    if validate:
        from repro.validate.monitor import ValidationMonitor

        monitor = ValidationMonitor(checkers)
        monitor.attach(env, system.controllers, warmup_ms)

    result = RunResult(
        name=name or trace.name,
        organization=config.organization.value,
        n=config.n,
        narrays=narrays,
        simulated_ms=0.0,
        requests=len(trace),
        warmup_ms=warmup_ms,
    )
    for tally in (result.response, result.read_response, result.write_response):
        tally._samples = [] if keep_samples else None

    # The background destage/spooler processes never terminate, so the
    # run ends when the last request completes, not when the event queue
    # drains.
    progress = _Progress(len(trace), Event(env))
    env.process(_source(env, system, trace, warmup_ms, result, progress, monitor))
    if len(trace):
        env.run(until=progress.all_done)
    result.simulated_ms = env.now

    for controller in system.controllers:
        metrics = ArrayMetrics(
            disk_accesses=np.array([d.completed for d in controller.disks], dtype=np.int64),
            disk_utilization=np.array(
                [d.utilization(env.now) for d in controller.disks], dtype=np.float64
            ),
            channel_utilization=controller.channel.utilization(env.now),
        )
        cache = getattr(controller, "cache", None)
        if cache is not None:
            metrics.read_hits = cache.read_hits
            metrics.read_misses = cache.read_misses
            metrics.write_hits = cache.write_hits
            metrics.write_misses = cache.write_misses
            metrics.sync_writebacks = controller.sync_writebacks
            metrics.destaged_blocks = controller.destaged_blocks
        result.arrays.append(metrics)
    if monitor is not None:
        monitor.finalize(result)
    return result


class _Progress:
    """Counts completed requests and triggers when the last finishes."""

    __slots__ = ("remaining", "all_done")

    def __init__(self, total: int, all_done: Event) -> None:
        self.remaining = total
        self.all_done = all_done

    def one_done(self) -> None:
        self.remaining -= 1
        if self.remaining == 0:
            self.all_done.succeed()


def _source(
    env: Environment,
    system: ArraySystem,
    trace: Trace,
    warmup_ms: float,
    result: RunResult,
    progress: "_Progress",
    monitor=None,
) -> Generator[Event, None, None]:
    """Release requests at their trace arrival times."""
    records = trace.records
    times = records["time"]
    lblocks = records["lblock"]
    nblocks = records["nblocks"]
    is_write = records["is_write"]
    for i in range(len(records)):
        t = float(times[i])
        if t > env.now:
            yield env.timeout(t - env.now)
        if monitor is not None:
            monitor.request_released(i, env.now)
        env.process(
            _request(
                env,
                system,
                int(lblocks[i]),
                int(nblocks[i]),
                bool(is_write[i]),
                warmup_ms,
                result,
                progress,
                monitor,
                i,
            )
        )


def _request(
    env: Environment,
    system: ArraySystem,
    lblock: int,
    nblocks: int,
    is_write: bool,
    warmup_ms: float,
    result: RunResult,
    progress: "_Progress",
    monitor=None,
    rid: int = -1,
) -> Generator[Event, None, None]:
    """Service one trace request, splitting across arrays if needed."""
    t0 = env.now
    per_array = system.config.n * system.config.blocks_per_disk

    parts = []
    pos, end = lblock, lblock + nblocks
    while pos < end:
        idx, controller, local = system.controller_for(pos)
        span = min(end - pos, (idx + 1) * per_array - pos)
        parts.append((controller, local, span))
        pos += span

    if len(parts) == 1:
        controller, local, span = parts[0]
        yield from controller.handle(local, span, is_write)
    else:
        procs = [
            env.process(controller.handle(local, span, is_write))
            for controller, local, span in parts
        ]
        yield AllOf(env, procs)

    if monitor is not None:
        monitor.request_completed(rid, env.now)
    if t0 >= warmup_ms:
        rt = env.now - t0
        result.response.observe(rt)
        (result.write_response if is_write else result.read_response).observe(rt)
    progress.one_done()
