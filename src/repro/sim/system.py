"""Building a simulated I/O subsystem from a configuration.

Each array is self-contained — its own disks, channel, controller and
(if cached) NV cache — mirroring §3.2: "Each array has one controller
and an independent channel connecting it to the host."

Heterogeneous configs (``config.vas`` non-empty) build one array per
Virtual Array instead: each VA gets its own layout, its own channel,
and physical disks whose model comes from the allocation policy's
placement over the disk pool (:meth:`SystemConfig.resolve_disk_params`).
Routing is VA-first — the logical address space is the concatenation of
the VA spans, which may differ in size — while the homogeneous path
keeps its closed-form ``divmod`` routing bit-for-bit.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

import numpy as np

from repro.array.cached import CachedController
from repro.array.controller import ArrayController
from repro.array.uncached import (
    UncachedBaseController,
    UncachedMirrorController,
    UncachedParityController,
)
from repro.channel.bus import Channel
from repro.des import Environment
from repro.disk.drive import Disk
from repro.disk.scheduler import SSTFScheduler
from repro.sim.config import Organization, SystemConfig

__all__ = ["ArraySystem", "build_system"]


@dataclass
class ArraySystem:
    """A built subsystem: ``narrays`` independent arrays.

    ``spans`` is the logical block count owned by each array.  Empty
    means uniform legacy spans of ``n * blocks_per_disk`` each, routed
    by division; a heterogeneous build fills it with the per-VA spans
    and routing bisects the cumulative bounds.
    """

    env: Environment
    config: SystemConfig
    controllers: list[ArrayController]
    spans: tuple[int, ...] = ()
    _bounds: list[int] = field(init=False, repr=False, default_factory=list)

    def __post_init__(self) -> None:
        total = 0
        for span in self.spans:
            total += span
            self._bounds.append(total)

    @property
    def narrays(self) -> int:
        return len(self.controllers)

    @property
    def total_disks(self) -> int:
        """Physical disks across all arrays (the equal-capacity cost)."""
        return sum(len(c.disks) for c in self.controllers)

    def controller_for(self, lblock: int) -> tuple[int, ArrayController, int]:
        """Route a global logical block: ``(array, controller, local_block)``."""
        if not self._bounds:
            per_array = self.config.n * self.config.blocks_per_disk
            idx = lblock // per_array
            return idx, self.controllers[idx], lblock - idx * per_array
        idx = bisect_right(self._bounds, lblock)
        start = self._bounds[idx - 1] if idx else 0
        return idx, self.controllers[idx], lblock - start

    def array_end(self, idx: int) -> int:
        """First global logical block past array *idx*."""
        if not self._bounds:
            return (idx + 1) * self.config.n * self.config.blocks_per_disk
        return self._bounds[idx]

    def split(self, lblock: int, nblocks: int) -> list[tuple[int, ArrayController, int, int]]:
        """Split a request into per-array parts.

        Returns ``(array, controller, local_block, span)`` tuples in
        address order; most requests yield exactly one part.
        """
        parts = []
        pos, end = lblock, lblock + nblocks
        while pos < end:
            idx, controller, local = self.controller_for(pos)
            span = min(end - pos, self.array_end(idx) - pos)
            parts.append((idx, controller, local, span))
            pos += span
        return parts


def build_system(
    env: Environment,
    config: SystemConfig,
    narrays: int,
    controller_factory=None,
) -> ArraySystem:
    """Instantiate *narrays* arrays of the configured organization.

    ``controller_factory(env, layout, disks, channel, config)`` replaces
    the default controller selection when given — the failure subsystem
    uses it to substitute the failure-capable controllers
    (:func:`repro.failure.failure_controller_factory`) without the
    healthy path paying anything for the capability.  Heterogeneous
    configs ignore *narrays* beyond checking it matches ``len(vas)``;
    the factory then receives each VA's :meth:`~SystemConfig.va_view`.
    """
    if narrays < 1:
        raise ValueError("need at least one array")
    if config.heterogeneous:
        return _build_heterogeneous(env, config, narrays, controller_factory)
    geometry = config.disk.geometry(config.block_bytes)
    if config.blocks_per_disk > geometry.total_blocks:
        raise ValueError(
            f"database slice of {config.blocks_per_disk} blocks exceeds the "
            f"disk's {geometry.total_blocks}"
        )
    seek_model = config.disk.seek_model()
    phase_rng = np.random.default_rng(config.phase_seed)

    controllers: list[ArrayController] = []
    for ai in range(narrays):
        layout = config.make_layout()
        disks = [
            Disk(
                env,
                geometry,
                seek_model,
                name=f"a{ai}.d{di}",
                scheduler=(
                    SSTFScheduler(geometry) if config.disk_scheduler == "sstf" else None
                ),
                phase=0.0 if config.spindle_sync else float(phase_rng.random()),
            )
            for di in range(layout.ndisks)
        ]
        channel = Channel(env, config.channel_mb_per_s, name=f"a{ai}.chan")
        make = controller_factory if controller_factory is not None else _make_controller
        controllers.append(make(env, layout, disks, channel, config))
    return ArraySystem(env=env, config=config, controllers=controllers)


def _build_heterogeneous(
    env: Environment,
    config: SystemConfig,
    narrays: int,
    controller_factory=None,
) -> ArraySystem:
    """One array per Virtual Array, disks placed by the allocation policy."""
    if narrays != len(config.vas):
        raise ValueError(
            f"heterogeneous config defines {len(config.vas)} VAs but "
            f"{narrays} arrays were requested"
        )
    assigned = config.resolve_disk_params()
    models: dict = {}  # DiskParams -> (geometry, seek_model), built once
    phase_rng = np.random.default_rng(config.phase_seed)

    controllers: list[ArrayController] = []
    for vi, va in enumerate(config.vas):
        vcfg = config.va_view(vi)
        layout = vcfg.make_layout()
        params_list = assigned[vi]
        if len(params_list) != layout.ndisks:  # pragma: no cover - guard
            raise ValueError(
                f"VA {vi} placement has {len(params_list)} disks, "
                f"layout needs {layout.ndisks}"
            )
        disks = []
        for di, params in enumerate(params_list):
            cached = models.get(params)
            if cached is None:
                cached = (params.geometry(config.block_bytes), params.seek_model())
                models[params] = cached
            geometry, seek_model = cached
            if vcfg.blocks_per_disk > geometry.total_blocks:
                raise ValueError(
                    f"VA {vi} ({va.label}) needs {vcfg.blocks_per_disk} blocks "
                    f"per disk but its assigned disk holds {geometry.total_blocks}"
                )
            disks.append(
                Disk(
                    env,
                    geometry,
                    seek_model,
                    name=f"a{vi}.d{di}",
                    scheduler=(
                        SSTFScheduler(geometry)
                        if config.disk_scheduler == "sstf"
                        else None
                    ),
                    phase=0.0 if config.spindle_sync else float(phase_rng.random()),
                )
            )
        channel = Channel(env, config.channel_mb_per_s, name=f"a{vi}.chan")
        make = controller_factory if controller_factory is not None else _make_controller
        controllers.append(make(env, layout, disks, channel, vcfg))
    return ArraySystem(
        env=env, config=config, controllers=controllers, spans=config.va_spans
    )


def _make_controller(env, layout, disks, channel, config: SystemConfig) -> ArrayController:
    if config.cached:
        return CachedController(env, layout, disks, channel, config)
    org = config.organization
    if org is Organization.BASE:
        return UncachedBaseController(env, layout, disks, channel, config)
    if org is Organization.MIRROR:
        return UncachedMirrorController(env, layout, disks, channel, config)
    return UncachedParityController(env, layout, disks, channel, config)
