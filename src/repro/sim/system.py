"""Building a simulated I/O subsystem from a configuration.

Each array is self-contained — its own disks, channel, controller and
(if cached) NV cache — mirroring §3.2: "Each array has one controller
and an independent channel connecting it to the host."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.array.cached import CachedController
from repro.array.controller import ArrayController
from repro.array.uncached import (
    UncachedBaseController,
    UncachedMirrorController,
    UncachedParityController,
)
from repro.channel.bus import Channel
from repro.des import Environment
from repro.disk.drive import Disk
from repro.disk.scheduler import SSTFScheduler
from repro.sim.config import Organization, SystemConfig

__all__ = ["ArraySystem", "build_system"]


@dataclass
class ArraySystem:
    """A built subsystem: ``narrays`` independent arrays."""

    env: Environment
    config: SystemConfig
    controllers: list[ArrayController]

    @property
    def narrays(self) -> int:
        return len(self.controllers)

    @property
    def total_disks(self) -> int:
        """Physical disks across all arrays (the equal-capacity cost)."""
        return sum(len(c.disks) for c in self.controllers)

    def controller_for(self, lblock: int) -> tuple[int, ArrayController, int]:
        """Route a global logical block: ``(array, controller, local_block)``."""
        per_array = self.config.n * self.config.blocks_per_disk
        idx = lblock // per_array
        return idx, self.controllers[idx], lblock - idx * per_array


def build_system(
    env: Environment,
    config: SystemConfig,
    narrays: int,
    controller_factory=None,
) -> ArraySystem:
    """Instantiate *narrays* arrays of the configured organization.

    ``controller_factory(env, layout, disks, channel, config)`` replaces
    the default controller selection when given — the failure subsystem
    uses it to substitute the failure-capable controllers
    (:func:`repro.failure.failure_controller_factory`) without the
    healthy path paying anything for the capability.
    """
    if narrays < 1:
        raise ValueError("need at least one array")
    geometry = config.disk.geometry(config.block_bytes)
    if config.blocks_per_disk > geometry.total_blocks:
        raise ValueError(
            f"database slice of {config.blocks_per_disk} blocks exceeds the "
            f"disk's {geometry.total_blocks}"
        )
    seek_model = config.disk.seek_model()
    phase_rng = np.random.default_rng(config.phase_seed)

    controllers: list[ArrayController] = []
    for ai in range(narrays):
        layout = config.make_layout()
        disks = [
            Disk(
                env,
                geometry,
                seek_model,
                name=f"a{ai}.d{di}",
                scheduler=(
                    SSTFScheduler(geometry) if config.disk_scheduler == "sstf" else None
                ),
                phase=0.0 if config.spindle_sync else float(phase_rng.random()),
            )
            for di in range(layout.ndisks)
        ]
        channel = Channel(env, config.channel_mb_per_s, name=f"a{ai}.chan")
        make = controller_factory if controller_factory is not None else _make_controller
        controllers.append(make(env, layout, disks, channel, config))
    return ArraySystem(env=env, config=config, controllers=controllers)


def _make_controller(env, layout, disks, channel, config: SystemConfig) -> ArrayController:
    if config.cached:
        return CachedController(env, layout, disks, channel, config)
    org = config.organization
    if org is Organization.BASE:
        return UncachedBaseController(env, layout, disks, channel, config)
    if org is Organization.MIRROR:
        return UncachedMirrorController(env, layout, disks, channel, config)
    return UncachedParityController(env, layout, disks, channel, config)
