"""Perf-trajectory CLI.

Usage::

    python -m repro.bench compare BENCH_5.json BENCH_ci.json \\
        [--threshold 0.2] [--advisory] [--json out.json]
    python -m repro.bench show campaign_manifest.jsonl [--slowest N]
    python -m repro.bench normalize BENCH_5.json [--out PATH]
    python -m repro.bench profile fig8 --backend des \\
        [--scale 0.05] [--top 25] [--dump out.pstats]

``compare`` treats the files as a trajectory (oldest first, the last
file is the candidate), prints the per-metric table and exits

* ``0`` — no regression (or ``--advisory``, which reports but never
  fails on regressions),
* ``1`` — at least one metric regressed by the threshold,
* ``2`` — a file failed schema validation (always fatal, even under
  ``--advisory``).

``show`` drills into a campaign manifest written by
``python -m repro.experiments ... --manifest``.

``profile`` runs one experiment under :mod:`cProfile` and prints the
hottest functions by cumulative and internal time — the first stop when
a bench trajectory shows a throughput drop and you need to know *where*
the cycles went.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.bench.schema import (
    BenchRecord,
    BenchSchemaError,
    load_bench_file,
    to_json,
)
from repro.bench.trajectory import analyze, render_table

__all__ = ["main"]

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_SCHEMA = 2


def _load_all(paths: List[str]) -> List[BenchRecord]:
    records = []
    for path in paths:
        records.append(load_bench_file(path))
    return records


def cmd_compare(args: argparse.Namespace) -> int:
    try:
        records = _load_all(args.files)
    except BenchSchemaError as exc:
        print(f"schema error: {exc}", file=sys.stderr)
        return EXIT_SCHEMA

    report = analyze(records, threshold=args.threshold)
    print(f"trajectory over {len(records)} bench file(s), "
          f"candidate: {records[-1].source}")
    print()
    print(render_table(report))
    print()

    if args.json:
        doc = {
            "threshold": report.threshold,
            "files": [r.source for r in records],
            "metrics": [
                {
                    "name": t.name,
                    "unit": t.unit,
                    "direction": t.direction,
                    "baseline": None if t.baseline != t.baseline else t.baseline,
                    "latest": None if t.latest != t.latest else t.latest,
                    "change": None if t.change != t.change else t.change,
                    "status": t.status,
                    "values": t.values,
                }
                for t in report.trajectories
            ],
            "regressions": [t.name for t in report.regressions],
        }
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")

    if report.has_regressions:
        names = ", ".join(t.name for t in report.regressions)
        verdict = "ADVISORY" if args.advisory else "FAIL"
        print(
            f"{verdict}: {len(report.regressions)} metric(s) regressed by "
            f">= {report.threshold:.0%} vs baseline: {names}",
            file=sys.stderr,
        )
        return EXIT_OK if args.advisory else EXIT_REGRESSION
    print(f"ok: no metric regressed by >= {report.threshold:.0%} vs baseline")
    return EXIT_OK


def cmd_show(args: argparse.Namespace) -> int:
    from repro.experiments.telemetry import read_manifest

    try:
        header, points = read_manifest(args.manifest)
    except (OSError, ValueError) as exc:
        print(f"manifest error: {exc}", file=sys.stderr)
        return EXIT_SCHEMA

    print(f"campaign manifest: {args.manifest}")
    for key in ("experiments", "scale", "jobs", "backend", "elapsed_s"):
        if key in header:
            print(f"  {key:12s} {header[key]}")
    print()

    by_exp: dict = {}
    for p in points:
        by_exp.setdefault(p["exp_id"], []).append(p)
    rows = []
    for exp_id in sorted(by_exp):
        recs = by_exp[exp_id]
        computed = sum(1 for r in recs if r["provenance"] == "computed")
        stored = len(recs) - computed
        wall = sum(r["wall_s"] for r in recs)
        events = sum(r.get("events", 0) for r in recs)
        rows.append(
            [
                exp_id,
                str(len(recs)),
                str(computed),
                str(stored),
                f"{wall:.2f}",
                f"{events:,}",
                f"{events / wall:,.0f}" if wall > 0 and events else "-",
            ]
        )
    header_row = ["experiment", "points", "computed", "stored", "wall_s", "events", "events/s"]
    widths = [
        max(len(header_row[c]), *(len(r[c]) for r in rows)) if rows else len(header_row[c])
        for c in range(len(header_row))
    ]
    print("  ".join(h.ljust(w) for h, w in zip(header_row, widths)))
    print("  ".join("-" * w for w in widths))
    for r in rows:
        print("  ".join(v.ljust(w) for v, w in zip(r, widths)))

    cache_totals: dict = {}
    for p in points:
        for k, v in (p.get("trace_cache") or {}).items():
            cache_totals[k] = cache_totals.get(k, 0) + v
    if cache_totals:
        print()
        print(
            "trace cache: "
            + ", ".join(f"{k}={v}" for k, v in sorted(cache_totals.items()) if v)
        )

    slowest = sorted(points, key=lambda p: -p["wall_s"])[: args.slowest]
    if slowest:
        print()
        print(f"slowest {len(slowest)} point(s):")
        for p in slowest:
            key = "/".join(str(k) for k in p["key"])
            print(
                f"  {p['wall_s']:8.3f}s  {p['exp_id']} {p.get('org', '')} {key} "
                f"[{p['backend']}, {p['provenance']}]"
            )
    return EXIT_OK


def cmd_normalize(args: argparse.Namespace) -> int:
    try:
        record = load_bench_file(args.file)
    except BenchSchemaError as exc:
        print(f"schema error: {exc}", file=sys.stderr)
        return EXIT_SCHEMA
    out = args.out or args.file
    with open(out, "w") as fh:
        json.dump(to_json(record), fh, indent=2)
        fh.write("\n")
    print(f"wrote {out} ({len(record.metrics)} metric(s))")
    return EXIT_OK


def cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import pstats
    import time

    from repro.experiments.parallel import run_campaign
    from repro.experiments.registry import get_experiment

    try:
        exp = get_experiment(args.experiment)
    except KeyError:
        print(f"unknown experiment id: {args.experiment!r}", file=sys.stderr)
        return EXIT_SCHEMA

    profiler = cProfile.Profile()
    t0 = time.perf_counter()
    profiler.enable()
    try:
        run_campaign([exp.exp_id], scale=args.scale, jobs=1, backend=args.backend)
    finally:
        profiler.disable()
    elapsed = time.perf_counter() - t0

    print(
        f"profiled {exp.exp_id} (backend={args.backend}, scale={args.scale:g}): "
        f"{elapsed:.2f}s wall"
    )
    print()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs()
    for sort_key, title in (
        ("cumulative", "by cumulative time (callers and everything under them)"),
        ("tottime", "by internal time (the hot functions themselves)"),
    ):
        print(f"-- top {args.top} {title}")
        stats.sort_stats(sort_key).print_stats(args.top)
    if args.dump:
        stats.dump_stats(args.dump)
        print(f"wrote {args.dump} (load with pstats or snakeviz)")
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Benchmark trajectory analysis over BENCH_*.json files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compare = sub.add_parser(
        "compare", help="baseline + regression check over bench files"
    )
    p_compare.add_argument("files", nargs="+", help="bench JSON files, oldest first")
    p_compare.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="regression threshold as a fraction of baseline (default 0.2)",
    )
    p_compare.add_argument(
        "--advisory",
        action="store_true",
        help="report regressions but exit 0 (schema errors still exit 2)",
    )
    p_compare.add_argument("--json", metavar="PATH", help="also dump the report as JSON")
    p_compare.set_defaults(func=cmd_compare)

    p_show = sub.add_parser("show", help="drill into a campaign manifest")
    p_show.add_argument("manifest", help="JSONL manifest from --manifest")
    p_show.add_argument(
        "--slowest", type=int, default=5, help="how many slowest points to list"
    )
    p_show.set_defaults(func=cmd_show)

    p_norm = sub.add_parser(
        "normalize", help="rewrite a bench file in the repro-bench/1 schema"
    )
    p_norm.add_argument("file", help="bench JSON file (any readable shape)")
    p_norm.add_argument("--out", metavar="PATH", help="write here instead of in place")
    p_norm.set_defaults(func=cmd_normalize)

    p_prof = sub.add_parser(
        "profile", help="cProfile one experiment and print the hot functions"
    )
    p_prof.add_argument("experiment", help="experiment id (e.g. fig8)")
    p_prof.add_argument(
        "--backend",
        choices=("des", "analytic"),
        default="des",
        help="simulation backend to profile (default des)",
    )
    p_prof.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="trace scale for the profiled run (default 0.05)",
    )
    p_prof.add_argument(
        "--top", type=int, default=25, help="rows per table (default 25)"
    )
    p_prof.add_argument(
        "--dump", metavar="PATH", help="also write raw pstats data here"
    )
    p_prof.set_defaults(func=cmd_profile)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly instead
        # of tracebacking.  Dup stderr over stdout so the interpreter's
        # shutdown flush cannot raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    sys.exit(code)
