"""Normalized bench-record schema and adapters for the legacy shapes.

A normalized record (``repro-bench/1``) is::

    {
      "schema": "repro-bench/1",
      "bench_id": "campaign+kernel",
      "context": {"python": "...", "platform": "...", "cores": 1},
      "metrics": {
        "event_throughput.events_per_s":
            {"value": 764913, "unit": "events/s", "direction": "higher"},
        ...
      },
      "raw": { ... original document, optional ... }
    }

``direction`` says which way is better, so the trajectory analyzer can
flag a drop in throughput and a *rise* in model error with the same
code path.  Two adapters read the historical shapes emitted by
``benchmarks/bench_campaign.py`` (``"benchmark": "campaign+kernel"``,
committed as BENCH_5) and ``benchmarks/bench_analytic.py``
(``"analytic-vs-des"``, BENCH_6); anything else raises
:class:`BenchSchemaError` rather than guessing.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

__all__ = [
    "SCHEMA",
    "BenchRecord",
    "BenchSchemaError",
    "Metric",
    "load_bench_file",
    "normalize",
    "to_json",
]

SCHEMA = "repro-bench/1"


class BenchSchemaError(ValueError):
    """A bench document that no adapter can read (or reads as invalid)."""


@dataclass(frozen=True)
class Metric:
    """One measured number with its unit and better-direction."""

    value: float
    unit: str = ""
    direction: str = "higher"  # "higher" | "lower" (which way is better)

    def __post_init__(self) -> None:
        if self.direction not in ("higher", "lower"):
            raise BenchSchemaError(
                f"direction must be 'higher' or 'lower', got {self.direction!r}"
            )
        if not isinstance(self.value, (int, float)) or isinstance(self.value, bool):
            raise BenchSchemaError(f"metric value must be numeric, got {self.value!r}")
        if not math.isfinite(self.value):
            raise BenchSchemaError(f"metric value must be finite, got {self.value!r}")


@dataclass
class BenchRecord:
    """A normalized benchmark result."""

    bench_id: str
    context: Dict[str, object] = field(default_factory=dict)
    metrics: Dict[str, Metric] = field(default_factory=dict)
    raw: Optional[dict] = None
    source: str = ""  # file path / display label


def _metric(doc: dict, *path, unit: str = "", direction: str = "higher") -> Optional[Metric]:
    """Pull ``doc[path...]`` into a Metric; ``None`` when absent/null."""
    node = doc
    for part in path:
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    if node is None:
        return None
    if isinstance(node, bool):
        node = 1.0 if node else 0.0
    return Metric(float(node), unit=unit, direction=direction)


def _context(doc: dict) -> Dict[str, object]:
    return {k: doc[k] for k in ("python", "platform", "cores") if k in doc}


# -- adapters ----------------------------------------------------------------


def _from_campaign_kernel(doc: dict, source: str) -> BenchRecord:
    metrics: Dict[str, Metric] = {}
    for name, spec in {
        "campaign.speedup": (("campaign", "speedup"), "x", "higher"),
        "campaign.serial_s": (("campaign", "serial_s"), "s", "lower"),
        "campaign.parallel_s": (("campaign", "parallel_s"), "s", "lower"),
        "campaign.outputs_identical": (("campaign", "outputs_identical"), "bool", "higher"),
        "event_throughput.events_per_s": (
            ("event_throughput", "events_per_s"), "events/s", "higher"),
        "seek_time.lut_speedup": (("seek_time", "lut_speedup"), "x", "higher"),
        "trace_generation.requests_per_s": (
            ("trace_generation", "requests_per_s"), "req/s", "higher"),
        "plan_cache.speedup": (("plan_cache", "speedup"), "x", "higher"),
        "plan_cache.hit_rate": (("plan_cache", "hit_rate"), "frac", "higher"),
        "plan_cache.outputs_identical": (
            ("plan_cache", "outputs_identical"), "bool", "higher"),
        "streaming.requests": (("streaming", "requests"), "req", "higher"),
        "streaming.requests_per_s": (
            ("streaming", "requests_per_s"), "req/s", "higher"),
        "streaming.peak_trace_mb": (
            ("streaming", "peak_trace_mb"), "MB", "lower"),
        "streaming.bounded": (("streaming", "bounded"), "bool", "higher"),
    }.items():
        path, unit, direction = spec
        metric = _metric(doc, *path, unit=unit, direction=direction)
        if metric is not None:
            metrics[name] = metric
    if not metrics:
        raise BenchSchemaError(f"{source}: campaign+kernel document has no metrics")
    return BenchRecord(
        bench_id="campaign+kernel",
        context=_context(doc),
        metrics=metrics,
        raw=doc,
        source=source,
    )


def _from_analytic(doc: dict, source: str) -> BenchRecord:
    metrics: Dict[str, Metric] = {}
    campaigns = doc.get("campaigns")
    if not isinstance(campaigns, list):
        raise BenchSchemaError(f"{source}: analytic-vs-des document lacks 'campaigns'")
    for campaign in campaigns:
        exp = campaign.get("experiment", "unknown")
        for suffix, key, unit, direction in (
            ("analytic_speedup", "speedup", "x", "higher"),
            ("max_rel_error", "max_rel_error", "frac", "lower"),
            ("mean_abs_rel_error", "mean_abs_rel_error", "frac", "lower"),
            ("analytic_s", "analytic_s", "s", "lower"),
        ):
            metric = _metric(campaign, key, unit=unit, direction=direction)
            if metric is not None:
                metrics[f"analytic.{exp}.{suffix}"] = metric
    best = _metric(doc, "best_speedup", unit="x", direction="higher")
    if best is not None:
        metrics["analytic.best_speedup"] = best
    if not metrics:
        raise BenchSchemaError(f"{source}: analytic-vs-des document has no metrics")
    return BenchRecord(
        bench_id="analytic-vs-des",
        context=_context(doc),
        metrics=metrics,
        raw=doc,
        source=source,
    )


def _from_normalized(doc: dict, source: str) -> BenchRecord:
    if not isinstance(doc.get("bench_id"), str) or not doc["bench_id"]:
        raise BenchSchemaError(f"{source}: normalized record needs a 'bench_id'")
    raw_metrics = doc.get("metrics")
    if not isinstance(raw_metrics, dict) or not raw_metrics:
        raise BenchSchemaError(f"{source}: normalized record needs non-empty 'metrics'")
    metrics: Dict[str, Metric] = {}
    for name, m in raw_metrics.items():
        if not isinstance(m, dict) or "value" not in m:
            raise BenchSchemaError(f"{source}: metric {name!r} needs a 'value'")
        try:
            metrics[name] = Metric(
                float(m["value"]),
                unit=str(m.get("unit", "")),
                direction=str(m.get("direction", "higher")),
            )
        except (TypeError, ValueError) as exc:
            raise BenchSchemaError(f"{source}: metric {name!r}: {exc}") from None
    context = doc.get("context", {})
    if not isinstance(context, dict):
        raise BenchSchemaError(f"{source}: 'context' must be an object")
    return BenchRecord(
        bench_id=doc["bench_id"],
        context=context,
        metrics=metrics,
        raw=doc.get("raw"),
        source=source,
    )


def normalize(doc: dict, source: str = "<doc>") -> BenchRecord:
    """Read *doc* through whichever adapter matches its shape."""
    if not isinstance(doc, dict):
        raise BenchSchemaError(f"{source}: bench document must be a JSON object")
    if doc.get("schema") == SCHEMA:
        return _from_normalized(doc, source)
    if "schema" in doc:
        raise BenchSchemaError(
            f"{source}: unknown schema {doc['schema']!r} (expected {SCHEMA!r})"
        )
    shape = doc.get("benchmark")
    if shape == "campaign+kernel":
        return _from_campaign_kernel(doc, source)
    if shape == "analytic-vs-des":
        return _from_analytic(doc, source)
    raise BenchSchemaError(
        f"{source}: unrecognized bench document "
        f"(no 'schema' and unknown 'benchmark' {shape!r})"
    )


def to_json(record: BenchRecord) -> dict:
    """The normalized on-disk form of *record* (inverse of normalize)."""
    return {
        "schema": SCHEMA,
        "bench_id": record.bench_id,
        "context": record.context,
        "metrics": {
            name: {"value": m.value, "unit": m.unit, "direction": m.direction}
            for name, m in sorted(record.metrics.items())
        },
        **({"raw": record.raw} if record.raw is not None else {}),
    }


def load_bench_file(path: Union[str, Path]) -> BenchRecord:
    """Load and normalize one ``BENCH_*.json`` file."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except OSError as exc:
        raise BenchSchemaError(f"{path}: cannot read: {exc}") from None
    except json.JSONDecodeError as exc:
        raise BenchSchemaError(f"{path}: not JSON: {exc}") from None
    return normalize(doc, source=str(path))
