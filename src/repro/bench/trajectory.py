"""Baseline calculation and regression detection over bench records.

Given an ordered history of normalized :class:`~repro.bench.schema.
BenchRecord` s (oldest first, newest last — the candidate), each metric
gets:

* a **baseline**: the median of its historical values (every record but
  the candidate), robust to a single outlier run — the same idea as the
  baseline calculator in ydb's metrics-analytics pipeline;
* a signed **change**: ``(latest - baseline) / baseline``;
* a direction-aware **status**: a ``higher``-is-better metric that drops
  by at least the threshold is a regression, as is a ``lower``-is-better
  metric that rises by it; the mirror cases are improvements.

Metrics present only in the candidate are ``new``; metrics the candidate
dropped are ``absent``; neither can fail a gate by itself (schema
errors are the hard failure, handled by the CLI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median
from typing import Dict, List, Sequence, Tuple

from repro.bench.schema import BenchRecord

__all__ = ["MetricTrajectory", "TrajectoryReport", "analyze", "render_table"]

#: Tolerance for "at least the threshold" under float rounding.
_EPS = 1e-9


@dataclass
class MetricTrajectory:
    """One metric's history and verdict."""

    name: str
    unit: str
    direction: str
    values: List[Tuple[str, float]]  # (record source, value), oldest first
    baseline: float = float("nan")
    latest: float = float("nan")
    change: float = float("nan")  # signed fraction vs baseline
    status: str = "single"  # ok | regression | improved | new | absent | single

    @property
    def change_pct(self) -> float:
        return self.change * 100.0


@dataclass
class TrajectoryReport:
    """Every metric's trajectory plus the gate verdict."""

    threshold: float
    trajectories: List[MetricTrajectory] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricTrajectory]:
        return [t for t in self.trajectories if t.status == "regression"]

    @property
    def improvements(self) -> List[MetricTrajectory]:
        return [t for t in self.trajectories if t.status == "improved"]

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)


def _status(direction: str, change: float, threshold: float) -> str:
    # Positive change = value went up.  Whether that is good depends on
    # the metric's better-direction.
    worse = -change if direction == "higher" else change
    if worse >= threshold - _EPS:
        return "regression"
    if -worse >= threshold - _EPS:
        return "improved"
    return "ok"


def analyze(records: Sequence[BenchRecord], threshold: float = 0.2) -> TrajectoryReport:
    """Build the trajectory report for *records* (oldest → newest).

    The last record is the candidate; everything before it is history.
    With fewer than two records every metric is ``single`` and nothing
    can regress.
    """
    if not records:
        raise ValueError("need at least one bench record")
    if threshold <= 0:
        raise ValueError("threshold must be positive")

    candidate = records[-1]
    history = records[:-1]

    all_names: Dict[str, None] = {}
    for record in records:
        for name in record.metrics:
            all_names.setdefault(name)

    report = TrajectoryReport(threshold=threshold)
    for name in sorted(all_names):
        carriers = [r for r in records if name in r.metrics]
        sample = carriers[-1].metrics[name]
        traj = MetricTrajectory(
            name=name,
            unit=sample.unit,
            direction=sample.direction,
            values=[(r.source, r.metrics[name].value) for r in carriers],
        )
        hist_values = [r.metrics[name].value for r in history if name in r.metrics]
        in_candidate = name in candidate.metrics

        if not history:
            traj.status = "single"
            traj.latest = sample.value
        elif not in_candidate:
            traj.status = "absent"
            traj.baseline = median(hist_values)
        elif not hist_values:
            traj.status = "new"
            traj.latest = candidate.metrics[name].value
        else:
            traj.latest = candidate.metrics[name].value
            traj.baseline = median(hist_values)
            if traj.baseline == 0:
                traj.change = 0.0 if traj.latest == 0 else float("inf")
            else:
                traj.change = (traj.latest - traj.baseline) / abs(traj.baseline)
            traj.status = _status(traj.direction, traj.change, threshold)
        report.trajectories.append(traj)
    return report


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "-"
    if value == float("inf"):
        return "inf"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:.4g}"


def render_table(report: TrajectoryReport) -> str:
    """The trajectory as an aligned text table."""
    header = ["metric", "unit", "dir", "baseline", "latest", "change", "status"]
    rows = []
    for t in report.trajectories:
        change = "-" if t.change != t.change else f"{t.change_pct:+.1f}%"
        rows.append(
            [
                t.name,
                t.unit or "-",
                t.direction,
                _fmt(t.baseline),
                _fmt(t.latest),
                change,
                t.status.upper() if t.status == "regression" else t.status,
            ]
        )
    widths = [
        max(len(header[c]), *(len(r[c]) for r in rows)) if rows else len(header[c])
        for c in range(len(header))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend("  ".join(v.ljust(w) for v, w in zip(r, widths)) for r in rows)
    return "\n".join(lines)
