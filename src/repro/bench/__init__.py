"""Perf-trajectory analyzer: normalized bench records over time.

``BENCH_*.json`` files were point-in-time snapshots in whatever shape
the benchmark harness of the day emitted.  This package turns them into
an *enforced trajectory*:

* :mod:`repro.bench.schema` — a normalized bench-record schema
  (``repro-bench/1``: named metrics with units and a better-direction)
  plus adapters that read the historical ``campaign+kernel``
  (BENCH_5) and ``analytic-vs-des`` (BENCH_6) shapes;
* :mod:`repro.bench.trajectory` — baseline calculation (median of the
  history) and direction-aware regression/improvement detection with a
  configurable threshold;
* ``python -m repro.bench`` — ``compare`` (trajectory table, nonzero
  exit on regression: the CI gate), ``show`` (campaign-manifest
  drill-down) and ``normalize`` (rewrite a legacy file in the shared
  schema).
"""

from repro.bench.schema import (
    BenchRecord,
    BenchSchemaError,
    Metric,
    load_bench_file,
    normalize,
    to_json,
)
from repro.bench.trajectory import MetricTrajectory, TrajectoryReport, analyze

__all__ = [
    "BenchRecord",
    "BenchSchemaError",
    "Metric",
    "MetricTrajectory",
    "TrajectoryReport",
    "analyze",
    "load_bench_file",
    "normalize",
    "to_json",
]
