"""RAID4: block striping with a dedicated parity disk (Figure 2).

All parity units live on the last disk of the array.  Without caching the
parity disk is a write bottleneck; the paper studies RAID4 only with the
controller cache buffering parity updates (Section 4.4), where the
dedicated disk becomes an advantage — parity writes never interfere with
data reads.
"""

from __future__ import annotations

import numpy as np

from repro.layout.striped import StripedParityLayout

__all__ = ["Raid4Layout"]


class Raid4Layout(StripedParityLayout):
    """Fixed-parity-disk striped layout over ``N + 1`` disks."""

    @property
    def has_parity(self) -> bool:
        return True

    @property
    def parity_disk(self) -> int:
        """The dedicated parity disk (always the last one)."""
        return self.n

    def plan_period(self) -> tuple[int, int, int]:
        # The parity disk is fixed, so a single row is the whole pattern:
        # the next row uses the same disks, one striping unit further in.
        return (self.n * self.striping_unit, 0, self.striping_unit)

    def parity_disk_of_row(self, row: int) -> int:
        return self.n

    def _parity_disks_of_rows(self, rows: np.ndarray) -> np.ndarray:
        return np.full(rows.shape, self.n, dtype=np.int64)
