"""The Mirror organization: each data disk duplicated.

Logical disk ``d`` lives on the pair ``(2d, 2d + 1)``.  Writes go to both
members (response time is the max of the two); reads are directed by the
controller to whichever arm is nearest the target — the paper's
"shortest seek optimization" — so the layout exposes the pair structure.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.layout.common import Layout, PhysicalAddress, WriteGroup, WriteMode, merge_runs

__all__ = ["MirrorLayout"]


class MirrorLayout(Layout):
    """``N`` mirrored pairs (``2N`` physical disks).

    :meth:`map_block` returns the *primary* member of the pair; use
    :meth:`mirror_of` for the partner.  Read placement is a controller
    policy, not a layout property.
    """

    @property
    def ndisks(self) -> int:
        return 2 * self.n

    def plan_period(self) -> tuple[int, int, int]:
        # The next logical disk's primary sits two physical disks over
        # (pairs occupy consecutive slots), at the same block offset.
        return (self.blocks_per_disk, 2, 0)

    def map_block(self, lblock: int) -> PhysicalAddress:
        self._check_range(lblock, 1)
        ldisk, block = divmod(lblock, self.blocks_per_disk)
        return PhysicalAddress(2 * ldisk, block)

    def mirror_of(self, disk: int) -> int:
        """The other member of *disk*'s mirrored pair."""
        if not 0 <= disk < self.ndisks:
            raise ValueError(f"disk {disk} out of range")
        return disk ^ 1

    def pair_of(self, lblock: int) -> tuple[PhysicalAddress, PhysicalAddress]:
        """Both physical copies of a logical block."""
        primary = self.map_block(lblock)
        return primary, PhysicalAddress(self.mirror_of(primary.disk), primary.block)

    def logical_of(self, disk: int, pblock: int) -> Optional[int]:
        if not 0 <= disk < self.ndisks:
            raise ValueError(f"disk {disk} out of range")
        if not 0 <= pblock < self.blocks_per_disk:
            return None
        return (disk // 2) * self.blocks_per_disk + pblock

    def map_blocks(self, lblocks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        lb = np.asarray(lblocks, dtype=np.int64)
        return 2 * (lb // self.blocks_per_disk), lb % self.blocks_per_disk

    def write_plan(self, lstart: int, nblocks: int, rmw_threshold: float = 0.5) -> list[WriteGroup]:
        self._check_range(lstart, nblocks)
        runs = merge_runs([self.map_block(b) for b in range(lstart, lstart + nblocks)])
        # The controller duplicates each run onto the mirror partner.
        return [WriteGroup(mode=WriteMode.PLAIN, data_runs=runs)]
