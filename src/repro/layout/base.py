"""The Base organization: independent disks, no striping, no redundancy.

Logical disk ``d`` maps one-to-one onto physical disk ``d``; block
offsets are preserved.  This is the paper's reference point for the
equal-capacity comparison.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.layout.common import Layout, PhysicalAddress, WriteGroup, WriteMode, merge_runs

__all__ = ["BaseLayout"]


class BaseLayout(Layout):
    """``N`` independent data disks."""

    @property
    def ndisks(self) -> int:
        return self.n

    def plan_period(self) -> tuple[int, int, int]:
        # One logical disk per physical disk: advancing a full disk's
        # worth of blocks moves to the next disk at the same offset.
        return (self.blocks_per_disk, 1, 0)

    def map_block(self, lblock: int) -> PhysicalAddress:
        self._check_range(lblock, 1)
        disk, block = divmod(lblock, self.blocks_per_disk)
        return PhysicalAddress(disk, block)

    def logical_of(self, disk: int, pblock: int) -> Optional[int]:
        if not 0 <= disk < self.ndisks:
            raise ValueError(f"disk {disk} out of range")
        if not 0 <= pblock < self.blocks_per_disk:
            return None
        return disk * self.blocks_per_disk + pblock

    def map_blocks(self, lblocks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        lb = np.asarray(lblocks, dtype=np.int64)
        return lb // self.blocks_per_disk, lb % self.blocks_per_disk

    def write_plan(self, lstart: int, nblocks: int, rmw_threshold: float = 0.5) -> list[WriteGroup]:
        self._check_range(lstart, nblocks)
        runs = merge_runs([self.map_block(b) for b in range(lstart, lstart + nblocks)])
        return [WriteGroup(mode=WriteMode.PLAIN, data_runs=runs)]
