"""RAID5: block striping with rotated parity (Figure 1 of the paper).

The parity unit of row ``r`` is placed on disk ``r mod (N+1)``, so parity
traffic rotates over all disks and no single disk becomes a bottleneck —
the property that distinguishes RAID5 from RAID4.
"""

from __future__ import annotations

import numpy as np

from repro.layout.striped import StripedParityLayout

__all__ = ["Raid5Layout"]


class Raid5Layout(StripedParityLayout):
    """Rotated-parity striped layout over ``N + 1`` disks."""

    @property
    def has_parity(self) -> bool:
        return True

    def plan_period(self) -> tuple[int, int, int]:
        # Parity placement repeats every N+1 rows; advancing that many
        # rows keeps every disk assignment and shifts physical blocks by
        # (N+1) striping units.
        return (
            (self.n + 1) * self.n * self.striping_unit,
            0,
            (self.n + 1) * self.striping_unit,
        )

    def parity_disk_of_row(self, row: int) -> int:
        return row % (self.n + 1)

    def _parity_disks_of_rows(self, rows: np.ndarray) -> np.ndarray:
        return rows % (self.n + 1)
