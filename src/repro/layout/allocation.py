"""Allocation policies: placing Virtual Arrays onto a heterogeneous disk pool.

A Heterogeneous Disk Array (HDA, Thomasian & Xu) holds several Virtual
Arrays (VAs) — each with its own RAID organization — over disjoint
groups of physical disks drawn from a pool that may mix disk models
(fast/small next to slow/large).  This module is the pure placement
kernel: given each VA's demand (how many disks, how many blocks each
must hold, how hot the VA is) and each pool slot's capabilities
(capacity, a bandwidth figure of merit), it returns which slots each VA
occupies.

Three policies, all deterministic (ties broken by declaration order):

``first_fit``
    VAs in declaration order take the first free slots (pool order)
    with enough capacity.  The naive baseline — it can leave the fast
    disks idle.
``bandwidth``
    Bandwidth-balanced: VAs sorted by per-disk heat (``heat / ndisks``,
    hottest first) take the fastest fitting slots.  Concentrates the
    small-write-heavy mirrored VA on the fast spindles.
``capacity``
    Capacity-balanced: VAs sorted by per-disk capacity demand (largest
    first) take the *smallest* fitting slots (best fit), keeping the
    large disks available for the VAs that actually need them.

The module is deliberately free of ``repro.sim`` imports so the config
layer can call into it without an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = [
    "AllocationError",
    "POLICIES",
    "PoolSlot",
    "VADemand",
    "allocate",
]

#: The supported allocation policy names.
POLICIES = ("first_fit", "bandwidth", "capacity")


class AllocationError(ValueError):
    """The pool cannot satisfy a VA's demand under the chosen policy."""


@dataclass(frozen=True)
class VADemand:
    """What one Virtual Array asks of the pool."""

    #: Physical disks the VA's layout needs (data + redundancy).
    ndisks: int
    #: Blocks every assigned disk must be able to hold.
    capacity_blocks: int
    #: Expected share of the workload's accesses (relative, unnormalized).
    heat: float = 1.0

    def __post_init__(self) -> None:
        if self.ndisks < 1:
            raise ValueError("a VA needs at least one disk")
        if self.capacity_blocks < 1:
            raise ValueError("capacity_blocks must be >= 1")
        if self.heat <= 0:
            raise ValueError("heat must be positive")


@dataclass(frozen=True)
class PoolSlot:
    """One physical disk offered by the pool."""

    capacity_blocks: int
    #: Figure of merit for small accesses (higher = faster); any
    #: consistent scale works — only the ordering matters.
    bandwidth: float

    def __post_init__(self) -> None:
        if self.capacity_blocks < 1:
            raise ValueError("capacity_blocks must be >= 1")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")


def allocate(
    policy: str,
    demands: Sequence[VADemand],
    slots: Sequence[PoolSlot],
) -> List[Tuple[int, ...]]:
    """Place every VA onto disjoint pool slots.

    Returns, in VA declaration order, the tuple of slot indices assigned
    to each VA (sorted ascending within a VA, so disk ``di`` of a VA is
    always the same physical slot regardless of greedy pick order).
    Raises :class:`AllocationError` when a VA cannot be satisfied.
    """
    if policy not in POLICIES:
        raise AllocationError(
            f"unknown allocation policy {policy!r}; expected one of {POLICIES}"
        )
    if not demands:
        raise AllocationError("no VAs to place")
    if policy == "first_fit":
        va_order = range(len(demands))
        slot_order = list(range(len(slots)))
    elif policy == "bandwidth":
        # Hottest per-disk VA first, fastest slots first.
        va_order = sorted(
            range(len(demands)),
            key=lambda i: (-demands[i].heat / demands[i].ndisks, i),
        )
        slot_order = sorted(
            range(len(slots)), key=lambda s: (-slots[s].bandwidth, s)
        )
    else:  # capacity
        # Most capacity-hungry VA first, smallest fitting slot first.
        va_order = sorted(
            range(len(demands)), key=lambda i: (-demands[i].capacity_blocks, i)
        )
        slot_order = sorted(
            range(len(slots)), key=lambda s: (slots[s].capacity_blocks, s)
        )

    free = set(range(len(slots)))
    placements: List[Tuple[int, ...]] = [()] * len(demands)
    for vi in va_order:
        demand = demands[vi]
        got: List[int] = []
        for si in slot_order:
            if si in free and slots[si].capacity_blocks >= demand.capacity_blocks:
                got.append(si)
                if len(got) == demand.ndisks:
                    break
        if len(got) < demand.ndisks:
            fitting = sum(
                1
                for si in free
                if slots[si].capacity_blocks >= demand.capacity_blocks
            )
            raise AllocationError(
                f"policy {policy!r}: VA {vi} needs {demand.ndisks} disks of "
                f">= {demand.capacity_blocks} blocks but only {fitting} free "
                f"slots fit (pool of {len(slots)})"
            )
        free.difference_update(got)
        placements[vi] = tuple(sorted(got))
    return placements
