"""Parity Striping (Gray, Horst & Walker; Figure 3 of the paper).

Data is written *sequentially* on each disk — no interleaving — so the
seek affinity of the workload is preserved.  Each of the ``N + 1`` disks
is divided into ``N + 1`` equal areas: one parity area and ``N`` data
areas.  The parity group ``g`` collects one data area from each disk
other than ``g`` and stores their XOR in disk ``g``'s parity area.

Group assignment: data area ``k`` of disk ``i`` belongs to group
``(i + 1 + k) mod (N + 1)`` — a Latin-square diagonal that gives every
disk exactly one area of every group it participates in, and never
places a disk's parity over its own data.

The placement of the parity area on the platter is a studied parameter
(§4.2.3): ``MIDDLE`` puts it on the centre cylinders (Gray et al.'s
recommendation), ``END`` at the outer edge — better when the parity area
is rarely accessed relative to data (the paper's ``w > 1/N`` rule).
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from repro.layout.common import (
    Layout,
    PhysicalAddress,
    Run,
    WriteGroup,
    WriteMode,
)

__all__ = ["ParityStripingLayout", "ParityPlacement"]


class ParityPlacement(enum.Enum):
    """Where the parity area sits on each disk."""

    MIDDLE = "middle"
    END = "end"


class ParityStripingLayout(Layout):
    """Sequential data with one parity area per disk (``N + 1`` disks)."""

    def __init__(
        self,
        n: int,
        blocks_per_disk: int,
        placement: ParityPlacement = ParityPlacement.MIDDLE,
        parity_grain: Optional[int] = None,
    ) -> None:
        super().__init__(n, blocks_per_disk)
        if blocks_per_disk % (n + 1):
            raise ValueError(
                f"blocks_per_disk {blocks_per_disk} must be divisible by N+1 = {n + 1}"
            )
        self.placement = placement
        area = blocks_per_disk // (n + 1)
        if parity_grain is not None:
            if parity_grain < 1 or area % parity_grain:
                raise ValueError(
                    f"parity grain {parity_grain} must divide the area size {area}"
                )
        #: The paper's suggested extension ("use a finer grain in
        #: striping the parity so that the parity update load is more
        #: balanced"): group membership rotates every ``parity_grain``
        #: blocks of area offset, spreading each disk's parity-update
        #: load over all N+1 disks while data stays fully sequential.
        #: ``None`` is classic parity striping (one group per area).
        self.parity_grain = parity_grain

    @property
    def has_parity(self) -> bool:
        return True

    @property
    def ndisks(self) -> int:
        return self.n + 1

    @property
    def area_blocks(self) -> int:
        """Size of one area (data or parity) in blocks."""
        return self.blocks_per_disk // (self.n + 1)

    @property
    def data_blocks_per_disk(self) -> int:
        """Data capacity of each physical disk."""
        return self.n * self.area_blocks

    @property
    def parity_area_index(self) -> int:
        """Physical area index of the parity area on every disk."""
        if self.placement is ParityPlacement.MIDDLE:
            return (self.n + 1) // 2
        return self.n

    def plan_period(self) -> tuple[int, int, int]:
        # Advancing one disk's data capacity moves to the next disk with
        # the same (area, offset), and the Latin-square group assignment
        # shifts with the disk index: group_of(disk+1, k, off) is one
        # group over (mod N+1), so parity runs translate by the same
        # disk step as data runs.
        return (self.data_blocks_per_disk, 1, 0)

    # -- area arithmetic --------------------------------------------------------
    def _physical_area(self, k: int) -> int:
        """Physical area index of data area *k* (skipping the parity area)."""
        p = self.parity_area_index
        return k if k < p else k + 1

    def _data_area(self, physical_area: int) -> Optional[int]:
        """Data area index of a physical area; None for the parity area."""
        p = self.parity_area_index
        if physical_area == p:
            return None
        return physical_area if physical_area < p else physical_area - 1

    def _grain_chunk(self, offset: int) -> int:
        """Rotation index of an area offset (0 for classic striping)."""
        if self.parity_grain is None:
            return 0
        return offset // self.parity_grain

    def group_of(self, disk: int, data_area: int, offset: int = 0) -> int:
        """Parity group of ``(disk, data_area)`` at area ``offset``.

        With a parity grain, membership rotates with the offset chunk so
        the parity load spreads over all disks; without one the group is
        a pure function of the area (Gray et al.'s original scheme).
        """
        if not 0 <= disk < self.ndisks:
            raise ValueError(f"disk {disk} out of range")
        if not 0 <= data_area < self.n:
            raise ValueError(f"data area {data_area} out of range")
        j = (data_area + self._grain_chunk(offset)) % self.n
        return (disk + 1 + j) % (self.n + 1)

    def members_of_group(self, group: int, offset: int = 0) -> list[tuple[int, int]]:
        """All ``(disk, data_area)`` pairs whose parity at area offset
        ``offset`` lives on disk ``group``."""
        if not 0 <= group < self.ndisks:
            raise ValueError(f"group {group} out of range")
        c = self._grain_chunk(offset)
        members = []
        for disk in range(self.ndisks):
            if disk == group:
                continue
            j = (group - disk - 1) % (self.n + 1)
            assert 0 <= j < self.n
            k = (j - c) % self.n
            members.append((disk, k))
        return members

    # -- mapping ---------------------------------------------------------------
    def _decompose(self, lblock: int) -> tuple[int, int, int]:
        """Return ``(disk, data_area, offset)`` of a logical block."""
        disk, q = divmod(lblock, self.data_blocks_per_disk)
        k, off = divmod(q, self.area_blocks)
        return disk, k, off

    def map_block(self, lblock: int) -> PhysicalAddress:
        self._check_range(lblock, 1)
        disk, k, off = self._decompose(lblock)
        return PhysicalAddress(disk, self._physical_area(k) * self.area_blocks + off)

    def parity_of(self, lblock: int) -> Optional[PhysicalAddress]:
        self._check_range(lblock, 1)
        disk, k, off = self._decompose(lblock)
        g = self.group_of(disk, k, off)
        return PhysicalAddress(g, self.parity_area_index * self.area_blocks + off)

    def logical_of(self, disk: int, pblock: int) -> Optional[int]:
        if not 0 <= disk < self.ndisks:
            raise ValueError(f"disk {disk} out of range")
        if not 0 <= pblock < self.blocks_per_disk:
            return None
        area, off = divmod(pblock, self.area_blocks)
        k = self._data_area(area)
        if k is None:
            return None
        return disk * self.data_blocks_per_disk + k * self.area_blocks + off

    def map_blocks(self, lblocks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        lb = np.asarray(lblocks, dtype=np.int64)
        disks, q = np.divmod(lb, self.data_blocks_per_disk)
        k, off = np.divmod(q, self.area_blocks)
        p = self.parity_area_index
        phys_area = np.where(k < p, k, k + 1)
        return disks, phys_area * self.area_blocks + off

    # -- write planning -----------------------------------------------------------
    def write_plan(self, lstart: int, nblocks: int, rmw_threshold: float = 0.5) -> list[WriteGroup]:
        """One RMW group per (disk, data-area) span the write touches.

        Parity areas are ``blocks_per_disk / (N+1)`` blocks — thousands of
        blocks — so OLTP-sized writes never approach a full parity group;
        read-modify-write is always the right update mode.
        """
        self._check_range(lstart, nblocks)
        groups: list[WriteGroup] = []
        pos, end = lstart, lstart + nblocks
        parity_base = self.parity_area_index * self.area_blocks
        while pos < end:
            disk, k, off = self._decompose(pos)
            span = min(end - pos, self.area_blocks - off)
            if self.parity_grain is not None:
                # Group membership changes at grain boundaries.
                span = min(span, self.parity_grain - off % self.parity_grain)
            data = Run(disk, self._physical_area(k) * self.area_blocks + off, span)
            parity = Run(self.group_of(disk, k, off), parity_base + off, span)
            groups.append(
                WriteGroup(WriteMode.RMW, data_runs=[data], parity_runs=[parity])
            )
            pos += span
        return groups
