"""Address mapping for the disk array organizations of the paper.

A *layout* maps the array's logical block space (the equivalent of ``N``
independent data disks) onto physical ``(disk, block)`` addresses, and
knows where the redundancy for each logical block lives:

* :class:`~repro.layout.base.BaseLayout` — no striping, no redundancy.
* :class:`~repro.layout.mirror.MirrorLayout` — mirrored pairs.
* :class:`~repro.layout.raid5.Raid5Layout` — block striping, rotated parity.
* :class:`~repro.layout.raid4.Raid4Layout` — block striping, dedicated
  parity disk.
* :class:`~repro.layout.paritystripe.ParityStripingLayout` — Gray et al.'s
  parity striping: sequential data, one parity area per disk.
"""

from repro.layout.common import Layout, PhysicalAddress, Run, WriteGroup, WriteMode
from repro.layout.base import BaseLayout
from repro.layout.mirror import MirrorLayout
from repro.layout.raid5 import Raid5Layout
from repro.layout.raid4 import Raid4Layout
from repro.layout.paritystripe import ParityStripingLayout, ParityPlacement
from repro.layout.allocation import (
    AllocationError,
    POLICIES,
    PoolSlot,
    VADemand,
    allocate,
)

__all__ = [
    "AllocationError",
    "BaseLayout",
    "Layout",
    "MirrorLayout",
    "POLICIES",
    "ParityPlacement",
    "ParityStripingLayout",
    "PhysicalAddress",
    "PoolSlot",
    "Raid4Layout",
    "Raid5Layout",
    "Run",
    "VADemand",
    "WriteGroup",
    "WriteMode",
    "allocate",
]
