"""Common machinery for block-striped parity layouts (RAID5 / RAID4).

Data is interleaved in *striping units* of ``su`` blocks.  A *row* is one
striping unit from each of the ``N`` data positions plus one parity unit;
row ``r`` occupies physical blocks ``[r*su, (r+1)*su)`` on every disk of
the array and logical blocks ``[r*N*su, (r+1)*N*su)`` — so full rows are
contiguous in the logical space, which is what makes full-stripe writes
detectable.

The only difference between RAID5 and RAID4 is where the parity unit of
row ``r`` lives: rotated (``r mod (N+1)``) vs fixed (the last disk).
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Optional

import numpy as np

from repro.layout.common import (
    Layout,
    PhysicalAddress,
    Run,
    WriteGroup,
    WriteMode,
    merge_runs,
)

__all__ = ["StripedParityLayout"]


class StripedParityLayout(Layout):
    """Block-striped layout over ``N + 1`` disks with one parity unit per row."""

    def __init__(self, n: int, blocks_per_disk: int, striping_unit: int = 1) -> None:
        super().__init__(n, blocks_per_disk)
        if striping_unit < 1:
            raise ValueError("striping unit must be >= 1 block")
        if blocks_per_disk % striping_unit:
            raise ValueError(
                f"striping unit {striping_unit} must divide "
                f"blocks_per_disk {blocks_per_disk}"
            )
        self.striping_unit = striping_unit

    # -- parity placement policy ------------------------------------------------
    @abstractmethod
    def parity_disk_of_row(self, row: int) -> int:
        """Disk holding the parity unit of *row*."""

    def data_disk_of(self, row: int, j: int) -> int:
        """Disk holding the *j*-th data unit of *row* (skips the parity disk)."""
        p = self.parity_disk_of_row(row)
        return j if j < p else j + 1

    def data_index_of(self, row: int, disk: int) -> Optional[int]:
        """Inverse of :meth:`data_disk_of`; None if *disk* holds parity."""
        p = self.parity_disk_of_row(row)
        if disk == p:
            return None
        return disk if disk < p else disk - 1

    # -- shape ---------------------------------------------------------------
    @property
    def ndisks(self) -> int:
        return self.n + 1

    @property
    def row_blocks(self) -> int:
        """Logical blocks per row (``N * striping_unit``)."""
        return self.n * self.striping_unit

    @property
    def rows(self) -> int:
        """Rows per disk."""
        return self.blocks_per_disk // self.striping_unit

    # -- mapping ---------------------------------------------------------------
    def map_block(self, lblock: int) -> PhysicalAddress:
        self._check_range(lblock, 1)
        su = self.striping_unit
        unit, offset = divmod(lblock, su)
        row, j = divmod(unit, self.n)
        return PhysicalAddress(self.data_disk_of(row, j), row * su + offset)

    def parity_of(self, lblock: int) -> Optional[PhysicalAddress]:
        self._check_range(lblock, 1)
        su = self.striping_unit
        unit, offset = divmod(lblock, su)
        row = unit // self.n
        return PhysicalAddress(self.parity_disk_of_row(row), row * su + offset)

    def logical_of(self, disk: int, pblock: int) -> Optional[int]:
        if not 0 <= disk < self.ndisks:
            raise ValueError(f"disk {disk} out of range")
        if not 0 <= pblock < self.blocks_per_disk:
            return None
        su = self.striping_unit
        row, offset = divmod(pblock, su)
        j = self.data_index_of(row, disk)
        if j is None:
            return None
        return (row * self.n + j) * su + offset

    def map_blocks(self, lblocks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        lb = np.asarray(lblocks, dtype=np.int64)
        su = self.striping_unit
        unit, offset = np.divmod(lb, su)
        row, j = np.divmod(unit, self.n)
        p = self._parity_disks_of_rows(row)
        disks = np.where(j < p, j, j + 1)
        return disks, row * su + offset

    def _parity_disks_of_rows(self, rows: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`parity_disk_of_row` (overridable)."""
        return np.fromiter(
            (self.parity_disk_of_row(int(r)) for r in rows.ravel()),
            dtype=np.int64,
            count=rows.size,
        ).reshape(rows.shape)

    # -- write planning -----------------------------------------------------------
    def write_plan(self, lstart: int, nblocks: int, rmw_threshold: float = 0.5) -> list[WriteGroup]:
        self._check_range(lstart, nblocks)
        su = self.striping_unit
        row_blocks = self.row_blocks
        end = lstart + nblocks
        groups: list[WriteGroup] = []

        for row in range(lstart // row_blocks, (end - 1) // row_blocks + 1):
            row_lo = row * row_blocks
            row_hi = row_lo + row_blocks
            a, b = max(lstart, row_lo), min(end, row_hi)
            covered = b - a
            data_runs = merge_runs([self.map_block(x) for x in range(a, b)])
            p_disk = self.parity_disk_of_row(row)

            if covered == row_blocks:
                # Full-stripe write: fresh parity, no reads.
                parity = [Run(p_disk, row * su, su)]
                groups.append(
                    WriteGroup(WriteMode.FULL, data_runs=data_runs, parity_runs=parity)
                )
                continue

            # Offsets-within-unit touched by the write determine which
            # parity blocks change.  The union is approximated by its
            # contiguous hull (exact for the single-unit accesses that
            # dominate OLTP workloads).
            offsets = {x % su for x in range(a, b)} if covered < su else set(range(su))
            lo, hi = min(offsets), max(offsets) + 1
            parity = [Run(p_disk, row * su + lo, hi - lo)]

            if covered / row_blocks >= rmw_threshold:
                # Reconstruct-write: read the rest of the row.
                others = [x for x in range(row_lo, row_hi) if not a <= x < b]
                read_runs = merge_runs([self.map_block(x) for x in others])
                groups.append(
                    WriteGroup(
                        WriteMode.RECONSTRUCT,
                        data_runs=data_runs,
                        read_runs=read_runs,
                        parity_runs=parity,
                    )
                )
            else:
                groups.append(
                    WriteGroup(WriteMode.RMW, data_runs=data_runs, parity_runs=parity)
                )
        return groups
