"""Shared layout abstractions.

The array's logical block space is ``[0, N * blocks_per_disk)`` — the
capacity of ``N`` independent data disks, the paper's equal-capacity
comparison unit.  Concrete layouts place those blocks (plus redundancy)
on the array's physical disks.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["PhysicalAddress", "Run", "WriteMode", "WriteGroup", "Layout", "merge_runs"]


@dataclass(frozen=True)
class PhysicalAddress:
    """A physical block location: disk index within the array + block."""

    disk: int
    block: int


@dataclass(frozen=True)
class Run:
    """A contiguous range of physical blocks on one disk."""

    disk: int
    start: int
    nblocks: int

    def __post_init__(self) -> None:
        if self.nblocks <= 0:
            raise ValueError("run must contain at least one block")
        if self.start < 0 or self.disk < 0:
            raise ValueError("negative address")

    @property
    def end(self) -> int:
        """One past the last block."""
        return self.start + self.nblocks


class WriteMode(enum.Enum):
    """How a write group updates redundancy."""

    #: No redundancy involved (Base) or handled by duplication (Mirror).
    PLAIN = "plain"
    #: Read-modify-write: read old data + old parity, write new data + parity.
    RMW = "rmw"
    #: Reconstruct-write: read the *other* units of the stripe, write data
    #: and freshly computed parity.
    RECONSTRUCT = "reconstruct"
    #: Full-stripe write: write everything, no reads at all.
    FULL = "full"


@dataclass
class WriteGroup:
    """One self-contained unit of a write plan.

    ``data_runs`` are always written.  Under ``RMW`` the data disks use a
    combined read-rotate-write access (the read supplies the old data for
    the parity delta).  Under ``RECONSTRUCT`` the ``read_runs`` (other
    stripe units) are read first.  ``parity_runs`` are written with a
    dependency on the group's reads.
    """

    mode: WriteMode
    data_runs: list[Run] = field(default_factory=list)
    read_runs: list[Run] = field(default_factory=list)
    parity_runs: list[Run] = field(default_factory=list)


def merge_runs(addresses: list[PhysicalAddress]) -> list[Run]:
    """Coalesce per-block addresses into maximal contiguous runs.

    Input order is preserved for run starts; consecutive addresses on the
    same disk with adjacent block numbers merge into a single run.
    """
    runs: list[Run] = []
    for addr in addresses:
        if runs and runs[-1].disk == addr.disk and runs[-1].end == addr.block:
            last = runs[-1]
            runs[-1] = Run(last.disk, last.start, last.nblocks + 1)
        else:
            runs.append(Run(addr.disk, addr.block, 1))
    return runs


class Layout(ABC):
    """Maps logical array blocks to physical disk blocks.

    Parameters
    ----------
    n:
        Number of data-disk equivalents (the paper's ``N``).
    blocks_per_disk:
        Size of one logical disk in blocks (the active database slice each
        data disk holds; must fit the physical disk).
    """

    def __init__(self, n: int, blocks_per_disk: int) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        if blocks_per_disk < 1:
            raise ValueError("blocks_per_disk must be >= 1")
        self.n = n
        self.blocks_per_disk = blocks_per_disk

    # -- shape ---------------------------------------------------------------
    @property
    @abstractmethod
    def ndisks(self) -> int:
        """Physical disks in the array."""

    @property
    def logical_blocks(self) -> int:
        """Capacity of the array in logical blocks."""
        return self.n * self.blocks_per_disk

    @property
    def has_parity(self) -> bool:
        """True for layouts that maintain parity."""
        return False

    def plan_period(self) -> Optional[tuple[int, int, int]]:
        """Translational symmetry of the mapping, if the layout has one.

        Returns ``(period_lblocks, disk_step, pblock_step)`` such that for
        every valid logical block ``l``::

            map(l + period_lblocks).disk  == (map(l).disk + disk_step) % ndisks
            map(l + period_lblocks).block ==  map(l).block + pblock_step

        and the same shift carries :meth:`parity_of`, :meth:`read_runs`
        and :meth:`write_plan` (mode choices included), so a plan computed
        at ``l % period_lblocks`` can be translated to ``l`` instead of
        recomputed.  ``None`` means no usable symmetry; the plan cache
        then stays out of the way.
        """
        return None

    # -- per-block mapping -----------------------------------------------------
    @abstractmethod
    def map_block(self, lblock: int) -> PhysicalAddress:
        """Physical location of logical block *lblock*."""

    def parity_of(self, lblock: int) -> Optional[PhysicalAddress]:
        """Location of the parity protecting *lblock* (None if no parity)."""
        return None

    @abstractmethod
    def logical_of(self, disk: int, pblock: int) -> Optional[int]:
        """Inverse mapping; ``None`` for parity/unused blocks."""

    def is_parity_block(self, disk: int, pblock: int) -> bool:
        """True if the physical block holds parity."""
        return self.has_parity and self.logical_of(disk, pblock) is None

    # -- vectorised mapping (for trace analytics, e.g. Figs. 6 and 7) -------
    def map_blocks(self, lblocks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`map_block`; returns ``(disks, pblocks)``."""
        lb = np.asarray(lblocks, dtype=np.int64)
        disks = np.empty(lb.shape, dtype=np.int64)
        pblocks = np.empty(lb.shape, dtype=np.int64)
        for i, b in enumerate(lb.ravel()):
            addr = self.map_block(int(b))
            disks.ravel()[i] = addr.disk
            pblocks.ravel()[i] = addr.block
        return disks, pblocks

    # -- request planning -------------------------------------------------------
    def read_runs(self, lstart: int, nblocks: int) -> list[Run]:
        """Physical runs servicing a logical read ``[lstart, lstart+n)``."""
        self._check_range(lstart, nblocks)
        return merge_runs([self.map_block(b) for b in range(lstart, lstart + nblocks)])

    @abstractmethod
    def write_plan(self, lstart: int, nblocks: int, rmw_threshold: float = 0.5) -> list[WriteGroup]:
        """Plan a logical write as one or more :class:`WriteGroup` s.

        ``rmw_threshold`` is the covered-fraction of a stripe below which
        read-modify-write is chosen over reconstruct-write (the paper uses
        "less than half a stripe").
        """

    def _check_range(self, lstart: int, nblocks: int) -> None:
        if nblocks < 1:
            raise ValueError("nblocks must be >= 1")
        if lstart < 0 or lstart + nblocks > self.logical_blocks:
            raise ValueError(
                f"logical range [{lstart}, {lstart + nblocks}) outside "
                f"capacity {self.logical_blocks}"
            )
