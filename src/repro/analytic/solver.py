"""The analytic fast-solve backend.

:func:`solve_trace` answers the same question as
:func:`repro.sim.runner.run_trace` — mean/percentile response time,
per-disk utilization, channel utilization, cache hit ratios — without
simulating a single event:

1. :func:`~repro.analytic.decompose.decompose` turns the trace into
   per-array Poisson access streams and request classes;
2. every physical disk becomes an M/G/1 queue (two-class non-preemptive
   priority when background destage traffic is present) fed by the
   composite service moments of its streams
   (:class:`~repro.analytic.service.DiskServiceModel`);
3. each request class's mean response is composed from the queue waits:
   channel M/G/1 + fork-join over its parallel disk branches, with a
   serialization offset for parity accesses gated behind the data
   access (RF/DF sync policies);
4. the class means aggregate into a :class:`~repro.sim.results.RunResult`
   whose tallies are :class:`AnalyticTally` objects — mean is exact
   (within the model), percentiles use a shifted-exponential tail
   around the zero-load floor.

A workload pushing any disk or the channel to utilization ≥ 1 has no
steady state; the solver raises :class:`AnalyticSaturationError` (a
``ValueError``) naming the saturated resource.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.analytic.decompose import ArrayLoad, decompose
from repro.analytic.service import DiskServiceModel
from repro.des.monitor import Tally
from repro.models.queueing import (
    fork_join_response,
    mg1_priority_waiting_times,
    mg1_waiting_time,
)
from repro.sim.config import SystemConfig
from repro.sim.results import ArrayMetrics, RunResult
from repro.trace.record import Trace

__all__ = [
    "AnalyticSaturationError",
    "AnalyticTally",
    "AnalyticUnsupportedError",
    "solve_trace",
]


class AnalyticSaturationError(ValueError):
    """A resource's offered load is at or above its capacity."""


class AnalyticUnsupportedError(ValueError):
    """The analytic model cannot represent the requested scenario.

    Raised instead of silently solving a different (usually the healthy
    steady-state) model — e.g. ``run_trace(backend="analytic",
    failures=...)``: degraded mode, rebuild interference and scrubbing
    are transient behaviours the M/G/1 steady-state solver has no
    equations for.  The guidance in the message names the supported
    alternative (the DES backend).
    """


class AnalyticTally(Tally):
    """A :class:`Tally` describing a modelled (not sampled) distribution.

    The solver knows the mean exactly (within the model) and the
    zero-load floor of the response distribution; the tail above the
    floor is approximated as exponential — the classic heavy-traffic
    shape of M/G/1 response times — which gives closed-form percentiles
    so golden snapshots and ``p95_response_ms`` keep working without a
    sample store.
    """

    def __init__(self, count: int, mean: float, floor: float = 0.0) -> None:
        super().__init__(keep_samples=False)
        self.count = count
        if count:
            self._mean = mean
            excess = max(mean - floor, 0.0)
            # Exponential excess: variance = excess².
            self._m2 = excess * excess * max(count - 1, 0)
            self.min = min(floor, mean)
            self.max = self.percentile(99.9)

    def percentile(self, q: float) -> float:
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile {q} outside [0, 100]")
        if self.count == 0:
            return math.nan
        floor = self.min
        excess = max(self._mean - floor, 0.0)
        if q >= 100.0:
            q = 99.999
        return floor + excess * -math.log(1.0 - q / 100.0)


class _ServiceBank:
    """Per-disk service models of one array.

    The homogeneous case (every disk the same model object — all legacy
    configs, and any VA whose disks share a :class:`DiskParams`) keeps
    the solver's original scalar arithmetic bit-for-bit; heterogeneous
    VAs mix per-disk moments weighted by each branch's disk-visit
    probabilities (per-disk-class queues still solve independently in
    :func:`_disk_waits`).
    """

    __slots__ = ("models", "model", "homogeneous")

    def __init__(self, models: List[DiskServiceModel]) -> None:
        self.models = list(models)
        self.model = self.models[0]
        self.homogeneous = all(m is self.model for m in self.models)

    def branch_service_mean(self, branch) -> float:
        """Mean service time of one fork-join branch."""
        if self.homogeneous:
            return self.model.access(
                branch.kind, branch.nblocks, None, branch.nearest_of_two
            ).mean
        means = np.array(
            [
                m.access(branch.kind, branch.nblocks, None, branch.nearest_of_two).mean
                for m in self.models
            ]
        )
        return float(np.dot(branch.weights, means))


def solve_trace(
    config: SystemConfig,
    workload: Trace,
    warmup_fraction: float = 0.1,
    name: Optional[str] = None,
) -> RunResult:
    """Analytically solve *workload* on *config* (drop-in for the DES)."""
    hetero = config.heterogeneous
    if hetero:
        total = workload.ndisks * workload.blocks_per_disk
        if total != config.total_logical_blocks:
            raise ValueError(
                f"trace addresses {total} logical blocks but the VAs define "
                f"{config.total_logical_blocks} (spans {config.va_spans})"
            )
    elif workload.blocks_per_disk != config.blocks_per_disk:
        raise ValueError(
            f"trace uses {workload.blocks_per_disk} blocks/disk but the config "
            f"expects {config.blocks_per_disk}"
        )
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    narrays = len(config.vas) if hetero else config.arrays_for(workload.ndisks)
    warmup_ms = workload.duration_ms * warmup_fraction

    result = RunResult(
        name=name or workload.name,
        organization=config.organization_label,
        n=sum(va.n for va in config.vas) if hetero else config.n,
        narrays=narrays,
        simulated_ms=workload.duration_ms,
        requests=len(workload),
        warmup_ms=warmup_ms,
    )
    if len(workload) == 0:
        result.response = AnalyticTally(0, math.nan)
        result.read_response = AnalyticTally(0, math.nan)
        result.write_response = AnalyticTally(0, math.nan)
        if hetero:
            result.va_response = [AnalyticTally(0, math.nan) for _ in config.vas]
        return result

    banks = _service_banks(config)

    # (weight, mean response, zero-load floor) per request class, globally.
    read_terms: List[Tuple[float, float, float]] = []
    write_terms: List[Tuple[float, float, float]] = []
    va_terms: List[List[Tuple[float, float, float]]] = [[] for _ in range(narrays)]
    measured_reads = 0
    measured_writes = 0

    loads = decompose(config, workload, warmup_ms)
    for a, load in enumerate(loads):
        bank = banks[a] if hetero else banks[0]
        waits, rho = _disk_waits(load, bank, a)
        w_chan, s_chan, rho_chan = _channel(config, load, a)

        metrics = ArrayMetrics(
            disk_accesses=_access_counts(load),
            disk_utilization=rho,
            channel_utilization=rho_chan,
        )
        if load.cache_share is not None:
            for field_name, value in load.cache_share.items():
                setattr(metrics, field_name, value)
        result.arrays.append(metrics)

        for rc in load.requests:
            if rc.weight <= 0:
                continue
            mean = _class_response(rc, bank, waits, rho, w_chan, s_chan)
            floor = _class_response(
                rc, bank, np.zeros_like(waits), rho, 0.0, s_chan
            )
            term = (rc.weight, mean, floor)
            (write_terms if rc.is_write else read_terms).append(term)
            va_terms[a].append(term)
        measured_reads += load.measured_reads
        measured_writes += load.measured_writes

    result.read_response = _tally(read_terms, measured_reads)
    result.write_response = _tally(write_terms, measured_writes)
    result.response = _tally(
        read_terms + write_terms, measured_reads + measured_writes
    )
    if hetero:
        result.va_response = [
            _tally(
                va_terms[a],
                loads[a].measured_reads + loads[a].measured_writes,
            )
            for a in range(narrays)
        ]
    return result


def _service_banks(config: SystemConfig) -> List[_ServiceBank]:
    """One service bank per array (shared across arrays when legacy)."""
    if not config.heterogeneous:
        service = DiskServiceModel(
            config.disk.geometry(config.block_bytes),
            config.disk.seek_model(),
            config.blocks_per_disk,
        )
        return [_ServiceBank([service])]
    assigned = config.resolve_disk_params()
    model_cache: dict = {}
    banks = []
    for vi in range(len(config.vas)):
        vcfg = config.va_view(vi)
        models = []
        for params in assigned[vi]:
            key = (params, vcfg.blocks_per_disk)
            model = model_cache.get(key)
            if model is None:
                model = DiskServiceModel(
                    params.geometry(config.block_bytes),
                    params.seek_model(),
                    vcfg.blocks_per_disk,
                )
                model_cache[key] = model
            models.append(model)
        banks.append(_ServiceBank(models))
    return banks


# -- per-array solution -------------------------------------------------------


def _disk_waits(
    load: ArrayLoad, bank: _ServiceBank, array_index: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Foreground mean waits and total utilization per disk."""
    ndisks = load.ndisks
    lam = {True: np.zeros(ndisks), False: np.zeros(ndisks)}
    m1 = {True: np.zeros(ndisks), False: np.zeros(ndisks)}
    m2 = {True: np.zeros(ndisks), False: np.zeros(ndisks)}
    for cls in load.classes:
        if bank.homogeneous:
            mom = bank.model.access(
                cls.kind, cls.nblocks, cls.nblocks_second, cls.nearest_of_two
            )
            lam[cls.background] += cls.rates
            m1[cls.background] += cls.rates * mom.mean
            m2[cls.background] += cls.rates * mom.second
        else:
            moms = [
                m.access(cls.kind, cls.nblocks, cls.nblocks_second, cls.nearest_of_two)
                for m in bank.models
            ]
            lam[cls.background] += cls.rates
            m1[cls.background] += cls.rates * np.array([mm.mean for mm in moms])
            m2[cls.background] += cls.rates * np.array([mm.second for mm in moms])

    rho = m1[False] + m1[True]
    waits = np.zeros(ndisks)
    for d in range(ndisks):
        if rho[d] >= 1.0:
            raise AnalyticSaturationError(
                f"disk {d} of array {array_index} saturated: "
                f"offered utilization {rho[d]:.3f} >= 1"
            )
        lf, lb = lam[False][d], lam[True][d]
        if lf == 0.0:
            continue
        fg = (lf, m1[False][d] / lf, m2[False][d] / lf)
        if lb == 0.0:
            waits[d] = mg1_waiting_time(*fg)
        else:
            bg = (lb, m1[True][d] / lb, m2[True][d] / lb)
            waits[d] = mg1_priority_waiting_times([fg, bg])[0]
    return waits, rho


def _channel(
    config: SystemConfig, load: ArrayLoad, array_index: int
) -> Tuple[float, float, float]:
    """Channel mean wait, per-block transfer time, and utilization."""
    bytes_per_ms = config.channel_mb_per_s * 1e6 / 1000.0
    per_block = config.block_bytes / bytes_per_ms
    if load.channel_rate == 0.0:
        return 0.0, per_block, 0.0
    mean = load.channel_nb * per_block
    second = load.channel_nb_second * per_block * per_block
    rho = load.channel_rate * mean
    if rho >= 1.0:
        raise AnalyticSaturationError(
            f"channel of array {array_index} saturated: "
            f"offered utilization {rho:.3f} >= 1"
        )
    return mg1_waiting_time(load.channel_rate, mean, second), per_block, rho


def _class_response(
    rc,
    bank: _ServiceBank,
    waits: np.ndarray,
    rho: np.ndarray,
    w_chan: float,
    per_block_chan: float,
) -> float:
    """Mean response of one request class under the given queue waits."""
    response = 0.0
    if rc.channel_blocks > 0:
        response += w_chan + rc.channel_blocks * per_block_chan
    if not rc.branches:
        return response

    # Serialization offset for parity branches: under RF/DF the parity
    # access only enters its queue once the data access has progressed
    # past its own queue (DF) — approximated by the data branch's wait.
    data_wait = 0.0
    for b in rc.branches:
        if not b.after_data:
            data_wait = float(np.dot(b.weights, waits))
            break

    branch_means = []
    util = 0.0
    for b in rc.branches:
        mean = float(np.dot(b.weights, waits)) + bank.branch_service_mean(b)
        if b.after_data:
            mean += data_wait
        branch_means.append(mean)
        util += float(np.dot(b.weights, rho))
    util = min(max(util / len(rc.branches), 0.0), 1.0)
    return response + fork_join_response(branch_means, util)


def _access_counts(load: ArrayLoad) -> np.ndarray:
    rates = np.zeros(load.ndisks)
    for cls in load.classes:
        rates += cls.rates
    if not math.isfinite(load.duration_ms):
        return np.zeros(load.ndisks, dtype=np.int64)
    return np.rint(rates * load.duration_ms).astype(np.int64)


def _tally(terms: List[Tuple[float, float, float]], count: int) -> AnalyticTally:
    weight = sum(t[0] for t in terms)
    if weight <= 0 or count <= 0:
        return AnalyticTally(0, math.nan)
    mean = sum(w * m for w, m, _ in terms) / weight
    floor = sum(w * f for w, _, f in terms) / weight
    return AnalyticTally(count, mean, floor)
