"""Tolerance bands for DES-vs-analytic cross-validation.

One relative tolerance on *mean response time* per organization,
shared by the test harness (``tests/analytic/test_cross_validate.py``),
the benchmark gate (``benchmarks/bench_analytic.py``) and CI.  The
bands encode how much of each organization's behaviour the analytic
model captures exactly versus approximately:

``base``
    Tightest: a Base array under Poisson arrivals *is* a set of
    independent M/G/1 queues — the only modelling gap is the composite
    service-moment summary and finite-sample noise in the DES estimate.
``mirror``
    The shortest-of-two read routing is modelled with an independent
    uniform-arm assumption and writes with a 2-way fork-join
    approximation; both are a few percent optimistic/pessimistic.
``raid5`` / ``parity_striping``
    Small writes add the RMW fork-join (data + parity branches), the
    parity serialization offset and the extra-revolution alignment —
    each an approximation stacked on the queue model.
``cached``
    Additional layers: hit-ratio-thinned arrival streams, write-behind
    response ≈ channel time, and destage traffic as a background
    priority class with per-block accesses (the DES merges destage
    runs); the widest band.

Widening a band to paper over a regression defeats the harness —
tighten instead whenever model improvements allow (see TESTING.md).
"""

from __future__ import annotations

from typing import Iterable

__all__ = [
    "TOLERANCE_BANDS",
    "tolerance_for",
    "CAMPAIGN_TOLERANCE",
    "HDA_P95_TOLERANCE",
    "hda_tolerance",
]

#: Relative tolerance on mean response time, DES vs analytic, for
#: Poisson single-block workloads below the knee.
TOLERANCE_BANDS: dict[str, float] = {
    "base": 0.10,
    "mirror": 0.15,
    "raid5": 0.20,
    "raid4": 0.20,
    "parity_striping": 0.20,
    "cached": 0.30,
}

#: Looser gate for whole figure campaigns: the paper traces are bursty
#: and spatially local (hot spots, sequential runs), both outside the
#: Poisson/uniform assumptions, so per-point agreement is coarser than
#: on the controlled cross-validation grid.
CAMPAIGN_TOLERANCE = 0.5

#: Relative tolerance on *p95* response for heterogeneous (multi-VA)
#: cross-validation.  The analytic backend reconstructs percentiles from
#: a shifted-exponential tail fitted to (mean, floor); mixing VAs with
#: different service floors fattens the true tail well beyond a single
#: exponential, so the analytic p95 sits systematically low (~0.6x DES
#: in the mirror+RAID5 reference point).  Means stay inside the per-org
#: bands — only the percentile reconstruction gets this looser gate.
HDA_P95_TOLERANCE = 0.5


def tolerance_for(org: str, cached: bool = False) -> float:
    """Relative mean-response tolerance for an organization."""
    if cached:
        return TOLERANCE_BANDS["cached"]
    return TOLERANCE_BANDS[org]


def hda_tolerance(orgs: Iterable[str], cached: bool = False) -> float:
    """Mean-response tolerance for a heterogeneous (multi-VA) system.

    The system-level mean is a request-weighted blend of the member
    VAs' responses, so its modelling error is bounded by the loosest
    member band.
    """
    tols = [tolerance_for(org, cached) for org in orgs]
    if not tols:
        raise ValueError("hda_tolerance needs at least one organization")
    return max(tols)
