"""Tolerance bands for DES-vs-analytic cross-validation.

One relative tolerance on *mean response time* per organization,
shared by the test harness (``tests/analytic/test_cross_validate.py``),
the benchmark gate (``benchmarks/bench_analytic.py``) and CI.  The
bands encode how much of each organization's behaviour the analytic
model captures exactly versus approximately:

``base``
    Tightest: a Base array under Poisson arrivals *is* a set of
    independent M/G/1 queues — the only modelling gap is the composite
    service-moment summary and finite-sample noise in the DES estimate.
``mirror``
    The shortest-of-two read routing is modelled with an independent
    uniform-arm assumption and writes with a 2-way fork-join
    approximation; both are a few percent optimistic/pessimistic.
``raid5`` / ``parity_striping``
    Small writes add the RMW fork-join (data + parity branches), the
    parity serialization offset and the extra-revolution alignment —
    each an approximation stacked on the queue model.
``cached``
    Additional layers: hit-ratio-thinned arrival streams, write-behind
    response ≈ channel time, and destage traffic as a background
    priority class with per-block accesses (the DES merges destage
    runs); the widest band.

Widening a band to paper over a regression defeats the harness —
tighten instead whenever model improvements allow (see TESTING.md).
"""

from __future__ import annotations

__all__ = ["TOLERANCE_BANDS", "tolerance_for", "CAMPAIGN_TOLERANCE"]

#: Relative tolerance on mean response time, DES vs analytic, for
#: Poisson single-block workloads below the knee.
TOLERANCE_BANDS: dict[str, float] = {
    "base": 0.10,
    "mirror": 0.15,
    "raid5": 0.20,
    "raid4": 0.20,
    "parity_striping": 0.20,
    "cached": 0.30,
}

#: Looser gate for whole figure campaigns: the paper traces are bursty
#: and spatially local (hot spots, sequential runs), both outside the
#: Poisson/uniform assumptions, so per-point agreement is coarser than
#: on the controlled cross-validation grid.
CAMPAIGN_TOLERANCE = 0.5


def tolerance_for(org: str, cached: bool = False) -> float:
    """Relative mean-response tolerance for an organization."""
    if cached:
        return TOLERANCE_BANDS["cached"]
    return TOLERANCE_BANDS[org]
