"""Vectorized decomposition of a trace into per-disk workload classes.

The analytic backend never walks requests one by one: each array's slice
of the trace is expanded to block level with numpy, mapped to physical
disks with the same (vectorized) layout arithmetic the DES uses, and
collapsed into

* :class:`DiskClass` — a Poisson stream of disk accesses of one kind
  (read / write / rmw) with per-disk rates and block-count moments; the
  solver feeds these into each disk's M/G/1 queue;
* :class:`RequestClass` — a group of logical requests with identical
  structure (same direction and fan-out), described as the channel
  transfer plus a set of parallel disk branches; the solver composes
  each class's mean response from the queue waits via fork-join.

Organization rules (mirroring the controllers in ``repro.array``):

Base
    Reads/writes touch the data disks of the spanned logical disks.
Mirror
    Reads go to the nearer arm of the pair (half the access rate on each
    member, nearest-of-two seek); writes hit both members (fork-join).
RAID5 / RAID4
    Small writes are read-modify-writes on the data disks plus RMWs on
    the parity disk of each touched row (rotated vs dedicated parity).
Parity Striping
    Sequential data mapping; RMW on the data disks plus RMW in the
    parity area of each touched parity group.
Cached organizations
    `cache/fastsim.py` supplies exact LRU hit ratios; read hits and all
    writes answer from the cache (channel only), read misses carry the
    uncached read fan-out at rate ``(1 - h_r)``, and destage traffic
    becomes *background* disk classes served at lower priority.

Known approximations (reflected in the cross-validation tolerance
bands, see ``repro.analytic.validation``): run lengths per disk are
summarized by their mean, large striped writes are treated as RMW even
when the DES would reconstruct, destage writes are not merged into
longer runs, and parity/data synchronization enters only as a mean
serialization offset.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.cache.fastsim import CacheHitStats, simulate_hit_ratios
from repro.sim.config import Organization, SystemConfig
from repro.trace.record import Trace

__all__ = ["ArrayLoad", "Branch", "DiskClass", "RequestClass", "decompose"]


@dataclass
class DiskClass:
    """One Poisson stream of same-kind disk accesses."""

    kind: str  # "read" | "write" | "rmw"
    rates: np.ndarray  # accesses per ms, per physical disk of the array
    nblocks: float
    nblocks_second: float
    nearest_of_two: bool = False
    #: Background work (destage) served below foreground priority.
    background: bool = False


@dataclass
class Branch:
    """One parallel disk sub-request of a request class."""

    kind: str
    nblocks: float
    weights: np.ndarray  # probability over the array's disks
    nearest_of_two: bool = False
    #: Parity access issued only once the data access has progressed
    #: (RF/DF sync policies): the solver adds a serialization offset.
    after_data: bool = False


@dataclass
class RequestClass:
    """Requests with identical structure (direction and fan-out)."""

    weight: float  # request count (fractional for cache-split classes)
    is_write: bool
    channel_blocks: float  # blocks crossing the channel (0 = none)
    branches: List[Branch] = field(default_factory=list)


@dataclass
class ArrayLoad:
    """Everything the solver needs about one array."""

    ndisks: int
    duration_ms: float
    classes: List[DiskClass] = field(default_factory=list)
    requests: List[RequestClass] = field(default_factory=list)
    measured_reads: int = 0
    measured_writes: int = 0
    channel_rate: float = 0.0  # request arrivals per ms crossing the channel
    channel_nb: float = 1.0
    channel_nb_second: float = 1.0
    cache_stats: Optional[CacheHitStats] = None
    #: This array's integer share of the global cache counters.
    cache_share: Optional[dict] = None


# -- block-level helpers ------------------------------------------------------


def _expand(lb: np.ndarray, nb: np.ndarray) -> np.ndarray:
    """All block addresses touched by the requests (``Σ nb`` entries)."""
    if len(lb) == 0:
        return np.zeros(0, dtype=np.int64)
    reps = nb.astype(np.int64)
    starts = np.repeat(lb, reps)
    ends = np.cumsum(reps)
    offsets = np.arange(int(ends[-1]), dtype=np.int64) - np.repeat(ends - reps, reps)
    return starts + offsets


def _moments(nb: np.ndarray) -> tuple[float, float]:
    if len(nb) == 0:
        return 1.0, 1.0
    x = nb.astype(np.float64)
    return float(x.mean()), float((x * x).mean())


def _rates(
    block_counts: np.ndarray, runs: float, duration_ms: float
) -> np.ndarray:
    """Per-disk access rates from block counts and the total run count."""
    total = block_counts.sum()
    if total == 0 or runs == 0 or not math.isfinite(duration_ms) or duration_ms <= 0:
        return np.zeros_like(block_counts, dtype=np.float64)
    return block_counts * (runs / total) / duration_ms


def _weights(block_counts: np.ndarray) -> np.ndarray:
    total = block_counts.sum()
    if total == 0:
        return np.full(len(block_counts), 1.0 / len(block_counts))
    return block_counts / total


# -- per-organization mapping -------------------------------------------------


def _data_disks(config: SystemConfig, layout, blocks: np.ndarray) -> np.ndarray:
    disks, _ = layout.map_blocks(blocks)
    return disks


def _parity_disks(config: SystemConfig, layout, blocks: np.ndarray) -> np.ndarray:
    org = config.organization
    n = config.n
    if org in (Organization.RAID5, Organization.RAID4):
        rows = (blocks // config.striping_unit) // n
        if org is Organization.RAID5:
            return rows % (n + 1)
        return np.full(len(blocks), n, dtype=np.int64)
    # Parity Striping: group of (disk, data_area[, grain chunk]).
    disk, q = np.divmod(blocks, layout.data_blocks_per_disk)
    k, off = np.divmod(q, layout.area_blocks)
    if layout.parity_grain is not None:
        k = k + off // layout.parity_grain
    return (disk + 1 + k % n) % (n + 1)


def _disk_span(config: SystemConfig, layout, lb: np.ndarray, nb: np.ndarray) -> np.ndarray:
    """Number of distinct data disks each request touches."""
    org = config.organization
    last = lb + nb - 1
    if org in (Organization.RAID5, Organization.RAID4):
        su = config.striping_unit
        units = last // su - lb // su + 1
        return np.minimum(units, config.n)
    if org is Organization.PARITY_STRIPING:
        per = layout.data_blocks_per_disk
    else:  # Base / Mirror: logical disk == data disk (or mirror pair)
        per = config.blocks_per_disk
    return last // per - lb // per + 1


def _parity_span(config: SystemConfig, lb: np.ndarray, nb: np.ndarray, m: np.ndarray) -> np.ndarray:
    """Number of distinct parity disks each write touches."""
    org = config.organization
    if org is Organization.RAID4:
        return np.ones(len(lb), dtype=np.int64)
    if org is Organization.RAID5:
        su = config.striping_unit
        row_blocks = config.n * su
        last = lb + nb - 1
        rows = last // row_blocks - lb // row_blocks + 1
        return np.minimum(rows, config.n + 1)
    # Parity Striping: one group per touched (disk, area) span ≈ one per
    # data disk for OLTP-sized requests.
    return m


# -- decomposition ------------------------------------------------------------


def decompose(
    config: SystemConfig, trace: Trace, warmup_ms: float = 0.0
) -> List[ArrayLoad]:
    """Split *trace* into per-array analytic workload descriptions.

    Heterogeneous configs return one :class:`ArrayLoad` per Virtual
    Array (in VA order); each VA is decomposed through its legacy-shaped
    :meth:`~repro.sim.config.SystemConfig.va_view`, so all the
    per-organization mapping above applies unchanged.
    """
    if config.heterogeneous:
        return _decompose_heterogeneous(config, trace, warmup_ms)
    narrays = config.arrays_for(trace.ndisks)
    per_array = config.n * config.blocks_per_disk
    records = trace.records
    times = records["time"]
    lblocks = records["lblock"]
    nblocks = records["nblocks"].astype(np.int64)
    is_write = records["is_write"]
    duration = trace.duration_ms if trace.duration_ms > 0 else math.inf

    stats = None
    if config.cached:
        stats = _cache_stats(config, trace)

    owners = lblocks // per_array
    loads = []
    for a in range(narrays):
        sel = owners == a
        lb = lblocks[sel] - a * per_array
        # Requests spanning into the next array are rare; clamp them to
        # the owning array (the DES splits them, same first-order load).
        nb = np.minimum(nblocks[sel], per_array - lb)
        wr = is_write[sel]
        measured = times[sel] >= warmup_ms
        load = _decompose_array(config, lb, nb, wr, duration, stats, narrays, a)
        load.measured_reads = int((measured & ~wr).sum())
        load.measured_writes = int((measured & wr).sum())
        loads.append(load)
    return loads


def _decompose_heterogeneous(
    config: SystemConfig, trace: Trace, warmup_ms: float
) -> List[ArrayLoad]:
    """Per-VA decomposition: VA-first routing over unequal spans."""
    records = trace.records
    times = records["time"]
    lblocks = records["lblock"]
    nblocks = records["nblocks"].astype(np.int64)
    is_write = records["is_write"]
    duration = trace.duration_ms if trace.duration_ms > 0 else math.inf

    spans = np.array(config.va_spans, dtype=np.int64)
    bounds = np.cumsum(spans)
    starts = bounds - spans
    owners = np.searchsorted(bounds, lblocks, side="right")

    loads = []
    for vi in range(len(config.vas)):
        vcfg = config.va_view(vi)
        sel = owners == vi
        lb = lblocks[sel] - starts[vi]
        # Requests spanning into the next VA are rare; clamp them to the
        # owning VA (the DES splits them, same first-order load).
        nb = np.minimum(nblocks[sel], spans[vi] - lb)
        wr = is_write[sel]
        measured = times[sel] >= warmup_ms
        stats = None
        if vcfg.cached:
            sub = np.empty(int(sel.sum()), dtype=records.dtype)
            sub["time"] = times[sel]
            sub["lblock"] = lb
            sub["nblocks"] = nb
            sub["is_write"] = wr
            sub_trace = Trace(
                sub, vcfg.n, vcfg.blocks_per_disk,
                name=f"{trace.name}#va{vi}",
            )
            stats = _cache_stats(vcfg, sub_trace)
        load = _decompose_array(vcfg, lb, nb, wr, duration, stats, 1, 0)
        load.measured_reads = int((measured & ~wr).sum())
        load.measured_writes = int((measured & wr).sum())
        loads.append(load)
    return loads


def _cache_stats(config: SystemConfig, trace: Trace) -> CacheHitStats:
    org = config.organization
    if org in (Organization.BASE, Organization.MIRROR):
        mode, layout = "plain", None
    elif org is Organization.RAID4 and config.parity_caching:
        mode, layout = "raid4pc", config.make_layout()
    else:
        mode, layout = "parity", None
    return simulate_hit_ratios(
        trace,
        config.n,
        config.cache_blocks,
        mode,
        destage_period_ms=config.destage_period_ms,
        layout=layout,
    )


def _share(total: int, narrays: int, a: int) -> int:
    """Array *a*'s integer share of a global counter (remainder to 0)."""
    base = total // narrays
    return base + (total - base * narrays if a == 0 else 0)


def _group_spans(*spans: np.ndarray):
    """Iterate over unique fan-out tuples with their request masks."""
    if len(spans[0]) == 0:
        return
    stacked = np.stack(spans, axis=1)
    uniq, inverse = np.unique(stacked, axis=0, return_inverse=True)
    for i, combo in enumerate(uniq):
        yield tuple(int(x) for x in combo), inverse == i


def _decompose_array(
    config: SystemConfig,
    lb: np.ndarray,
    nb: np.ndarray,
    wr: np.ndarray,
    duration: float,
    stats: Optional[CacheHitStats],
    narrays: int,
    a: int,
) -> ArrayLoad:
    org = config.organization
    layout = config.make_layout()
    ndisks = config.disks_per_array
    mirror = org is Organization.MIRROR
    parity = org in (
        Organization.RAID5,
        Organization.RAID4,
        Organization.PARITY_STRIPING,
    )

    load = ArrayLoad(ndisks=ndisks, duration_ms=duration)
    lb_r, nb_r = lb[~wr], nb[~wr]
    lb_w, nb_w = lb[wr], nb[wr]

    # -- read side -----------------------------------------------------------
    blocks_r = _expand(lb_r, nb_r)
    cr = np.bincount(
        _data_disks(config, layout, blocks_r), minlength=ndisks
    ).astype(np.float64)
    if mirror:
        # Shortest-of-two routing: half of each pair's load per member.
        pair = cr + cr[np.arange(ndisks) ^ 1]
        cr = pair / 2.0
    m_r = _disk_span(config, layout, lb_r, nb_r)
    w_read = _weights(cr)
    nb_r_mean, nb_r_second = _moments(nb_r)
    read_rate_scale = 1.0
    if stats is not None:
        read_rate_scale = 1.0 - stats.read_hit_ratio

    if len(lb_r):
        load.classes.append(
            DiskClass(
                "read",
                _rates(cr, float(m_r.sum()) * read_rate_scale, duration),
                nb_r_mean / max(float(m_r.mean()), 1.0),
                nb_r_second / max(float(m_r.mean()), 1.0) ** 2,
                nearest_of_two=mirror,
            )
        )

    # -- write side ----------------------------------------------------------
    blocks_w = _expand(lb_w, nb_w)
    cw = np.bincount(
        _data_disks(config, layout, blocks_w), minlength=ndisks
    ).astype(np.float64)
    if mirror:
        cw = cw + cw[np.arange(ndisks) ^ 1]  # both members written
    m_w = _disk_span(config, layout, lb_w, nb_w)
    w_write = _weights(cw)
    nb_w_mean, nb_w_second = _moments(nb_w)
    data_kind = "rmw" if parity else "write"

    cp = np.zeros(ndisks)
    g_w = np.zeros(0, dtype=np.int64)
    w_parity = np.full(ndisks, 1.0 / ndisks)
    if parity and len(lb_w):
        cp = np.bincount(
            _parity_disks(config, layout, blocks_w), minlength=ndisks
        ).astype(np.float64)
        g_w = _parity_span(config, lb_w, nb_w, m_w)
        w_parity = _weights(cp)

    if len(lb_w) and stats is None:
        runs_w = float(m_w.sum()) * (2.0 if mirror else 1.0)
        load.classes.append(
            DiskClass(
                data_kind,
                _rates(cw, runs_w, duration),
                nb_w_mean / max(float(m_w.mean()), 1.0),
                nb_w_second / max(float(m_w.mean()), 1.0) ** 2,
            )
        )
        if parity:
            g_mean = max(float(g_w.mean()), 1.0)
            load.classes.append(
                DiskClass(
                    "rmw",
                    _rates(cp, float(g_w.sum()), duration),
                    nb_w_mean / g_mean if org is Organization.PARITY_STRIPING
                    else min(nb_w_mean / g_mean, config.striping_unit),
                    nb_w_second / g_mean**2,
                )
            )

    # -- request classes ------------------------------------------------------
    for (m,), mask in _group_spans(m_r):
        size, size2 = _moments(nb_r[mask])
        per_branch = size / m
        branches = [
            Branch("read", per_branch, w_read, nearest_of_two=mirror)
            for _ in range(m)
        ]
        weight = float(mask.sum())
        if stats is not None:
            # Read hits answer from the cache: channel transfer only.
            load.requests.append(
                RequestClass(weight * stats.read_hit_ratio, False, size, [])
            )
            weight *= 1.0 - stats.read_hit_ratio
        load.requests.append(RequestClass(weight, False, size, branches))

    if stats is not None:
        # Write-behind: every write answers once the channel delivers it.
        if len(lb_w):
            load.requests.append(
                RequestClass(float(len(lb_w)), True, nb_w_mean, [])
            )
        _destage_classes(
            config, load, stats, narrays, duration, w_write, w_parity, parity, mirror
        )
    else:
        after = config.sync_policy_enum.value != "SI"
        for combo, mask in _group_spans(m_w, *((g_w,) if parity else ())):
            m = combo[0]
            size, _ = _moments(nb_w[mask])
            per_branch = size / m
            branches = [
                Branch(data_kind, per_branch, w_write) for _ in range(m)
            ]
            if mirror:
                branches += [
                    Branch(data_kind, per_branch, w_write) for _ in range(m)
                ]
            if parity:
                g = combo[1]
                psize = size / g if org is Organization.PARITY_STRIPING else min(
                    size / g, float(config.striping_unit)
                )
                branches += [
                    Branch("rmw", psize, w_parity, after_data=after)
                    for _ in range(g)
                ]
            load.requests.append(
                RequestClass(float(mask.sum()), True, size, branches)
            )

    # -- channel --------------------------------------------------------------
    total = len(lb)
    if total and math.isfinite(duration):
        load.channel_rate = total / duration
    load.channel_nb, load.channel_nb_second = _moments(nb)

    if stats is not None:
        load.cache_stats = stats
        load.cache_share = {
            "read_hits": _share(stats.read_hits, narrays, a),
            "read_misses": _share(stats.read_misses, narrays, a),
            "write_hits": _share(stats.write_hits, narrays, a),
            "write_misses": _share(stats.write_misses, narrays, a),
            "sync_writebacks": _share(stats.dirty_replacements, narrays, a),
            "destaged_blocks": _share(stats.destaged_blocks, narrays, a),
        }
    return load


def _destage_classes(
    config: SystemConfig,
    load: ArrayLoad,
    stats: CacheHitStats,
    narrays: int,
    duration: float,
    w_write: np.ndarray,
    w_parity: np.ndarray,
    parity: bool,
    mirror: bool,
) -> None:
    """Background disk load from the periodic destage (per array)."""
    if not math.isfinite(duration) or duration <= 0:
        return
    blocks = (stats.destaged_blocks + stats.dirty_replacements) / narrays
    if blocks <= 0:
        return
    rate = blocks / duration
    data_rate = rate * (2.0 if mirror else 1.0)
    if parity:
        # The data update is a plain write only when the old copy is
        # still cached (roughly: the write overwrote a resident block);
        # otherwise the data disk performs a read-modify-write whose
        # read supplies the parity delta.
        old_cached = stats.write_hit_ratio
        if old_cached > 0:
            load.classes.append(
                DiskClass(
                    "write", w_write * data_rate * old_cached, 1.0, 1.0,
                    background=True,
                )
            )
        if old_cached < 1:
            load.classes.append(
                DiskClass(
                    "rmw", w_write * data_rate * (1.0 - old_cached), 1.0, 1.0,
                    background=True,
                )
            )
    else:
        load.classes.append(
            DiskClass("write", w_write * data_rate, 1.0, 1.0, background=True)
        )
    if parity:
        if (
            config.organization is Organization.RAID4
            and config.parity_caching
        ):
            # Parity caching: updates are spooled to the dedicated disk
            # in cylinder order once per cycle (plain sequential writes).
            spooled = stats.spooled_parity_blocks / narrays
            if spooled > 0:
                rates = np.zeros(load.ndisks)
                rates[config.n] = spooled / duration
                load.classes.append(
                    DiskClass("write", rates, 1.0, 1.0, background=True)
                )
        else:
            load.classes.append(
                DiskClass("rmw", w_parity * rate, 1.0, 1.0, background=True)
            )
