"""Analytic fast-solve backend (M/G/1 + fork-join, no events).

Select it with ``run_trace(..., backend="analytic")`` or
``python -m repro.experiments <id> --backend analytic``; answers arrive
in milliseconds instead of the DES's seconds-to-minutes, with accuracy
bounded by the cross-validation tolerance bands in
:mod:`repro.analytic.validation`.
"""

from repro.analytic.decompose import ArrayLoad, Branch, DiskClass, RequestClass, decompose
from repro.analytic.service import DiskServiceModel, Moments
from repro.analytic.solver import (
    AnalyticSaturationError,
    AnalyticTally,
    AnalyticUnsupportedError,
    solve_trace,
)
from repro.analytic.validation import (
    CAMPAIGN_TOLERANCE,
    HDA_P95_TOLERANCE,
    TOLERANCE_BANDS,
    hda_tolerance,
    tolerance_for,
)

__all__ = [
    "AnalyticSaturationError",
    "AnalyticTally",
    "AnalyticUnsupportedError",
    "ArrayLoad",
    "Branch",
    "CAMPAIGN_TOLERANCE",
    "DiskClass",
    "DiskServiceModel",
    "HDA_P95_TOLERANCE",
    "Moments",
    "RequestClass",
    "TOLERANCE_BANDS",
    "decompose",
    "hda_tolerance",
    "solve_trace",
    "tolerance_for",
]
