"""Disk service-time moments for the analytic backend.

The DES computes each access as seek + rotational latency + transfer
(plus one extra revolution for a read-modify-write).  Under the random
request placement the traces produce, those components are independent,
so the analytic backend needs only their first two moments:

* **seek** — the arm and the target are both (approximately) uniform
  over the cylinders the workload actually spans, giving the triangular
  distance pmf ``P(0) = 1/C``, ``P(d) = 2(C-d)/C²``; times come from the
  same :class:`~repro.disk.seek.SeekModel` curve the DES uses.  Small
  logical disks (test workloads) span a handful of cylinders, so the
  span is derived from ``blocks_per_disk``, not the raw geometry.
* **rotational latency** — uniform on ``[0, revolution)`` (no spindle
  sync): mean ``rev/2``, second moment ``rev²/3``.
* **transfer** — deterministic per block; request-size variability
  enters through the block-count moments of each workload class.
* **RMW** — one extra full revolution between the old-data read and the
  new-data write (deterministic).

Mirrored reads go to the nearer of the two arms; with both arms
independently uniform the seek distance is the minimum of two draws
from the triangular pmf, computed exactly here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.disk.geometry import DiskGeometry
from repro.disk.seek import SeekModel

__all__ = ["Moments", "DiskServiceModel"]


@dataclass(frozen=True)
class Moments:
    """First two moments of a non-negative random variable."""

    mean: float
    second: float

    def __post_init__(self) -> None:
        if self.second < self.mean**2 - 1e-12:
            raise ValueError(
                f"second moment {self.second} below mean² {self.mean**2}"
            )

    @property
    def variance(self) -> float:
        return max(self.second - self.mean**2, 0.0)

    @classmethod
    def constant(cls, value: float) -> "Moments":
        return cls(value, value * value)

    @classmethod
    def from_mean_var(cls, mean: float, variance: float) -> "Moments":
        return cls(mean, mean * mean + variance)

    def plus(self, other: "Moments") -> "Moments":
        """Moments of the sum of two independent variables."""
        return Moments.from_mean_var(
            self.mean + other.mean, self.variance + other.variance
        )

    def scaled(self, factor: float) -> "Moments":
        return Moments(self.mean * factor, self.second * factor * factor)


def _seek_pmf(span: int) -> np.ndarray:
    """Triangular seek-distance pmf over *span* cylinders.

    Both the arm and the target are uniform: ``P(0) = 1/C`` and
    ``P(d) = 2(C-d)/C²`` for ``d >= 1``.
    """
    d = np.arange(span, dtype=np.float64)
    pmf = 2.0 * (span - d) / (span * span)
    pmf[0] = 1.0 / span
    return pmf


def _min2_pmf(pmf: np.ndarray) -> np.ndarray:
    """Pmf of the minimum of two independent draws from *pmf*."""
    # P(min = d) = S(d)^2 - S(d+1)^2 with S the survival function.
    survival = np.concatenate([np.cumsum(pmf[::-1])[::-1], [0.0]])
    return survival[:-1] ** 2 - survival[1:] ** 2


class DiskServiceModel:
    """Per-access service moments for one disk under a given workload span."""

    def __init__(
        self,
        geometry: DiskGeometry,
        seek_model: SeekModel,
        blocks_per_disk: int,
    ) -> None:
        if blocks_per_disk < 1:
            raise ValueError("blocks_per_disk must be positive")
        self.geometry = geometry
        self.seek_model = seek_model
        #: Cylinders the workload actually addresses; random arm
        #: positions never leave this band, so seeding the pmf with the
        #: full-platter cylinder count would wildly overestimate seeks
        #: for small (test) logical disks.
        self.span = min(
            geometry.cylinders,
            max(1, math.ceil(blocks_per_disk / geometry.blocks_per_cylinder)),
        )
        pmf = _seek_pmf(self.span)
        times = seek_model.seek_times(np.arange(self.span, dtype=np.float64))
        self.seek = Moments(
            float(np.dot(pmf, times)), float(np.dot(pmf, times * times))
        )
        pmf2 = _min2_pmf(pmf)
        self.seek_nearest_of_two = Moments(
            float(np.dot(pmf2, times)), float(np.dot(pmf2, times * times))
        )
        rev = geometry.revolution_time
        self.latency = Moments(rev / 2.0, rev * rev / 3.0)
        self.revolution = rev

    @lru_cache(maxsize=256)
    def access(
        self,
        kind: str,
        nblocks_mean: float,
        nblocks_second: float | None = None,
        nearest_of_two: bool = False,
    ) -> Moments:
        """Service moments of one disk access.

        ``kind`` is ``"read"``, ``"write"`` (identical timing) or
        ``"rmw"`` (one extra revolution between the old read and the new
        write).  ``nblocks_*`` are the moments of the per-access block
        count; transfer is deterministic per block.
        """
        if kind not in ("read", "write", "rmw"):
            raise ValueError(f"unknown access kind {kind!r}")
        if nblocks_second is None:
            nblocks_second = nblocks_mean * nblocks_mean
        bt = self.geometry.block_transfer_time
        transfer = Moments(nblocks_mean * bt, nblocks_second * bt * bt)
        seek = self.seek_nearest_of_two if nearest_of_two else self.seek
        total = seek.plus(self.latency).plus(transfer)
        if kind == "rmw":
            total = total.plus(Moments.constant(self.revolution))
        return total
