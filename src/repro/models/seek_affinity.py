"""Seek-affinity analysis.

"Seek affinity is a measure of the spatial locality that may exist
among disk accesses.  The higher the seek affinity, the smaller the
disk arm movements.  Data striping decreases seek affinity" (§4.2).

:func:`empirical_seek_profile` replays a trace's accesses through a
layout and measures the arm travel each disk would see if it serviced
its accesses in arrival order — a timing-free way to quantify how much
affinity each organization preserves (used by the ablation benchmarks
and to explain Figs. 5, 8 and 9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.disk.geometry import DiskGeometry
from repro.layout.common import Layout
from repro.trace.record import Trace

__all__ = ["SeekProfile", "empirical_seek_profile"]


@dataclass(frozen=True)
class SeekProfile:
    """Arm-travel statistics of one (trace, layout) pairing."""

    mean_seek_distance: float
    median_seek_distance: float
    zero_seek_fraction: float  # consecutive accesses on the same cylinder
    per_disk_accesses: np.ndarray


def empirical_seek_profile(
    trace: Trace,
    layout: Layout,
    geometry: DiskGeometry | None = None,
) -> SeekProfile:
    """Measure in-order arm travel per disk for *trace* under *layout*.

    Only each request's first block is considered (requests are mostly
    single-block); multi-array traces are folded onto one array — the
    profile is a per-disk property and arrays are statistically alike.
    """
    geometry = geometry or DiskGeometry()
    per_array = layout.logical_blocks
    lblocks = trace.lblocks % per_array
    disks, pblocks = layout.map_blocks(lblocks)
    # Physical block -> cylinder through the real geometry.
    cylinders = pblocks // geometry.blocks_per_cylinder

    ndisks = layout.ndisks
    distances: list[np.ndarray] = []
    counts = np.zeros(ndisks, dtype=np.int64)
    for d in range(ndisks):
        mine = cylinders[disks == d]
        counts[d] = mine.size
        if mine.size > 1:
            distances.append(np.abs(np.diff(mine)))
    if distances:
        all_d = np.concatenate(distances)
    else:
        all_d = np.zeros(1, dtype=np.int64)
    return SeekProfile(
        mean_seek_distance=float(all_d.mean()),
        median_seek_distance=float(np.median(all_d)),
        zero_seek_fraction=float(np.mean(all_d == 0)),
        per_disk_accesses=counts,
    )
