"""M/G/1 queueing building blocks for the analytic backend.

A single disk under Poisson arrivals is well approximated by an M/G/1
queue; the Pollaczek–Khinchine formula gives the mean waiting time from
the first two moments of the service time.  On top of that this module
provides the standard extensions the analytic solver composes
(Thomasian's RAID tutorial, arXiv:2306.08763, surveys all of them):

* **fork-join approximations** for requests that fan out over several
  disks and complete when the slowest sub-request does (mirrored writes,
  RAID small-write data+parity updates, striped multi-block reads);
* **non-preemptive (HOL) priority** waiting times for the cached
  organizations, where foreground read misses overtake background
  destage writes in the disk queues;
* **multiple/server vacations** for queues whose server periodically
  leaves to do background work (e.g. a parity disk draining spooled
  parity between foreground bursts).
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Sequence, Tuple

__all__ = [
    "mg1_waiting_time",
    "mg1_response_time",
    "mm1_response_time",
    "mg1_priority_waiting_times",
    "mg1_vacation_waiting_time",
    "fork_join_max_exponential",
    "fork_join_response",
]


def mg1_waiting_time(arrival_rate: float, service_mean: float, service_second_moment: float) -> float:
    """Mean M/G/1 waiting time (Pollaczek–Khinchine).

    Parameters are in consistent units (e.g. 1/ms and ms).  Zero load
    (``arrival_rate == 0``) waits exactly 0; raises if the queue is
    unstable (utilization ≥ 1).
    """
    if arrival_rate < 0 or service_mean <= 0:
        raise ValueError("rates and means must be positive")
    # Compare against mean*mean, not mean**2: libm pow can land 1 ulp
    # above the product callers compute as `mean * mean * (1 + scv)`,
    # making a perfectly deterministic moment look "impossible".
    if service_second_moment < service_mean * service_mean:
        raise ValueError("second moment below mean² is impossible")
    if arrival_rate == 0.0:
        # An empty arrival stream never queues; the second-moment term
        # must not leak through as a 0 * inf or spurious epsilon.
        return 0.0
    rho = arrival_rate * service_mean
    if rho >= 1.0:
        raise ValueError(f"unstable queue: utilization {rho:.3f} >= 1")
    return arrival_rate * service_second_moment / (2.0 * (1.0 - rho))


def mg1_response_time(arrival_rate: float, service_mean: float, service_second_moment: float) -> float:
    """Mean M/G/1 response (waiting + service)."""
    return service_mean + mg1_waiting_time(arrival_rate, service_mean, service_second_moment)


def mm1_response_time(arrival_rate: float, service_mean: float) -> float:
    """Mean M/M/1 response time (exponential service)."""
    rho = arrival_rate * service_mean
    if rho >= 1.0:
        raise ValueError(f"unstable queue: utilization {rho:.3f} >= 1")
    if math.isclose(rho, 0.0):
        return service_mean
    return service_mean / (1.0 - rho)


def mg1_priority_waiting_times(
    classes: Sequence[Tuple[float, float, float]],
) -> list[float]:
    """Mean waiting time per class under non-preemptive (HOL) priority.

    ``classes`` is a sequence of ``(arrival_rate, service_mean,
    service_second_moment)`` tuples ordered from *highest* to *lowest*
    priority.  The classic Cobham formula:

    .. math::
        W_k = \\frac{W_0}{(1 - \\sigma_{k-1})(1 - \\sigma_k)},
        \\qquad
        W_0 = \\sum_i \\lambda_i E[S_i^2] / 2,
        \\quad \\sigma_k = \\sum_{i \\le k} \\rho_i .

    An access in service is never preempted, so the residual term
    ``W_0`` sums over *all* classes; raises when the total utilization
    reaches 1.
    """
    if not classes:
        raise ValueError("at least one class is required")
    w0 = 0.0
    rhos = []
    for lam, mean, second in classes:
        if lam < 0 or mean <= 0:
            raise ValueError("rates and means must be positive")
        if second < mean * mean:
            raise ValueError("second moment below mean² is impossible")
        w0 += lam * second / 2.0
        rhos.append(lam * mean)
    if sum(rhos) >= 1.0:
        raise ValueError(f"unstable queue: utilization {sum(rhos):.3f} >= 1")
    waits = []
    sigma_prev = 0.0
    for rho in rhos:
        sigma = sigma_prev + rho
        waits.append(w0 / ((1.0 - sigma_prev) * (1.0 - sigma)) if w0 else 0.0)
        sigma_prev = sigma
    return waits


def mg1_vacation_waiting_time(
    arrival_rate: float,
    service_mean: float,
    service_second_moment: float,
    vacation_mean: float,
    vacation_second_moment: float,
) -> float:
    """M/G/1 with multiple server vacations (decomposition result).

    Whenever the queue empties the server takes i.i.d. vacations until
    work is present again; the mean wait is the P–K wait plus the mean
    residual vacation ``E[V²] / 2E[V]``.
    """
    if vacation_mean <= 0:
        raise ValueError("vacation mean must be positive")
    if vacation_second_moment < vacation_mean * vacation_mean:
        raise ValueError("second moment below mean² is impossible")
    base = mg1_waiting_time(arrival_rate, service_mean, service_second_moment)
    return base + vacation_second_moment / (2.0 * vacation_mean)


#: Branch count above which inclusion–exclusion (2^m terms) is replaced
#: by numerical integration of the survival function.
_EXACT_MAX_BRANCHES = 12


def fork_join_max_exponential(means: Sequence[float]) -> float:
    """``E[max]`` of independent exponentials with the given means.

    For up to :data:`_EXACT_MAX_BRANCHES` branches, inclusion–exclusion
    over the branch subsets: ``E[max] = Σ_S (−1)^{|S|+1} / Σ_{i∈S}
    1/m_i`` — exact for independent exponential branches.  Wider
    fan-outs (a RAID5 request spanning 20+ disks would need 2^21 subset
    terms) integrate ``E[max] = ∫₀^∞ (1 − Π_i F_i(t)) dt`` on a
    composite-Simpson grid instead; the exponential tail is truncated at
    40 times the slowest branch mean, far below the quadrature error.
    """
    if not means:
        raise ValueError("at least one branch is required")
    if any(m <= 0 for m in means):
        raise ValueError("branch means must be positive")
    if len(means) > _EXACT_MAX_BRANCHES:
        return _max_exponential_quadrature(means)
    rates = [1.0 / m for m in means]
    total = 0.0
    for size in range(1, len(rates) + 1):
        sign = 1.0 if size % 2 else -1.0
        for subset in combinations(rates, size):
            total += sign / sum(subset)
    return total


def _max_exponential_quadrature(means: Sequence[float]) -> float:
    """``E[max]`` of independent exponentials by Simpson integration."""
    import numpy as np

    rates = 1.0 / np.asarray(means, dtype=float)
    upper = 40.0 * float(max(means))
    n = 4096  # even panel count; error ~ (upper/n)^4 * f'''' — negligible
    t = np.linspace(0.0, upper, n + 1)
    survival = 1.0 - np.prod(-np.expm1(-np.outer(rates, t)), axis=0)
    weights = np.ones(n + 1)
    weights[1:-1:2] = 4.0
    weights[2:-1:2] = 2.0
    return float((upper / n) / 3.0 * np.dot(weights, survival))


def fork_join_response(branch_means: Sequence[float], utilization: float = 0.0) -> float:
    """Approximate fork-join response over branches with the given mean
    response times.

    Each branch is treated as an independent exponential whose ``E[max]``
    is computed exactly (:func:`fork_join_max_exponential`), then scaled
    by the Nelson–Tantawi synchronization factor ``(12 − ρ)/12`` — for
    two homogeneous M/M/1 branches this reproduces their classic
    ``R₂ = (12 − ρ)/8 · R`` result (simultaneous arrivals at both queues
    correlate the branch responses, pulling ``E[max]`` below
    independence).  The result is floored at the slowest branch mean,
    which also makes the single-branch case exact.
    """
    if not 0.0 <= utilization <= 1.0:
        raise ValueError("utilization must be in [0, 1]")
    if len(branch_means) == 1:
        return branch_means[0]
    independent = fork_join_max_exponential(branch_means)
    return max(max(branch_means), independent * (12.0 - utilization) / 12.0)
