"""M/G/1 queueing approximations (Chen & Towsley-style cross-checks).

A single disk under Poisson arrivals is well approximated by an M/G/1
queue; the Pollaczek–Khinchine formula gives the mean waiting time from
the first two moments of the service time.  The tests use this to sanity
check the simulator's Base organization under a synthetic Poisson load.
"""

from __future__ import annotations

import math

__all__ = ["mg1_waiting_time", "mg1_response_time", "mm1_response_time"]


def mg1_waiting_time(arrival_rate: float, service_mean: float, service_second_moment: float) -> float:
    """Mean M/G/1 waiting time (Pollaczek–Khinchine).

    Parameters are in consistent units (e.g. 1/ms and ms).  Raises if
    the queue is unstable (utilization ≥ 1).
    """
    if arrival_rate < 0 or service_mean <= 0:
        raise ValueError("rates and means must be positive")
    if service_second_moment < service_mean**2:
        raise ValueError("second moment below mean² is impossible")
    rho = arrival_rate * service_mean
    if rho >= 1.0:
        raise ValueError(f"unstable queue: utilization {rho:.3f} >= 1")
    return arrival_rate * service_second_moment / (2.0 * (1.0 - rho))


def mg1_response_time(arrival_rate: float, service_mean: float, service_second_moment: float) -> float:
    """Mean M/G/1 response (waiting + service)."""
    return service_mean + mg1_waiting_time(arrival_rate, service_mean, service_second_moment)


def mm1_response_time(arrival_rate: float, service_mean: float) -> float:
    """Mean M/M/1 response time (exponential service)."""
    rho = arrival_rate * service_mean
    if rho >= 1.0:
        raise ValueError(f"unstable queue: utilization {rho:.3f} >= 1")
    if math.isclose(rho, 0.0):
        return service_mean
    return service_mean / (1.0 - rho)
