"""Reliability arithmetic from the paper's introduction.

"For large systems, e.g., with over 150 disks, the mean time to failure
(MTTF) of the permanent storage subsystem can be less than 28 days"
(assuming 100,000-hour disk MTTF).  This module reproduces that figure
and the standard redundancy-group MTTDL formulas used to justify the
array organizations:

* Base (no redundancy): any disk failure loses data —
  ``MTTDL = MTTF_disk / D``.
* Mirrored pair: data is lost when the partner fails during the repair
  window — ``MTTDL_pair ≈ MTTF² / (2 · MTTR)``.
* Parity group of G disks (RAID5/RAID4/Parity Striping with
  G = N + 1): loss requires a second failure in the group during
  repair — ``MTTDL_group ≈ MTTF² / (G · (G − 1) · MTTR)``.

A system of k independent groups has ``MTTDL_system = MTTDL_group / k``.
All formulas are the classic exponential-failure approximations (valid
for MTTR ≪ MTTF).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ReliabilityModel", "storage_overhead"]

HOURS_PER_DAY = 24.0


@dataclass(frozen=True)
class ReliabilityModel:
    """MTTDL calculator for the paper's organizations.

    Parameters
    ----------
    disk_mttf_hours:
        Per-disk mean time to failure (paper: 100,000 hours).
    mttr_hours:
        Mean time to repair/replace a failed disk (rebuild window).
    """

    disk_mttf_hours: float = 100_000.0
    mttr_hours: float = 24.0

    def __post_init__(self) -> None:
        if self.disk_mttf_hours <= 0 or self.mttr_hours <= 0:
            raise ValueError("MTTF and MTTR must be positive")
        if self.mttr_hours >= self.disk_mttf_hours:
            raise ValueError("the approximations require MTTR << MTTF")

    # -- building blocks ----------------------------------------------------
    def any_disk_failure_mttf(self, ndisks: int) -> float:
        """MTTF of the first failure among *ndisks* disks (hours)."""
        if ndisks < 1:
            raise ValueError("ndisks must be >= 1")
        return self.disk_mttf_hours / ndisks

    def mirrored_pair_mttdl(self) -> float:
        """Mean time to data loss of one mirrored pair (hours)."""
        return self.disk_mttf_hours**2 / (2.0 * self.mttr_hours)

    def parity_group_mttdl(self, group_disks: int) -> float:
        """Mean time to data loss of one parity group (hours)."""
        if group_disks < 2:
            raise ValueError("a parity group needs at least 2 disks")
        return self.disk_mttf_hours**2 / (
            group_disks * (group_disks - 1) * self.mttr_hours
        )

    # -- organizations -------------------------------------------------------
    def system_mttdl(self, organization: str, data_disks: int, n: int) -> float:
        """Mean time to data loss for a whole system (hours).

        Parameters
        ----------
        organization:
            base / mirror / raid5 / raid4 / parity_striping.
        data_disks:
            Logical database size in data disks.
        n:
            Array size (data-disk equivalents per array).
        """
        if data_disks < 1 or data_disks % n:
            raise ValueError("data_disks must be a positive multiple of n")
        arrays = data_disks // n
        org = organization.lower()
        if org == "base":
            return self.any_disk_failure_mttf(data_disks)
        if org == "mirror":
            return self.mirrored_pair_mttdl() / data_disks
        if org in ("raid5", "raid4", "parity_striping"):
            return self.parity_group_mttdl(n + 1) / arrays
        raise ValueError(f"unknown organization {organization!r}")

    def paper_intro_check(self, ndisks: int = 150) -> float:
        """The intro's figure: days to first failure for *ndisks* disks."""
        return self.any_disk_failure_mttf(ndisks) / HOURS_PER_DAY


def storage_overhead(organization: str, n: int) -> float:
    """Extra physical storage per unit of data (§3.2's cost side).

    Mirror: 100%; parity organizations: 1/N; Base: none.
    """
    org = organization.lower()
    if n < 1:
        raise ValueError("n must be >= 1")
    if org == "base":
        return 0.0
    if org == "mirror":
        return 1.0
    if org in ("raid5", "raid4", "parity_striping"):
        return 1.0 / n
    raise ValueError(f"unknown organization {organization!r}")
