"""The paper's parity-placement rule for Parity Striping (§4.2.3).

Assuming accesses uniform over disks and over the data areas within a
disk, of the total array access rate each of the ``N`` data areas on a
disk receives ``1/N²`` (reads and writes both touch the data area),
while the parity area receives the parity updates of its whole group:
``w/N`` of the total rate (``w`` = write fraction).

The parity area is therefore hotter than a data area iff ``w > 1/N`` —
put it on the middle cylinders in that case, at the end otherwise.
For Trace 1 (w = 0.1) the cutoff sits at N = 10, which Figure 9
confirms empirically.
"""

from __future__ import annotations

from repro.layout.paritystripe import ParityPlacement

__all__ = ["data_area_access_rate", "parity_area_access_rate", "preferred_placement"]


def data_area_access_rate(n: int) -> float:
    """Fraction of the array's access rate hitting one data area."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return 1.0 / (n * n)


def parity_area_access_rate(n: int, write_fraction: float) -> float:
    """Fraction of the array's access rate hitting one parity area."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError("write_fraction must be in [0, 1]")
    return write_fraction / n


def preferred_placement(n: int, write_fraction: float) -> ParityPlacement:
    """MIDDLE iff the parity area is accessed more than a data area,
    i.e. iff ``w > 1/N``; END otherwise."""
    if parity_area_access_rate(n, write_fraction) > data_area_access_rate(n):
        return ParityPlacement.MIDDLE
    return ParityPlacement.END
