"""Analytical models from the paper and its related work.

The queueing toolbox powers the fast solver in :mod:`repro.analytic`;
the rest are independent cross-checks for the simulation (tests
compare zero-load simulated response times against
:mod:`repro.models.gray`) and the paper's back-of-envelope analyses
(the §4.2.3 parity-placement rule).
"""

from repro.models.parity_placement import (
    data_area_access_rate,
    parity_area_access_rate,
    preferred_placement,
)
from repro.models.gray import zero_load_response
from repro.models.queueing import (
    fork_join_response,
    mg1_priority_waiting_times,
    mg1_response_time,
    mg1_vacation_waiting_time,
    mg1_waiting_time,
    mm1_response_time,
)
from repro.models.seek_affinity import empirical_seek_profile
from repro.models.reliability import ReliabilityModel, storage_overhead

__all__ = [
    "ReliabilityModel",
    "data_area_access_rate",
    "empirical_seek_profile",
    "fork_join_response",
    "mg1_priority_waiting_times",
    "mg1_response_time",
    "mg1_vacation_waiting_time",
    "mg1_waiting_time",
    "mm1_response_time",
    "parity_area_access_rate",
    "preferred_placement",
    "storage_overhead",
    "zero_load_response",
]
