"""Zero-load (minimum) response-time model in the style of Gray et al.

Gray, Horst & Walker derived minimum response times for parity striping
vs RAID5 from first principles: at zero load a request costs its seek,
its rotational latency and its transfer, plus — for a parity update —
the extra revolution of the read-modify-write.  These closed forms give
the simulator an independent check: an idle simulated disk must match
them exactly in expectation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.disk.geometry import DiskGeometry
from repro.disk.seek import SeekModel

__all__ = ["ZeroLoadModel", "zero_load_response"]


@dataclass(frozen=True)
class ZeroLoadModel:
    """Expected zero-load response times (ms) for one disk model."""

    geometry: DiskGeometry
    seek: SeekModel

    @property
    def expected_seek(self) -> float:
        """Mean seek over random pairs (the Table 1 'average seek')."""
        return self.seek.average_seek_time()

    @property
    def expected_latency(self) -> float:
        """Half a revolution."""
        return self.geometry.revolution_time / 2.0

    def read(self, nblocks: int = 1) -> float:
        """Single-disk read: seek + latency + transfer."""
        return self.expected_seek + self.expected_latency + self.geometry.transfer_time(nblocks)

    def write(self, nblocks: int = 1) -> float:
        """Single-disk write: identical to a read at zero load."""
        return self.read(nblocks)

    def rmw_update(self, nblocks: int = 1) -> float:
        """Read-modify-write: seek + latency + full revolution + transfer.

        The old data is read (transfer), the platter completes the
        revolution back to the block, and the new data is written
        (transfer): the write ends exactly one revolution after the read
        ended, so the total is seek + latency + revolution + transfer.
        """
        return (
            self.expected_seek
            + self.expected_latency
            + self.geometry.revolution_time
            + self.geometry.transfer_time(nblocks)
        )

    def parity_update(self, nblocks: int = 1) -> float:
        """A small write in a parity organization at zero load.

        Data and parity disks each perform an RMW concurrently; with no
        queueing the parity disk starts at the same time, so the update
        completes in (approximately) one RMW time.
        """
        return self.rmw_update(nblocks)

    def mirrored_write(self, nblocks: int = 1) -> float:
        """Both arms must finish: expectation of the max of two
        independent (seek + latency) terms plus the transfer.

        With X, Y i.i.d., E[max] = E[X] + E[|X−Y|]/2; we approximate the
        mean absolute difference by the sum of the components' mean
        absolute differences (seek and latency treated separately).
        """
        lat_mad = self.geometry.revolution_time / 3.0  # E|U1-U2| of U(0,T)
        seek_mad = self._seek_mad()
        emax = (self.expected_seek + self.expected_latency) + 0.5 * (lat_mad + seek_mad)
        return emax + self.geometry.transfer_time(nblocks)

    def _seek_mad(self) -> float:
        """Mean absolute difference of two independent random seeks."""
        import numpy as np

        d = np.arange(1, self.seek.cylinders, dtype=np.float64)
        w = 2.0 * (self.seek.cylinders - d)
        w /= w.sum()
        t = self.seek.seek_times(d)
        mean = float(np.sum(w * t))
        # E|X-Y| for i.i.d. X, Y with the sampled distribution.
        order = np.argsort(t)
        ts, ws = t[order], w[order]
        cdf = np.cumsum(ws)
        # E|X-Y| = 2 * sum_i w_i * (t_i * (F(t_i) - w_i/2) - E[X 1{X<t_i}])
        ex_below = np.cumsum(ts * ws)
        e_abs = 2.0 * float(np.sum(ws * (ts * (cdf - ws / 2.0) - (ex_below - ts * ws / 2.0))))
        del mean
        return e_abs


def zero_load_response(
    organization: str,
    is_write: bool,
    nblocks: int = 1,
    geometry: DiskGeometry | None = None,
    seek: SeekModel | None = None,
) -> float:
    """Convenience wrapper: zero-load response for one organization."""
    geometry = geometry or DiskGeometry()
    seek = seek or SeekModel.fit()
    model = ZeroLoadModel(geometry, seek)
    org = organization.lower()
    if not is_write:
        return model.read(nblocks)
    if org in ("base",):
        return model.write(nblocks)
    if org in ("mirror",):
        return model.mirrored_write(nblocks)
    if org in ("raid5", "raid4", "parity_striping"):
        return model.parity_update(nblocks)
    raise ValueError(f"unknown organization {organization!r}")
