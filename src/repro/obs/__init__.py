"""Opt-in observability: request tracing, metrics, and analysis.

Three layers, all off by default (the unobserved hot path pays one
``probe is not None`` check per tap):

* **tracing** (:mod:`repro.obs.tracer`, :mod:`repro.obs.span`) — a
  :class:`Tracer` rides the simulator's probe seams and records a tree
  of timed spans per logical request: disk accesses with their seek /
  rotation / transfer / parity-sync phases, channel waits and wire
  time, queue time, mirror routing and destage marks.  Exports to JSONL
  (round-trippable) and Chrome trace-event JSON (Perfetto).
* **metrics** (:mod:`repro.obs.metrics`, :mod:`repro.obs.collect`) — a
  registry of named counters, gauges, mergeable log-spaced latency
  histograms and sampled time series (per-disk utilization and queue
  depth), exportable as CSV and Prometheus text.
* **analysis** (:mod:`repro.obs.analyze`, ``python -m repro.obs``) —
  per-phase response-time breakdowns whose columns sum to the measured
  response, percentile tables, and A/B comparisons between runs.

Entry point::

    result = run_trace(config, workload, trace=True, metrics=True)
    result.trace.to_jsonl("run.jsonl")
    result.metrics.to_csv("run.csv")
    print(repro.obs.analyze.render_phases(result.trace))
"""

from repro.obs.analyze import (
    PHASE_ORDER,
    decompose,
    decompose_request,
    phase_table,
    render_compare,
    render_phases,
    render_summary,
)
from repro.obs.collect import MetricsCollector
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
    parse_prometheus,
    registry_from_csv,
)
from repro.obs.span import SPAN_KINDS, Span, TraceData, well_formedness_problems
from repro.obs.tracer import ProbeFanout, Tracer

__all__ = [
    "Span",
    "TraceData",
    "SPAN_KINDS",
    "well_formedness_problems",
    "Tracer",
    "ProbeFanout",
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "MetricsRegistry",
    "MetricsCollector",
    "registry_from_csv",
    "parse_prometheus",
    "PHASE_ORDER",
    "decompose",
    "decompose_request",
    "phase_table",
    "render_summary",
    "render_phases",
    "render_compare",
]
