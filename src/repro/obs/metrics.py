"""Metrics registry: counters, gauges, log-bucket histograms, series.

Everything here is designed for *mergeability* and cheap export:

* :class:`Histogram` uses fixed log-spaced bucket edges, so two
  histograms with the same parameters merge by adding bucket counts —
  an associative, commutative operation (bucket counts merge exactly;
  the floating-point ``total`` is subject to addition rounding), which
  is what lets per-array or per-shard metrics roll up later.
* :class:`TimeSeries` holds sampled ``(time, value)`` points — the
  utilization and queue-depth timelines the paper's aggregate curves
  hide.
* :class:`MetricsRegistry` names metrics (with optional labels) and
  exports the lot as CSV or Prometheus text; both formats parse back
  (:func:`registry_from_csv`, :func:`parse_prometheus`) so round-trip
  tests can pin the encoding.
"""

from __future__ import annotations

import csv
import io
import math
from typing import Iterator, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "MetricsRegistry",
    "registry_from_csv",
    "parse_prometheus",
]

Labels = tuple[tuple[str, str], ...]


def _labels_key(labels: dict) -> Labels:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _labels_str(labels: Labels) -> str:
    return ";".join(f"{k}={v}" for k, v in labels)


def _labels_prom(labels: Labels, extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down; exports its last setting."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = math.nan

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed log-spaced latency histogram.

    Buckets cover ``[lo, hi)`` with ``buckets_per_decade`` bins per
    factor of ten, plus an underflow bin (everything below ``lo``,
    including zero) and an overflow bin (everything at or above ``hi``).
    Two histograms with identical parameters merge exactly (bucket
    counts and observation count are integers).

    Percentiles are approximate: linear interpolation inside the
    containing bucket, clamped to the observed min/max.
    """

    kind = "histogram"

    def __init__(
        self, lo: float = 0.01, hi: float = 1e5, buckets_per_decade: int = 8
    ) -> None:
        if not (0 < lo < hi):
            raise ValueError("need 0 < lo < hi")
        if buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be >= 1")
        self.lo = float(lo)
        self.hi = float(hi)
        self.buckets_per_decade = int(buckets_per_decade)
        self._log_lo = math.log10(self.lo)
        ndecades = math.log10(self.hi) - self._log_lo
        self._nbins = max(1, math.ceil(ndecades * self.buckets_per_decade - 1e-9))
        # counts[0] = underflow, counts[1:-1] = log bins, counts[-1] = overflow
        self.counts = [0] * (self._nbins + 2)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    # -- recording ----------------------------------------------------------
    def _index(self, value: float) -> int:
        if value < self.lo:
            return 0
        if value >= self.hi:
            return self._nbins + 1
        k = int((math.log10(value) - self._log_lo) * self.buckets_per_decade)
        return min(max(k, 0), self._nbins - 1) + 1

    def upper_edge(self, index: int) -> float:
        """Upper bound of bucket *index* (``inf`` for the overflow bin)."""
        if index <= 0:
            return self.lo
        if index >= self._nbins + 1:
            return math.inf
        if index == self._nbins:
            return self.hi
        return 10.0 ** (self._log_lo + index / self.buckets_per_decade)

    def lower_edge(self, index: int) -> float:
        if index <= 0:
            return 0.0
        return 10.0 ** (self._log_lo + (index - 1) / self.buckets_per_decade)

    def observe(self, value: float) -> None:
        self.counts[self._index(value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    # -- statistics -----------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def percentile(self, q: float) -> float:
        """Approximate percentile ``q`` in [0, 100]."""
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        if self.count == 0:
            return math.nan
        target = q / 100.0 * self.count
        cum = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if cum + c >= target:
                frac = (target - cum) / c
                louter = max(self.lower_edge(i), 0.0)
                upper = self.upper_edge(i)
                if not math.isfinite(upper):
                    upper = self.max
                est = louter + frac * (upper - louter)
                return min(max(est, self.min), self.max)
            cum += c
        return self.max

    # -- merging ----------------------------------------------------------------
    def compatible(self, other: "Histogram") -> bool:
        return (
            self.lo == other.lo
            and self.hi == other.hi
            and self.buckets_per_decade == other.buckets_per_decade
        )

    def merge(self, other: "Histogram") -> "Histogram":
        """A new histogram holding both operands' observations."""
        if not self.compatible(other):
            raise ValueError("histograms have different bucket layouts")
        out = Histogram(self.lo, self.hi, self.buckets_per_decade)
        out.counts = [a + b for a, b in zip(self.counts, other.counts)]
        out.count = self.count + other.count
        out.total = self.total + other.total
        out.min = min(self.min, other.min)
        out.max = max(self.max, other.max)
        return out


class TimeSeries:
    """Sampled ``(time_ms, value)`` points of one signal."""

    __slots__ = ("times", "values")
    kind = "series"

    def __init__(self) -> None:
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, time_ms: float, value: float) -> None:
        self.times.append(float(time_ms))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    @property
    def last(self) -> float:
        return self.values[-1] if self.values else math.nan


class MetricsRegistry:
    """Named metrics with optional labels.

    ``registry.counter("disk_completed", disk="a0.d1").inc()`` — the
    getter creates on first use and returns the same object afterwards.
    Iteration order (and therefore export order) is sorted by name and
    labels, so exports are deterministic.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, Labels], object] = {}

    # -- getters ------------------------------------------------------------
    def _get(self, cls, name: str, labels: dict, **kw):
        key = (name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(**kw)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        lo: float = 0.01,
        hi: float = 1e5,
        buckets_per_decade: int = 8,
        **labels,
    ) -> Histogram:
        return self._get(
            Histogram, name, labels, lo=lo, hi=hi, buckets_per_decade=buckets_per_decade
        )

    def series(self, name: str, **labels) -> TimeSeries:
        return self._get(TimeSeries, name, labels)

    def get(self, name: str, **labels):
        """The metric registered under *name*/*labels*, or ``None``."""
        return self._metrics.get((name, _labels_key(labels)))

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[tuple[str, Labels, object]]:
        for (name, labels) in sorted(self._metrics):
            yield name, labels, self._metrics[(name, labels)]

    # -- CSV export -----------------------------------------------------------
    def to_csv(self) -> str:
        """``kind,name,labels,field,value`` rows; parse back with
        :func:`registry_from_csv`."""
        buf = io.StringIO()
        w = csv.writer(buf, lineterminator="\n")
        w.writerow(["kind", "name", "labels", "field", "value"])
        for name, labels, metric in self:
            ls = _labels_str(labels)
            if isinstance(metric, (Counter, Gauge)):
                w.writerow([metric.kind, name, ls, "value", repr(metric.value)])
            elif isinstance(metric, Histogram):
                for f in ("lo", "hi", "buckets_per_decade", "count", "total"):
                    w.writerow(["histogram", name, ls, f, repr(getattr(metric, f))])
                if metric.count:
                    w.writerow(["histogram", name, ls, "min", repr(metric.min)])
                    w.writerow(["histogram", name, ls, "max", repr(metric.max)])
                for i, c in enumerate(metric.counts):
                    if c:
                        w.writerow(["histogram", name, ls, f"bucket_{i}", str(c)])
            elif isinstance(metric, TimeSeries):
                for t, v in zip(metric.times, metric.values):
                    w.writerow(["series", name, ls, repr(t), repr(v)])
        return buf.getvalue()

    # -- Prometheus text export --------------------------------------------------
    def to_prometheus(self, prefix: str = "repro_") -> str:
        """Prometheus text exposition (series export their last sample)."""
        lines: list[str] = []
        seen_types: set[str] = set()

        def type_line(name: str, kind: str) -> None:
            if name not in seen_types:
                lines.append(f"# TYPE {name} {kind}")
                seen_types.add(name)

        for name, labels, metric in self:
            full = prefix + name
            if isinstance(metric, Counter):
                type_line(full, "counter")
                lines.append(f"{full}{_labels_prom(labels)} {_fmt(metric.value)}")
            elif isinstance(metric, (Gauge, TimeSeries)):
                type_line(full, "gauge")
                value = metric.value if isinstance(metric, Gauge) else metric.last
                lines.append(f"{full}{_labels_prom(labels)} {_fmt(value)}")
            elif isinstance(metric, Histogram):
                type_line(full, "histogram")
                cum = 0
                for i, c in enumerate(metric.counts):
                    cum += c
                    edge = metric.upper_edge(i)
                    le = "+Inf" if not math.isfinite(edge) else _fmt(edge)
                    le_label = _labels_prom(labels, 'le="%s"' % le)
                    lines.append(f"{full}_bucket{le_label} {cum}")
                lines.append(f"{full}_sum{_labels_prom(labels)} {_fmt(metric.total)}")
                lines.append(f"{full}_count{_labels_prom(labels)} {metric.count}")
        return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


# -- parsers (round-trip support) ------------------------------------------------


def registry_from_csv(text: str) -> MetricsRegistry:
    """Rebuild a registry from :meth:`MetricsRegistry.to_csv` output."""
    reg = MetricsRegistry()
    hist_rows: dict[tuple[str, Labels], dict[str, str]] = {}
    reader = csv.reader(io.StringIO(text))
    header = next(reader, None)
    if header != ["kind", "name", "labels", "field", "value"]:
        raise ValueError(f"unrecognised metrics CSV header: {header!r}")
    for kind, name, ls, f, v in reader:
        labels = dict(item.split("=", 1) for item in ls.split(";") if item)
        if kind == "counter":
            reg.counter(name, **labels).value = float(v)
        elif kind == "gauge":
            reg.gauge(name, **labels).set(float(v))
        elif kind == "series":
            reg.series(name, **labels).record(float(f), float(v))
        elif kind == "histogram":
            hist_rows.setdefault((name, _labels_key(labels)), {})[f] = v
        else:
            raise ValueError(f"unknown metric kind {kind!r}")
    for (name, labels), fields in hist_rows.items():
        h = reg.histogram(
            name,
            lo=float(fields["lo"]),
            hi=float(fields["hi"]),
            buckets_per_decade=int(fields["buckets_per_decade"]),
            **dict(labels),
        )
        h.count = int(fields["count"])
        h.total = float(fields["total"])
        if "min" in fields:
            h.min = float(fields["min"])
            h.max = float(fields["max"])
        for f, v in fields.items():
            if f.startswith("bucket_"):
                h.counts[int(f[len("bucket_"):])] = int(v)
    return reg


def parse_prometheus(text: str) -> dict[str, float]:
    """Samples from a Prometheus text exposition, keyed ``name{labels}``."""
    out: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        if value == "NaN":
            out[key] = math.nan
        elif value in ("+Inf", "-Inf"):
            out[key] = math.inf if value == "+Inf" else -math.inf
        else:
            out[key] = float(value)
    return out
