"""Cost of observability, measured and guarded.

Two promises back the "opt-in" claim:

* **non-perturbation** — tracing and metrics never change what the
  simulator computes.  Checked exactly: the
  :func:`~repro.validate.replay.result_fingerprint` of an instrumented
  run must equal the plain run's, bit for bit.
* **bounded slowdown** — the instrumented run's wall time stays within a
  small multiple of the plain run.  Wall time on shared CI machines is
  noisy, so the plain run is repeated and the *best* time of each mode
  is compared (best-of-k is the standard way to strip scheduler noise
  from a deterministic workload).

:func:`overhead_report` produces the measurements; :func:`check` turns
them into a pass/fail list for the CI guard
(``python -m repro.obs overhead --check``).
"""

from __future__ import annotations

import time
from typing import Optional

__all__ = ["overhead_report", "check", "reference_run_args"]

#: Default ceiling for instrumented/plain wall-time ratio.  Tracing a
#: request-heavy run roughly doubles Python-level work per event; 5x
#: leaves headroom for timer jitter on loaded CI hosts.
DEFAULT_MAX_RATIO = 5.0


def reference_run_args(n_requests: int = 2000):
    """A small, deterministic (config, workload) pair for benchmarking.

    RAID5 over 10 data disks on a Trace-2-flavoured mix (28% writes) —
    enough parity traffic to exercise every probe tap (RMW phases, sync
    waits, channel transfers) without taking more than ~a second per
    run.
    """
    from repro.sim import Organization, SystemConfig
    from repro.trace import generate_trace, trace2_config

    tcfg = trace2_config(scale=n_requests / 69_539)
    config = SystemConfig(
        organization=Organization.RAID5,
        n=10,
        blocks_per_disk=tcfg.blocks_per_disk,
    )
    return config, generate_trace(tcfg)


def overhead_report(
    n_requests: int = 2000,
    repeats: int = 3,
    config=None,
    workload=None,
) -> dict:
    """Time plain vs instrumented runs and compare result fingerprints."""
    from repro.sim.runner import run_trace
    from repro.validate.replay import result_fingerprint

    if config is None or workload is None:
        config, workload = reference_run_args(n_requests)

    def timed(**kwargs):
        t0 = time.perf_counter()
        result = run_trace(config, workload, **kwargs)
        return time.perf_counter() - t0, result

    plain_times = []
    plain_fp: Optional[str] = None
    for _ in range(max(repeats, 1)):
        dt, result = timed()
        plain_times.append(dt)
        fp = result_fingerprint(result)
        plain_fp = fp if plain_fp is None else plain_fp
        if fp != plain_fp:
            raise AssertionError("plain runs disagree with each other")

    traced_times = []
    traced_fp = None
    for _ in range(max(repeats, 1)):
        dt, result = timed(trace=True, metrics=True)
        traced_times.append(dt)
        traced_fp = result_fingerprint(result)

    best_plain = min(plain_times)
    best_traced = min(traced_times)
    return {
        "requests": len(workload),
        "repeats": max(repeats, 1),
        "plain_times_s": plain_times,
        "traced_times_s": traced_times,
        "best_plain_s": best_plain,
        "best_traced_s": best_traced,
        "ratio": best_traced / best_plain if best_plain > 0 else float("inf"),
        "plain_fingerprint": plain_fp,
        "traced_fingerprint": traced_fp,
        "fingerprints_equal": plain_fp == traced_fp,
    }


def check(report: dict, max_ratio: float = DEFAULT_MAX_RATIO) -> list[str]:
    """Problems with *report*; empty list means the guard passes."""
    problems = []
    if not report["fingerprints_equal"]:
        problems.append(
            "instrumented run perturbed the simulation: fingerprint "
            f"{report['traced_fingerprint']} != {report['plain_fingerprint']}"
        )
    if report["ratio"] > max_ratio:
        problems.append(
            f"instrumented/plain wall-time ratio {report['ratio']:.2f} "
            f"exceeds the {max_ratio:.1f}x budget "
            f"(best plain {report['best_plain_s']:.3f}s, "
            f"best traced {report['best_traced_s']:.3f}s)"
        )
    return problems


def render(report: dict) -> str:
    lines = [
        f"overhead: {report['requests']:,} requests, "
        f"best of {report['repeats']}",
        f"  plain   {report['best_plain_s'] * 1000.0:>9.1f} ms  "
        f"(all: {', '.join(f'{t * 1000.0:.1f}' for t in report['plain_times_s'])})",
        f"  traced  {report['best_traced_s'] * 1000.0:>9.1f} ms  "
        f"(all: {', '.join(f'{t * 1000.0:.1f}' for t in report['traced_times_s'])})",
        f"  ratio   {report['ratio']:>9.2f}x",
        f"  fingerprints equal: {report['fingerprints_equal']}",
    ]
    return "\n".join(lines)
