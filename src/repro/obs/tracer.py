"""Span tracing over the simulator's probe seams.

:class:`Tracer` is a probe (the same protocol
:class:`~repro.validate.monitor.ValidationMonitor` implements): it
installs itself on every controller, disk, channel and cache, and turns
the notifications into a per-request tree of timed spans.

Attribution works through the process tree.  Every
:class:`~repro.des.process.Process` records the process that spawned it
(``Process.parent``); the runner registers each request's root process
with the tracer, and any probe notification is attributed by walking
``env.active_process``'s parent chain up to a registered root.  Work
done by background processes (periodic destage, the RAID4 parity
spooler) resolves to no request and is recorded on a background track —
except when a request synchronously waits for it (e.g. a read miss
evicting a dirty block), in which case the wait happens *inside* the
request's process and is charged to the request, which is exactly where
the time went.

The tracer never schedules events and never mutates simulator state, so
a traced run is observationally identical to an untraced one (the
determinism tests pin this with result fingerprints).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.obs.span import Span, TraceData

__all__ = ["Tracer", "ProbeFanout"]

_MISSING = object()


class ProbeFanout:
    """Dispatches every probe notification to several probes in order.

    Used when tracing and validation are active at the same time: the
    instrumented objects hold a single ``probe`` attribute, so the
    tracer wraps the already-installed probe instead of displacing it.
    """

    __slots__ = ("probes",)

    def __init__(self, probes: Sequence[Any]) -> None:
        self.probes = tuple(probes)

    def on_disk_submit(self, disk, request) -> None:
        for p in self.probes:
            p.on_disk_submit(disk, request)

    def on_disk_complete(self, disk, request) -> None:
        for p in self.probes:
            p.on_disk_complete(disk, request)

    def on_disk_phase(self, disk, request, phase, t0, t1) -> None:
        for p in self.probes:
            p.on_disk_phase(disk, request, phase, t0, t1)

    def on_channel_request(self, channel, nbytes) -> None:
        for p in self.probes:
            p.on_channel_request(channel, nbytes)

    def on_channel_transfer(self, channel, nbytes, duration) -> None:
        for p in self.probes:
            p.on_channel_transfer(channel, nbytes, duration)

    def on_cache_op(self, cache, op, arg) -> None:
        for p in self.probes:
            p.on_cache_op(cache, op, arg)

    def on_handle(self, controller, lstart, nblocks, is_write) -> None:
        for p in self.probes:
            p.on_handle(controller, lstart, nblocks, is_write)

    def on_destage(self, controller, run) -> None:
        for p in self.probes:
            p.on_destage(controller, run)

    def on_write_group(self, controller, group) -> None:
        for p in self.probes:
            p.on_write_group(controller, group)

    def on_parity_update(self, controller, run, parity_runs) -> None:
        for p in self.probes:
            p.on_parity_update(controller, run, parity_runs)

    def on_degraded(self, controller, kind) -> None:
        for p in self.probes:
            p.on_degraded(controller, kind)

    def on_data_loss(self, controller, kind, disk, pblock) -> None:
        for p in self.probes:
            p.on_data_loss(controller, kind, disk, pblock)

    def on_latent_repair(self, controller, disk, pblock, how) -> None:
        for p in self.probes:
            p.on_latent_repair(controller, disk, pblock, how)

    def on_mirror_route(self, controller, run, chosen, alternate, seek_chosen, seek_alt) -> None:
        for p in self.probes:
            p.on_mirror_route(controller, run, chosen, alternate, seek_chosen, seek_alt)


class Tracer:
    """Records a span tree per logical request.

    Parameters
    ----------
    background:
        Record spans for work not attributable to any request (destage
        writes, parity spooling).  On by default; disable to shrink
        exports when only request anatomy matters.
    """

    def __init__(self, background: bool = True) -> None:
        self.background = background
        self.meta: dict = {}
        self.spans: list[Span] = []
        self.cache_ops: dict[str, int] = {}
        self.env = None
        self._proc_rid: dict[Any, Optional[int]] = {}
        self._roots: dict[int, Span] = {}
        self._open_disk: dict[int, Span] = {}
        self._open_chan: dict[Any, tuple[float, int, Optional[int]]] = {}
        self._ctrl_label: dict[int, str] = {}
        self._restore: list[tuple[Any, Any]] = []

    # -- lifecycle -----------------------------------------------------------
    def attach(self, env, controllers: Sequence) -> "Tracer":
        """Install the tracer as (or alongside) every probe tap."""
        if self.env is not None:
            raise RuntimeError("tracer is already attached")
        self.env = env
        for ai, ctrl in enumerate(controllers):
            self._ctrl_label[id(ctrl)] = f"a{ai}"
            self._instrument(ctrl)
            self._instrument(ctrl.channel)
            for disk in ctrl.disks:
                self._instrument(disk)
            cache = getattr(ctrl, "cache", None)
            if cache is not None:
                self._instrument(cache)
        return self

    def _instrument(self, obj) -> None:
        prev = obj.probe
        obj.probe = self if prev is None else ProbeFanout((prev, self))
        self._restore.append((obj, prev))

    def detach(self) -> None:
        """Restore the probes that were installed before :meth:`attach`."""
        for obj, prev in reversed(self._restore):
            obj.probe = prev
        self._restore.clear()
        self.env = None

    def finalize(self, meta: Optional[dict] = None) -> TraceData:
        """Close background leftovers, detach, and build the export."""
        now = self.env.now if self.env is not None else 0.0
        for span in self._open_disk.values():
            span.t1 = now
            span.attrs["truncated"] = True
        self._open_disk.clear()
        self._open_chan.clear()
        # RMW write phases are recorded with analytically-computed end
        # times; if the run ends while a background access is mid-service
        # those extend past the clock.  That work never simulated — clip
        # it (and drop phases that had not even started).
        if any(s.t1 is not None and s.t1 > now for s in self.spans):
            kept = []
            for span in self.spans:
                if span.t0 >= now and span.kind == "phase":
                    continue
                if span.t1 is not None and span.t1 > now:
                    span.t1 = now
                    span.attrs["truncated"] = True
                kept.append(span)
            self.spans = kept
        self.detach()
        if meta:
            self.meta.update(meta)
        if self.cache_ops:
            self.meta["cache_ops"] = dict(sorted(self.cache_ops.items()))
        return TraceData(self.meta, self.spans)

    # -- span construction -----------------------------------------------------
    def _new(
        self,
        kind: str,
        name: str,
        t0: float,
        t1: Optional[float] = None,
        rid: Optional[int] = None,
        parent: Optional[int] = None,
        attrs: Optional[dict] = None,
    ) -> Span:
        span = Span(
            sid=len(self.spans),
            kind=kind,
            name=name,
            t0=t0,
            t1=t1,
            rid=rid,
            parent=parent,
            attrs=attrs if attrs is not None else {},
        )
        self.spans.append(span)
        return span

    def _rid(self) -> Optional[int]:
        """Request id owning the currently-active process (None = background)."""
        proc = self.env.active_process
        chain = []
        rid: Optional[int] = None
        while proc is not None:
            found = self._proc_rid.get(proc, _MISSING)
            if found is not _MISSING:
                rid = found
                break
            chain.append(proc)
            proc = getattr(proc, "parent", None)
        for p in chain:
            self._proc_rid[p] = rid
        return rid

    def _root_sid(self, rid: Optional[int]) -> Optional[int]:
        if rid is None:
            return None
        root = self._roots.get(rid)
        return None if root is None else root.sid

    # -- runner lifecycle notifications -----------------------------------------
    def request_released(
        self, rid: int, process, lstart: int, nblocks: int, is_write: bool
    ) -> None:
        """Open the root span for request *rid* (root process *process*)."""
        span = self._new(
            "request",
            "write" if is_write else "read",
            t0=self.env.now,
            rid=rid,
            attrs={"lstart": lstart, "nblocks": nblocks, "is_write": bool(is_write)},
        )
        self._roots[rid] = span
        self._proc_rid[process] = rid

    def request_completed(self, rid: int) -> None:
        root = self._roots.get(rid)
        if root is not None:
            root.t1 = self.env.now

    # -- probe interface ---------------------------------------------------------
    def on_disk_submit(self, disk, request) -> None:
        rid = self._rid()
        if rid is None and not self.background:
            return
        span = self._new(
            "disk",
            disk.name,
            t0=self.env.now,
            rid=rid,
            parent=self._root_sid(rid),
            attrs={
                "disk": disk.name,
                "kind": request.kind.value,
                "start": request.start_block,
                "nblocks": request.nblocks,
                "priority": request.priority,
            },
        )
        self._open_disk[id(request)] = span

    def on_disk_phase(self, disk, request, phase: str, t0: float, t1: float) -> None:
        access = self._open_disk.get(id(request))
        if access is None:
            return
        self._new(
            "phase",
            phase,
            t0=t0,
            t1=t1,
            rid=access.rid,
            parent=access.sid,
            attrs={"disk": disk.name},
        )

    def on_disk_complete(self, disk, request) -> None:
        span = self._open_disk.pop(id(request), None)
        if span is None:
            return
        span.t1 = self.env.now
        started = request.started
        if started is not None and started.triggered:
            service_start = started.value
            if service_start > span.t0:
                self._new(
                    "phase",
                    "disk_queue",
                    t0=span.t0,
                    t1=service_start,
                    rid=span.rid,
                    parent=span.sid,
                    attrs={"disk": disk.name},
                )
        if request.spin_revolutions:
            span.attrs["spin_revolutions"] = request.spin_revolutions
        if request.hold_retries:
            span.attrs["hold_retries"] = request.hold_retries

    def on_channel_request(self, channel, nbytes: int) -> None:
        proc = self.env.active_process
        rid = self._rid()
        if rid is None and not self.background:
            return
        self._open_chan[proc] = (self.env.now, nbytes, rid)

    def on_channel_transfer(self, channel, nbytes: int, duration: float) -> None:
        now = self.env.now
        entry = self._open_chan.pop(self.env.active_process, None)
        if entry is None:
            t_enter, rid = now - duration, self._rid()
            if rid is None and not self.background:
                return
        else:
            t_enter, _, rid = entry
        span = self._new(
            "channel",
            channel.name,
            t0=t_enter,
            t1=now,
            rid=rid,
            parent=self._root_sid(rid),
            attrs={"channel": channel.name, "nbytes": nbytes},
        )
        wire_start = now - duration
        if wire_start > t_enter:
            self._new(
                "phase", "channel_wait", t0=t_enter, t1=wire_start,
                rid=rid, parent=span.sid, attrs={"channel": channel.name},
            )
        self._new(
            "phase", "channel_transfer", t0=wire_start, t1=now,
            rid=rid, parent=span.sid, attrs={"channel": channel.name},
        )

    def on_handle(self, controller, lstart: int, nblocks: int, is_write: bool) -> None:
        rid = self._rid()
        root = None if rid is None else self._roots.get(rid)
        if root is not None:
            root.attrs.setdefault("arrays", []).append(
                self._ctrl_label.get(id(controller), "?")
            )

    def on_destage(self, controller, run) -> None:
        rid = self._rid()
        if rid is None and not self.background:
            return
        now = self.env.now
        self._new(
            "mark",
            "destage",
            t0=now,
            t1=now,
            rid=rid,
            parent=self._root_sid(rid),
            attrs={
                "array": self._ctrl_label.get(id(controller), "?"),
                "disk": run.disk,
                "start": run.start,
                "nblocks": run.nblocks,
            },
        )

    def on_write_group(self, controller, group) -> None:
        rid = self._rid()
        root = None if rid is None else self._roots.get(rid)
        if root is not None:
            modes = root.attrs.setdefault("write_modes", [])
            modes.append(group.mode.value if hasattr(group.mode, "value") else str(group.mode))

    def on_parity_update(self, controller, run, parity_runs) -> None:
        pass

    def on_cache_op(self, cache, op: str, arg: int) -> None:
        self.cache_ops[op] = self.cache_ops.get(op, 0) + 1

    def on_degraded(self, controller, kind: str) -> None:
        rid = self._rid()
        now = self.env.now
        self._new(
            "mark", "degraded", t0=now, t1=now, rid=rid,
            parent=self._root_sid(rid),
            attrs={"array": self._ctrl_label.get(id(controller), "?"), "kind": kind},
        )

    def on_data_loss(self, controller, kind: str, disk: int, pblock: int) -> None:
        rid = self._rid()
        now = self.env.now
        self._new(
            "mark", "data_loss", t0=now, t1=now, rid=rid,
            parent=self._root_sid(rid),
            attrs={
                "array": self._ctrl_label.get(id(controller), "?"),
                "kind": kind, "disk": disk, "pblock": pblock,
            },
        )

    def on_latent_repair(self, controller, disk: int, pblock: int, how: str) -> None:
        pass

    def on_mirror_route(
        self, controller, run, chosen, alternate, seek_chosen, seek_alt
    ) -> None:
        rid = self._rid()
        if rid is None and not self.background:
            return
        now = self.env.now
        self._new(
            "mark",
            "mirror_route",
            t0=now,
            t1=now,
            rid=rid,
            parent=self._root_sid(rid),
            attrs={
                "chosen": chosen.name,
                "alternate": alternate.name,
                "seek_chosen": seek_chosen,
                "seek_alternate": seek_alt,
            },
        )
