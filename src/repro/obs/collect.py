"""Sampling metrics from a running simulation.

:class:`MetricsCollector` owns a :class:`~repro.obs.metrics.MetricsRegistry`
and fills it from two sides:

* a *sampler process* per environment records utilization and
  queue-depth timelines for every disk and channel at a fixed interval
  (the timelines behind the paper's aggregate utilization numbers);
* an *end-of-run harvest* copies the simulator's own counters (accesses,
  seeks, cache hits, destages) into named metrics.

The collector only ever schedules pure timeout events and reads public
counters, so a metered run produces bit-identical results to an
unmetered one.  Response-time histograms are fed by the runner at the
same point it feeds :class:`~repro.des.Tally`, so histogram counts match
``RunResult.response.count`` exactly.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

from repro.obs.metrics import MetricsRegistry

__all__ = ["MetricsCollector"]

#: Response-time histograms: 10 µs .. 100 s, 8 buckets per decade.
_RESPONSE_HIST = dict(lo=0.01, hi=1e5, buckets_per_decade=8)


class MetricsCollector:
    """Fills a metrics registry from a built system.

    Parameters
    ----------
    registry:
        Use an existing registry (e.g. to merge several runs into one
        namespace); ``None`` creates a fresh one.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.env = None
        self.controllers: Sequence = ()

    # -- lifecycle -----------------------------------------------------------
    def attach(self, env, controllers: Sequence, interval_ms: float) -> "MetricsCollector":
        """Start the utilization/queue-depth sampler."""
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        self.env = env
        self.controllers = list(controllers)
        env.process(self._sample_loop(interval_ms))
        return self

    def _sample_loop(self, interval_ms: float) -> Generator:
        env = self.env
        reg = self.registry
        while True:
            yield env.timeout(interval_ms)
            now = env.now
            for ctrl in self.controllers:
                for disk in ctrl.disks:
                    reg.series("disk_utilization", disk=disk.name).record(
                        now, disk.utilization(now)
                    )
                    reg.series("disk_queue_depth", disk=disk.name).record(
                        now, disk.pending + (1 if disk.in_service is not None else 0)
                    )
                chan = ctrl.channel
                reg.series("channel_utilization", channel=chan.name).record(
                    now, chan.utilization(now)
                )
                cache = getattr(ctrl, "cache", None)
                if cache is not None:
                    reg.series("cache_dirty_blocks", channel=chan.name).record(
                        now, len(cache.dirty_blocks(include_destaging=True))
                    )
                    reg.series("cache_occupancy", channel=chan.name).record(
                        now, cache.occupancy
                    )

    # -- runner feed -----------------------------------------------------------
    def observe_response(self, rt_ms: float, is_write: bool) -> None:
        """Record one measured response time (called by the runner)."""
        reg = self.registry
        reg.histogram("response_ms", **_RESPONSE_HIST).observe(rt_ms)
        name = "write_response_ms" if is_write else "read_response_ms"
        reg.histogram(name, **_RESPONSE_HIST).observe(rt_ms)

    # -- harvest -----------------------------------------------------------------
    def finalize(self, result=None) -> MetricsRegistry:
        """Copy the simulator's counters into the registry and return it."""
        reg = self.registry
        env = self.env
        now = env.now if env is not None else 0.0
        for ctrl in self.controllers:
            for disk in ctrl.disks:
                d = dict(disk=disk.name)
                reg.counter("disk_completed", **d).inc(disk.completed)
                reg.counter("disk_reads", **d).inc(disk.reads)
                reg.counter("disk_writes", **d).inc(disk.writes)
                reg.counter("disk_rmws", **d).inc(disk.rmws)
                reg.counter("disk_blocks_transferred", **d).inc(disk.blocks_transferred)
                reg.counter("disk_seek_time_ms", **d).inc(disk.seek_time_total)
                reg.counter("disk_busy_time_ms", **d).inc(disk.busy_time)
                reg.gauge("disk_utilization_final", **d).set(disk.utilization(now))
                reg.gauge("disk_mean_queue_depth", **d).set(
                    disk.queue_length.mean(now) if now > 0 else 0.0
                )
            chan = ctrl.channel
            c = dict(channel=chan.name)
            reg.counter("channel_bytes", **c).inc(chan.bytes_transferred)
            reg.counter("channel_transfers", **c).inc(chan.transfers)
            reg.counter("channel_busy_time_ms", **c).inc(chan.busy_time)
            reg.gauge("channel_utilization_final", **c).set(chan.utilization(now))
            cache = getattr(ctrl, "cache", None)
            if cache is not None:
                reg.counter("cache_read_hits", **c).inc(cache.read_hits)
                reg.counter("cache_read_misses", **c).inc(cache.read_misses)
                reg.counter("cache_write_hits", **c).inc(cache.write_hits)
                reg.counter("cache_write_misses", **c).inc(cache.write_misses)
                reg.counter("destaged_blocks", **c).inc(ctrl.destaged_blocks)
                reg.counter("sync_writebacks", **c).inc(ctrl.sync_writebacks)
        if result is not None:
            reg.gauge("simulated_ms").set(result.simulated_ms)
            reg.gauge("requests_total").set(result.requests)
            reg.gauge("mean_response_ms").set(result.response.mean)
        return reg
