"""Per-phase anatomy of traced requests.

Turns a :class:`~repro.obs.span.TraceData` into the decomposition the
paper reasons with: how much of a request's response time went to seeks,
rotation, transfer, parity synchronization, and queueing.

Phase spans overlap — a RAID5 write runs several disk accesses in
parallel, each with its own seek and rotation — so naive summing of
phase durations over-counts wall time.  :func:`decompose_request`
instead *sweeps* the request's ``[t0, t1]`` interval: every instant is
attributed to exactly one phase (the highest-precedence phase active at
that instant, mechanical work shadowing queueing), and instants covered
by no phase fall into ``other`` (controller logic, buffer waits,
event-loop handoffs).  By construction the per-phase times partition the
response time, so breakdowns sum to the measured response exactly.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

from repro.obs.span import Span, TraceData

__all__ = [
    "PHASE_ORDER",
    "decompose_request",
    "decompose",
    "phase_table",
    "render_summary",
    "render_phases",
    "render_compare",
    "percentile",
]

#: Attribution precedence, highest first: when phases overlap at an
#: instant, mechanical work (the arm is moving, the platter is spinning
#: under the head, bits are on the wire) wins over waiting states, and
#: specific waits win over generic queueing.
PHASE_ORDER = (
    "seek",
    "rotation",
    "transfer",
    "rmw_rotate",
    "sync_wait",
    "disk_queue",
    "channel_transfer",
    "channel_wait",
    "other",
)

_PRECEDENCE = {name: i for i, name in enumerate(PHASE_ORDER)}


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of *samples* (``q`` in [0, 100])."""
    if not samples:
        return math.nan
    xs = sorted(samples)
    if len(xs) == 1:
        return xs[0]
    pos = (q / 100.0) * (len(xs) - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(xs) - 1)
    frac = pos - lo
    return xs[lo] * (1.0 - frac) + xs[hi] * frac


def decompose_request(root: Span, phases: Iterable[Span]) -> dict[str, float]:
    """Partition *root*'s interval across its phase spans.

    Returns ``{phase_name: ms}`` whose values sum to ``root.duration``
    (a float residual, if any, is folded into ``other``).
    """
    t0, t1 = root.t0, root.t1
    if t1 is None or t1 <= t0:
        return {}
    clipped: list[tuple[float, float, int, str]] = []
    for s in phases:
        if s.t1 is None:
            continue
        a, b = max(s.t0, t0), min(s.t1, t1)
        if b > a:
            clipped.append((a, b, _PRECEDENCE.get(s.name, len(PHASE_ORDER)), s.name))

    out: dict[str, float] = {}
    if clipped:
        bounds = sorted({t0, t1, *(c[0] for c in clipped), *(c[1] for c in clipped)})
        for lo, hi in zip(bounds, bounds[1:]):
            best: Optional[tuple[int, str]] = None
            for a, b, prec, name in clipped:
                if a <= lo and b >= hi and (best is None or prec < best[0]):
                    best = (prec, name)
            name = best[1] if best is not None else "other"
            out[name] = out.get(name, 0.0) + (hi - lo)
    residual = (t1 - t0) - math.fsum(out.values())
    if residual or not out:
        out["other"] = out.get("other", 0.0) + residual
    return out


def decompose(data: TraceData) -> list[tuple[Span, dict[str, float]]]:
    """Per-request breakdowns for every closed root span, by rid."""
    phases_by_rid: dict[Optional[int], list[Span]] = {}
    for s in data.spans:
        if s.kind == "phase":
            phases_by_rid.setdefault(s.rid, []).append(s)
    out = []
    for root in data.roots():
        if root.t1 is None:
            continue
        out.append((root, decompose_request(root, phases_by_rid.get(root.rid, ()))))
    return out


def _aggregate(rows: list[tuple[Span, dict[str, float]]]) -> dict:
    """Mean per-phase ms plus response stats over a set of breakdowns."""
    n = len(rows)
    totals: dict[str, float] = {}
    durations = []
    for root, breakdown in rows:
        durations.append(root.duration)
        for name, ms in breakdown.items():
            totals[name] = totals.get(name, 0.0) + ms
    mean_rt = math.fsum(durations) / n if n else math.nan
    return {
        "count": n,
        "mean_ms": mean_rt,
        "p50_ms": percentile(durations, 50),
        "p95_ms": percentile(durations, 95),
        "p99_ms": percentile(durations, 99),
        "phases": {name: totals.get(name, 0.0) / n for name in totals} if n else {},
    }


def phase_table(data: TraceData) -> dict[str, dict]:
    """Aggregated breakdowns keyed ``all`` / ``read`` / ``write``."""
    rows = decompose(data)
    out = {"all": _aggregate(rows)}
    for direction in ("read", "write"):
        subset = [(r, b) for r, b in rows if r.name == direction]
        if subset:
            out[direction] = _aggregate(subset)
    return out


def _ordered_phases(phases: dict[str, float]) -> list[str]:
    return sorted(phases, key=lambda p: _PRECEDENCE.get(p, len(PHASE_ORDER)))


def _label(meta: dict) -> str:
    name = meta.get("name", "?")
    org = meta.get("organization")
    return f"{name} ({org})" if org else str(name)


def render_summary(data: TraceData) -> str:
    """Headline stats for one trace: counts, latency percentiles."""
    table = phase_table(data)
    lines = [f"trace: {_label(data.meta)}  —  {len(data.spans)} spans"]
    for key in ("warmup_ms", "simulated_ms"):
        if key in data.meta:
            lines.append(f"  {key:<13} {data.meta[key]:.1f}")
    lines.append("")
    lines.append(f"  {'requests':<10} {'count':>8} {'mean':>9} {'p50':>9} "
                 f"{'p95':>9} {'p99':>9}   (ms)")
    for key in ("all", "read", "write"):
        agg = table.get(key)
        if agg is None:
            continue
        lines.append(
            f"  {key:<10} {agg['count']:>8,} {agg['mean_ms']:>9.3f} "
            f"{agg['p50_ms']:>9.3f} {agg['p95_ms']:>9.3f} {agg['p99_ms']:>9.3f}"
        )
    return "\n".join(lines)


def render_phases(data: TraceData) -> str:
    """Per-phase mean-time table; each column sums to its mean response."""
    table = phase_table(data)
    keys = [k for k in ("all", "read", "write") if k in table]
    phase_names = _ordered_phases(
        {p: 1.0 for agg in table.values() for p in agg["phases"]}
    )
    lines = [f"phase breakdown: {_label(data.meta)}  (mean ms per request)", ""]
    header = f"  {'phase':<17}" + "".join(f"{k:>12}" for k in keys)
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for phase in phase_names:
        row = f"  {phase:<17}"
        for k in keys:
            row += f"{table[k]['phases'].get(phase, 0.0):>12.4f}"
        lines.append(row)
    lines.append("  " + "-" * (len(header) - 2))
    total_row = f"  {'response':<17}"
    for k in keys:
        total_row += f"{table[k]['mean_ms']:>12.4f}"
    lines.append(total_row)
    counts = f"  {'requests':<17}" + "".join(f"{table[k]['count']:>12,}" for k in keys)
    lines.append(counts)
    return "\n".join(lines)


def render_compare(a: TraceData, b: TraceData) -> str:
    """A/B delta of the per-phase means (``all`` direction)."""
    ta, tb = phase_table(a)["all"], phase_table(b)["all"]
    phases = _ordered_phases({**ta["phases"], **tb["phases"]})
    la, lb = _label(a.meta), _label(b.meta)
    lines = [f"compare: A = {la}", f"         B = {lb}", ""]
    header = f"  {'phase':<17}{'A (ms)':>12}{'B (ms)':>12}{'Δ (ms)':>12}{'Δ%':>9}"
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    rows = [(p, ta["phases"].get(p, 0.0), tb["phases"].get(p, 0.0)) for p in phases]
    rows.append(("response", ta["mean_ms"], tb["mean_ms"]))
    for name, va, vb in rows:
        delta = vb - va
        pct = f"{delta / va * 100.0:>8.1f}%" if va else f"{'—':>9}"
        lines.append(f"  {name:<17}{va:>12.4f}{vb:>12.4f}{delta:>+12.4f}{pct}")
    lines.append(
        f"  {'requests':<17}{ta['count']:>12,}{tb['count']:>12,}"
    )
    return "\n".join(lines)
