"""Span model for request-level tracing.

A :class:`Span` is one timed interval of work attributed to a logical
request (or to background machinery such as destage).  Spans form a
tree: the *root* span covers a request from release to completion, disk
and channel access spans hang off the root, and per-phase leaf spans
(seek, rotation, transfer, parity sync wait...) hang off the access that
produced them — the same decomposition Thomasian's RAID tutorials use to
explain where each organization's response time goes.

:class:`TraceData` is the exported artifact: run metadata plus the span
list, serialisable to JSONL (one span per line, round-trippable) and to
Chrome trace-event JSON viewable in Perfetto (``ui.perfetto.dev``).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import IO, Iterable, Optional, Union

__all__ = [
    "Span",
    "TraceData",
    "SPAN_KINDS",
    "well_formedness_problems",
]

#: ``request`` — root span of one logical request; ``disk`` — one disk
#: access (queue + service); ``channel`` — one channel transfer (wait +
#: wire time); ``phase`` — leaf interval inside an access; ``mark`` —
#: zero-duration annotation (mirror routing choice, destage, ...).
SPAN_KINDS = ("request", "disk", "channel", "phase", "mark")

#: Nesting tolerance: phase endpoints are reconstructed arithmetically
#: (e.g. ``slot + xfer``) and may differ from the kernel clock by a ulp.
_EPS = 1e-6


@dataclass(slots=True)
class Span:
    """One timed interval in the trace."""

    sid: int
    kind: str
    name: str
    t0: float
    t1: Optional[float] = None
    rid: Optional[int] = None
    parent: Optional[int] = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in ms (NaN while still open)."""
        return math.nan if self.t1 is None else self.t1 - self.t0

    def to_json(self) -> dict:
        out = {
            "type": "span",
            "sid": self.sid,
            "kind": self.kind,
            "name": self.name,
            "t0": self.t0,
            "t1": self.t1,
        }
        if self.rid is not None:
            out["rid"] = self.rid
        if self.parent is not None:
            out["parent"] = self.parent
        if self.attrs:
            out["attrs"] = self.attrs
        return out

    @classmethod
    def from_json(cls, obj: dict) -> "Span":
        return cls(
            sid=obj["sid"],
            kind=obj["kind"],
            name=obj["name"],
            t0=obj["t0"],
            t1=obj.get("t1"),
            rid=obj.get("rid"),
            parent=obj.get("parent"),
            attrs=obj.get("attrs", {}),
        )


class TraceData:
    """A completed trace: run metadata plus the span set.

    Parameters
    ----------
    meta:
        Run metadata (name, organization, ``warmup_ms``...), JSON-able.
    spans:
        All recorded spans, in creation order.
    """

    def __init__(self, meta: dict, spans: list[Span]) -> None:
        self.meta = dict(meta)
        self.spans = list(spans)
        self._by_sid: Optional[dict[int, Span]] = None

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        return f"<TraceData {self.meta.get('name', '?')!r}: {len(self.spans)} spans>"

    # -- indexing ----------------------------------------------------------
    def by_sid(self) -> dict[int, Span]:
        if self._by_sid is None:
            self._by_sid = {s.sid: s for s in self.spans}
        return self._by_sid

    def roots(self) -> list[Span]:
        """Root spans, one per traced logical request, by request id."""
        return sorted(
            (s for s in self.spans if s.kind == "request"),
            key=lambda s: s.rid if s.rid is not None else -1,
        )

    def request_spans(self, rid: int) -> list[Span]:
        """Every span attributed to request *rid* (including the root)."""
        return [s for s in self.spans if s.rid == rid]

    def phases(self, rid: Optional[int] = None) -> Iterable[Span]:
        """Leaf phase spans, optionally restricted to one request."""
        for s in self.spans:
            if s.kind == "phase" and (rid is None or s.rid == rid):
                yield s

    # -- JSONL round trip ---------------------------------------------------
    def to_jsonl(self, dst: Union[str, IO[str]]) -> None:
        """Write ``{"type": "meta"}`` then one span object per line."""
        if isinstance(dst, str):
            with open(dst, "w") as fh:
                self.to_jsonl(fh)
            return
        dst.write(json.dumps({"type": "meta", **self.meta}, sort_keys=True) + "\n")
        for span in self.spans:
            dst.write(json.dumps(span.to_json(), sort_keys=True) + "\n")

    @classmethod
    def from_jsonl(cls, src: Union[str, IO[str]]) -> "TraceData":
        if isinstance(src, str):
            with open(src) as fh:
                return cls.from_jsonl(fh)
        meta: dict = {}
        spans: list[Span] = []
        for line in src:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            kind = obj.pop("type", "span")
            if kind == "meta":
                meta = obj
            else:
                spans.append(Span.from_json(obj))
        return cls(meta, spans)

    # -- Chrome trace-event export -----------------------------------------
    def to_chrome(self, dst: Union[str, IO[str]], request_lanes: int = 32) -> None:
        """Export as Chrome trace-event JSON (open in Perfetto).

        Spans become nestable async begin/end pairs so that overlapping
        work (parallel disk accesses of one request, queued accesses of
        one disk) renders without fake nesting.  Requests and channel
        transfers land on the ``requests`` process (one lane per
        ``rid % request_lanes``); disk accesses and their phases land on
        the ``disks`` process, one thread per physical disk.
        """
        if isinstance(dst, str):
            with open(dst, "w") as fh:
                self.to_chrome(fh, request_lanes)
            return
        events: list[dict] = [
            {"ph": "M", "name": "process_name", "pid": 1, "tid": 0,
             "args": {"name": "requests"}},
            {"ph": "M", "name": "process_name", "pid": 2, "tid": 0,
             "args": {"name": "disks"}},
        ]
        disk_tids: dict[str, int] = {}
        for span in self.spans:
            if span.t1 is None:
                continue
            if span.kind in ("disk", "phase"):
                disk = span.attrs.get("disk", span.name)
                tid = disk_tids.setdefault(disk, len(disk_tids) + 1)
                pid = 2
            else:
                pid = 1
                tid = 0 if span.rid is None else span.rid % request_lanes
            common = {
                "cat": span.kind,
                "id": span.sid,
                "name": span.name,
                "pid": pid,
                "tid": tid,
            }
            events.append({"ph": "b", "ts": span.t0 * 1000.0,
                           "args": dict(span.attrs), **common})
            events.append({"ph": "e", "ts": span.t1 * 1000.0, **common})
        for disk, tid in sorted(disk_tids.items()):
            events.append({"ph": "M", "name": "thread_name", "pid": 2,
                           "tid": tid, "args": {"name": disk}})
        json.dump({"traceEvents": events, "displayTimeUnit": "ms",
                   "otherData": self.meta}, dst)


def well_formedness_problems(data: TraceData) -> list[str]:
    """Structural invariants of a span tree; returns violations found.

    * every span is closed (``t1`` set) — background spans cut off at the
      end of the run must carry ``attrs["truncated"]``;
    * no negative durations;
    * children lie inside their parent (to float tolerance) and reference
      an existing span attributed to the same request;
    * request ids on roots are unique.
    """
    problems: list[str] = []
    by_sid = data.by_sid()
    seen_rids: set[int] = set()
    for span in data.spans:
        where = f"span {span.sid} ({span.kind}/{span.name})"
        if span.t1 is None:
            problems.append(f"{where}: never closed")
            continue
        if span.t1 < span.t0:
            problems.append(f"{where}: negative duration {span.t1 - span.t0:g}")
        if span.kind == "request":
            if span.rid is None:
                problems.append(f"{where}: root span without rid")
            elif span.rid in seen_rids:
                problems.append(f"{where}: duplicate rid {span.rid}")
            else:
                seen_rids.add(span.rid)
        if span.parent is not None:
            parent = by_sid.get(span.parent)
            if parent is None:
                problems.append(f"{where}: dangling parent {span.parent}")
                continue
            if parent.rid != span.rid:
                problems.append(
                    f"{where}: rid {span.rid} differs from parent's {parent.rid}"
                )
            if span.t0 < parent.t0 - _EPS or (
                parent.t1 is not None and span.t1 > parent.t1 + _EPS
            ):
                problems.append(
                    f"{where}: [{span.t0:g}, {span.t1:g}] escapes parent "
                    f"{parent.sid} [{parent.t0:g}, {parent.t1:g}]"
                )
    return problems
