"""Analysis CLI for exported traces.

::

    python -m repro.obs summarize run.jsonl
    python -m repro.obs phases    run.jsonl
    python -m repro.obs compare   base.jsonl raid5.jsonl
    python -m repro.obs overhead  [--check] [--requests N] [--repeats K]

``summarize`` prints request counts and latency percentiles,
``phases`` the per-phase response-time breakdown (columns sum to the
mean response), ``compare`` the A/B phase deltas between two traces,
and ``overhead`` the instrumentation cost benchmark (``--check`` exits
non-zero if instrumentation perturbed results or blew the time budget).
"""

from __future__ import annotations

import argparse
import sys

from repro.obs import analyze, overhead
from repro.obs.span import TraceData, well_formedness_problems


def _load(path: str) -> TraceData:
    data = TraceData.from_jsonl(path)
    problems = well_formedness_problems(data)
    if problems:
        print(f"warning: {path}: {len(problems)} well-formedness problems "
              f"(first: {problems[0]})", file=sys.stderr)
    return data


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Analyse exported simulation traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summarize", help="latency percentiles for one trace")
    p.add_argument("trace", help="JSONL trace exported by a traced run")

    p = sub.add_parser("phases", help="per-phase response-time breakdown")
    p.add_argument("trace", help="JSONL trace exported by a traced run")

    p = sub.add_parser("compare", help="A/B phase deltas between two traces")
    p.add_argument("trace_a", help="baseline JSONL trace")
    p.add_argument("trace_b", help="candidate JSONL trace")

    p = sub.add_parser("overhead", help="benchmark instrumentation cost")
    p.add_argument("--requests", type=int, default=2000)
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument("--max-ratio", type=float, default=overhead.DEFAULT_MAX_RATIO)
    p.add_argument("--check", action="store_true",
                   help="exit non-zero if the overhead guard fails")

    args = parser.parse_args(argv)

    if args.command == "summarize":
        print(analyze.render_summary(_load(args.trace)))
    elif args.command == "phases":
        print(analyze.render_phases(_load(args.trace)))
    elif args.command == "compare":
        print(analyze.render_compare(_load(args.trace_a), _load(args.trace_b)))
    elif args.command == "overhead":
        report = overhead.overhead_report(
            n_requests=args.requests, repeats=args.repeats
        )
        print(overhead.render(report))
        if args.check:
            problems = overhead.check(report, max_ratio=args.max_ratio)
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            return 1 if problems else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
