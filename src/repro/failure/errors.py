"""Typed errors of the failure-injection subsystem.

Two distinct failure modes deserve distinct types:

* :class:`FailureScheduleError` — the *scenario* is malformed (an event
  targets a disk the array does not have, a spare arrives with nothing
  to replace, two concurrent failures on one array).  Raised before or
  during injection; always a caller mistake.
* :class:`DataLossError` — the *simulated system* lost data: a request
  addressed blocks that no surviving copy or parity group can
  reconstruct.  The run itself completes gracefully (lost accesses are
  counted, not raised mid-simulation, so a campaign point still yields
  a result); callers that want hard failure semantics call
  :meth:`~repro.failure.report.FailureReport.raise_for_loss`.
"""

from __future__ import annotations

from typing import Sequence, Tuple

__all__ = ["FailureScheduleError", "DataLossError"]


class FailureScheduleError(ValueError):
    """A failure schedule is inconsistent with itself or the system."""


class DataLossError(RuntimeError):
    """The scenario destroyed data that requests then tried to access.

    Attributes
    ----------
    lost_reads, lost_writes:
        Foreground accesses that addressed unreconstructable blocks.
    lost_blocks:
        Physical blocks the rebuild could not reconstruct.
    samples:
        Up to a few ``(time_ms, kind, disk, pblock)`` records of the
        first lost accesses, for debugging.
    """

    def __init__(
        self,
        lost_reads: int,
        lost_writes: int,
        lost_blocks: int,
        samples: Sequence[Tuple[float, str, int, int]] = (),
    ) -> None:
        self.lost_reads = lost_reads
        self.lost_writes = lost_writes
        self.lost_blocks = lost_blocks
        self.samples = tuple(samples)
        detail = "; ".join(
            f"t={t:g} {kind} disk {disk} pblock {pb}"
            for t, kind, disk, pb in self.samples[:5]
        )
        super().__init__(
            f"{lost_reads} read(s) and {lost_writes} write(s) hit lost data, "
            f"{lost_blocks} block(s) unreconstructable"
            + (f" (first: {detail})" if detail else "")
        )
