"""Failure-domain scenario subsystem.

Deterministic fault injection for the reproduction: declarative
:class:`FailureSchedule` timelines (disk failures, spare arrivals,
latent sector errors, periodic scrubbing) driven into the DES by a
:class:`FailureInjector`, failure-capable controllers that degrade
gracefully instead of crashing, background :class:`RebuildProcess` /
:class:`ScrubProcess` activity competing with foreground traffic, and a
per-run :class:`FailureReport` summarizing the outcome.

Entry point: ``run_trace(config, workload, failures=FailureSchedule(...))``
— see :mod:`repro.sim.runner`.  The experiment drivers ``ext-rebuild-rate``
and ``ext-scrub`` sweep the two scenario knobs (rebuild rate, scrub
interval) as registered campaigns.
"""

from repro.failure.degraded import (
    DegradedMirrorController,
    DegradedParityController,
    FailureAwareBaseController,
    RebuildProcess,
    failure_controller_factory,
    reconstruction_sources,
)
from repro.failure.errors import DataLossError, FailureScheduleError
from repro.failure.injector import FailureInjector
from repro.failure.report import FailureReport, RebuildStats, ScrubStats, build_report
from repro.failure.schedule import (
    DiskFailure,
    FailureSchedule,
    LatentError,
    ScrubPolicy,
    SpareArrival,
)
from repro.failure.scrub import ScrubProcess

__all__ = [
    "DataLossError",
    "DegradedMirrorController",
    "DegradedParityController",
    "DiskFailure",
    "FailureAwareBaseController",
    "FailureInjector",
    "FailureReport",
    "FailureSchedule",
    "FailureScheduleError",
    "LatentError",
    "RebuildProcess",
    "RebuildStats",
    "ScrubPolicy",
    "ScrubProcess",
    "ScrubStats",
    "SpareArrival",
    "build_report",
    "failure_controller_factory",
    "reconstruction_sources",
]
