"""Periodic scrubbing: proactive detection and repair of latent errors.

A latent sector error is silent until something reads the block.  If
nothing ever does, it surfaces at the worst possible moment — during a
rebuild, when the redundancy that could have repaired it is already
spent on the failed disk.  Scrubbing bounds that exposure window: a
background process periodically sweeps every live disk, *verify*-reading
it chunk by chunk at background priority, and repairs each latent error
it finds from the block's redundancy group.

The scrub interval is therefore a reliability/performance knob exactly
like the rebuild rate: short intervals find errors quickly but steal
arm time from foreground requests; long intervals are cheap but leave
errors latent for longer (measured by the report's exposure statistics
and swept by the ``ext-scrub`` experiment driver).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.des import AllOf, Event
from repro.disk.request import AccessKind, DiskRequest, Priority
from repro.failure.degraded import reconstruction_sources
from repro.failure.schedule import ScrubPolicy

__all__ = ["ScrubProcess"]


class ScrubProcess:
    """One controller's periodic verify sweep.

    Each pass reads every live disk's first ``policy.max_blocks``
    blocks (or the whole disk) in ``policy.chunk_blocks`` units at
    :class:`~repro.disk.request.Priority` ``DESTAGE`` — scrub I/O never
    preempts foreground traffic.  Blocks the sweep cannot sensibly read
    are skipped: the failed disk entirely while it has no spare, and the
    unrebuilt region above the watermark while it does.

    For every latent error found, the repair reads the block's surviving
    redundancy sources and rewrites the block
    (:meth:`~repro.failure.degraded._DegradedMixin._repair_latent` with
    ``how="scrub"``).  A latent error whose group is *not* intact — a
    source is itself failed or unreadable, or the organization has no
    redundancy at all — is counted ``unrepairable`` and left in place:
    scrubbing detects, only redundancy repairs.

    ``pass_done`` is an event that fires when the current pass
    completes (re-armed each pass); the runner's drain phase waits on it
    to honour ``policy.min_passes`` for traces shorter than the scrub
    period.
    """

    def __init__(self, controller, policy: ScrubPolicy) -> None:
        self.controller = controller
        self.policy = policy
        self.passes = 0
        self.blocks_checked = 0
        self.detected = 0
        self.repaired = 0
        self.unrepairable = 0
        self.pass_done: Event = Event(controller.env)
        self.process = controller.env.process(self._run())

    def _run(self) -> Generator[Event, None, None]:
        ctrl = self.controller
        env = ctrl.env
        policy = self.policy
        if policy.start_ms > 0:
            yield env.timeout(policy.start_ms)
        while True:
            yield from self._one_pass()
            self.passes += 1
            done, self.pass_done = self.pass_done, Event(env)
            done.succeed(self.passes)
            yield env.timeout(policy.period_ms)

    def _one_pass(self) -> Generator[Event, None, None]:
        ctrl = self.controller
        layout = ctrl.layout
        policy = self.policy
        span = layout.blocks_per_disk
        if policy.max_blocks is not None:
            span = min(span, policy.max_blocks)
        for disk_idx in range(layout.ndisks):
            pblock = 0
            while pblock < span:
                chunk = min(policy.chunk_blocks, span - pblock)
                # Verify-read only the chunk's readable blocks; the scrub
                # read is what *detects* any latent error among them.
                readable_end = pblock
                for pb in range(pblock, pblock + chunk):
                    if ctrl._is_failed(disk_idx, pb):
                        break
                    readable_end = pb + 1
                if readable_end > pblock:
                    nblocks = readable_end - pblock
                    req = ctrl.disks[disk_idx].submit(
                        DiskRequest(
                            AccessKind.READ,
                            pblock,
                            nblocks,
                            priority=Priority.DESTAGE,
                        )
                    )
                    yield req.done
                    self.blocks_checked += nblocks
                    for pb in range(pblock, readable_end):
                        if (disk_idx, pb) in ctrl.latent:
                            self.detected += 1
                            yield from self._repair(disk_idx, pb)
                pblock += chunk

    def _repair(self, disk: int, pblock: int) -> Generator[Event, None, None]:
        """Reconstruct the block from its redundancy group and rewrite it."""
        ctrl = self.controller
        try:
            sources = reconstruction_sources(ctrl.layout, disk, pblock)
        except TypeError:
            # No redundancy (base organization): detected, not repairable.
            self.unrepairable += 1
            return
        if any(ctrl._is_unreadable(src.disk, src.block) for src in sources):
            # The group is not intact (typically: the array is degraded
            # and the failed disk is one of the sources).  The error
            # stays latent — this is precisely the exposure the scrub
            # interval is meant to bound.
            self.unrepairable += 1
            return
        reads = [
            ctrl.disks[src.disk].submit(
                DiskRequest(AccessKind.READ, src.block, 1, priority=Priority.DESTAGE)
            )
            for src in sources
        ]
        yield AllOf(ctrl.env, [r.done for r in reads])
        ctrl._repair_latent(disk, pblock, how="scrub")
        self.repaired += 1
